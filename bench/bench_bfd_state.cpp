// §6.4 BFD: parse the 22 state-management sentences of RFC 5880 §6.8.6,
// generate state-update code, and drive a BFD session with control
// packets to verify the three-way state machine and the demand-mode /
// discard behaviours emerge from generated code.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc5880.hpp"
#include "net/bfd.hpp"
#include "rfc/preprocessor.hpp"
#include "rfc/struct_gen.hpp"
#include "runtime/schema_env.hpp"
#include "runtime/interpreter.hpp"

namespace {

using namespace sage;

/// Apply the generated state-management function to one control packet.
void receive(const runtime::Interpreter& interp,
             const codegen::GeneratedFunction& fn, net::BfdSessionState* state,
             const net::BfdControlPacket& packet) {
  auto env = runtime::SchemaExecEnv::bfd(state, &packet);
  interp.run(fn.body, env);
}

}  // namespace

int main() {
  benchutil::title("§6.4 BFD", "state-management sentences -> running code");

  // ---- header (§4.1) ---------------------------------------------------------
  const auto doc = rfc::preprocess(corpus::rfc5880_header_section(), "BFD");
  if (!doc.sections.empty() && doc.sections[0].diagram) {
    std::printf("parsed §4.1 header diagram: %zu fields, %d fixed bits\n",
                doc.sections[0].diagram->fields.size(),
                doc.sections[0].diagram->fixed_bits());
    std::printf("%s\n",
                rfc::generate_c_struct(*doc.sections[0].diagram,
                                       "bfd control packet")
                    .c_str());
  }

  // ---- the 22 sentences -------------------------------------------------------
  core::Sage sage;
  auto run = sage.process(corpus::rfc5880_state_section(), "BFD");
  std::printf("state-management sentences: %zu (paper: 22)\n",
              run.reports.size());
  std::printf("parsed to exactly one LF:   %zu\n",
              run.count(core::SentenceStatus::kParsed));
  std::printf("lexicon additions for BFD:  %zu (paper: 15)\n\n",
              sage.lexicon().count_by_source("bfd"));
  if (run.functions.size() != 1) {
    std::printf("unexpected function count %zu\n", run.functions.size());
    return 1;
  }
  const auto& fn = run.functions[0];
  const runtime::Interpreter interp;

  // ---- drive the generated code ------------------------------------------------
  benchutil::row("SCENARIO", "result (expected)");
  benchutil::rule();
  {
    // Three-way handshake: Down --recv Down--> Init --recv Init--> Up.
    net::BfdSessionState s;
    net::BfdControlPacket p;
    p.my_discriminator = 7;
    p.your_discriminator = 0;
    p.state = net::BfdState::kDown;
    receive(interp, fn, &s, p);
    const bool step1 = s.session_state == net::BfdState::kInit;
    p.state = net::BfdState::kInit;
    p.your_discriminator = s.local_discr;
    receive(interp, fn, &s, p);
    const bool step2 = s.session_state == net::BfdState::kUp;
    benchutil::row("three-way handshake Down->Init->Up",
                   std::string(step1 && step2 ? "PASS" : "FAIL") + " (pass)");
    benchutil::row("bfd.RemoteDiscr learned from My Discriminator",
                   std::string(s.remote_discr == 7 ? "PASS" : "FAIL") +
                       " (pass)");
  }
  {
    // Remote signals down.
    net::BfdSessionState s;
    s.session_state = net::BfdState::kUp;
    net::BfdControlPacket p;
    p.my_discriminator = 7;
    p.state = net::BfdState::kDown;
    receive(interp, fn, &s, p);
    benchutil::row("recv Down while Up -> session Down",
                   std::string(s.session_state == net::BfdState::kDown
                                   ? "PASS"
                                   : "FAIL") +
                       " (pass)");
  }
  {
    // Invalid packet: zero My Discriminator must be discarded.
    net::BfdSessionState s;
    net::BfdControlPacket p;
    p.my_discriminator = 0;
    receive(interp, fn, &s, p);
    benchutil::row("My Discriminator == 0 -> packet discarded",
                   std::string(s.packet_discarded ? "PASS" : "FAIL") +
                       " (pass)");
  }
  {
    // Demand mode: remote demands, both Up -> cease periodic transmission.
    net::BfdSessionState s;
    s.session_state = net::BfdState::kUp;
    s.remote_session_state = net::BfdState::kUp;
    net::BfdControlPacket p;
    p.my_discriminator = 7;
    p.state = net::BfdState::kUp;
    p.demand = true;
    receive(interp, fn, &s, p);
    benchutil::row("demand mode active -> periodic TX ceased",
                   std::string(!s.periodic_transmission_enabled ? "PASS"
                                                                : "FAIL") +
                       " (pass)");
  }
  {
    // Echo function: required min echo RX interval zero -> cease echo.
    net::BfdSessionState s;
    net::BfdControlPacket p;
    p.my_discriminator = 7;
    p.state = net::BfdState::kDown;
    p.required_min_echo_rx_interval = 0;
    receive(interp, fn, &s, p);
    benchutil::row("echo interval 0 -> transmission ceased",
                   std::string(!s.periodic_transmission_enabled ? "PASS"
                                                                : "FAIL") +
                       " (pass)");
  }
  return 0;
}

// Check-order ablation (DESIGN.md decision ★3): SAGE runs the winnowing
// families in a fixed order (Type -> ArgOrder -> PredOrder -> Distrib ->
// Assoc). Does the order matter? This bench runs every permutation of
// the five families over the base logical-form sets of all multi-LF
// RFC 792 sentences and reports the distribution of final ambiguity.
//
// Expected outcome (and the reason the design is safe): the per-LF
// families are order-independent filters, and distributivity/associativity
// only ever collapse semantically equivalent survivors — so every order
// ends at the same number of fundamentally ambiguous sentences; orders
// differ only in how much work later stages see.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"

int main() {
  using namespace sage;
  benchutil::title("Check-order ablation",
                   "all 120 permutations of the five winnowing families");

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto run = sage.process(corpus::rfc792_original(), "ICMP");

  std::vector<std::vector<lf::LogicalForm>> base_sets;
  for (const auto& report : run.reports) {
    if (report.base_forms >= 2) base_sets.push_back(report.base_candidates);
  }

  std::vector<disambig::CheckFamily> order = {
      disambig::CheckFamily::kType,
      disambig::CheckFamily::kArgumentOrdering,
      disambig::CheckFamily::kPredicateOrdering,
      disambig::CheckFamily::kDistributivity,
      disambig::CheckFamily::kAssociativity,
  };
  std::sort(order.begin(), order.end());

  std::size_t permutations = 0;
  std::size_t min_ambiguous = SIZE_MAX, max_ambiguous = 0;
  std::size_t min_survivors = SIZE_MAX, max_survivors = 0;
  do {
    ++permutations;
    std::size_t ambiguous = 0, survivors = 0;
    for (const auto& base : base_sets) {
      std::vector<lf::LogicalForm> forms = base;
      for (const auto family : order) {
        forms = sage.winnower().apply_family(family, std::move(forms));
      }
      survivors += forms.size();
      if (forms.size() > 1) ++ambiguous;
    }
    min_ambiguous = std::min(min_ambiguous, ambiguous);
    max_ambiguous = std::max(max_ambiguous, ambiguous);
    min_survivors = std::min(min_survivors, survivors);
    max_survivors = std::max(max_survivors, survivors);
  } while (std::next_permutation(order.begin(), order.end()));

  std::printf("%zu multi-LF sentences, %zu permutations\n", base_sets.size(),
              permutations);
  std::printf("fundamentally ambiguous sentences: min %zu, max %zu %s\n",
              min_ambiguous, max_ambiguous,
              min_ambiguous == max_ambiguous ? "(order-independent)" : "");
  std::printf("total surviving LFs:               min %zu, max %zu %s\n",
              min_survivors, max_survivors,
              min_survivors == max_survivors ? "(order-independent)" : "");
  return 0;
}

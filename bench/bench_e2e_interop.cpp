// §6.2 end-to-end evaluation: generate ICMP code from the revised RFC
// 792, install it in the simulated testbed, and run
//   (a) packet-capture verification (tcpdump model: no warnings/errors),
//   (b) the four Linux-command interop tests (echo, destination
//       unreachable, time exceeded, traceroute),
//   (c) the remaining Appendix A message scenarios,
//   (d) the §6.5 under-specification demonstration (wrong reading of the
//       identifier sentence fails ping; SAGE's reading passes).
#include <cstdio>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"
#include "eval/interop_harness.hpp"
#include "eval/students.hpp"
#include "net/icmp.hpp"
#include "runtime/generated_responder.hpp"
#include "sim/inspector.hpp"
#include "sim/network.hpp"
#include "sim/ping.hpp"
#include "sim/traceroute.hpp"

int main() {
  using namespace sage;
  benchutil::title("End-to-end (§6.2)",
                   "generated ICMP code vs Linux tool models");

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto run = sage.process(corpus::rfc792_revised(), "ICMP");
  runtime::GeneratedIcmpResponder responder;
  for (const auto& fn : run.functions) responder.add_function(fn);
  std::printf("generated %zu packet-handling functions from %zu sentence "
              "instances\n\n",
              run.functions.size(), run.reports.size());

  const auto fresh_net = [&responder]() {
    sim::Network net = sim::make_appendix_a_network();
    net.router()->set_responder(&responder);
    net.find_host("server1")->set_responder(&responder);
    net.find_host("server2")->set_responder(&responder);
    return net;
  };

  benchutil::row("EXPERIMENT", "result (paper)");
  benchutil::rule();
  sim::PingClient ping;

  {  // echo
    auto net = fresh_net();
    const auto r = ping.ping(net, "client", net::IpAddr(192, 168, 2, 100));
    benchutil::row("ping server (echo/echo reply)",
                   std::string(r.success ? "PASS" : "FAIL") + " (pass)");
  }
  {  // destination unreachable
    auto net = fresh_net();
    sim::PingOptions o;
    o.expect = sim::PingExpect::kDestinationUnreachable;
    const auto r = ping.ping(net, "client", net::IpAddr(8, 8, 8, 8), o);
    benchutil::row("ping unknown subnet (destination unreachable)",
                   std::string(r.success ? "PASS" : "FAIL") + " (pass)");
  }
  {  // time exceeded
    auto net = fresh_net();
    sim::PingOptions o;
    o.ttl = 1;
    o.expect = sim::PingExpect::kTimeExceeded;
    const auto r = ping.ping(net, "client", net::IpAddr(192, 168, 2, 100), o);
    benchutil::row("TTL-limited ping (time exceeded)",
                   std::string(r.success ? "PASS" : "FAIL") + " (pass)");
  }
  {  // traceroute
    auto net = fresh_net();
    sim::TracerouteClient tr;
    const auto r = tr.trace(net, "client", net::IpAddr(172, 64, 3, 100));
    benchutil::row("traceroute to server2",
                   std::string(r.reached_destination ? "PASS" : "FAIL") +
                       " (pass)");
  }
  {  // tcpdump-model verification over a combined capture
    auto net = fresh_net();
    ping.ping(net, "client", net::IpAddr(192, 168, 2, 100));
    sim::PingOptions o;
    o.expect = sim::PingExpect::kDestinationUnreachable;
    ping.ping(net, "client", net::IpAddr(8, 8, 8, 8), o);
    sim::TracerouteClient tr;
    tr.trace(net, "client", net::IpAddr(172, 64, 3, 100));
    sim::PacketInspector inspector;
    const auto results = inspector.inspect_pcap(net.capture_to_pcap());
    std::size_t dirty = 0;
    for (const auto& r : results) dirty += r.clean() ? 0 : 1;
    char right[64];
    std::snprintf(right, sizeof right, "%zu packets, %zu flagged (0)",
                  results.size(), dirty);
    benchutil::row("packet capture verification (tcpdump model)", right);
  }
  {  // remaining Appendix A scenarios
    auto net = fresh_net();
    net.router()->behavior().require_tos_zero = true;
    net::Ipv4Header ip;
    ip.tos = 1;
    ip.protocol = static_cast<std::uint8_t>(net::IpProto::kIcmp);
    ip.src = net::IpAddr(10, 0, 1, 100);
    ip.dst = net::IpAddr(192, 168, 2, 100);
    net::IcmpMessage icmp;
    icmp.type = net::IcmpType::kEcho;
    icmp.payload = sim::PingClient::make_payload(56);
    net.send_from_host("client", net::build_ipv4_packet(ip, icmp.serialize()));
    const bool got = !net.find_host("client")->inbox().empty();
    benchutil::row("parameter problem scenario",
                   std::string(got ? "PASS" : "FAIL") + " (pass)");
  }
  {
    auto net = fresh_net();
    net.router()->behavior().full_outbound_interface = 1;
    const auto req = sim::PingClient::make_echo_request(
        net::IpAddr(10, 0, 1, 100), net::IpAddr(192, 168, 2, 100), {});
    net.send_from_host("client", req);
    const bool got = !net.find_host("client")->inbox().empty();
    benchutil::row("source quench scenario",
                   std::string(got ? "PASS" : "FAIL") + " (pass)");
  }
  {
    auto net = fresh_net();
    const auto req = sim::PingClient::make_echo_request(
        net::IpAddr(10, 0, 1, 100), net::IpAddr(10, 0, 1, 50), {});
    net.send_from_host_via_router("client", req);
    const bool got = !net.find_host("client")->inbox().empty();
    benchutil::row("redirect scenario",
                   std::string(got ? "PASS" : "FAIL") + " (pass)");
  }
  benchutil::rule();

  // §6.5 under-specification demonstration.
  std::printf("\nUnder-specified behavior (§6.5): \"If code = 0, an identifier\n"
              "to aid in matching echos and replies, may be zero.\"\n");
  const auto wrong = eval::make_underspecified_receiver();
  const auto wrong_result = eval::ping_against(wrong.get());
  std::printf("  receiver-zeroes-identifier reading: ping %s (paper: fails)\n",
              wrong_result.success ? "PASSES" : "FAILS");
  const auto right_result = eval::ping_against(&responder);
  std::printf("  sage's corrected reading:           ping %s (paper: passes)\n",
              right_result.success ? "PASSES" : "FAILS");
  return 0;
}

// Figure 4: "sage workflow in processing RFC 792" — the counts at each
// stage of the feedback loop: instances, parsed, ambiguous (rewrite
// needed), zero-LF (rewrite needed), non-actionable, and the state after
// the human rewrites are applied.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"

namespace {

void report_run(const char* label, const sage::core::ProtocolRun& run) {
  using namespace sage;
  std::printf("%s\n", label);
  std::printf("  sentence instances:        %zu\n", run.reports.size());
  std::printf("  parsed to exactly one LF:  %zu\n",
              run.count(core::SentenceStatus::kParsed));
  std::printf("  >1 LF after winnowing:     %zu\n",
              run.count(core::SentenceStatus::kAmbiguous));
  std::printf("  0 LF (rewrite required):   %zu\n",
              run.count(core::SentenceStatus::kZeroForms));
  std::printf("  non-actionable:            %zu (+%zu discovered this run)\n",
              run.count(core::SentenceStatus::kNonActionable),
              run.discovered_non_actionable.size());
  std::printf("  generated functions:       %zu\n", run.functions.size());
}

}  // namespace

int main() {
  using namespace sage;
  benchutil::title("Figure 4", "SAGE workflow on RFC 792 (feedback loop)");

  {
    core::Sage sage;
    sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
    const auto original = sage.process(corpus::rfc792_original(), "ICMP");
    report_run("Pass 1 — original RFC 792 text:", original);
    std::printf("  (paper: 87 instances; 4 sentences with >1 LF and 1 with\n"
                "   0 LFs are flagged for the author; 6 imprecise sentences\n"
                "   are found later by unit testing)\n\n");
  }
  {
    core::Sage sage;
    sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
    const auto revised = sage.process(corpus::rfc792_revised(), "ICMP");
    report_run("Pass 2 — after the 11 rewrites of Table 6:", revised);
    std::printf("  (paper: the revised spec compiles to code that passes the\n"
                "   end-to-end interop tests — see bench_e2e_interop)\n");
  }
  return 0;
}

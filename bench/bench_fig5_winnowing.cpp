// Figure 5: "Number of LFs after Inconsistency Checks" for ICMP (5a),
// IGMP (5b), and BFD (5c) — for every sentence that parses to more than
// one logical form, the surviving count after each sequential check
// stage (Base -> Type -> ArgOrder -> PredOrder -> Distrib -> Assoc),
// reported as min/avg/max series, exactly the figure's three lines.
#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc1112.hpp"
#include "corpus/rfc5880.hpp"
#include "corpus/rfc792.hpp"

namespace {

using sage::core::ProtocolRun;

void winnowing_series(const char* label, const ProtocolRun& run,
                      const char* paper_note) {
  using namespace sage;
  std::printf("\n--- %s ---\n", label);

  // Collect stage series for every ambiguous (pre-winnowing) sentence.
  std::vector<std::vector<std::size_t>> series;
  for (const auto& report : run.reports) {
    if (report.base_forms < 2) continue;
    std::vector<std::size_t> s;
    for (const auto& stage : report.winnow.stages) s.push_back(stage.remaining);
    series.push_back(std::move(s));
  }
  if (series.empty()) {
    std::printf("no multi-LF sentences\n");
    return;
  }

  static const char* kStages[] = {"Base",      "Type",    "ArgOrder",
                                  "PredOrder", "Distrib", "Assoc"};
  std::printf("%zu ambiguous sentences\n", series.size());
  std::printf("%-10s %-8s %-8s %-8s\n", "STAGE", "min", "avg", "max");
  benchutil::rule();
  for (std::size_t stage = 0; stage < 6; ++stage) {
    std::size_t min = series[0][stage], max = series[0][stage];
    double sum = 0;
    for (const auto& s : series) {
      min = std::min(min, s[stage]);
      max = std::max(max, s[stage]);
      sum += static_cast<double>(s[stage]);
    }
    std::printf("%-10s %-8zu %-8.2f %-8zu\n", kStages[stage], min,
                sum / static_cast<double>(series.size()), max);
  }
  std::printf("%s\n", paper_note);
}

}  // namespace

int main() {
  using namespace sage;
  benchutil::title("Figure 5", "LFs remaining after each winnowing stage");

  {
    // The paper's procedure: the original text, with the author's
    // rewrites substituted for the truly ambiguous sentences ("after
    // human-in-the-loop rewriting of true ambiguities"). We build that
    // set by processing the original and swapping the still-ambiguous
    // reports for their revised counterparts.
    core::Sage sage;
    sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
    auto run = sage.process(corpus::rfc792_original(), "ICMP");
    core::Sage sage2;
    sage2.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
    const auto revised = sage2.process(corpus::rfc792_revised(), "ICMP");
    // Drop the still-ambiguous originals...
    std::erase_if(run.reports, [](const core::SentenceReport& r) {
      return r.status == core::SentenceStatus::kAmbiguous ||
             r.status == core::SentenceStatus::kZeroForms;
    });
    // ...and graft in the analyses of their replacements (each revised
    // instance once).
    std::set<std::string> replacements;
    for (const auto& rewrite : corpus::rfc792_rewrites()) {
      replacements.insert(rewrite.replacement);
    }
    for (const auto& r : revised.reports) {
      if (replacements.count(r.sentence.text) != 0 && r.base_forms >= 2) {
        run.reports.push_back(r);
      }
    }
    winnowing_series("Figure 5a: ICMP (RFC 792, after rewrites)", run,
                     "(paper: base 2-46 LFs, all reduced to 1)");
  }
  {
    core::Sage sage;
    sage.annotate_non_actionable(corpus::igmp_non_actionable_annotations());
    const auto run = sage.process(corpus::rfc1112_appendix_i(), "IGMP");
    winnowing_series("Figure 5b: IGMP (RFC 1112 Appendix I)", run,
                     "(paper: distributivity also matters for IGMP)");
  }
  {
    core::Sage sage;
    const auto run = sage.process(corpus::rfc5880_state_section(), "BFD");
    winnowing_series("Figure 5c: BFD (RFC 5880 §6.8.6)", run,
                     "(paper: longer sentences reach up to 56 LFs)");
  }
  return 0;
}

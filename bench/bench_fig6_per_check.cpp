// Figure 6: "Effect of individual disambiguation checks on RFC 792" —
// each check family applied ALONE to the base logical-form set of every
// ambiguous sentence. Left plot: average LFs filtered per sentence with
// standard error; right plot: number of sentences affected.
#include <cmath>
#include <set>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"

int main() {
  using namespace sage;
  benchutil::title("Figure 6", "per-check winnowing effect on RFC 792");

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto run = sage.process(corpus::rfc792_original(), "ICMP");
  core::Sage sage2;
  sage2.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto revised = sage2.process(corpus::rfc792_revised(), "ICMP");

  // Base LF sets of every sentence that parses to more than one logical
  // form: the original text, with the author's rewrites substituted for
  // the truly ambiguous sentences (same policy as Figure 5a).
  std::vector<std::vector<lf::LogicalForm>> base_sets;
  for (const auto& report : run.reports) {
    if (report.base_forms >= 2 &&
        report.status != core::SentenceStatus::kAmbiguous) {
      base_sets.push_back(report.base_candidates);
    }
  }
  std::set<std::string> replacements;
  for (const auto& rewrite : corpus::rfc792_rewrites()) {
    replacements.insert(rewrite.replacement);
  }
  for (const auto& report : revised.reports) {
    if (replacements.count(report.sentence.text) != 0 &&
        report.base_forms >= 2) {
      base_sets.push_back(report.base_candidates);
    }
  }
  std::printf("%zu ambiguous sentences (paper: 42)\n\n", base_sets.size());

  static const disambig::CheckFamily kFamilies[] = {
      disambig::CheckFamily::kType,
      disambig::CheckFamily::kArgumentOrdering,
      disambig::CheckFamily::kPredicateOrdering,
      disambig::CheckFamily::kDistributivity,
      disambig::CheckFamily::kAssociativity,
  };

  std::printf("%-12s %-16s %-10s %s\n", "CHECK", "avg filtered",
              "stderr", "#sentences affected");
  benchutil::rule();
  for (const auto family : kFamilies) {
    std::vector<double> removed;
    std::size_t affected = 0;
    for (const auto& base : base_sets) {
      const std::size_t r =
          sage.winnower().removed_by_family_alone(family, base);
      removed.push_back(static_cast<double>(r));
      if (r > 0) ++affected;
    }
    double mean = 0;
    for (const double r : removed) mean += r;
    mean /= static_cast<double>(removed.size());
    double var = 0;
    for (const double r : removed) var += (r - mean) * (r - mean);
    const double stderr_ =
        removed.size() > 1
            ? std::sqrt(var / static_cast<double>(removed.size() - 1)) /
                  std::sqrt(static_cast<double>(removed.size()))
            : 0.0;
    std::printf("%-12s %-16.2f %-10.2f %zu\n",
                disambig::check_family_name(family).c_str(), mean, stderr_,
                affected);
  }
  benchutil::rule();
  std::printf("Shape to hold (paper): type and predicate ordering affect the\n"
              "most sentences; argument ordering removes the most LFs.\n");
  return 0;
}

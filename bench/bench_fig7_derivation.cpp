// Figure 7 / Appendix B: "Constructing one logical form from: 'For
// computing the checksum, the checksum should be zero' with CCG" — the
// full derivation tree, from lexical entries through the combination
// rules to the final logical form.
#include <cstdio>

#include "bench_util.hpp"
#include "ccg/parser.hpp"
#include "core/sage.hpp"
#include "nlp/chunker.hpp"
#include "nlp/tokenizer.hpp"

int main() {
  using namespace sage;
  benchutil::title("Figure 7 (Appendix B)",
                   "CCG derivation of the checksum-advice sentence");

  const std::string sentence =
      "For computing the checksum, the checksum field should be zero.";

  core::Sage sage;
  const nlp::NounPhraseChunker chunker(&sage.dictionary());
  const auto tokens = chunker.chunk(nlp::tokenize(sentence));

  ccg::ParserOptions options;
  options.record_derivations = true;
  const ccg::CcgParser parser(&sage.lexicon(), options);
  const auto result = parser.parse(tokens);

  std::printf("SENTENCE: %s\n", sentence.c_str());
  std::printf("TOKENS:   %s\n\n", nlp::tokens_to_string(tokens).c_str());
  std::printf("%zu sentence-level logical form%s\n\n", result.forms.size(),
              result.forms.size() == 1 ? "" : "s");
  for (std::size_t i = 0; i < result.forms.size(); ++i) {
    std::printf("LF%zu: %s\n", i + 1, result.forms[i].to_string().c_str());
    if (i < result.derivations.size()) {
      std::printf("%s\n", result.derivations[i].to_string().c_str());
    }
  }
  std::printf("(paper: each word maps to its lexical entries, then the CCG\n"
              "combination rules derive the final logical form)\n");
  return 0;
}

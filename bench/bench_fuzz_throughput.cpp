// Fuzz-campaign throughput (not a paper artifact).
//
// Measures differential ICMP fuzz campaigns per second in two
// configurations:
//   * one-shot: what a cold process pays per campaign — the full RFC→code
//     pipeline (parse, winnow, codegen) followed by the campaign. This is
//     the pre-memoization configuration: every campaign re-derives the
//     generated responder from the corpus.
//   * harness: DifferentialFuzzer on a warm process, where every case
//     reuses the process-wide core::canonical_icmp_run(), at 1/2/4/8
//     worker threads.
//
// Honest framing (same as BENCH_parallel_scaling): this container has a
// single CPU, so the speedup comes from amortizing the pipeline across
// campaigns, not from thread parallelism — the per-jobs rows exist to
// show the determinism contract holds and scaling is not *negative*.
// The verdict-log hash must be identical on every configuration.
//
// Results are written to BENCH_fuzz_throughput.json (EXPERIMENTS.md
// records a reference run). Exit is nonzero if determinism breaks, any
// campaign is unclean, or the 8-job harness speedup over one-shot drops
// below 4x.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/generated_icmp.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"
#include "fuzz/differential.hpp"

using namespace sage;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A CI-smoke-sized campaign: the repeated-campaign workload the harness
// exists for (one campaign per protocol per change). Bigger campaigns
// amortize the pipeline within themselves and the one-shot gap shrinks —
// the JSON notes the campaign size so the numbers stay interpretable.
constexpr std::size_t kIterationsPerCampaign = 100;

fuzz::FuzzOptions campaign_options(std::size_t jobs) {
  fuzz::FuzzOptions options;
  options.protocol = "icmp";
  options.seed = 7;
  options.iterations = kIterationsPerCampaign;
  options.jobs = jobs;
  return options;
}

}  // namespace

int main() {
  benchutil::title("Fuzz throughput",
                   "differential ICMP campaigns, one-shot vs memoized harness");

  constexpr int kCampaigns = 3;
  char buf[160];

  // One-shot baseline: each campaign pays the full pipeline, as a cold
  // process (or a harness without the canonical-run memo) would.
  const double oneshot_start = now_ms();
  std::uint64_t oneshot_hash = 0;
  bool oneshot_clean = true;
  for (int i = 0; i < kCampaigns; ++i) {
    core::Sage sage;
    sage.set_parse_cache(nullptr);  // cold pipeline, no cross-run memo
    sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
    const auto run = sage.process(corpus::rfc792_revised(), "ICMP");
    if (run.functions.empty()) oneshot_clean = false;
    const auto report =
        fuzz::DifferentialFuzzer(campaign_options(1)).run();
    oneshot_hash = report.log_hash;
    oneshot_clean = oneshot_clean && report.clean();
  }
  const double oneshot_ms = (now_ms() - oneshot_start) / kCampaigns;

  std::snprintf(buf, sizeof buf, "%8.1f ms/campaign   %6.2fx%s", oneshot_ms,
                1.0, oneshot_clean ? "" : "  UNCLEAN");
  benchutil::row("one-shot (pipeline per campaign)", buf);
  benchutil::rule();

  // Harness: warm the canonical run once, outside the timed region.
  (void)core::canonical_icmp_run();

  struct Point {
    std::size_t jobs;
    double ms;
    double speedup;
    bool identical;
    bool clean;
  };
  std::vector<Point> points;
  bool all_ok = oneshot_clean;

  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    const double start = now_ms();
    std::uint64_t hash = 0;
    bool clean = true;
    for (int i = 0; i < kCampaigns; ++i) {
      const auto report =
          fuzz::DifferentialFuzzer(campaign_options(jobs)).run();
      hash = report.log_hash;
      clean = clean && report.clean();
    }
    const double ms = (now_ms() - start) / kCampaigns;
    const bool identical = hash == oneshot_hash;
    const double speedup = oneshot_ms / ms;
    points.push_back({jobs, ms, speedup, identical, clean});
    all_ok = all_ok && identical && clean;

    std::snprintf(buf, sizeof buf, "%8.1f ms/campaign   %6.2fx%s%s", ms,
                  speedup, identical ? "" : "  LOG DIVERGED",
                  clean ? "" : "  UNCLEAN");
    benchutil::row("harness, " + std::to_string(jobs) + " thread(s)", buf);
  }

  benchutil::rule();
  const double speedup_at_8 = points.back().speedup;
  const bool gate = speedup_at_8 >= 4.0;
  all_ok = all_ok && gate;
  std::snprintf(buf, sizeof buf, "%.2fx at 8 jobs (gate: >= 4x vs one-shot)",
                speedup_at_8);
  benchutil::row(gate ? "speedup gate met" : "SPEEDUP GATE MISSED", buf);
  benchutil::row("determinism contract",
                 all_ok ? "verdict-log hash identical everywhere"
                        : "see rows above");

  FILE* json = std::fopen("BENCH_fuzz_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json,
                 "  \"workload\": \"icmp seed=7, %zu iterations/campaign, "
                 "%d campaigns\",\n",
                 kIterationsPerCampaign, kCampaigns);
    std::fprintf(json,
                 "  \"note\": \"single-CPU container: speedup is "
                 "pipeline amortization via canonical_icmp_run(), not "
                 "thread parallelism\",\n");
    std::fprintf(json, "  \"oneshot_ms_per_campaign\": %.3f,\n", oneshot_ms);
    std::fprintf(json, "  \"harness\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      std::fprintf(json,
                   "    {\"jobs\": %zu, \"ms_per_campaign\": %.3f, "
                   "\"speedup_vs_oneshot\": %.2f, \"identical\": %s, "
                   "\"clean\": %s}%s\n",
                   p.jobs, p.ms, p.speedup, p.identical ? "true" : "false",
                   p.clean ? "true" : "false",
                   i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"speedup_gate_4x_at_8_jobs\": %s\n",
                 gate ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    benchutil::row("written", "BENCH_fuzz_throughput.json");
    benchutil::commit_scorecard("BENCH_fuzz_throughput.json");
  }
  return all_ok ? 0 : 1;
}

// §6.3 generality: IGMP (RFC 1112 Appendix I) and NTP (RFC 1059
// Appendices A/B). Reports the incremental lexicon/check/handler cost,
// runs the generated IGMP sender against a commodity-switch model, and
// generates the NTP timeout packet with both NTP and UDP headers.
#include <cstdio>

#include "bench_util.hpp"
#include "codegen/generator.hpp"
#include "core/sage.hpp"
#include "corpus/rfc1059.hpp"
#include "corpus/rfc1112.hpp"
#include "net/igmp.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/schema_env.hpp"
#include "sim/inspector.hpp"

namespace {

using namespace sage;

/// The "commodity switch" of §6.3: receives a host membership query and
/// answers with a membership report for the queried group.
std::optional<net::IgmpMessage> commodity_switch(
    std::span<const std::uint8_t> packet, net::IpAddr member_group) {
  const auto ip = net::Ipv4Header::parse(packet);
  if (!ip || ip->protocol != static_cast<std::uint8_t>(net::IpProto::kIgmp)) {
    return std::nullopt;
  }
  const auto query = net::IgmpMessage::parse(packet.subspan(ip->header_length()));
  if (!query || query->type != net::IgmpType::kHostMembershipQuery) {
    return std::nullopt;
  }
  if (!net::IgmpMessage::verify_checksum(
          packet.subspan(ip->header_length()))) {
    return std::nullopt;  // a real switch drops bad-checksum IGMP
  }
  net::IgmpMessage report;
  report.type = net::IgmpType::kHostMembershipReport;
  report.group_address = member_group;
  return report;
}

}  // namespace

int main() {
  benchutil::title("§6.3 generality", "IGMP and NTP through the pipeline");

  // ---- incremental lexicon cost -------------------------------------------
  core::Sage sage;
  std::printf("incremental lexicon entries (paper: ICMP 71, IGMP +8, NTP +5):\n");
  std::printf("  icmp %zu, igmp +%zu, ntp +%zu, bfd +%zu\n\n",
              sage.lexicon().count_by_source("icmp"),
              sage.lexicon().count_by_source("igmp"),
              sage.lexicon().count_by_source("ntp"),
              sage.lexicon().count_by_source("bfd"));

  // ---- IGMP -----------------------------------------------------------------
  {
    core::Sage igmp_sage;
    igmp_sage.annotate_non_actionable(corpus::igmp_non_actionable_annotations());
    auto run = igmp_sage.process(corpus::rfc1112_appendix_i(), "IGMP");
    std::printf("IGMP: %zu instances, %zu parsed, %zu ambiguous, %zu functions\n",
                run.reports.size(), run.count(core::SentenceStatus::kParsed),
                run.count(core::SentenceStatus::kAmbiguous),
                run.functions.size());

    // Run the generated sender for the query scenario and hand the packet
    // to the switch model.
    const runtime::Interpreter interp;
    auto env = runtime::SchemaExecEnv::igmp(net::IpAddr(10, 0, 1, 100),
                             net::IpAddr(224, 1, 2, 3));
    env.set_scenario("host membership query message");
    bool ran = false;
    for (const auto& fn : run.functions) {
      const auto result = interp.run(fn.body, env);
      ran = result.ok;
    }
    const auto query_packet = env.finish(net::IpAddr(224, 0, 0, 1));
    sim::PacketInspector inspector;
    const auto inspection = inspector.inspect(query_packet);
    std::printf("  generated query: %s\n", inspection.summary.c_str());
    std::printf("  tcpdump model:   %s\n",
                inspection.clean() ? "clean" : "FLAGGED");
    const auto response =
        commodity_switch(query_packet, net::IpAddr(224, 1, 2, 3));
    std::printf("  switch interop:  %s (paper: switch responds correctly)\n",
                ran && response &&
                        response->type == net::IgmpType::kHostMembershipReport
                    ? "PASS"
                    : "FAIL");
  }

  // ---- NTP --------------------------------------------------------------------
  {
    core::Sage ntp_sage;
    ntp_sage.annotate_non_actionable(corpus::ntp_non_actionable_annotations());
    auto run = ntp_sage.process(corpus::rfc1059_appendices(), "NTP");
    std::printf("\nNTP: %zu instances, %zu parsed, %zu functions\n",
                run.reports.size(), run.count(core::SentenceStatus::kParsed),
                run.functions.size());

    const runtime::Interpreter interp;
    auto env = runtime::SchemaExecEnv::ntp(net::IpAddr(10, 0, 1, 100),
                                           0x83aa7e80);
    for (const auto& fn : run.functions) interp.run(fn.body, env);

    // Table 11's sentence drives the timeout call.
    rfc::SpecSentence sentence;
    sentence.text = corpus::ntp_timeout_sentence();
    sentence.context["protocol"] = "NTP";
    sentence.context["message"] = "NTP Peer Variables";
    const auto report = ntp_sage.analyze_sentence(sentence);
    if (report.final_form) {
      const codegen::CodeGenerator generator(&ntp_sage.static_context(),
                                             &ntp_sage.handlers());
      codegen::SentenceLf entry;
      entry.form = *report.final_form;
      entry.context = codegen::DynamicContext::from_map(sentence.context);
      entry.sentence = sentence.text;
      const auto outcome =
          generator.generate("NTP", "NTP Peer Variables", "sender", {&entry, 1});
      if (outcome.function) interp.run(outcome.function->body, env);
    }
    std::printf("  timeout procedure called: %s (paper: parsed into a code "
                "snippet)\n",
                env.timeout_called() ? "yes" : "NO");

    const auto packet = env.finish(net::IpAddr(192, 168, 2, 100));
    sim::PacketInspector inspector;
    const auto inspection = inspector.inspect(packet);
    std::printf("  timeout packet: %s\n", inspection.summary.c_str());
    std::printf("  NTP+UDP headers present and clean: %s (paper: pass)\n",
                inspection.clean() &&
                        inspection.summary.find("NTPv") != std::string::npos
                    ? "PASS"
                    : "FAIL");
  }
  return 0;
}

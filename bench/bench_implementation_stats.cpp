// §6.1 implementation statistics: dictionary size (~400 terms), lexicon
// entries (71 + 8 + 5 + 15), inconsistency checks (32/7/4/1 + additions),
// and predicate handler functions (25 + 4 + 8).
#include <cstdio>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "disambig/checks.hpp"

int main() {
  using namespace sage;
  benchutil::title("§6.1 implementation statistics",
                   "dictionary / lexicon / checks / handlers");

  core::Sage sage;

  benchutil::row("COMPONENT", "measured (paper)");
  benchutil::rule();
  benchutil::row("term dictionary",
                 std::to_string(sage.dictionary().size()) + " (~400)");
  benchutil::row("lexicon entries, ICMP",
                 std::to_string(sage.lexicon().count_by_source("icmp")) +
                     " (71)");
  benchutil::row("lexicon entries, +IGMP",
                 std::to_string(sage.lexicon().count_by_source("igmp")) +
                     " (8)");
  benchutil::row("lexicon entries, +NTP",
                 std::to_string(sage.lexicon().count_by_source("ntp")) +
                     " (5)");
  benchutil::row("lexicon entries, +BFD",
                 std::to_string(sage.lexicon().count_by_source("bfd")) +
                     " (15)");

  const auto& winnower = sage.winnower();
  benchutil::row("type checks",
                 std::to_string(winnower.count_in_family(
                     disambig::CheckFamily::kType)) +
                     " (32 for ICMP, +1 BFD here)");
  benchutil::row("argument ordering checks",
                 std::to_string(winnower.count_in_family(
                     disambig::CheckFamily::kArgumentOrdering)) +
                     " (7)");
  benchutil::row("predicate ordering checks",
                 std::to_string(winnower.count_in_family(
                     disambig::CheckFamily::kPredicateOrdering)) +
                     " (4 ICMP +1 IGMP +1 NTP +1 BFD)");
  benchutil::row("distributivity checks", "1 implicit rule (1)");
  benchutil::row("associativity check", "graph isomorphism (1)");

  benchutil::row("predicate handlers, ICMP",
                 std::to_string(sage.handlers().count_by_source("icmp")) +
                     " (25)");
  benchutil::row("predicate handlers, +IGMP",
                 std::to_string(sage.handlers().count_by_source("igmp")) +
                     " (4)");
  benchutil::row("predicate handlers, +NTP",
                 std::to_string(sage.handlers().count_by_source("ntp")) +
                     " (n/a)");
  benchutil::row("predicate handlers, +BFD",
                 std::to_string(sage.handlers().count_by_source("bfd")) +
                     " (8)");
  benchutil::row("static context fields",
                 std::to_string(sage.static_context().field_count()));
  benchutil::row("static context functions",
                 std::to_string(sage.static_context().function_count()));
  return 0;
}

// Consolidated zero-copy packet-path scorecard (not a paper artifact).
//
// The arena/span refactor (util::Arena + net::WireImage) changed three
// hot paths at once; this bench re-measures all three in one binary and
// writes BENCH_packet_path.json with before/after pairs so the gates in
// EXPERIMENTS.md are reproducible from a single command:
//
//   * allocs/pass — the bench_parser_hotpath workload (all five RFC
//     corpora, cold chart parses) under an instrumented operator new.
//     Before the chart arena the parser made ~46k heap allocations per
//     pass; the gate is <= 5k.
//   * events/s   — bench_sim_kernel's routing-bound sweep on a 1024-host
//     star, event kernel. Packets route through the core and fall off
//     the far edge, so per-event cost is exactly what intern-at-
//     injection and span forwarding changed. Gate: >= 1.5x the
//     pre-refactor rate.
//   * pps        — bench_responder's indexed path: full SchemaExecEnv
//     construction, generated ICMP echo handler, reply serialization
//     per packet. Gate: no regression (>= 0.9x to absorb timer noise).
//
// "Before" numbers are constants measured on this tree at the commit
// preceding the arena refactor, same build flags and machine class; the
// "after" numbers are measured live. Exit is nonzero if any gate fails.
#include <malloc.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "ccg/parser.hpp"
#include "codegen/ir.hpp"
#include "core/sage.hpp"
#include "corpus/rfc1059.hpp"
#include "corpus/rfc1112.hpp"
#include "corpus/rfc5880.hpp"
#include "corpus/rfc792.hpp"
#include "corpus/rfc793.hpp"
#include "net/ipv4.hpp"
#include "nlp/chunker.hpp"
#include "nlp/tokenizer.hpp"
#include "rfc/preprocessor.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/schema_env.hpp"
#include "sim/network.hpp"
#include "sim/ping.hpp"
#include "sim/topology.hpp"

namespace {

// ---- allocation instrumentation -------------------------------------------

std::atomic<std::uint64_t> g_alloc_count{0};

void note_alloc() { g_alloc_count.fetch_add(1, std::memory_order_relaxed); }

}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace sage;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pre-refactor reference points (commit before the arena/span work,
// same workloads as below, same machine class as EXPERIMENTS.md runs).
constexpr double kBeforeAllocsPerPass = 46260.0;
constexpr double kBeforeParseMsPerPass = 21.48;
constexpr double kBeforeSweepEventsPerS = 14877382.0;
constexpr double kBeforeResponderPps = 1511681.0;

constexpr double kMaxAllocsPerPass = 5000.0;  // hard gate (10x is ~4626)
constexpr double kMinSweepSpeedup = 1.5;
constexpr double kMinPpsRatio = 0.9;  // "no regression", with timer noise

// ---- section 1: parser allocs/pass ----------------------------------------

std::string bfd_text() {
  std::string text = "BFD State Management\n\n   Description\n\n";
  for (const auto& s : corpus::bfd_state_sentences()) text += "      " + s + "\n";
  return text;
}

std::string tcp_text() {
  std::string text = "TCP State Management\n\n   Description\n\n";
  for (const auto& s : corpus::tcp_probe_sentences()) {
    text += "      " + s.text + "\n";
  }
  return text;
}

std::vector<std::vector<nlp::Token>> parse_workload(const core::Sage& sage) {
  const std::vector<std::pair<std::string, std::string>> corpora = {
      {corpus::rfc792_original(), "ICMP"},
      {corpus::rfc1112_appendix_i(), "IGMP"},
      {corpus::rfc1059_appendices(), "NTP"},
      {bfd_text(), "BFD"},
      {tcp_text(), "TCP"},
  };
  const nlp::NounPhraseChunker chunker(&sage.dictionary());
  std::vector<std::vector<nlp::Token>> out;
  for (const auto& [text, protocol] : corpora) {
    const auto doc = rfc::preprocess(text, protocol);
    for (const auto& sentence : rfc::extract_sentences(doc, protocol)) {
      out.push_back(chunker.chunk(nlp::tokenize(sentence.text)));
    }
  }
  return out;
}

struct ParserResult {
  double allocs_per_pass = 0;
  double ms_per_pass = 0;
};

ParserResult measure_parser(const core::Sage& sage, int iterations) {
  const auto sentences = parse_workload(sage);
  const ccg::CcgParser parser(&sage.lexicon());
  // Warmup: interners/lexicon singletons and the thread-local chart
  // arena's chunks populate outside the clock.
  for (const auto& tokens : sentences) (void)parser.parse(tokens);

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const double start = now_ms();
  for (int i = 0; i < iterations; ++i) {
    for (const auto& tokens : sentences) (void)parser.parse(tokens);
  }
  const double elapsed = now_ms() - start;
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);

  ParserResult r;
  r.allocs_per_pass = static_cast<double>(after - before) / iterations;
  r.ms_per_pass = elapsed / iterations;
  return r;
}

// ---- section 2: routing-bound sweep, 1024-host star, event kernel ---------

std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> sweep_batch(
    const sim::Topology& topo, int round) {
  // Same recipe as bench_sim_kernel's sweep: probe never-assigned
  // addresses in a far subnet so every packet crosses the core and
  // falls off the edge — no responder work, routing cost only.
  const std::size_t n = topo.hosts.size();
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t subnets = (n + 127) / 128;
    const std::size_t far = (i / 128 + 1) % subnets;
    const net::IpAddr dst(10, static_cast<std::uint8_t>(far >> 8),
                          static_cast<std::uint8_t>(far & 255),
                          static_cast<std::uint8_t>(200 + (i % 50)));
    sim::PingOptions opts;
    opts.sequence = static_cast<std::uint16_t>(round * 1024 + i);
    batch.emplace_back(i, sim::PingClient::make_echo_request(
                              topo.hosts[i]->address(), dst, opts));
  }
  return batch;
}

double measure_sweep_eps() {
  // Best of kReps repetitions of kRounds batches each — the same
  // methodology bench_sim_kernel (and the pre-refactor baseline) uses,
  // so the before/after ratio compares like with like.
  constexpr int kReps = 5;
  constexpr int kRounds = 8;
  auto topo = sim::make_star(1024, sim::DeliveryMode::kEvent);
  sim::Network& net = topo.net;
  // Warmup round: arena chunks and queue storage reach steady state.
  for (auto& [src, packet] : sweep_batch(topo, 0)) {
    net.send_from_host(*topo.hosts[src], std::move(packet));
  }
  net.clear_transient();

  double best_eps = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t before = net.events_processed();
    double elapsed_ms = 0.0;
    for (int round = 1; round <= kRounds; ++round) {
      auto batch = sweep_batch(topo, rep * kRounds + round);
      const double t0 = now_ms();
      for (auto& [src, packet] : batch) {
        net.send_from_host(*topo.hosts[src], std::move(packet));
      }
      elapsed_ms += now_ms() - t0;
      net.clear_transient();
    }
    const std::uint64_t events = net.events_processed() - before;
    const double eps = static_cast<double>(events) / (elapsed_ms / 1000.0);
    if (eps > best_eps) best_eps = eps;
  }
  return best_eps;
}

// ---- section 3: generated-responder packets/s -----------------------------

std::size_t respond_once(const runtime::Interpreter& interp,
                         const codegen::Stmt& body,
                         std::span<const std::uint8_t> request,
                         net::IpAddr own) {
  auto env =
      runtime::SchemaExecEnv::icmp(request, own, /*start_from_incoming=*/true);
  env.set_scenario("echo");
  interp.run(body, env);
  return env.finish_reply().size();
}

double measure_responder_pps(core::Sage& sage) {
  const auto run = sage.process(corpus::rfc792_revised(), "ICMP");
  const codegen::GeneratedFunction* echo = nullptr;
  for (const auto& fn : run.functions) {
    if (fn.name.find("echo") != std::string::npos && fn.role == "receiver") {
      echo = &fn;
    }
  }
  if (echo == nullptr) return -1.0;

  const net::IpAddr client(10, 0, 1, 1);
  const net::IpAddr server(10, 0, 2, 9);
  sim::PingOptions opts;
  opts.payload_size = 32;
  const auto request =
      sim::PingClient::make_echo_request(client, server, opts);

  const runtime::Interpreter interp;
  constexpr std::size_t kWarmup = 20000;
  constexpr std::size_t kPackets = 200000;
  std::size_t sink = 0;
  for (std::size_t i = 0; i < kWarmup; ++i) {
    sink += respond_once(interp, echo->body, request, server);
  }
  const double start = now_ms();
  for (std::size_t i = 0; i < kPackets; ++i) {
    sink += respond_once(interp, echo->body, request, server);
  }
  const double elapsed = now_ms() - start;
  if (sink == 0) return -1.0;
  return static_cast<double>(kPackets) / (elapsed / 1000.0);
}

}  // namespace

int main() {
  benchutil::title("Zero-copy packet path",
                   "arena/span refactor scorecard: parser, sim kernel, "
                   "responder");

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());

  const ParserResult parser = measure_parser(sage, 10);
  const double sweep_eps = measure_sweep_eps();
  const double pps = measure_responder_pps(sage);
  if (pps < 0) {
    std::printf("responder measurement failed (no echo receiver)\n");
    return 1;
  }

  const double alloc_reduction = kBeforeAllocsPerPass / parser.allocs_per_pass;
  const double sweep_speedup = sweep_eps / kBeforeSweepEventsPerS;
  const double pps_ratio = pps / kBeforeResponderPps;

  char buf[160];
  benchutil::row("metric", "before        after         ratio");
  benchutil::rule();
  std::snprintf(buf, sizeof buf, "%10.0f   %10.0f   %6.1fx fewer",
                kBeforeAllocsPerPass, parser.allocs_per_pass, alloc_reduction);
  benchutil::row("parser allocs/pass", buf);
  std::snprintf(buf, sizeof buf, "%10.0f   %10.0f   %6.2fx",
                kBeforeSweepEventsPerS, sweep_eps, sweep_speedup);
  benchutil::row("sweep-1024 events/s", buf);
  std::snprintf(buf, sizeof buf, "%10.0f   %10.0f   %6.2fx",
                kBeforeResponderPps, pps, pps_ratio);
  benchutil::row("responder pps", buf);

  FILE* json = std::fopen("BENCH_packet_path.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"before\": {\n");
    std::fprintf(json, "    \"parser_allocs_per_pass\": %.0f,\n",
                 kBeforeAllocsPerPass);
    std::fprintf(json, "    \"parser_ms_per_pass\": %.2f,\n",
                 kBeforeParseMsPerPass);
    std::fprintf(json, "    \"sweep_1024_events_per_s\": %.0f,\n",
                 kBeforeSweepEventsPerS);
    std::fprintf(json, "    \"responder_pps\": %.0f\n", kBeforeResponderPps);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"after\": {\n");
    std::fprintf(json, "    \"parser_allocs_per_pass\": %.0f,\n",
                 parser.allocs_per_pass);
    std::fprintf(json, "    \"parser_ms_per_pass\": %.2f,\n",
                 parser.ms_per_pass);
    std::fprintf(json, "    \"sweep_1024_events_per_s\": %.0f,\n", sweep_eps);
    std::fprintf(json, "    \"responder_pps\": %.0f\n", pps);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"ratios\": {\n");
    std::fprintf(json, "    \"alloc_reduction\": %.2f,\n", alloc_reduction);
    std::fprintf(json, "    \"sweep_speedup\": %.2f,\n", sweep_speedup);
    std::fprintf(json, "    \"responder_ratio\": %.2f\n", pps_ratio);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"gates\": {\n");
    std::fprintf(json, "    \"allocs_per_pass_max\": %.0f,\n",
                 kMaxAllocsPerPass);
    std::fprintf(json, "    \"allocs_gate_pass\": %s,\n",
                 parser.allocs_per_pass <= kMaxAllocsPerPass ? "true"
                                                             : "false");
    std::fprintf(json, "    \"sweep_speedup_min\": %.1f,\n", kMinSweepSpeedup);
    std::fprintf(json, "    \"sweep_gate_pass\": %s,\n",
                 sweep_speedup >= kMinSweepSpeedup ? "true" : "false");
    std::fprintf(json, "    \"responder_ratio_min\": %.1f,\n", kMinPpsRatio);
    std::fprintf(json, "    \"responder_gate_pass\": %s\n",
                 pps_ratio >= kMinPpsRatio ? "true" : "false");
    std::fprintf(json, "  }\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    benchutil::row("written", "BENCH_packet_path.json");
    benchutil::commit_scorecard("BENCH_packet_path.json");
  }

  bool ok = true;
  if (parser.allocs_per_pass > kMaxAllocsPerPass) {
    std::fprintf(stderr, "GATE FAILED: parser allocs/pass %.0f > %.0f\n",
                 parser.allocs_per_pass, kMaxAllocsPerPass);
    ok = false;
  }
  if (sweep_speedup < kMinSweepSpeedup) {
    std::fprintf(stderr, "GATE FAILED: sweep speedup %.2fx < %.1fx\n",
                 sweep_speedup, kMinSweepSpeedup);
    ok = false;
  }
  if (pps_ratio < kMinPpsRatio) {
    std::fprintf(stderr, "GATE FAILED: responder pps ratio %.2f < %.1f\n",
                 pps_ratio, kMinPpsRatio);
    ok = false;
  }
  return ok ? 0 : 1;
}

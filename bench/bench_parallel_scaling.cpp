// Parallel batch executor scaling (not a paper artifact).
//
// Measures end-to-end pipeline throughput (sentence instances per
// second) over the ICMP + BFD corpora:
//   * serial baseline: Sage::process with the parse cache disabled —
//     the pre-executor configuration, re-parsing everything per run;
//   * batch executor at 1/2/4/8 worker threads: BatchRunner with its
//     shared memoization cache, steady state (first iteration warms the
//     cache, exactly like the repeated runs the ablation benches do).
// Also asserts the determinism contract on every configuration: the
// parallel ProtocolRun signature must be byte-identical to serial.
//
// Results are written to BENCH_parallel_scaling.json in the working
// directory (EXPERIMENTS.md records a reference run).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "core/sage.hpp"
#include "corpus/rfc5880.hpp"
#include "corpus/rfc792.hpp"

using namespace sage;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string bfd_text() {
  std::string text = "BFD State Management\n\n   Description\n\n";
  for (const auto& s : corpus::bfd_state_sentences()) text += "      " + s + "\n";
  return text;
}

std::vector<core::BatchJob> make_batch() {
  std::vector<core::BatchJob> batch;
  core::BatchJob icmp;
  icmp.name = "ICMP";
  icmp.rfc_text = corpus::rfc792_original();
  icmp.protocol = "ICMP";
  icmp.non_actionable = corpus::icmp_non_actionable_annotations();
  batch.push_back(std::move(icmp));
  core::BatchJob bfd;
  bfd.name = "BFD";
  bfd.rfc_text = bfd_text();
  bfd.protocol = "BFD";
  batch.push_back(std::move(bfd));
  return batch;
}

}  // namespace

int main() {
  benchutil::title("Parallel scaling",
                   "batch executor throughput, ICMP + BFD corpora");

  const auto batch = make_batch();
  constexpr int kIterations = 10;

  // Reference signatures from the serial, cache-free path.
  std::vector<std::string> reference;
  std::size_t sentences_per_pass = 0;
  for (const auto& job : batch) {
    core::Sage sage;
    sage.set_parse_cache(nullptr);
    sage.annotate_non_actionable(job.non_actionable);
    const auto run = sage.process(job.rfc_text, job.protocol, job.options);
    sentences_per_pass += run.reports.size();
    reference.push_back(core::protocol_run_signature(run));
  }

  // Serial baseline: fresh Sage per pass, no memoization.
  const double serial_start = now_ms();
  for (int i = 0; i < kIterations; ++i) {
    for (const auto& job : batch) {
      core::Sage sage;
      sage.set_parse_cache(nullptr);
      sage.annotate_non_actionable(job.non_actionable);
      (void)sage.process(job.rfc_text, job.protocol, job.options);
    }
  }
  const double serial_ms = (now_ms() - serial_start) / kIterations;
  const double serial_throughput =
      static_cast<double>(sentences_per_pass) / (serial_ms / 1000.0);

  benchutil::row("configuration", "ms/pass   sentences/s   speedup");
  benchutil::rule();
  char buf[128];
  std::snprintf(buf, sizeof buf, "%8.2f   %11.0f   %6.2fx", serial_ms,
                serial_throughput, 1.0);
  benchutil::row("serial, cache off", buf);

  struct Point {
    std::size_t jobs;
    double ms;
    double throughput;
    double hit_rate;
    bool identical;
  };
  std::vector<Point> points;

  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    core::BatchRunner runner(jobs);
    // Warmup pass: populates the shared cache and checks determinism.
    bool identical = true;
    for (const auto& result : runner.run(batch)) {
      std::size_t index = 0;
      for (; index < batch.size(); ++index) {
        if (batch[index].name == result.name) break;
      }
      if (core::protocol_run_signature(result.run) != reference[index]) {
        identical = false;
      }
    }
    const double start = now_ms();
    for (int i = 0; i < kIterations; ++i) {
      const auto results = runner.run(batch);
      for (const auto& result : results) {
        std::size_t index = 0;
        for (; index < batch.size(); ++index) {
          if (batch[index].name == result.name) break;
        }
        if (core::protocol_run_signature(result.run) != reference[index]) {
          identical = false;
        }
      }
    }
    const double ms = (now_ms() - start) / kIterations;
    const double throughput =
        static_cast<double>(sentences_per_pass) / (ms / 1000.0);
    const double hit_rate = runner.cache()->stats().hit_rate();
    points.push_back({jobs, ms, throughput, hit_rate, identical});

    std::snprintf(buf, sizeof buf, "%8.2f   %11.0f   %6.2fx  (%.0f%% hits%s)",
                  ms, throughput, throughput / serial_throughput,
                  hit_rate * 100.0, identical ? "" : ", OUTPUT DIVERGED");
    benchutil::row("executor, " + std::to_string(jobs) + " thread(s)", buf);
  }

  benchutil::rule();
  bool all_identical = true;
  for (const auto& p : points) all_identical = all_identical && p.identical;
  benchutil::row("determinism contract",
                 all_identical ? "byte-identical on every configuration"
                               : "VIOLATED");

  FILE* json = std::fopen("BENCH_parallel_scaling.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"workload\": \"ICMP+BFD, %zu sentences/pass\",\n",
                 sentences_per_pass);
    std::fprintf(json, "  \"iterations\": %d,\n", kIterations);
    std::fprintf(json, "  \"serial_ms_per_pass\": %.3f,\n", serial_ms);
    std::fprintf(json, "  \"serial_sentences_per_s\": %.0f,\n",
                 serial_throughput);
    std::fprintf(json, "  \"executor\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      std::fprintf(json,
                   "    {\"jobs\": %zu, \"ms_per_pass\": %.3f, "
                   "\"sentences_per_s\": %.0f, \"speedup\": %.2f, "
                   "\"cache_hit_rate\": %.3f, \"identical\": %s}%s\n",
                   p.jobs, p.ms, p.throughput,
                   p.throughput / serial_throughput, p.hit_rate,
                   p.identical ? "true" : "false",
                   i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"deterministic\": %s\n",
                 all_identical ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    benchutil::row("written", "BENCH_parallel_scaling.json");
    benchutil::commit_scorecard("BENCH_parallel_scaling.json");
  }
  return all_identical ? 0 : 1;
}

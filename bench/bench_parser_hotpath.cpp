// Cold-parse hot path (not a paper artifact).
//
// Measures raw single-thread CCG chart-parser throughput with every
// cache disabled — the cost that dominates first-run RFC ingestion and
// every parse-cache miss. The workload is the combined sentence set of
// all five RFC corpora (ICMP, IGMP, NTP, BFD, TCP probe), tokenized and
// chunked once up front so only CcgParser::parse is on the clock.
//
// Reported per configuration:
//   * sentences/s and chart edges/s (cold, single thread);
//   * heap allocations and peak live bytes per pass, via an
//     instrumented global operator new/delete in this TU.
//
// Results are written to BENCH_parser_hotpath.json; EXPERIMENTS.md
// records the pre-interning baseline for the speedup claim.
#include <malloc.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ccg/parser.hpp"
#include "core/sage.hpp"
#include "corpus/rfc1059.hpp"
#include "corpus/rfc1112.hpp"
#include "corpus/rfc5880.hpp"
#include "corpus/rfc792.hpp"
#include "corpus/rfc793.hpp"
#include "nlp/chunker.hpp"
#include "nlp/tokenizer.hpp"
#include "rfc/preprocessor.hpp"

namespace {

// ---- allocation instrumentation -------------------------------------------

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_live{0};

void note_alloc(void* p) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t size = malloc_usable_size(p);
  const std::uint64_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  std::uint64_t peak = g_peak_live.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_live.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
  }
}

void note_free(void* p) {
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}

struct AllocSnapshot {
  std::uint64_t count;
  std::uint64_t peak;
};

AllocSnapshot snapshot_and_reset_peak() {
  AllocSnapshot snap{g_alloc_count.load(std::memory_order_relaxed),
                     g_peak_live.load(std::memory_order_relaxed)};
  g_peak_live.store(g_live_bytes.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  return snap;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc(p);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  note_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

using namespace sage;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string bfd_text() {
  std::string text = "BFD State Management\n\n   Description\n\n";
  for (const auto& s : corpus::bfd_state_sentences()) text += "      " + s + "\n";
  return text;
}

std::string tcp_text() {
  std::string text = "TCP State Management\n\n   Description\n\n";
  for (const auto& s : corpus::tcp_probe_sentences()) {
    text += "      " + s.text + "\n";
  }
  return text;
}

/// Every corpus sentence, tokenized+chunked exactly as the pipeline does.
std::vector<std::vector<nlp::Token>> workload(const core::Sage& sage) {
  const std::vector<std::pair<std::string, std::string>> corpora = {
      {corpus::rfc792_original(), "ICMP"},
      {corpus::rfc1112_appendix_i(), "IGMP"},
      {corpus::rfc1059_appendices(), "NTP"},
      {bfd_text(), "BFD"},
      {tcp_text(), "TCP"},
  };
  const nlp::NounPhraseChunker chunker(&sage.dictionary());
  std::vector<std::vector<nlp::Token>> out;
  for (const auto& [text, protocol] : corpora) {
    const auto doc = rfc::preprocess(text, protocol);
    for (const auto& sentence : rfc::extract_sentences(doc, protocol)) {
      out.push_back(chunker.chunk(nlp::tokenize(sentence.text)));
    }
  }
  return out;
}

struct Measurement {
  double ms_per_pass = 0;
  double sentences_per_s = 0;
  double edges_per_s = 0;
  double allocs_per_pass = 0;
  std::uint64_t peak_live_bytes = 0;
  std::size_t forms = 0;  // total logical forms per pass (output sanity)
};

Measurement measure(const ccg::CcgParser& parser,
                    const std::vector<std::vector<nlp::Token>>& sentences,
                    int iterations) {
  Measurement m;
  // Warmup pass (interners/lexicon singletons populate outside the clock).
  std::size_t edges = 0;
  for (const auto& tokens : sentences) {
    const auto result = parser.parse(tokens);
    edges += result.chart_edges;
    m.forms += result.forms.size();
  }

  const AllocSnapshot before = snapshot_and_reset_peak();
  const double start = now_ms();
  for (int i = 0; i < iterations; ++i) {
    for (const auto& tokens : sentences) {
      (void)parser.parse(tokens);
    }
  }
  const double elapsed = now_ms() - start;
  const AllocSnapshot after = snapshot_and_reset_peak();

  m.ms_per_pass = elapsed / iterations;
  m.sentences_per_s =
      static_cast<double>(sentences.size()) / (m.ms_per_pass / 1000.0);
  m.edges_per_s = static_cast<double>(edges) / (m.ms_per_pass / 1000.0);
  m.allocs_per_pass =
      static_cast<double>(after.count - before.count) / iterations;
  m.peak_live_bytes = after.peak;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int iterations = 20;
  if (argc > 1) iterations = std::atoi(argv[1]);
  if (iterations <= 0) iterations = 1;

  benchutil::title("Parser hot path",
                   "cold-cache chart parsing, all five RFC corpora");

  core::Sage sage;  // lexicon + dictionary source
  const auto sentences = workload(sage);
  std::size_t token_count = 0;
  for (const auto& s : sentences) token_count += s.size();

  char buf[160];
  std::snprintf(buf, sizeof buf, "%zu sentences, %zu tokens, %d iterations",
                sentences.size(), token_count, iterations);
  benchutil::row("workload", buf);

  const ccg::CcgParser parser(&sage.lexicon());
  const Measurement prod = measure(parser, sentences, iterations);

  benchutil::row("configuration",
                 "ms/pass   sent/s      edges/s      allocs/pass");
  benchutil::rule();
  std::snprintf(buf, sizeof buf, "%8.2f   %8.0f   %10.0f   %10.0f",
                prod.ms_per_pass, prod.sentences_per_s, prod.edges_per_s,
                prod.allocs_per_pass);
  benchutil::row("cold parse, single thread", buf);
  std::snprintf(buf, sizeof buf, "%.1f MiB",
                static_cast<double>(prod.peak_live_bytes) / (1024.0 * 1024.0));
  benchutil::row("peak live heap during passes", buf);
  std::snprintf(buf, sizeof buf, "%zu logical forms/pass", prod.forms);
  benchutil::row("output sanity", buf);

  FILE* json = std::fopen("BENCH_parser_hotpath.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json,
                 "  \"workload\": \"ICMP+IGMP+NTP+BFD+TCP, %zu sentences, "
                 "%zu tokens\",\n",
                 sentences.size(), token_count);
    std::fprintf(json, "  \"iterations\": %d,\n", iterations);
    std::fprintf(json, "  \"cold_single_thread\": {\n");
    std::fprintf(json, "    \"ms_per_pass\": %.3f,\n", prod.ms_per_pass);
    std::fprintf(json, "    \"sentences_per_s\": %.0f,\n",
                 prod.sentences_per_s);
    std::fprintf(json, "    \"edges_per_s\": %.0f,\n", prod.edges_per_s);
    std::fprintf(json, "    \"allocs_per_pass\": %.0f,\n",
                 prod.allocs_per_pass);
    std::fprintf(json, "    \"peak_live_bytes\": %llu,\n",
                 static_cast<unsigned long long>(prod.peak_live_bytes));
    std::fprintf(json, "    \"forms_per_pass\": %zu\n", prod.forms);
    std::fprintf(json, "  }\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    benchutil::row("written", "BENCH_parser_hotpath.json");
    benchutil::commit_scorecard("BENCH_parser_hotpath.json");
  }

  // Alloc gate: the arena-backed chart must keep the parser's steady-state
  // heap traffic bounded. Fail loudly if a regression reintroduces
  // per-edge/per-candidate allocations.
  constexpr double kMaxAllocsPerPass = 5000.0;
  if (prod.allocs_per_pass > kMaxAllocsPerPass) {
    std::fprintf(stderr,
                 "ALLOC GATE FAILED: %.0f allocs/pass exceeds the %.0f "
                 "budget (chart arena regression?)\n",
                 prod.allocs_per_pass, kMaxAllocsPerPass);
    return 1;
  }
  std::snprintf(buf, sizeof buf, "%.0f allocs/pass <= %.0f budget",
                prod.allocs_per_pass, kMaxAllocsPerPass);
  benchutil::row("alloc gate", buf);
  return 0;
}

// Performance microbenchmarks (google-benchmark): parsing, winnowing,
// code generation, checksum primitives, and the full-pipeline run. Not a
// paper table — these quantify the cost of the reproduction's substrates
// and back the DESIGN.md ablations (composition/type-raising toggles).
#include <benchmark/benchmark.h>

#include "ccg/parser.hpp"
#include "core/sage.hpp"
#include "corpus/lexicon_data.hpp"
#include "corpus/rfc792.hpp"
#include "corpus/terms.hpp"
#include "disambig/checks.hpp"
#include "disambig/winnower.hpp"
#include "net/checksum.hpp"
#include "nlp/chunker.hpp"
#include "nlp/tokenizer.hpp"
#include "rfc/preprocessor.hpp"
#include "sim/network.hpp"
#include "sim/ping.hpp"
#include "sim/reference_responder.hpp"

namespace {

using namespace sage;

const std::string kSentence =
    "If code = 0, an identifier to aid in matching echos and replies, may "
    "be zero.";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nlp::tokenize(kSentence));
  }
}
BENCHMARK(BM_Tokenize);

void BM_Chunk(benchmark::State& state) {
  const auto dict = corpus::make_term_dictionary();
  const nlp::NounPhraseChunker chunker(&dict);
  const auto tokens = nlp::tokenize(kSentence);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.chunk(tokens));
  }
}
BENCHMARK(BM_Chunk);

void BM_CcgParse(benchmark::State& state) {
  const auto lexicon = corpus::make_lexicon();
  const auto dict = corpus::make_term_dictionary();
  const nlp::NounPhraseChunker chunker(&dict);
  ccg::ParserOptions options;
  options.enable_composition = state.range(0) != 0;
  options.enable_type_raising = state.range(0) != 0;
  const ccg::CcgParser parser(&lexicon, options);
  const auto tokens = chunker.chunk(nlp::tokenize(kSentence));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.parse(tokens));
  }
}
// Arg 1: full grammar; arg 0: application-only ablation.
BENCHMARK(BM_CcgParse)->Arg(1)->Arg(0);

void BM_Winnow(benchmark::State& state) {
  const auto lexicon = corpus::make_lexicon();
  const auto dict = corpus::make_term_dictionary();
  const nlp::NounPhraseChunker chunker(&dict);
  const ccg::CcgParser parser(&lexicon);
  const auto base = parser.parse(chunker.chunk(nlp::tokenize(kSentence))).forms;
  const disambig::Winnower winnower(disambig::all_checks());
  for (auto _ : state) {
    benchmark::DoNotOptimize(winnower.winnow(base));
  }
}
BENCHMARK(BM_Winnow);

void BM_PreprocessRfc792(benchmark::State& state) {
  const auto& text = corpus::rfc792_original();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfc::preprocess(text, "ICMP"));
  }
}
BENCHMARK(BM_PreprocessRfc792);

void BM_FullPipelineRfc792(benchmark::State& state) {
  for (auto _ : state) {
    core::Sage sage;
    sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
    benchmark::DoNotOptimize(sage.process(corpus::rfc792_revised(), "ICMP"));
  }
}
BENCHMARK(BM_FullPipelineRfc792)->Unit(benchmark::kMillisecond);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500)->Arg(65536);

void BM_SimulatedPing(benchmark::State& state) {
  sim::ReferenceIcmpResponder responder;
  for (auto _ : state) {
    sim::Network net = sim::make_appendix_a_network();
    net.router()->set_responder(&responder);
    sim::PingClient ping;
    benchmark::DoNotOptimize(
        ping.ping(net, "client", net::IpAddr(10, 0, 1, 1)));
  }
}
BENCHMARK(BM_SimulatedPing);

}  // namespace

BENCHMARK_MAIN();

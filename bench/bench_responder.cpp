// Responder throughput: string-keyed field dispatch vs the dense field
// ids the schema registry attaches at generation time.
//
// The pipeline generates the RFC 792 echo handler once; we then execute
// it end-to-end (SchemaExecEnv construction, interpretation, reply
// serialization) against a stream of echo requests twice over:
//
//   baseline  — the statement tree with every field_id and symbol cache
//               stripped, forcing each read/write through the registry's
//               by-name lookup (the pre-registry behavior);
//   indexed   — the tree exactly as the generator annotated it, so the
//               environment dispatches on vector indices.
//
// Results are written to BENCH_responder.json; EXPERIMENTS.md records
// the reference run. The acceptance target for the registry work is
// >= 1.5x packets/s.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "codegen/ir.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"
#include "net/ipv4.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/schema_env.hpp"
#include "sim/ping.hpp"

namespace {

using namespace sage;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void strip_expr(codegen::Expr& expr);

void strip_cond(codegen::Cond& cond) {
  if (cond.kind == codegen::Cond::Kind::kCompare) {
    strip_expr(cond.lhs);
    strip_expr(cond.rhs);
  }
  for (auto& child : cond.children) strip_cond(child);
}

void strip_expr(codegen::Expr& expr) {
  expr.field.field_id = -1;
  expr.symbol_cached = false;
  expr.symbol_cache = 0;
  for (auto& a : expr.args) strip_expr(a);
}

/// Remove every generation-time annotation, restoring the pre-registry
/// string-dispatch tree.
void strip_ids(codegen::Stmt& stmt) {
  stmt.target.field_id = -1;
  strip_expr(stmt.value);
  for (auto& a : stmt.args) strip_expr(a);
  strip_cond(stmt.cond);
  for (auto& child : stmt.body) strip_ids(child);
}

/// One full responder round: environment from the raw request, run the
/// generated handler, serialize the reply. Returns the reply size so the
/// work cannot be optimized away.
std::size_t respond_once(const runtime::Interpreter& interp,
                         const codegen::Stmt& body,
                         std::span<const std::uint8_t> request,
                         net::IpAddr own) {
  auto env =
      runtime::SchemaExecEnv::icmp(request, own, /*start_from_incoming=*/true);
  env.set_scenario("echo");
  interp.run(body, env);
  return env.finish_reply().size();
}

double measure_pps(const runtime::Interpreter& interp,
                   const codegen::Stmt& body,
                   std::span<const std::uint8_t> request, net::IpAddr own,
                   std::size_t packets) {
  std::size_t sink = 0;
  const double start = now_ms();
  for (std::size_t i = 0; i < packets; ++i) {
    sink += respond_once(interp, body, request, own);
  }
  const double elapsed = now_ms() - start;
  if (sink == 0) std::printf("(empty replies?)\n");
  return static_cast<double>(packets) / (elapsed / 1000.0);
}

}  // namespace

int main() {
  benchutil::title("Responder throughput",
                   "string-keyed dispatch vs schema-registry field ids");

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto run = sage.process(corpus::rfc792_revised(), "ICMP");

  const codegen::GeneratedFunction* echo = nullptr;
  for (const auto& fn : run.functions) {
    if (fn.name.find("echo") != std::string::npos &&
        fn.role == "receiver") {
      echo = &fn;
    }
  }
  if (echo == nullptr) {
    std::printf("no generated echo receiver found (functions=%zu)\n",
                run.functions.size());
    return 1;
  }
  benchutil::row("generated handler", echo->name);

  codegen::Stmt stripped = echo->body;  // deep copy, then de-annotate
  strip_ids(stripped);

  const auto own = net::IpAddr(10, 0, 1, 1);
  const auto request = sim::PingClient::make_echo_request(
      net::IpAddr(10, 0, 1, 100), own, {});
  const runtime::Interpreter interp;

  // Equivalence gate: both trees must produce byte-identical replies.
  {
    auto a = runtime::SchemaExecEnv::icmp(request, own, true);
    auto b = runtime::SchemaExecEnv::icmp(request, own, true);
    a.set_scenario("echo");
    b.set_scenario("echo");
    interp.run(echo->body, a);
    interp.run(stripped, b);
    if (a.finish_reply() != b.finish_reply()) {
      std::printf("FAIL: annotated and stripped trees disagree\n");
      return 1;
    }
    benchutil::row("equivalence", "annotated == stripped reply bytes");
  }

  constexpr std::size_t kWarmup = 20000;
  constexpr std::size_t kPackets = 200000;
  constexpr int kTrials = 5;
  measure_pps(interp, stripped, request, own, kWarmup);
  measure_pps(interp, echo->body, request, own, kWarmup);
  // Interleaved best-of-N: peak throughput per mode, so a noisy
  // neighbor in one trial cannot skew the ratio.
  double baseline_pps = 0.0;
  double indexed_pps = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    baseline_pps = std::max(
        baseline_pps, measure_pps(interp, stripped, request, own, kPackets));
    indexed_pps = std::max(
        indexed_pps, measure_pps(interp, echo->body, request, own, kPackets));
  }
  const double speedup = indexed_pps / baseline_pps;

  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f packets/s", baseline_pps);
  benchutil::row("baseline (string dispatch)", buf);
  std::snprintf(buf, sizeof buf, "%.0f packets/s", indexed_pps);
  benchutil::row("indexed (schema field ids)", buf);
  std::snprintf(buf, sizeof buf, "%.2fx (target >= 1.5x)", speedup);
  benchutil::row("speedup", buf);

  FILE* json = std::fopen("BENCH_responder.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"packets\": %zu,\n"
                 "  \"baseline_pps\": %.1f,\n"
                 "  \"indexed_pps\": %.1f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 kPackets, baseline_pps, indexed_pps, speedup);
    std::fclose(json);
    benchutil::row("written", "BENCH_responder.json");
    benchutil::commit_scorecard("BENCH_responder.json");
  }
  return speedup >= 1.5 ? 0 : 1;
}

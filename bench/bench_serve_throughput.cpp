// Serve daemon throughput (not a paper artifact; ISSUE PR 9 satellite).
//
// Measures jobs/second for the same mixed parse+codegen batch in two
// configurations:
//   * one-shot: every job pays a cold process — a fresh Server (empty
//     pipeline cache, empty parse cache) executing exactly one job,
//     which is what `sage_debug <corpus>` costs per invocation,
//   * warm daemon: one Server with a warmed session pipeline cache,
//     batch submitted through a loopback Client, at 1/2/4/8 workers.
//
// Honest framing (same as BENCH_fuzz_throughput): this container has a
// single CPU, so the win comes from the session caches — each corpus'
// pipeline runs and compiles once, then every later job is a
// hash-lookup — not from thread parallelism. The per-worker rows exist
// to show scaling is not negative and the determinism contract holds:
// every configuration's response digests must equal the one-shot run's.
//
// Results go to BENCH_serve_throughput.json via benchutil::
// commit_scorecard. Exit is nonzero if determinism breaks or the warm
// daemon at 4 workers is below 3x one-shot throughput (the ISSUE gate).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

using namespace sage;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The benchmark batch: every corpus, parse + codegen, several rounds —
/// the repeated-query workload a daemon exists for.
std::vector<serve::Frame> batch() {
  std::vector<serve::Frame> jobs;
  for (int round = 0; round < 5; ++round) {
    for (const char* corpus : {"icmp", "icmp-orig", "igmp", "ntp", "bfd"}) {
      jobs.push_back(serve::Client::make_request(
          serve::FrameKind::kParseRequest, corpus));
      jobs.push_back(serve::Client::make_request(
          serve::FrameKind::kCodegenRequest, corpus));
    }
  }
  return jobs;
}

std::uint64_t fold_digests(const std::vector<serve::Frame>& responses) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& response : responses) {
    h = serve::fnv1a_str(serve::hex64(serve::result_digest(response)), h);
  }
  return h;
}

}  // namespace

int main() {
  benchutil::title("Serve throughput",
                   "mixed parse+codegen jobs, one-shot CLI vs warm daemon");

  const std::vector<serve::Frame> jobs = batch();
  char buf[160];

  // One-shot baseline: a cold Server per job — the pipeline re-derived
  // every time, as each `sage_debug` invocation pays it.
  const double oneshot_start = now_ms();
  std::vector<serve::Frame> oneshot_responses;
  oneshot_responses.reserve(jobs.size());
  for (const auto& job : jobs) {
    serve::Server cold({.jobs = 1});
    oneshot_responses.push_back(cold.execute(job));
  }
  const double oneshot_ms = now_ms() - oneshot_start;
  const std::uint64_t expected = fold_digests(oneshot_responses);
  const double oneshot_jps = 1000.0 * jobs.size() / oneshot_ms;

  std::snprintf(buf, sizeof buf, "%8.1f jobs/s  (%zu jobs in %.0f ms)",
                oneshot_jps, jobs.size(), oneshot_ms);
  benchutil::row("one-shot (cold pipeline per job)", buf);
  benchutil::rule();

  struct Point {
    std::size_t workers;
    double jps;
    double speedup;
    bool identical;
  };
  std::vector<Point> points;
  bool all_ok = true;

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    serve::Server server({.jobs = workers});
    // Warm the session caches outside the timed region: first touch of
    // each corpus builds + compiles its pipeline once per session.
    for (const char* corpus : {"icmp", "icmp-orig", "igmp", "ntp", "bfd"}) {
      server.execute(serve::Client::make_request(
          serve::FrameKind::kParseRequest, corpus));
    }

    auto [client_end, server_end] = serve::make_loopback_pair();
    server.serve_connection_async(std::move(server_end));
    serve::Client client(std::move(client_end));

    const double start = now_ms();
    const std::vector<serve::Frame> responses = client.submit(jobs);
    const double ms = now_ms() - start;

    const bool identical = fold_digests(responses) == expected;
    const double jps = 1000.0 * jobs.size() / ms;
    const double speedup = jps / oneshot_jps;
    points.push_back({workers, jps, speedup, identical});
    all_ok = all_ok && identical;

    std::snprintf(buf, sizeof buf, "%8.1f jobs/s   %7.1fx%s", jps, speedup,
                  identical ? "" : "  DIGESTS DIVERGED");
    benchutil::row("warm daemon, " + std::to_string(workers) + " worker(s)",
                   buf);
  }

  benchutil::rule();
  const double speedup_at_4 = points[2].speedup;
  const bool gate = speedup_at_4 >= 3.0;
  all_ok = all_ok && gate;
  std::snprintf(buf, sizeof buf,
                "%.1fx at 4 workers (gate: >= 3x vs one-shot)", speedup_at_4);
  benchutil::row(gate ? "speedup gate met" : "SPEEDUP GATE MISSED", buf);
  benchutil::row("determinism contract",
                 all_ok ? "response digests identical everywhere"
                        : "see rows above");

  FILE* json = std::fopen("BENCH_serve_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json,
                 "  \"workload\": \"%zu mixed parse+codegen jobs over 5 "
                 "corpora\",\n",
                 jobs.size());
    std::fprintf(json,
                 "  \"note\": \"single-CPU container: speedup is session-"
                 "cache amortization (pipeline + handler compilation once "
                 "per corpus), not thread parallelism\",\n");
    std::fprintf(json, "  \"oneshot_jobs_per_s\": %.1f,\n", oneshot_jps);
    std::fprintf(json, "  \"warm_daemon\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      std::fprintf(json,
                   "    {\"workers\": %zu, \"jobs_per_s\": %.1f, "
                   "\"speedup_vs_oneshot\": %.1f, \"identical\": %s}%s\n",
                   p.workers, p.jps, p.speedup,
                   p.identical ? "true" : "false",
                   i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"speedup_gate_3x_at_4_workers\": %s\n",
                 gate ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    benchutil::row("written", "BENCH_serve_throughput.json");
    benchutil::commit_scorecard("BENCH_serve_throughput.json");
  }
  return all_ok ? 0 : 1;
}

// Event-queue simulator kernel throughput (not a paper artifact).
//
// Both delivery kernels run the same pre-built probe batches on star
// topologies of 16, 256, and 1024 hosts:
//   * reference: the original synchronous recursion, preserved verbatim —
//     every hop re-resolves nodes with linear scans over the topology, so
//     per-event cost grows with host count.
//   * event: the timestamped queue kernel with hash-indexed lookup,
//     NodeRefs carried in events, and cut-through dispatch of zero-delay
//     hops — per-event cost is flat in topology size.
//
// Two workloads, measured kernel-time only (packet building and
// transient clears happen outside the timed region):
//   * sweep (gated): every host probes an unassigned address in a far
//     subnet, so packets route through the core and fall off the edge.
//     No responder runs; the workload isolates exactly what the kernel
//     swap changed — node resolution and hop dispatch.
//   * ping mix (informational): hosts echo-ping peers across subnets.
//     Endpoint work (responder reply construction, capture of the reply
//     leg) is identical in both kernels, so the gap is smaller; reported
//     for honesty about end-to-end sessions.
//
// Before timing, both kernels replay one batch and their capture digests
// are compared entry-for-entry (node + packet bytes). A throughput number
// from a diverged run can never land in the JSON.
//
// Results are written to BENCH_sim_kernel.json (EXPERIMENTS.md records a
// reference run). Exit is nonzero if any digest diverges or the event
// kernel's sweep events/s advantage at 256 hosts drops below 10x.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/network.hpp"
#include "sim/ping.hpp"
#include "sim/topology.hpp"

using namespace sage;
using namespace sage::sim;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kReps = 5;
constexpr int kRounds = 8;  // probe batches per repetition

enum class Workload { kSweep, kPingMix };

/// One pre-built probe batch: (source host index, packet bytes) pairs.
/// Batches depend only on (workload, host count), never on the kernel,
/// so both kernels replay byte-identical traffic.
std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> build_batch(
    const Topology& topo, Workload workload, int round) {
  const std::size_t n = topo.hosts.size();
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t src = i;
    net::IpAddr dst;
    if (workload == Workload::kSweep) {
      // Probe host addresses that were never assigned: star subnets hold
      // at most 128 hosts at .1+, so .200 upward in a *different* subnet
      // routes through the core and falls off the far edge.
      const std::size_t subnets = (n + 127) / 128;
      const std::size_t far = (i / 128 + 1) % subnets;
      dst = net::IpAddr(10, static_cast<std::uint8_t>(far >> 8),
                        static_cast<std::uint8_t>(far & 255),
                        static_cast<std::uint8_t>(200 + (i % 50)));
    } else {
      dst = topo.hosts[(i + n / 2) % n]->address();
    }
    PingOptions opts;
    opts.sequence = static_cast<std::uint16_t>(round * 1024 + i);
    batch.emplace_back(src, PingClient::make_echo_request(
                                topo.hosts[src]->address(), dst, opts));
  }
  return batch;
}

struct Measurement {
  double best_eps = 0.0;
  std::uint64_t events = 0;  // per batch-set, identical across kernels
};

/// Replays kRounds batches, timing only the send loop. clear_transient()
/// between rounds (untimed) keeps the capture from growing unboundedly.
Measurement measure(Topology& topo, Workload workload) {
  Network& net = topo.net;
  const std::uint64_t before = net.events_processed();
  double elapsed_ms = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    auto batch = build_batch(topo, workload, round);
    const double t0 = now_ms();
    for (auto& [src, packet] : batch) {
      net.send_from_host(*topo.hosts[src], std::move(packet));
    }
    elapsed_ms += now_ms() - t0;
    net.clear_transient();
  }
  Measurement m;
  m.events = net.events_processed() - before;
  m.best_eps = static_cast<double>(m.events) / (elapsed_ms / 1000.0);
  return m;
}

/// Replays one batch on both kernels and compares captures entry for
/// entry. Returns true when every (node, packet) pair matches.
bool captures_identical(std::size_t hosts, Workload workload) {
  // own_capture: the raw capture aliases each topology's arena, which
  // dies at the end of the loop iteration.
  std::vector<OwnedCaptureEntry> captures[2];
  for (int k = 0; k < 2; ++k) {
    const DeliveryMode mode =
        k == 0 ? DeliveryMode::kEvent : DeliveryMode::kReference;
    Topology topo = make_star(hosts, mode);
    auto batch = build_batch(topo, workload, 0);
    for (auto& [src, packet] : batch) {
      topo.net.send_from_host(*topo.hosts[src], std::move(packet));
    }
    captures[k] = own_capture(topo.net.capture());
  }
  if (captures[0].size() != captures[1].size()) return false;
  for (std::size_t i = 0; i < captures[0].size(); ++i) {
    if (captures[0][i].node != captures[1][i].node ||
        captures[0][i].packet != captures[1][i].packet) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  benchutil::title("Simulator kernel throughput",
                   "event-queue vs synchronous reference, star topologies");

  struct Point {
    const char* workload;
    std::size_t hosts;
    Measurement event;
    Measurement reference;
    double ratio;
    bool identical;
  };
  std::vector<Point> points;
  bool all_identical = true;
  char buf[160];

  const struct {
    Workload workload;
    const char* name;
  } workloads[] = {{Workload::kSweep, "sweep"}, {Workload::kPingMix, "ping-mix"}};

  for (const auto& w : workloads) {
    for (const std::size_t hosts : {16u, 256u, 1024u}) {
      const bool identical = captures_identical(hosts, w.workload);
      all_identical = all_identical && identical;

      Topology ev_topo = make_star(hosts, DeliveryMode::kEvent);
      Topology ref_topo = make_star(hosts, DeliveryMode::kReference);
      (void)measure(ev_topo, w.workload);   // warmup
      (void)measure(ref_topo, w.workload);  // warmup
      Measurement ev, ref;
      // Interleave kernels per repetition so cache/allocator drift is
      // shared; keep the best of kReps for each.
      for (int r = 0; r < kReps; ++r) {
        const Measurement e = measure(ev_topo, w.workload);
        const Measurement f = measure(ref_topo, w.workload);
        if (e.best_eps > ev.best_eps) ev.best_eps = e.best_eps;
        if (f.best_eps > ref.best_eps) ref.best_eps = f.best_eps;
        ev.events = e.events;
        ref.events = f.events;
      }
      const double ratio = ref.best_eps > 0.0 ? ev.best_eps / ref.best_eps : 0.0;
      points.push_back({w.name, hosts, ev, ref, ratio, identical});

      std::snprintf(buf, sizeof buf,
                    "%9.0f ev/s event   %9.0f ev/s reference   %6.2fx%s",
                    ev.best_eps, ref.best_eps, ratio,
                    identical ? "" : "  CAPTURE DIVERGED");
      benchutil::row(std::string(w.name) + " " + std::to_string(hosts) +
                         " hosts",
                     buf);
    }
  }

  benchutil::rule();
  double sweep_ratio_at_256 = 0.0;
  for (const auto& p : points) {
    if (p.hosts == 256 && std::string(p.workload) == "sweep") {
      sweep_ratio_at_256 = p.ratio;
    }
  }
  const bool gate = sweep_ratio_at_256 >= 10.0;
  std::snprintf(buf, sizeof buf,
                "%.2fx at 256 hosts, sweep (gate: >= 10x vs reference)",
                sweep_ratio_at_256);
  benchutil::row(gate ? "throughput gate met" : "THROUGHPUT GATE MISSED", buf);
  benchutil::row("determinism contract",
                 all_identical ? "captures byte-identical across kernels"
                               : "see rows above");

  FILE* json = std::fopen("BENCH_sim_kernel.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json,
                 "  \"workloads\": {\"sweep\": \"probes to unassigned far-"
                 "subnet addresses; routing-only, no responder\", "
                 "\"ping-mix\": \"cross-subnet echo sessions; endpoint "
                 "work shared by both kernels\"},\n");
    std::fprintf(json,
                 "  \"method\": \"pre-built batches, kernel send loop "
                 "timed only, best of %d interleaved reps x %d rounds\",\n",
                 kReps, kRounds);
    std::fprintf(json,
                 "  \"note\": \"reference kernel preserves the seed's "
                 "synchronous recursion with per-hop linear node scans; "
                 "event kernel uses the timestamped queue with hash "
                 "lookups and cut-through zero-delay dispatch\",\n");
    std::fprintf(json, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      std::fprintf(json,
                   "    {\"workload\": \"%s\", \"hosts\": %zu, "
                   "\"events\": %llu, \"event_eps\": %.0f, "
                   "\"reference_eps\": %.0f, \"ratio\": %.2f, "
                   "\"captures_identical\": %s}%s\n",
                   p.workload, p.hosts,
                   static_cast<unsigned long long>(p.event.events),
                   p.event.best_eps, p.reference.best_eps, p.ratio,
                   p.identical ? "true" : "false",
                   i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"throughput_gate_10x_at_256_hosts\": %s\n",
                 gate ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    benchutil::row("written", "BENCH_sim_kernel.json");
    benchutil::commit_scorecard("BENCH_sim_kernel.json");
  }
  return (all_identical && gate) ? 0 : 1;
}

// Table 11: "NTP peer variable sentence and resulting code" — the
// timeout-procedure sentence parsed and compiled through the pipeline.
#include <cstdio>

#include "bench_util.hpp"
#include "codegen/emitter.hpp"
#include "codegen/generator.hpp"
#include "core/sage.hpp"
#include "corpus/rfc1059.hpp"

int main() {
  using namespace sage;
  benchutil::title("Table 11", "NTP peer-variable sentence -> code");

  core::Sage sage;
  rfc::SpecSentence sentence;
  sentence.text = corpus::ntp_timeout_sentence();
  sentence.context["protocol"] = "NTP";
  sentence.context["message"] = "NTP Peer Variables";

  const auto report = sage.analyze_sentence(sentence);
  std::printf("SENTENCE | %s\n", sentence.text.c_str());
  std::printf("STATUS   | %s (%zu base LF%s -> %zu)\n",
              core::sentence_status_name(report.status).c_str(),
              report.base_forms, report.base_forms == 1 ? "" : "s",
              report.winnow.survivors.size());
  if (!report.final_form) return 1;
  std::printf("LF       | %s\n", report.final_form->to_string().c_str());

  const codegen::CodeGenerator generator(&sage.static_context(),
                                         &sage.handlers());
  codegen::SentenceLf entry;
  entry.form = *report.final_form;
  entry.context = codegen::DynamicContext::from_map(sentence.context);
  entry.sentence = sentence.text;
  const auto outcome = generator.generate(
      "NTP", "NTP Peer Variables", "sender", {&entry, 1});
  if (outcome.function) {
    std::printf("CODE     |\n%s", outcome.function->c_source.c_str());
  } else {
    std::printf("CODE     | <generation failed>\n");
  }
  return 0;
}

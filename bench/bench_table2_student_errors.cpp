// Table 2: "Error types of failed cases and their frequency in 14 faulty
// student ICMP implementations" — re-derived by running the Linux-ping
// interop model against the reconstructed 39-member cohort (§2.1).
#include <cstdio>

#include "bench_util.hpp"
#include "eval/interop_harness.hpp"
#include "eval/students.hpp"

int main() {
  using namespace sage;
  benchutil::title("Table 2",
                   "student ICMP implementation error types (measured)");

  const auto report = eval::run_student_experiment(eval::make_student_cohort());

  std::printf("cohort: %zu implementations, %zu passed (%.1f%%), "
              "%zu failed to compile, %zu faulty\n",
              report.total, report.passed,
              100.0 * static_cast<double>(report.passed) /
                  static_cast<double>(report.total),
              report.failed_compile, report.faulty);
  std::printf("paper:  39 implementations, 24 passed (61.5%%), "
              "1 failed to compile, 14 faulty\n");
  benchutil::rule();
  benchutil::row("ERROR TYPE", "Frequency (paper)");
  benchutil::rule();
  const char* expected[] = {"57%", "57%", "29%", "43%", "29%", "36%"};
  int i = 0;
  for (const auto& row : report.table2) {
    benchutil::row(sim::interop_error_name(row.category),
                   benchutil::percent(row.frequency) + " (" + expected[i++] +
                       ")");
  }
  return 0;
}

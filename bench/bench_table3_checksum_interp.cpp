// Table 3: the seven student interpretations of the ICMP checksum range,
// each implemented and tested for interoperability with the Linux ping
// model (§2.1). The paper lists the interpretations; we additionally
// measure which ones interoperate.
#include <cstdio>

#include "bench_util.hpp"
#include "eval/checksum_interp.hpp"
#include "eval/interop_harness.hpp"
#include "eval/students.hpp"

int main() {
  using namespace sage;
  benchutil::title("Table 3", "students' ICMP checksum range interpretations");

  benchutil::row("IDX  INTERPRETATION", "ping interop");
  benchutil::rule();
  for (const auto interp : eval::all_interpretations()) {
    // Build a responder whose only deviation is the checksum range.
    eval::FaultyIcmpResponder responder({eval::Fault::kWrongChecksumRange},
                                        interp);
    const auto result = eval::ping_against(&responder);
    char left[96];
    std::snprintf(left, sizeof left, "%d    %s", static_cast<int>(interp),
                  eval::interpretation_description(interp).c_str());
    benchutil::row(left, result.success ? "PASS" : "FAIL", 70);
  }
  benchutil::rule();
  std::printf("Note: interpretation 3 is the RFC-correct reading; 6 is\n"
              "arithmetically equivalent when the sender's checksum was\n"
              "correct; 5 matches 3 whenever no IP options are present\n"
              "(the injected variant sums a phantom odd-length option area).\n");
  return 0;
}

// Table 4: "Logical form with context and resulting code" — the
// @Is('type', '3') example from the Destination Unreachable section,
// pushed through the real resolution context and predicate handlers.
#include <cstdio>

#include "bench_util.hpp"
#include "codegen/context.hpp"
#include "codegen/emitter.hpp"
#include "codegen/handlers.hpp"
#include "lf/logical_form.hpp"

int main() {
  using namespace sage;
  benchutil::title("Table 4", "logical form + context dictionary -> code");

  const auto lf = lf::parse_logical_form("@Is(\"type\", @Num(3))");
  if (!lf) {
    std::printf("internal error: LF did not parse\n");
    return 1;
  }

  codegen::DynamicContext dynamic;
  dynamic.protocol = "ICMP";
  dynamic.message = "Destination Unreachable Message";
  dynamic.field = "Type";
  dynamic.role = "";

  const auto statics = codegen::StaticContext::standard();
  const codegen::ResolutionContext resolution(dynamic, &statics);
  const auto registry = codegen::HandlerRegistry::standard();
  codegen::LfConverter converter(&resolution, &registry);

  const auto stmt = converter.to_stmt(*lf);

  std::printf("LF      | %s\n", lf->to_string().c_str());
  std::printf("CONTEXT | %s\n", dynamic.to_string().c_str());
  if (stmt) {
    std::printf("CODE    | %s", codegen::emit_stmt(*stmt).c_str());
  } else {
    std::printf("CODE    | <conversion failed>\n");
  }
  std::printf("\npaper   | hdr->type = 3;\n");
  return 0;
}

// Table 5: "Challenging BFD state management sentences" — the two §6.8.6
// originals that defeat the parser (cross-sentence co-reference, prose
// rephrasing) and the rewrites that succeed. Measured: logical forms per
// sentence before/after rewriting.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc5880.hpp"
#include "nlp/sentence_splitter.hpp"

int main() {
  using namespace sage;
  benchutil::title("Table 5", "challenging BFD state-management sentences");

  core::Sage sage;
  const auto analyze = [&sage](const std::string& text) {
    rfc::SpecSentence sentence;
    sentence.text = text;
    sentence.context["protocol"] = "BFD";
    sentence.context["message"] = "BFD Control Packet";
    return sage.analyze_sentence(sentence);
  };

  for (const auto& challenge : corpus::bfd_challenges()) {
    std::printf("\n[%s]\n", challenge.type.c_str());
    std::printf("ORIGINAL:\n");
    bool original_ok = true;
    for (const auto& s : nlp::split_sentences(challenge.original)) {
      const auto report = analyze(s);
      const bool ok = report.status == core::SentenceStatus::kParsed;
      original_ok = original_ok && ok;
      std::printf("  [%s] %s\n",
                  core::sentence_status_name(report.status).c_str(), s.c_str());
    }
    std::printf("REWRITTEN:\n");
    bool rewritten_ok = true;
    for (const auto& s : nlp::split_sentences(challenge.rewritten)) {
      const auto report = analyze(s);
      const bool ok = report.status == core::SentenceStatus::kParsed;
      rewritten_ok = rewritten_ok && ok;
      std::printf("  [%s] %s\n",
                  core::sentence_status_name(report.status).c_str(), s.c_str());
    }
    std::printf("=> original %s, rewritten %s (paper: original fails, "
                "rewrite parses)\n",
                original_ok ? "parses" : "FAILS",
                rewritten_ok ? "parses" : "FAILS");
  }
  return 0;
}

// Table 6: "Examples of categorized rewritten text" — the RFC 792
// sentences a human rewrote in the feedback loop, by category, with the
// measured pipeline status of each original sentence.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"

int main() {
  using namespace sage;
  benchutil::title("Table 6", "categorized rewritten ICMP text");

  // Process the *original* RFC: the categories must emerge from the run.
  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto run = sage.process(corpus::rfc792_original(), "ICMP");

  std::map<std::string, core::SentenceStatus> status_of;
  for (const auto& r : run.reports) status_of[r.sentence.text] = r.status;

  std::map<corpus::RewriteCategory, int> counts;
  for (const auto& rewrite : corpus::rfc792_rewrites()) {
    ++counts[rewrite.category];
  }

  benchutil::row("CATEGORY", "count (paper)");
  benchutil::rule();
  benchutil::row("More than 1 LF",
                 std::to_string(counts[corpus::RewriteCategory::kMoreThanOneLf]) +
                     " (4)");
  benchutil::row("0 LF",
                 std::to_string(counts[corpus::RewriteCategory::kZeroLf]) +
                     " (1)");
  benchutil::row("Imprecise sentence",
                 std::to_string(counts[corpus::RewriteCategory::kImprecise]) +
                     " (6)");
  benchutil::rule();

  std::printf("\nPer-rewrite detail (pipeline status of the original):\n");
  for (const auto& rewrite : corpus::rfc792_rewrites()) {
    const auto it = status_of.find(rewrite.original);
    const std::string status =
        it == status_of.end() ? "not-found"
                              : core::sentence_status_name(it->second);
    std::printf("  [%-18s][%-11s] %.70s...\n",
                corpus::rewrite_category_name(rewrite.category).c_str(),
                status.c_str(), rewrite.original.c_str());
  }
  std::printf(
      "\n(The 6 'Imprecise sentence' originals parse cleanly; unit testing\n"
      "exposes them — see bench_e2e_interop's under-specification check.)\n");
  return 0;
}

// Table 7: "Comparison of the number of logical forms between good and
// poor noun phrase labels" — the echo "Addresses" sentence with two
// different labelings of "echo reply message".
#include <cstdio>

#include "bench_util.hpp"
#include "ccg/parser.hpp"
#include "corpus/lexicon_data.hpp"
#include "nlp/tokenizer.hpp"

int main() {
  using namespace sage;
  benchutil::title("Table 7", "good vs poor noun-phrase labels");

  // Quoted phrases become pre-labeled noun phrases (§3); the two rows of
  // Table 7 differ only in whether "echo reply message" is one label.
  const std::string poor =
      "The 'address' of the 'source' in an 'echo message' will be the "
      "'destination' of the 'echo reply' 'message'.";
  const std::string good =
      "The 'address' of the 'source' in an 'echo message' will be the "
      "'destination' of the 'echo reply message'.";

  const auto lexicon = corpus::make_lexicon();
  const ccg::CcgParser parser(&lexicon);

  const auto count = [&parser](const std::string& sentence) {
    return parser.parse(nlp::tokenize(sentence)).forms.size();
  };

  benchutil::row("SENTENCE LABELING", "#LFs (paper)");
  benchutil::rule();
  benchutil::row("Poor: ... 'echo reply' 'message'",
                 std::to_string(count(poor)) + " (16)");
  benchutil::row("Good: ... 'echo reply message'",
                 std::to_string(count(good)) + " (6)");
  benchutil::rule();
  std::printf("Shape to hold: the poor labeling yields strictly more\n"
              "logical forms than the good one.\n");
  return 0;
}

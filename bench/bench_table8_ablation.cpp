// Table 8: "Effect of disabling domain-specific dictionary and
// noun-phrase labeling on number of logical forms" — the 87 RFC 792
// sentence instances under three configurations, comparing pre-winnowing
// LF counts against the full pipeline.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"
#include "rfc/preprocessor.hpp"

int main() {
  using namespace sage;
  benchutil::title("Table 8",
                   "ablation: domain dictionary / noun-phrase labeling");

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto doc = rfc::preprocess(corpus::rfc792_original(), "ICMP");
  const auto sentences = rfc::extract_sentences(doc, "ICMP");

  core::SageOptions full;
  core::SageOptions no_dict;
  no_dict.use_term_dictionary = false;
  core::SageOptions no_label;
  no_label.chunking = nlp::ChunkingMode::kNoLabeling;

  const auto measure = [&](const core::SageOptions& options) {
    std::vector<std::size_t> counts;
    counts.reserve(sentences.size());
    for (const auto& s : sentences) {
      counts.push_back(sage.analyze_sentence(s, options).base_forms);
    }
    return counts;
  };

  const auto base = measure(full);
  const auto rows = std::vector<std::pair<std::string, std::vector<std::size_t>>>{
      {"Domain-specific Dict.", measure(no_dict)},
      {"Noun-phrase Labeling", measure(no_label)},
  };

  benchutil::row("ABLATION", "Increase  Decrease  Zero   (paper)");
  benchutil::rule();
  const char* expected[] = {"17 / 0 / 0", "0 / 8 / 54"};
  int r = 0;
  for (const auto& [name, counts] : rows) {
    std::size_t inc = 0, dec = 0, zero = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0 && base[i] > 0) {
        ++zero;
      } else if (counts[i] > base[i]) {
        ++inc;
      } else if (counts[i] < base[i]) {
        ++dec;
      }
    }
    char right[80];
    std::snprintf(right, sizeof right, "%-9zu %-9zu %-6zu (%s)", inc, dec,
                  zero, expected[r++]);
    benchutil::row("Removing " + name, right);
  }
  benchutil::rule();
  std::printf("Shape to hold: removing the dictionary mostly *increases*\n"
              "pre-winnowing LF counts; removing labeling zeroes out most\n"
              "sentences (words lose their lexical entries entirely).\n");
  return 0;
}

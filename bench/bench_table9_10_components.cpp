// Tables 9 and 10: conceptual and syntactic components across nine
// protocol specifications, with SAGE's support level (§7).
#include <cstdio>

#include "bench_util.hpp"
#include "eval/components.hpp"

namespace {

void print_matrix(const char* name,
                  const std::vector<sage::eval::ComponentRow>& rows) {
  using namespace sage;
  benchutil::title(name, "specification components across RFCs");
  std::printf("%-26s", "COMPONENT");
  for (const auto& rfc : eval::surveyed_rfcs()) std::printf("%-6s", rfc.c_str());
  std::printf("\n");
  benchutil::rule();
  for (const auto& row : rows) {
    std::printf("%s %-24s", eval::support_marker(row.sage_support).c_str(),
                row.name.c_str());
    for (const bool present : row.present) {
      std::printf("%-6s", present ? "x" : "");
    }
    std::printf("\n");
  }
  std::printf("(* = sage supports fully, + = partially)\n");
}

}  // namespace

int main() {
  using namespace sage;
  print_matrix("Table 9 (conceptual)", eval::conceptual_components());
  print_matrix("Table 10 (syntactic)", eval::syntactic_components());

  std::size_t full = 0, partial = 0;
  for (const auto& row : eval::conceptual_components()) {
    if (row.sage_support == eval::Support::kFull) ++full;
    if (row.sage_support == eval::Support::kPartial) ++partial;
  }
  std::printf("\nSAGE supports %zu of %zu conceptual elements fully and %zu "
              "partially (paper: 3 of 6 fully, state management partially).\n",
              full, eval::conceptual_components().size(), partial);
  return 0;
}

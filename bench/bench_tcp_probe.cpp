// §7 extension experiment: how far does the unchanged pipeline get on
// TCP (RFC 793) text? The paper argues TCP is "within reach with the
// addition of complex state management and state machine diagrams";
// this bench measures the boundary directly: BFD-style state-management
// sentences parse with only 5 added lexicon entries (connection-state
// names) and 6 static-context fields, while state-machine-diagram
// references, cross-references, communication patterns, and architecture
// prose do not.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sage.hpp"
#include "corpus/rfc793.hpp"

namespace {

void run_probe(const char* protocol,
               const std::vector<sage::corpus::TcpProbeSentence>& probes) {
  using namespace sage;
  core::Sage sage;
  benchutil::row("COMPONENT / SENTENCE", "result (expected)");
  benchutil::rule();
  std::size_t matches = 0;
  for (const auto& probe : probes) {
    rfc::SpecSentence sentence;
    sentence.text = probe.text;
    sentence.context["protocol"] = protocol;
    sentence.context["message"] = std::string(protocol) + " Message";
    const auto report = sage.analyze_sentence(sentence);
    const bool parsed = report.status == core::SentenceStatus::kParsed;
    if (parsed == probe.expected_to_parse) ++matches;
    char left[100];
    std::snprintf(left, sizeof left, "[%-21s] %.58s", probe.component.c_str(),
                  probe.text.c_str());
    benchutil::row(left,
                   std::string(parsed ? "parses" : "fails") + " (" +
                       (probe.expected_to_parse ? "parses" : "fails") + ")",
                   88);
  }
  benchutil::rule();
  std::printf("%zu/%zu %s sentences match the §7 prediction\n\n", matches,
              probes.size(), protocol);
}

}  // namespace

int main() {
  using namespace sage;
  benchutil::title("§7 TCP/BGP reach probe",
                   "RFC 793 / RFC 4271 sentences through the unchanged "
                   "pipeline");
  {
    core::Sage sage;
    std::printf("additions: %zu TCP + %zu BGP lexicon entries (state names "
                "only)\n\n",
                sage.lexicon().count_by_source("tcp"),
                sage.lexicon().count_by_source("bgp"));
  }
  run_probe("TCP", corpus::tcp_probe_sentences());
  run_probe("BGP", corpus::bgp_probe_sentences());
  std::printf("State management and packet-format text is within reach;\n"
              "diagrams, cross-references, communication patterns, and\n"
              "architecture prose are the future-work boundary.\n");
  return 0;
}

// Shared formatting helpers for the table/figure benches. Every bench
// prints a header naming the paper artifact it regenerates, the measured
// rows, and (where the paper gives numbers) the expected values for
// comparison.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sage::benchutil {

inline void title(const std::string& name, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", name.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Simple fixed-width two-column row.
inline void row(const std::string& left, const std::string& right,
                int left_width = 52) {
  std::printf("%-*s %s\n", left_width, left.c_str(), right.c_str());
}

inline std::string percent(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.0f%%", fraction * 100.0);
  return buf;
}

}  // namespace sage::benchutil

// Shared formatting helpers for the table/figure benches. Every bench
// prints a header naming the paper artifact it regenerates, the measured
// rows, and (where the paper gives numbers) the expected values for
// comparison.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sage::benchutil {

inline void title(const std::string& name, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", name.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Simple fixed-width two-column row.
inline void row(const std::string& left, const std::string& right,
                int left_width = 52) {
  std::printf("%-*s %s\n", left_width, left.c_str(), right.c_str());
}

inline std::string percent(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.0f%%", fraction * 100.0);
  return buf;
}

/// Copy a just-written BENCH_*.json scorecard from the working directory
/// into the tracked bench/results/ snapshot directory (the build defines
/// SAGE_BENCH_RESULTS_DIR), so the perf trajectory survives clean build
/// trees. Call after closing the scorecard; no-op when the definition is
/// absent or either file cannot be opened.
inline void commit_scorecard(const std::string& filename) {
#ifdef SAGE_BENCH_RESULTS_DIR
  FILE* in = std::fopen(filename.c_str(), "rb");
  if (in == nullptr) return;
  const std::string dest =
      std::string(SAGE_BENCH_RESULTS_DIR) + "/" + filename;
  FILE* out = std::fopen(dest.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return;
  }
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) {
    std::fwrite(buf, 1, n, out);
  }
  std::fclose(out);
  std::fclose(in);
  row("committed", dest);
#else
  (void)filename;
#endif
}

}  // namespace sage::benchutil

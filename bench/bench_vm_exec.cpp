// Handler execution throughput: tree-walking interpreter vs the
// threaded-code VM (runtime/vm).
//
// The pipeline generates the RFC 792 handlers once; each is compiled to
// a flat vm::Program. Two measurements over the generated echo receiver:
//
//   handler-exec  — the gated number. One SchemaExecEnv is built from a
//                   raw echo request and the handler body is executed
//                   repeatedly on it (the handler is idempotent: every
//                   run rewrites the same outgoing fields from the same
//                   incoming image). This isolates dispatch + field
//                   access, the part the VM rewrites; target >= 5x.
//   full-respond  — reported for context, not gated: environment
//                   construction + execution + reply serialization per
//                   packet, the bench_responder.cpp workload. Env setup
//                   and serialization are backend-independent, so the
//                   end-to-end ratio is necessarily smaller.
//
// Gates, all required for exit 0:
//   * every generated function produces byte-identical replies and
//     identical error lists on both backends;
//   * protocol_run_signature() of the canonical ICMP run is unchanged
//     by compiling and executing programs;
//   * handler-exec speedup >= 5x.
//
// Results go to BENCH_vm_exec.json; EXPERIMENTS.md records the
// reference run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "codegen/ir.hpp"
#include "core/batch.hpp"
#include "core/generated_icmp.hpp"
#include "net/ipv4.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/schema_env.hpp"
#include "runtime/vm/exec.hpp"
#include "runtime/vm/program.hpp"
#include "sim/ping.hpp"

namespace {

using namespace sage;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

runtime::SchemaExecEnv make_env(std::span<const std::uint8_t> request,
                                net::IpAddr own) {
  auto env =
      runtime::SchemaExecEnv::icmp(request, own, /*start_from_incoming=*/true);
  env.set_scenario("echo");
  return env;
}

/// Gated workload: repeated execution of the handler body against one
/// live environment. Returns runs/s.
double measure_tree_exec(const runtime::Interpreter& interp,
                         const codegen::Stmt& body, runtime::SchemaExecEnv& env,
                         std::size_t runs) {
  std::size_t sink = 0;
  const double start = now_ms();
  for (std::size_t i = 0; i < runs; ++i) {
    sink += interp.run(body, env).ok ? 1 : 0;
  }
  const double elapsed = now_ms() - start;
  if (sink != runs) std::printf("(tree handler reported errors?)\n");
  return static_cast<double>(runs) / (elapsed / 1000.0);
}

double measure_vm_exec(const runtime::vm::Program& program,
                       runtime::SchemaExecEnv& env, std::size_t runs) {
  std::size_t sink = 0;
  const double start = now_ms();
  for (std::size_t i = 0; i < runs; ++i) {
    sink += runtime::vm::execute(program, env).ok ? 1 : 0;
  }
  const double elapsed = now_ms() - start;
  if (sink != runs) std::printf("(vm handler reported errors?)\n");
  return static_cast<double>(runs) / (elapsed / 1000.0);
}

/// Context workload: full respond path per packet, as a deployed
/// responder would run it. Returns packets/s.
template <typename RunOnce>
double measure_full_path(std::span<const std::uint8_t> request,
                         net::IpAddr own, std::size_t packets,
                         RunOnce&& run_once) {
  std::size_t sink = 0;
  const double start = now_ms();
  for (std::size_t i = 0; i < packets; ++i) {
    auto env = make_env(request, own);
    run_once(env);
    sink += env.finish_reply().size();
  }
  const double elapsed = now_ms() - start;
  if (sink == 0) std::printf("(empty replies?)\n");
  return static_cast<double>(packets) / (elapsed / 1000.0);
}

}  // namespace

int main() {
  benchutil::title("VM handler execution",
                   "tree-walking interpreter vs threaded-code programs");

  const auto& run = core::canonical_icmp_run();
  const std::string sig_before = core::protocol_run_signature(run);

  const codegen::GeneratedFunction* echo = nullptr;
  for (const auto& fn : run.functions) {
    if (fn.name.find("echo") != std::string::npos && fn.role == "receiver") {
      echo = &fn;
    }
  }
  if (echo == nullptr) {
    std::printf("no generated echo receiver found (functions=%zu)\n",
                run.functions.size());
    return 1;
  }
  benchutil::row("generated handler", echo->name);
  benchutil::row("dispatcher", runtime::vm::have_computed_goto()
                                   ? "computed goto"
                                   : "portable switch");

  const auto own = net::IpAddr(10, 0, 1, 1);
  const auto request = sim::PingClient::make_echo_request(
      net::IpAddr(10, 0, 1, 100), own, {});
  const runtime::Interpreter interp;

  // Equivalence gate: every generated function must agree across
  // backends — same success bit, same error list, byte-identical reply.
  std::size_t compiled = 0;
  for (const auto& fn : run.functions) {
    auto program = runtime::vm::compile(fn);
    if (!program.has_value()) {
      std::printf("FAIL: %s did not compile to a program\n", fn.name.c_str());
      return 1;
    }
    ++compiled;
    auto tree_env = make_env(request, own);
    auto vm_env = make_env(request, own);
    const auto tree_result = interp.run(fn.body, tree_env);
    const auto vm_result = runtime::vm::execute(*program, vm_env);
    if (tree_result.ok != vm_result.ok ||
        tree_result.errors != vm_result.errors ||
        tree_env.finish_reply() != vm_env.finish_reply()) {
      std::printf("FAIL: backends disagree on %s\n", fn.name.c_str());
      return 1;
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "%zu functions byte-identical", compiled);
  benchutil::row("equivalence", buf);

  const auto program = runtime::vm::compile(*echo);
  if (!program.has_value()) return 1;
  std::snprintf(buf, sizeof buf, "%zu insns, %zu bytes, stack %u",
                program->code().size(), program->program_bytes(),
                program->max_stack());
  benchutil::row("compiled program", buf);

  // SAGE_BENCH_VM_TRACE=1 dumps the program listing and a one-run op
  // histogram — for eyeballing what the gate actually measures.
  if (std::getenv("SAGE_BENCH_VM_TRACE") != nullptr) {
    std::printf("%s\n", program->disassemble().c_str());
    runtime::vm::reset_op_counts();
    runtime::vm::set_op_counting(true);
    auto env = make_env(request, own);
    runtime::vm::execute(*program, env);
    runtime::vm::set_op_counting(false);
    const auto counts = runtime::vm::op_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) {
        std::printf("  %-16s %llu\n",
                    runtime::vm::op_name(static_cast<runtime::vm::Op>(i)),
                    static_cast<unsigned long long>(counts[i]));
      }
    }
    // Empty-body program: measures the per-run fixed cost of execute().
    codegen::GeneratedFunction empty_fn;
    empty_fn.name = "empty";
    empty_fn.protocol = "ICMP";
    empty_fn.body = codegen::Stmt::seq({});
    if (auto empty = runtime::vm::compile(empty_fn)) {
      auto henv = make_env(request, own);
      const double halt_pps = measure_vm_exec(*empty, henv, 2000000);
      std::printf("  halt-only: %.0f runs/s (%.1f ns fixed)\n", halt_pps,
                  1e9 / halt_pps);
    }
  }

  constexpr std::size_t kWarmup = 20000;
  constexpr std::size_t kPackets = 200000;
  constexpr int kTrials = 5;

  auto tree_env = make_env(request, own);
  auto vm_env = make_env(request, own);
  measure_tree_exec(interp, echo->body, tree_env, kWarmup);
  measure_vm_exec(*program, vm_env, kWarmup);
  // Interleaved best-of-N: peak throughput per backend, so a noisy
  // neighbor in one trial cannot skew the ratio.
  double tree_pps = 0.0;
  double threaded_pps = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    tree_pps = std::max(
        tree_pps, measure_tree_exec(interp, echo->body, tree_env, kPackets));
    threaded_pps =
        std::max(threaded_pps, measure_vm_exec(*program, vm_env, kPackets));
  }
  const double speedup = threaded_pps / tree_pps;

  std::snprintf(buf, sizeof buf, "%.0f runs/s", tree_pps);
  benchutil::row("handler exec, tree backend", buf);
  std::snprintf(buf, sizeof buf, "%.0f runs/s", threaded_pps);
  benchutil::row("handler exec, threaded backend", buf);
  std::snprintf(buf, sizeof buf, "%.2fx (target >= 5x)", speedup);
  benchutil::row("handler-exec speedup", buf);

  // Context: the full respond path (env build + exec + serialization).
  constexpr std::size_t kFullPackets = 50000;
  double full_tree_pps = 0.0;
  double full_vm_pps = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    full_tree_pps = std::max(
        full_tree_pps,
        measure_full_path(request, own, kFullPackets,
                          [&](runtime::SchemaExecEnv& env) {
                            interp.run(echo->body, env);
                          }));
    full_vm_pps = std::max(
        full_vm_pps,
        measure_full_path(request, own, kFullPackets,
                          [&](runtime::SchemaExecEnv& env) {
                            runtime::vm::execute(*program, env);
                          }));
  }
  std::snprintf(buf, sizeof buf, "%.0f packets/s", full_tree_pps);
  benchutil::row("full respond path, tree backend", buf);
  std::snprintf(buf, sizeof buf, "%.0f packets/s (not gated)", full_vm_pps);
  benchutil::row("full respond path, threaded backend", buf);

  const bool sig_stable =
      core::protocol_run_signature(core::canonical_icmp_run()) == sig_before;
  benchutil::row("protocol_run_signature",
                 sig_stable ? "unchanged" : "CHANGED (fail)");

  FILE* json = std::fopen("BENCH_vm_exec.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"runs\": %zu,\n"
                 "  \"dispatcher\": \"%s\",\n"
                 "  \"functions_verified\": %zu,\n"
                 "  \"handler_exec_tree_pps\": %.1f,\n"
                 "  \"handler_exec_threaded_pps\": %.1f,\n"
                 "  \"handler_exec_speedup\": %.3f,\n"
                 "  \"full_path_tree_pps\": %.1f,\n"
                 "  \"full_path_threaded_pps\": %.1f,\n"
                 "  \"full_path_speedup\": %.3f,\n"
                 "  \"signature_stable\": %s\n"
                 "}\n",
                 kPackets,
                 runtime::vm::have_computed_goto() ? "computed-goto" : "switch",
                 compiled, tree_pps, threaded_pps, speedup, full_tree_pps,
                 full_vm_pps, full_vm_pps / full_tree_pps,
                 sig_stable ? "true" : "false");
    std::fclose(json);
    benchutil::row("written", "BENCH_vm_exec.json");
    benchutil::commit_scorecard("BENCH_vm_exec.json");
  }
  return (speedup >= 5.0 && sig_stable) ? 0 : 1;
}

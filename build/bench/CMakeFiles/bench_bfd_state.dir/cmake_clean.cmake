file(REMOVE_RECURSE
  "CMakeFiles/bench_bfd_state.dir/bench_bfd_state.cpp.o"
  "CMakeFiles/bench_bfd_state.dir/bench_bfd_state.cpp.o.d"
  "bench_bfd_state"
  "bench_bfd_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bfd_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

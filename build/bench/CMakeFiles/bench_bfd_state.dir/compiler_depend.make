# Empty compiler generated dependencies file for bench_bfd_state.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_check_order_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_interop.dir/bench_e2e_interop.cpp.o"
  "CMakeFiles/bench_e2e_interop.dir/bench_e2e_interop.cpp.o.d"
  "bench_e2e_interop"
  "bench_e2e_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_winnowing.dir/bench_fig5_winnowing.cpp.o"
  "CMakeFiles/bench_fig5_winnowing.dir/bench_fig5_winnowing.cpp.o.d"
  "bench_fig5_winnowing"
  "bench_fig5_winnowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_winnowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_per_check.dir/bench_fig6_per_check.cpp.o"
  "CMakeFiles/bench_fig6_per_check.dir/bench_fig6_per_check.cpp.o.d"
  "bench_fig6_per_check"
  "bench_fig6_per_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_per_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

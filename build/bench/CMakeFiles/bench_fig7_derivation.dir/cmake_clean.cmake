file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_derivation.dir/bench_fig7_derivation.cpp.o"
  "CMakeFiles/bench_fig7_derivation.dir/bench_fig7_derivation.cpp.o.d"
  "bench_fig7_derivation"
  "bench_fig7_derivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

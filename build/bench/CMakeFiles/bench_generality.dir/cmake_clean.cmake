file(REMOVE_RECURSE
  "CMakeFiles/bench_generality.dir/bench_generality.cpp.o"
  "CMakeFiles/bench_generality.dir/bench_generality.cpp.o.d"
  "bench_generality"
  "bench_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_implementation_stats.dir/bench_implementation_stats.cpp.o"
  "CMakeFiles/bench_implementation_stats.dir/bench_implementation_stats.cpp.o.d"
  "bench_implementation_stats"
  "bench_implementation_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_implementation_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_implementation_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_ntp_code.dir/bench_table11_ntp_code.cpp.o"
  "CMakeFiles/bench_table11_ntp_code.dir/bench_table11_ntp_code.cpp.o.d"
  "bench_table11_ntp_code"
  "bench_table11_ntp_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_ntp_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table11_ntp_code.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_student_errors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_checksum_interp.dir/bench_table3_checksum_interp.cpp.o"
  "CMakeFiles/bench_table3_checksum_interp.dir/bench_table3_checksum_interp.cpp.o.d"
  "bench_table3_checksum_interp"
  "bench_table3_checksum_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_checksum_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

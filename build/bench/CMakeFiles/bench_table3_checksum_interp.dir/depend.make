# Empty dependencies file for bench_table3_checksum_interp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lf_to_code.dir/bench_table4_lf_to_code.cpp.o"
  "CMakeFiles/bench_table4_lf_to_code.dir/bench_table4_lf_to_code.cpp.o.d"
  "bench_table4_lf_to_code"
  "bench_table4_lf_to_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lf_to_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table4_lf_to_code.
# This may be replaced when dependencies are built.

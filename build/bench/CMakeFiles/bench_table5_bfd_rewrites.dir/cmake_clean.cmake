file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_bfd_rewrites.dir/bench_table5_bfd_rewrites.cpp.o"
  "CMakeFiles/bench_table5_bfd_rewrites.dir/bench_table5_bfd_rewrites.cpp.o.d"
  "bench_table5_bfd_rewrites"
  "bench_table5_bfd_rewrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_bfd_rewrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table5_bfd_rewrites.
# This may be replaced when dependencies are built.

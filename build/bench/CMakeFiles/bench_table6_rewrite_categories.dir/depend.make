# Empty dependencies file for bench_table6_rewrite_categories.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_np_labels.dir/bench_table7_np_labels.cpp.o"
  "CMakeFiles/bench_table7_np_labels.dir/bench_table7_np_labels.cpp.o.d"
  "bench_table7_np_labels"
  "bench_table7_np_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_np_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table7_np_labels.
# This may be replaced when dependencies are built.

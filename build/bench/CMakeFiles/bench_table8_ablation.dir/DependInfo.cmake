
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table8_ablation.cpp" "bench/CMakeFiles/bench_table8_ablation.dir/bench_table8_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_table8_ablation.dir/bench_table8_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sage_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sage_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/sage_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sage_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/sage_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/rfc/CMakeFiles/sage_rfc.dir/DependInfo.cmake"
  "/root/repo/build/src/disambig/CMakeFiles/sage_disambig.dir/DependInfo.cmake"
  "/root/repo/build/src/ccg/CMakeFiles/sage_ccg.dir/DependInfo.cmake"
  "/root/repo/build/src/lf/CMakeFiles/sage_lf.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/sage_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sage_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sage_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_10_components.dir/bench_table9_10_components.cpp.o"
  "CMakeFiles/bench_table9_10_components.dir/bench_table9_10_components.cpp.o.d"
  "bench_table9_10_components"
  "bench_table9_10_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_10_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

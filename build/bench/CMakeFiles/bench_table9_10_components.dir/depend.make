# Empty dependencies file for bench_table9_10_components.
# This may be replaced when dependencies are built.

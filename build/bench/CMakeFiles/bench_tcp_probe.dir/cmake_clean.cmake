file(REMOVE_RECURSE
  "CMakeFiles/bench_tcp_probe.dir/bench_tcp_probe.cpp.o"
  "CMakeFiles/bench_tcp_probe.dir/bench_tcp_probe.cpp.o.d"
  "bench_tcp_probe"
  "bench_tcp_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcp_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_tcp_probe.
# This may be replaced when dependencies are built.

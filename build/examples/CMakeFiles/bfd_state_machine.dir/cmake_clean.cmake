file(REMOVE_RECURSE
  "CMakeFiles/bfd_state_machine.dir/bfd_state_machine.cpp.o"
  "CMakeFiles/bfd_state_machine.dir/bfd_state_machine.cpp.o.d"
  "bfd_state_machine"
  "bfd_state_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfd_state_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

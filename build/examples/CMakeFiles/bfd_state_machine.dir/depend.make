# Empty dependencies file for bfd_state_machine.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/header_extract.dir/header_extract.cpp.o"
  "CMakeFiles/header_extract.dir/header_extract.cpp.o.d"
  "header_extract"
  "header_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/header_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

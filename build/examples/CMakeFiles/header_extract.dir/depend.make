# Empty dependencies file for header_extract.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/icmp_pipeline.dir/icmp_pipeline.cpp.o"
  "CMakeFiles/icmp_pipeline.dir/icmp_pipeline.cpp.o.d"
  "icmp_pipeline"
  "icmp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icmp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

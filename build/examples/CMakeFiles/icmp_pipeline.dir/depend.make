# Empty dependencies file for icmp_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rfc_lint.dir/rfc_lint.cpp.o"
  "CMakeFiles/rfc_lint.dir/rfc_lint.cpp.o.d"
  "rfc_lint"
  "rfc_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfc_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rfc_lint.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/spec2code.dir/spec2code.cpp.o"
  "CMakeFiles/spec2code.dir/spec2code.cpp.o.d"
  "spec2code"
  "spec2code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec2code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for spec2code.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccg/category.cpp" "src/ccg/CMakeFiles/sage_ccg.dir/category.cpp.o" "gcc" "src/ccg/CMakeFiles/sage_ccg.dir/category.cpp.o.d"
  "/root/repo/src/ccg/lexicon.cpp" "src/ccg/CMakeFiles/sage_ccg.dir/lexicon.cpp.o" "gcc" "src/ccg/CMakeFiles/sage_ccg.dir/lexicon.cpp.o.d"
  "/root/repo/src/ccg/parser.cpp" "src/ccg/CMakeFiles/sage_ccg.dir/parser.cpp.o" "gcc" "src/ccg/CMakeFiles/sage_ccg.dir/parser.cpp.o.d"
  "/root/repo/src/ccg/term.cpp" "src/ccg/CMakeFiles/sage_ccg.dir/term.cpp.o" "gcc" "src/ccg/CMakeFiles/sage_ccg.dir/term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lf/CMakeFiles/sage_lf.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/sage_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

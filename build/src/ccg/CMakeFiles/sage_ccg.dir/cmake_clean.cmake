file(REMOVE_RECURSE
  "CMakeFiles/sage_ccg.dir/category.cpp.o"
  "CMakeFiles/sage_ccg.dir/category.cpp.o.d"
  "CMakeFiles/sage_ccg.dir/lexicon.cpp.o"
  "CMakeFiles/sage_ccg.dir/lexicon.cpp.o.d"
  "CMakeFiles/sage_ccg.dir/parser.cpp.o"
  "CMakeFiles/sage_ccg.dir/parser.cpp.o.d"
  "CMakeFiles/sage_ccg.dir/term.cpp.o"
  "CMakeFiles/sage_ccg.dir/term.cpp.o.d"
  "libsage_ccg.a"
  "libsage_ccg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_ccg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsage_ccg.a"
)

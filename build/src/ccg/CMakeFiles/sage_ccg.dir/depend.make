# Empty dependencies file for sage_ccg.
# This may be replaced when dependencies are built.

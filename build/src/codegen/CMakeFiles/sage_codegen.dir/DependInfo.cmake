
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/c_unit.cpp" "src/codegen/CMakeFiles/sage_codegen.dir/c_unit.cpp.o" "gcc" "src/codegen/CMakeFiles/sage_codegen.dir/c_unit.cpp.o.d"
  "/root/repo/src/codegen/context.cpp" "src/codegen/CMakeFiles/sage_codegen.dir/context.cpp.o" "gcc" "src/codegen/CMakeFiles/sage_codegen.dir/context.cpp.o.d"
  "/root/repo/src/codegen/emitter.cpp" "src/codegen/CMakeFiles/sage_codegen.dir/emitter.cpp.o" "gcc" "src/codegen/CMakeFiles/sage_codegen.dir/emitter.cpp.o.d"
  "/root/repo/src/codegen/generator.cpp" "src/codegen/CMakeFiles/sage_codegen.dir/generator.cpp.o" "gcc" "src/codegen/CMakeFiles/sage_codegen.dir/generator.cpp.o.d"
  "/root/repo/src/codegen/handlers.cpp" "src/codegen/CMakeFiles/sage_codegen.dir/handlers.cpp.o" "gcc" "src/codegen/CMakeFiles/sage_codegen.dir/handlers.cpp.o.d"
  "/root/repo/src/codegen/ir.cpp" "src/codegen/CMakeFiles/sage_codegen.dir/ir.cpp.o" "gcc" "src/codegen/CMakeFiles/sage_codegen.dir/ir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lf/CMakeFiles/sage_lf.dir/DependInfo.cmake"
  "/root/repo/build/src/rfc/CMakeFiles/sage_rfc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/sage_nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

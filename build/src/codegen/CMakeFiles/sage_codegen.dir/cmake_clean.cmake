file(REMOVE_RECURSE
  "CMakeFiles/sage_codegen.dir/c_unit.cpp.o"
  "CMakeFiles/sage_codegen.dir/c_unit.cpp.o.d"
  "CMakeFiles/sage_codegen.dir/context.cpp.o"
  "CMakeFiles/sage_codegen.dir/context.cpp.o.d"
  "CMakeFiles/sage_codegen.dir/emitter.cpp.o"
  "CMakeFiles/sage_codegen.dir/emitter.cpp.o.d"
  "CMakeFiles/sage_codegen.dir/generator.cpp.o"
  "CMakeFiles/sage_codegen.dir/generator.cpp.o.d"
  "CMakeFiles/sage_codegen.dir/handlers.cpp.o"
  "CMakeFiles/sage_codegen.dir/handlers.cpp.o.d"
  "CMakeFiles/sage_codegen.dir/ir.cpp.o"
  "CMakeFiles/sage_codegen.dir/ir.cpp.o.d"
  "libsage_codegen.a"
  "libsage_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

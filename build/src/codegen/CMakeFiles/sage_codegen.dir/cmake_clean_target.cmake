file(REMOVE_RECURSE
  "libsage_codegen.a"
)

# Empty compiler generated dependencies file for sage_codegen.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/lexicon_data.cpp" "src/corpus/CMakeFiles/sage_corpus.dir/lexicon_data.cpp.o" "gcc" "src/corpus/CMakeFiles/sage_corpus.dir/lexicon_data.cpp.o.d"
  "/root/repo/src/corpus/rfc1059.cpp" "src/corpus/CMakeFiles/sage_corpus.dir/rfc1059.cpp.o" "gcc" "src/corpus/CMakeFiles/sage_corpus.dir/rfc1059.cpp.o.d"
  "/root/repo/src/corpus/rfc1112.cpp" "src/corpus/CMakeFiles/sage_corpus.dir/rfc1112.cpp.o" "gcc" "src/corpus/CMakeFiles/sage_corpus.dir/rfc1112.cpp.o.d"
  "/root/repo/src/corpus/rfc5880.cpp" "src/corpus/CMakeFiles/sage_corpus.dir/rfc5880.cpp.o" "gcc" "src/corpus/CMakeFiles/sage_corpus.dir/rfc5880.cpp.o.d"
  "/root/repo/src/corpus/rfc792.cpp" "src/corpus/CMakeFiles/sage_corpus.dir/rfc792.cpp.o" "gcc" "src/corpus/CMakeFiles/sage_corpus.dir/rfc792.cpp.o.d"
  "/root/repo/src/corpus/rfc793.cpp" "src/corpus/CMakeFiles/sage_corpus.dir/rfc793.cpp.o" "gcc" "src/corpus/CMakeFiles/sage_corpus.dir/rfc793.cpp.o.d"
  "/root/repo/src/corpus/terms.cpp" "src/corpus/CMakeFiles/sage_corpus.dir/terms.cpp.o" "gcc" "src/corpus/CMakeFiles/sage_corpus.dir/terms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccg/CMakeFiles/sage_ccg.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/sage_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lf/CMakeFiles/sage_lf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

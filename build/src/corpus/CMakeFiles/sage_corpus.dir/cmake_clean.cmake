file(REMOVE_RECURSE
  "CMakeFiles/sage_corpus.dir/lexicon_data.cpp.o"
  "CMakeFiles/sage_corpus.dir/lexicon_data.cpp.o.d"
  "CMakeFiles/sage_corpus.dir/rfc1059.cpp.o"
  "CMakeFiles/sage_corpus.dir/rfc1059.cpp.o.d"
  "CMakeFiles/sage_corpus.dir/rfc1112.cpp.o"
  "CMakeFiles/sage_corpus.dir/rfc1112.cpp.o.d"
  "CMakeFiles/sage_corpus.dir/rfc5880.cpp.o"
  "CMakeFiles/sage_corpus.dir/rfc5880.cpp.o.d"
  "CMakeFiles/sage_corpus.dir/rfc792.cpp.o"
  "CMakeFiles/sage_corpus.dir/rfc792.cpp.o.d"
  "CMakeFiles/sage_corpus.dir/rfc793.cpp.o"
  "CMakeFiles/sage_corpus.dir/rfc793.cpp.o.d"
  "CMakeFiles/sage_corpus.dir/terms.cpp.o"
  "CMakeFiles/sage_corpus.dir/terms.cpp.o.d"
  "libsage_corpus.a"
  "libsage_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

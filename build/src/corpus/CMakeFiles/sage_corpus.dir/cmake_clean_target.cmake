file(REMOVE_RECURSE
  "libsage_corpus.a"
)

# Empty compiler generated dependencies file for sage_corpus.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disambig/checks.cpp" "src/disambig/CMakeFiles/sage_disambig.dir/checks.cpp.o" "gcc" "src/disambig/CMakeFiles/sage_disambig.dir/checks.cpp.o.d"
  "/root/repo/src/disambig/winnower.cpp" "src/disambig/CMakeFiles/sage_disambig.dir/winnower.cpp.o" "gcc" "src/disambig/CMakeFiles/sage_disambig.dir/winnower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lf/CMakeFiles/sage_lf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

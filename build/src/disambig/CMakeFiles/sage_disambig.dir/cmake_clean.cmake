file(REMOVE_RECURSE
  "CMakeFiles/sage_disambig.dir/checks.cpp.o"
  "CMakeFiles/sage_disambig.dir/checks.cpp.o.d"
  "CMakeFiles/sage_disambig.dir/winnower.cpp.o"
  "CMakeFiles/sage_disambig.dir/winnower.cpp.o.d"
  "libsage_disambig.a"
  "libsage_disambig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_disambig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsage_disambig.a"
)

# Empty compiler generated dependencies file for sage_disambig.
# This may be replaced when dependencies are built.

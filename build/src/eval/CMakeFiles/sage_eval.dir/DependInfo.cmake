
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/checksum_interp.cpp" "src/eval/CMakeFiles/sage_eval.dir/checksum_interp.cpp.o" "gcc" "src/eval/CMakeFiles/sage_eval.dir/checksum_interp.cpp.o.d"
  "/root/repo/src/eval/components.cpp" "src/eval/CMakeFiles/sage_eval.dir/components.cpp.o" "gcc" "src/eval/CMakeFiles/sage_eval.dir/components.cpp.o.d"
  "/root/repo/src/eval/interop_harness.cpp" "src/eval/CMakeFiles/sage_eval.dir/interop_harness.cpp.o" "gcc" "src/eval/CMakeFiles/sage_eval.dir/interop_harness.cpp.o.d"
  "/root/repo/src/eval/students.cpp" "src/eval/CMakeFiles/sage_eval.dir/students.cpp.o" "gcc" "src/eval/CMakeFiles/sage_eval.dir/students.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sage_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sage_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sage_eval.dir/checksum_interp.cpp.o"
  "CMakeFiles/sage_eval.dir/checksum_interp.cpp.o.d"
  "CMakeFiles/sage_eval.dir/components.cpp.o"
  "CMakeFiles/sage_eval.dir/components.cpp.o.d"
  "CMakeFiles/sage_eval.dir/interop_harness.cpp.o"
  "CMakeFiles/sage_eval.dir/interop_harness.cpp.o.d"
  "CMakeFiles/sage_eval.dir/students.cpp.o"
  "CMakeFiles/sage_eval.dir/students.cpp.o.d"
  "libsage_eval.a"
  "libsage_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsage_eval.a"
)

# Empty dependencies file for sage_eval.
# This may be replaced when dependencies are built.

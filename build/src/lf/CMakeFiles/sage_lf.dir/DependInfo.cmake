
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lf/isomorphism.cpp" "src/lf/CMakeFiles/sage_lf.dir/isomorphism.cpp.o" "gcc" "src/lf/CMakeFiles/sage_lf.dir/isomorphism.cpp.o.d"
  "/root/repo/src/lf/logical_form.cpp" "src/lf/CMakeFiles/sage_lf.dir/logical_form.cpp.o" "gcc" "src/lf/CMakeFiles/sage_lf.dir/logical_form.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

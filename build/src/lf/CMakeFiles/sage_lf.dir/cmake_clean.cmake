file(REMOVE_RECURSE
  "CMakeFiles/sage_lf.dir/isomorphism.cpp.o"
  "CMakeFiles/sage_lf.dir/isomorphism.cpp.o.d"
  "CMakeFiles/sage_lf.dir/logical_form.cpp.o"
  "CMakeFiles/sage_lf.dir/logical_form.cpp.o.d"
  "libsage_lf.a"
  "libsage_lf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_lf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsage_lf.a"
)

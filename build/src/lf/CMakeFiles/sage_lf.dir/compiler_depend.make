# Empty compiler generated dependencies file for sage_lf.
# This may be replaced when dependencies are built.

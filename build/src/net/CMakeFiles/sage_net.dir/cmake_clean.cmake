file(REMOVE_RECURSE
  "CMakeFiles/sage_net.dir/bfd.cpp.o"
  "CMakeFiles/sage_net.dir/bfd.cpp.o.d"
  "CMakeFiles/sage_net.dir/checksum.cpp.o"
  "CMakeFiles/sage_net.dir/checksum.cpp.o.d"
  "CMakeFiles/sage_net.dir/icmp.cpp.o"
  "CMakeFiles/sage_net.dir/icmp.cpp.o.d"
  "CMakeFiles/sage_net.dir/igmp.cpp.o"
  "CMakeFiles/sage_net.dir/igmp.cpp.o.d"
  "CMakeFiles/sage_net.dir/ipv4.cpp.o"
  "CMakeFiles/sage_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/sage_net.dir/ntp.cpp.o"
  "CMakeFiles/sage_net.dir/ntp.cpp.o.d"
  "CMakeFiles/sage_net.dir/pcap.cpp.o"
  "CMakeFiles/sage_net.dir/pcap.cpp.o.d"
  "CMakeFiles/sage_net.dir/udp.cpp.o"
  "CMakeFiles/sage_net.dir/udp.cpp.o.d"
  "libsage_net.a"
  "libsage_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sage_net.
# This may be replaced when dependencies are built.

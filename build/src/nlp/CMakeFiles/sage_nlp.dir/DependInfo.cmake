
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/chunker.cpp" "src/nlp/CMakeFiles/sage_nlp.dir/chunker.cpp.o" "gcc" "src/nlp/CMakeFiles/sage_nlp.dir/chunker.cpp.o.d"
  "/root/repo/src/nlp/sentence_splitter.cpp" "src/nlp/CMakeFiles/sage_nlp.dir/sentence_splitter.cpp.o" "gcc" "src/nlp/CMakeFiles/sage_nlp.dir/sentence_splitter.cpp.o.d"
  "/root/repo/src/nlp/term_dictionary.cpp" "src/nlp/CMakeFiles/sage_nlp.dir/term_dictionary.cpp.o" "gcc" "src/nlp/CMakeFiles/sage_nlp.dir/term_dictionary.cpp.o.d"
  "/root/repo/src/nlp/tokenizer.cpp" "src/nlp/CMakeFiles/sage_nlp.dir/tokenizer.cpp.o" "gcc" "src/nlp/CMakeFiles/sage_nlp.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sage_nlp.dir/chunker.cpp.o"
  "CMakeFiles/sage_nlp.dir/chunker.cpp.o.d"
  "CMakeFiles/sage_nlp.dir/sentence_splitter.cpp.o"
  "CMakeFiles/sage_nlp.dir/sentence_splitter.cpp.o.d"
  "CMakeFiles/sage_nlp.dir/term_dictionary.cpp.o"
  "CMakeFiles/sage_nlp.dir/term_dictionary.cpp.o.d"
  "CMakeFiles/sage_nlp.dir/tokenizer.cpp.o"
  "CMakeFiles/sage_nlp.dir/tokenizer.cpp.o.d"
  "libsage_nlp.a"
  "libsage_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsage_nlp.a"
)

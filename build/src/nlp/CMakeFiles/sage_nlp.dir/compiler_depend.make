# Empty compiler generated dependencies file for sage_nlp.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfc/ascii_art.cpp" "src/rfc/CMakeFiles/sage_rfc.dir/ascii_art.cpp.o" "gcc" "src/rfc/CMakeFiles/sage_rfc.dir/ascii_art.cpp.o.d"
  "/root/repo/src/rfc/preprocessor.cpp" "src/rfc/CMakeFiles/sage_rfc.dir/preprocessor.cpp.o" "gcc" "src/rfc/CMakeFiles/sage_rfc.dir/preprocessor.cpp.o.d"
  "/root/repo/src/rfc/struct_gen.cpp" "src/rfc/CMakeFiles/sage_rfc.dir/struct_gen.cpp.o" "gcc" "src/rfc/CMakeFiles/sage_rfc.dir/struct_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nlp/CMakeFiles/sage_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

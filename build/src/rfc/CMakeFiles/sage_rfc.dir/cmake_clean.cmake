file(REMOVE_RECURSE
  "CMakeFiles/sage_rfc.dir/ascii_art.cpp.o"
  "CMakeFiles/sage_rfc.dir/ascii_art.cpp.o.d"
  "CMakeFiles/sage_rfc.dir/preprocessor.cpp.o"
  "CMakeFiles/sage_rfc.dir/preprocessor.cpp.o.d"
  "CMakeFiles/sage_rfc.dir/struct_gen.cpp.o"
  "CMakeFiles/sage_rfc.dir/struct_gen.cpp.o.d"
  "libsage_rfc.a"
  "libsage_rfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_rfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

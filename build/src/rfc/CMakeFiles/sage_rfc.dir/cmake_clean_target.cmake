file(REMOVE_RECURSE
  "libsage_rfc.a"
)

# Empty compiler generated dependencies file for sage_rfc.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/bfd_env.cpp" "src/runtime/CMakeFiles/sage_runtime.dir/bfd_env.cpp.o" "gcc" "src/runtime/CMakeFiles/sage_runtime.dir/bfd_env.cpp.o.d"
  "/root/repo/src/runtime/bfd_session.cpp" "src/runtime/CMakeFiles/sage_runtime.dir/bfd_session.cpp.o" "gcc" "src/runtime/CMakeFiles/sage_runtime.dir/bfd_session.cpp.o.d"
  "/root/repo/src/runtime/generated_responder.cpp" "src/runtime/CMakeFiles/sage_runtime.dir/generated_responder.cpp.o" "gcc" "src/runtime/CMakeFiles/sage_runtime.dir/generated_responder.cpp.o.d"
  "/root/repo/src/runtime/icmp_env.cpp" "src/runtime/CMakeFiles/sage_runtime.dir/icmp_env.cpp.o" "gcc" "src/runtime/CMakeFiles/sage_runtime.dir/icmp_env.cpp.o.d"
  "/root/repo/src/runtime/igmp_env.cpp" "src/runtime/CMakeFiles/sage_runtime.dir/igmp_env.cpp.o" "gcc" "src/runtime/CMakeFiles/sage_runtime.dir/igmp_env.cpp.o.d"
  "/root/repo/src/runtime/interpreter.cpp" "src/runtime/CMakeFiles/sage_runtime.dir/interpreter.cpp.o" "gcc" "src/runtime/CMakeFiles/sage_runtime.dir/interpreter.cpp.o.d"
  "/root/repo/src/runtime/ntp_env.cpp" "src/runtime/CMakeFiles/sage_runtime.dir/ntp_env.cpp.o" "gcc" "src/runtime/CMakeFiles/sage_runtime.dir/ntp_env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/sage_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sage_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sage_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lf/CMakeFiles/sage_lf.dir/DependInfo.cmake"
  "/root/repo/build/src/rfc/CMakeFiles/sage_rfc.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/sage_nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

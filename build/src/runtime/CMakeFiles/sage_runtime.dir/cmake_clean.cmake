file(REMOVE_RECURSE
  "CMakeFiles/sage_runtime.dir/bfd_env.cpp.o"
  "CMakeFiles/sage_runtime.dir/bfd_env.cpp.o.d"
  "CMakeFiles/sage_runtime.dir/bfd_session.cpp.o"
  "CMakeFiles/sage_runtime.dir/bfd_session.cpp.o.d"
  "CMakeFiles/sage_runtime.dir/generated_responder.cpp.o"
  "CMakeFiles/sage_runtime.dir/generated_responder.cpp.o.d"
  "CMakeFiles/sage_runtime.dir/icmp_env.cpp.o"
  "CMakeFiles/sage_runtime.dir/icmp_env.cpp.o.d"
  "CMakeFiles/sage_runtime.dir/igmp_env.cpp.o"
  "CMakeFiles/sage_runtime.dir/igmp_env.cpp.o.d"
  "CMakeFiles/sage_runtime.dir/interpreter.cpp.o"
  "CMakeFiles/sage_runtime.dir/interpreter.cpp.o.d"
  "CMakeFiles/sage_runtime.dir/ntp_env.cpp.o"
  "CMakeFiles/sage_runtime.dir/ntp_env.cpp.o.d"
  "libsage_runtime.a"
  "libsage_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

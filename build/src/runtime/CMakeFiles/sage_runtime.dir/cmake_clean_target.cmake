file(REMOVE_RECURSE
  "libsage_runtime.a"
)

# Empty dependencies file for sage_runtime.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/inspector.cpp" "src/sim/CMakeFiles/sage_sim.dir/inspector.cpp.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/inspector.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/sage_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/ping.cpp" "src/sim/CMakeFiles/sage_sim.dir/ping.cpp.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/ping.cpp.o.d"
  "/root/repo/src/sim/reference_responder.cpp" "src/sim/CMakeFiles/sage_sim.dir/reference_responder.cpp.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/reference_responder.cpp.o.d"
  "/root/repo/src/sim/traceroute.cpp" "src/sim/CMakeFiles/sage_sim.dir/traceroute.cpp.o" "gcc" "src/sim/CMakeFiles/sage_sim.dir/traceroute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sage_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

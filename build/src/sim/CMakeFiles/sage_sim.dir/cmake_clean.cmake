file(REMOVE_RECURSE
  "CMakeFiles/sage_sim.dir/inspector.cpp.o"
  "CMakeFiles/sage_sim.dir/inspector.cpp.o.d"
  "CMakeFiles/sage_sim.dir/network.cpp.o"
  "CMakeFiles/sage_sim.dir/network.cpp.o.d"
  "CMakeFiles/sage_sim.dir/ping.cpp.o"
  "CMakeFiles/sage_sim.dir/ping.cpp.o.d"
  "CMakeFiles/sage_sim.dir/reference_responder.cpp.o"
  "CMakeFiles/sage_sim.dir/reference_responder.cpp.o.d"
  "CMakeFiles/sage_sim.dir/traceroute.cpp.o"
  "CMakeFiles/sage_sim.dir/traceroute.cpp.o.d"
  "libsage_sim.a"
  "libsage_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

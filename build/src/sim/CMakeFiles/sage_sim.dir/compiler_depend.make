# Empty compiler generated dependencies file for sage_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sage_util.dir/hexdump.cpp.o"
  "CMakeFiles/sage_util.dir/hexdump.cpp.o.d"
  "CMakeFiles/sage_util.dir/strings.cpp.o"
  "CMakeFiles/sage_util.dir/strings.cpp.o.d"
  "libsage_util.a"
  "libsage_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

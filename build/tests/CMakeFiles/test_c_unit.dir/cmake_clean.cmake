file(REMOVE_RECURSE
  "CMakeFiles/test_c_unit.dir/test_c_unit.cpp.o"
  "CMakeFiles/test_c_unit.dir/test_c_unit.cpp.o.d"
  "test_c_unit"
  "test_c_unit.pdb"
  "test_c_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_c_unit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_disambig.dir/test_disambig.cpp.o"
  "CMakeFiles/test_disambig.dir/test_disambig.cpp.o.d"
  "test_disambig"
  "test_disambig.pdb"
  "test_disambig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disambig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_disambig.
# This may be replaced when dependencies are built.

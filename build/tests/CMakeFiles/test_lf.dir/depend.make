# Empty dependencies file for test_lf.
# This may be replaced when dependencies are built.

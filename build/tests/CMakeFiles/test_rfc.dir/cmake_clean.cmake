file(REMOVE_RECURSE
  "CMakeFiles/test_rfc.dir/test_rfc.cpp.o"
  "CMakeFiles/test_rfc.dir/test_rfc.cpp.o.d"
  "test_rfc"
  "test_rfc.pdb"
  "test_rfc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

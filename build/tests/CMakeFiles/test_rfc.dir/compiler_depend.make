# Empty compiler generated dependencies file for test_rfc.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nlp[1]_include.cmake")
include("/root/repo/build/tests/test_lf[1]_include.cmake")
include("/root/repo/build/tests/test_ccg[1]_include.cmake")
include("/root/repo/build/tests/test_disambig[1]_include.cmake")
include("/root/repo/build/tests/test_rfc[1]_include.cmake")
include("/root/repo/build/tests/test_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_c_unit[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/sage_debug.dir/sage_debug.cpp.o"
  "CMakeFiles/sage_debug.dir/sage_debug.cpp.o.d"
  "sage_debug"
  "sage_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sage_debug.
# This may be replaced when dependencies are built.

// bfd_state_machine: two BFD sessions, each driven entirely by code
// generated from RFC 5880 §6.8.6 text, bring a session Up through the
// three-way handshake by exchanging control packets.
#include <cstdio>

#include "core/sage.hpp"
#include "corpus/rfc5880.hpp"
#include "net/bfd.hpp"
#include "runtime/schema_env.hpp"
#include "runtime/interpreter.hpp"

namespace {

using namespace sage;

/// One BFD endpoint: session state + the generated reception code.
struct Endpoint {
  const char* name;
  net::BfdSessionState state;
  std::uint32_t discriminator;
};

net::BfdControlPacket make_packet(const Endpoint& from, const Endpoint& to) {
  net::BfdControlPacket p;
  p.state = from.state.session_state;
  p.my_discriminator = from.discriminator;
  p.your_discriminator = from.state.remote_discr;
  (void)to;
  return p;
}

}  // namespace

int main() {
  core::Sage sage;
  auto run = sage.process(corpus::rfc5880_state_section(), "BFD");
  std::printf("parsed %zu state-management sentences into %zu function(s)\n\n",
              run.reports.size(), run.functions.size());
  if (run.functions.empty()) return 1;
  const auto& fn = run.functions[0];
  std::printf("%s\n", fn.c_source.c_str());

  runtime::Interpreter interp;
  Endpoint a{"A", {}, 101};
  Endpoint b{"B", {}, 202};
  a.state.local_discr = a.discriminator;
  b.state.local_discr = b.discriminator;

  const auto deliver = [&](const Endpoint& from, Endpoint& to) {
    const auto packet = make_packet(from, to);
    auto env = runtime::SchemaExecEnv::bfd(&to.state, &packet);
    interp.run(fn.body, env);
    std::printf("%s --%s--> %s   | %s is now %s (remote %s, remote discr %u)\n",
                from.name, net::bfd_state_name(packet.state).c_str(), to.name,
                to.name, net::bfd_state_name(to.state.session_state).c_str(),
                net::bfd_state_name(to.state.remote_session_state).c_str(),
                to.state.remote_discr);
  };

  std::printf("== three-way handshake, both sessions start Down ==\n");
  deliver(a, b);  // A(Down) -> B: B goes Init
  deliver(b, a);  // B(Init) -> A: A goes Up
  deliver(a, b);  // A(Up)   -> B: B goes Up

  const bool up = a.state.session_state == net::BfdState::kUp &&
                  b.state.session_state == net::BfdState::kUp;
  std::printf("\nsessions: A=%s B=%s -> handshake %s\n",
              net::bfd_state_name(a.state.session_state).c_str(),
              net::bfd_state_name(b.state.session_state).c_str(),
              up ? "COMPLETE" : "INCOMPLETE");

  std::printf("\n== remote goes down ==\n");
  a.state.session_state = net::BfdState::kDown;  // A detects a failure
  deliver(a, b);
  std::printf("B session after remote Down: %s\n",
              net::bfd_state_name(b.state.session_state).c_str());
  return 0;
}

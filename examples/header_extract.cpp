// header_extract: the §3 "structural and non-textual elements" feature in
// isolation — parse the ASCII-art header diagrams of all four bundled
// RFCs and emit the C structs SAGE generates from them.
//
//   $ ./header_extract
//   $ ./header_extract path/to/spec.txt
#include <cstdio>
#include <fstream>
#include <sstream>

#include "corpus/rfc1059.hpp"
#include "corpus/rfc1112.hpp"
#include "corpus/rfc5880.hpp"
#include "corpus/rfc792.hpp"
#include "rfc/preprocessor.hpp"
#include "rfc/struct_gen.hpp"

namespace {

void extract(const std::string& title, const std::string& text) {
  using namespace sage;
  const auto doc = rfc::preprocess(text, title);
  std::printf("== %s ==\n", title.c_str());
  for (const auto& section : doc.sections) {
    if (!section.diagram) continue;
    std::printf("/* %s: %zu fields, %d fixed bits */\n",
                section.title.c_str(), section.diagram->fields.size(),
                section.diagram->fixed_bits());
    std::printf("%s\n",
                rfc::generate_c_struct(*section.diagram, section.title).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sage;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    extract(argv[1], buffer.str());
    return 0;
  }
  extract("RFC 792 (ICMP)", corpus::rfc792_original());
  extract("RFC 1112 (IGMP)", corpus::rfc1112_appendix_i());
  extract("RFC 1059 (NTP)", corpus::rfc1059_appendices());
  extract("RFC 5880 (BFD)", corpus::rfc5880_header_section());
  return 0;
}

// icmp_pipeline: the paper's headline scenario, end to end.
//
// Processes the (revised) RFC 792 text, prints the generated C source for
// every packet-handling function, installs the generated code in the
// simulated Appendix A network, and runs ping + traceroute against it,
// printing the tcpdump-style capture.
//
//   $ ./icmp_pipeline            # revised spec: everything passes
//   $ ./icmp_pipeline --original # original spec: see the ambiguities
#include <cstdio>
#include <cstring>

#include "core/sage.hpp"
#include "corpus/rfc792.hpp"
#include "runtime/generated_responder.hpp"
#include "sim/inspector.hpp"
#include "sim/network.hpp"
#include "sim/ping.hpp"
#include "sim/traceroute.hpp"

int main(int argc, char** argv) {
  using namespace sage;
  const bool original = argc > 1 && std::strcmp(argv[1], "--original") == 0;

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto run = sage.process(
      original ? corpus::rfc792_original() : corpus::rfc792_revised(), "ICMP");

  std::printf("== SAGE on RFC 792 (%s text) ==\n",
              original ? "original" : "revised");
  std::printf("instances: %zu | parsed: %zu | ambiguous: %zu | zero-LF: %zu | "
              "non-actionable: %zu\n\n",
              run.reports.size(), run.count(core::SentenceStatus::kParsed),
              run.count(core::SentenceStatus::kAmbiguous),
              run.count(core::SentenceStatus::kZeroForms),
              run.count(core::SentenceStatus::kNonActionable));

  if (original) {
    std::printf("Sentences needing the author's attention:\n");
    for (const auto& r : run.reports) {
      if (r.status == core::SentenceStatus::kAmbiguous ||
          r.status == core::SentenceStatus::kZeroForms) {
        std::printf("  [%s] %s\n",
                    core::sentence_status_name(r.status).c_str(),
                    r.sentence.text.c_str());
      }
    }
    std::printf("\nRe-run without --original to see the revised spec compile "
                "and interoperate.\n");
    return 0;
  }

  // Print every generated function.
  for (const auto& fn : run.functions) {
    std::printf("%s\n", fn.c_source.c_str());
  }

  // Install in the simulator and drive it.
  runtime::GeneratedIcmpResponder responder;
  for (const auto& fn : run.functions) responder.add_function(fn);

  sim::Network net = sim::make_appendix_a_network();
  net.router()->set_responder(&responder);
  net.find_host("server1")->set_responder(&responder);

  sim::PingClient ping;
  const auto echo = ping.ping(net, "client", net::IpAddr(192, 168, 2, 100));
  std::printf("== ping 192.168.2.100: %s ==\n",
              echo.success ? "OK" : "FAILED");

  sim::TracerouteClient traceroute;
  const auto trace =
      traceroute.trace(net, "client", net::IpAddr(192, 168, 2, 100));
  std::printf("== traceroute 192.168.2.100 ==\n");
  for (const auto& line : trace.detail) std::printf("  %s\n", line.c_str());

  std::printf("\n== capture (tcpdump model) ==\n");
  sim::PacketInspector inspector;
  for (const auto& result : inspector.inspect_pcap(net.capture_to_pcap())) {
    std::printf("  %s%s\n", result.summary.c_str(),
                result.clean() ? "" : "  <-- FLAGGED");
  }
  return 0;
}

// Quickstart: the SAGE pipeline on a single specification sentence.
//
//   $ ./quickstart
//   $ ./quickstart "If code = 0, the type is 3."
//
// Shows each stage: tokenization, noun-phrase labeling, CCG parsing
// (all logical forms), winnowing (which checks removed what), and code
// generation with the context dictionary.
#include <cstdio>
#include <string>

#include "codegen/emitter.hpp"
#include "codegen/generator.hpp"
#include "ccg/parser.hpp"
#include "core/sage.hpp"
#include "nlp/chunker.hpp"
#include "nlp/tokenizer.hpp"

int main(int argc, char** argv) {
  using namespace sage;

  const std::string sentence =
      argc > 1 ? argv[1]
               : "For computing the checksum, the checksum field should be "
                 "zero.";

  core::Sage sage;

  std::printf("SENTENCE\n  %s\n\n", sentence.c_str());

  // 1. Tokenize + label noun phrases.
  const nlp::NounPhraseChunker chunker(&sage.dictionary());
  const auto tokens = chunker.chunk(nlp::tokenize(sentence));
  std::printf("TOKENS (after noun-phrase labeling)\n  %s\n\n",
              nlp::tokens_to_string(tokens).c_str());

  // 2. Show the CCG derivation (the Appendix B / Figure 7 view).
  {
    ccg::ParserOptions options;
    options.record_derivations = true;
    const ccg::CcgParser parser(&sage.lexicon(), options);
    const auto parsed = parser.parse(tokens);
    if (!parsed.derivations.empty()) {
      std::printf("DERIVATION (first parse)\n%s\n",
                  parsed.derivations[0].to_string().c_str());
    }
  }

  // 3. Parse + winnow, with the dynamic context a real run would supply.
  rfc::SpecSentence spec;
  spec.text = sentence;
  spec.context["protocol"] = "ICMP";
  spec.context["message"] = "Echo or Echo Reply Message";
  spec.context["field"] = "Checksum";
  const auto report = sage.analyze_sentence(spec);

  std::printf("PARSING\n  %zu logical form%s before winnowing\n",
              report.base_forms, report.base_forms == 1 ? "" : "s");
  for (const auto& stage : report.winnow.stages) {
    std::printf("  after %-9s : %zu\n", stage.stage.c_str(), stage.remaining);
  }
  for (const auto& [check, removed] : report.winnow.removed_by_check) {
    std::printf("  %-40s removed %zu\n", check.c_str(), removed);
  }
  std::printf("\nSTATUS: %s\n",
              core::sentence_status_name(report.status).c_str());
  for (const auto& form : report.winnow.survivors) {
    std::printf("  LF: %s\n", form.to_string().c_str());
  }
  if (!report.unknown_tokens.empty()) {
    std::printf("  unknown words:");
    for (const auto& u : report.unknown_tokens) std::printf(" %s", u.c_str());
    std::printf("\n");
  }

  // 4. Generate code from the single surviving form.
  if (report.final_form) {
    const codegen::CodeGenerator generator(&sage.static_context(),
                                           &sage.handlers());
    codegen::SentenceLf entry;
    entry.form = *report.final_form;
    entry.context = codegen::DynamicContext::from_map(spec.context);
    entry.context.role = "receiver";
    entry.sentence = sentence;
    const auto outcome = generator.generate(
        "ICMP", spec.context["message"], "receiver", {&entry, 1});
    if (outcome.function) {
      std::printf("\nGENERATED CODE\n%s", outcome.function->c_source.c_str());
    } else if (!outcome.failed_sentences.empty()) {
      std::printf("\nCODE GENERATION FAILED (non-actionable candidate):\n  %s\n",
                  outcome.diagnostics.empty() ? "no diagnostic"
                                              : outcome.diagnostics[0].c_str());
    }
  }
  return 0;
}

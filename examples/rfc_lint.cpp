// rfc_lint: use SAGE as a specification linter — the "spec author" side
// of the paper's feedback loop (Figure 4).
//
//   $ ./rfc_lint path/to/spec.txt [PROTOCOL]
//   $ ./rfc_lint --demo            # lint the bundled original RFC 792
//
// Reports, per sentence: ambiguous (rewrite needed, with the competing
// logical forms so the author can see where the ambiguity lies — §6.5),
// unparseable (0 LFs, with unknown words), and non-actionable.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/sage.hpp"
#include "corpus/rfc792.hpp"

int main(int argc, char** argv) {
  using namespace sage;

  std::string text;
  std::string protocol = "ICMP";
  if (argc > 1 && std::strcmp(argv[1], "--demo") != 0) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    if (argc > 2) protocol = argv[2];
  } else {
    text = corpus::rfc792_original();
    std::printf("(linting the bundled original RFC 792; pass a file path to "
                "lint your own spec)\n\n");
  }

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto run = sage.process(text, protocol);

  int findings = 0;
  for (const auto& report : run.reports) {
    switch (report.status) {
      case core::SentenceStatus::kAmbiguous: {
        ++findings;
        std::printf("AMBIGUOUS (%zu readings survive winnowing):\n  \"%s\"\n",
                    report.winnow.survivors.size(),
                    report.sentence.text.c_str());
        // §6.5: "comparing these LFs can guide the users where the
        // ambiguity lies, thus guiding their revisions".
        for (const auto& form : report.winnow.survivors) {
          std::printf("    %s\n", form.to_string().c_str());
        }
        break;
      }
      case core::SentenceStatus::kZeroForms: {
        ++findings;
        std::printf("UNPARSEABLE (no logical form):\n  \"%s\"\n",
                    report.sentence.text.c_str());
        if (!report.unknown_tokens.empty()) {
          std::printf("    unknown words:");
          for (const auto& u : report.unknown_tokens) {
            std::printf(" %s", u.c_str());
          }
          std::printf("\n");
        }
        break;
      }
      default:
        break;
    }
  }
  for (const auto& discovered : run.discovered_non_actionable) {
    std::printf("NON-ACTIONABLE (discovered; will be tagged @AdvComment):\n"
                "  \"%s\"\n",
                discovered.c_str());
  }

  std::printf("\n%d finding%s across %zu sentence instances; "
              "%zu functions generated.\n",
              findings, findings == 1 ? "" : "s", run.reports.size(),
              run.functions.size());
  return findings == 0 ? 0 : 2;
}

// spec2code: the full SAGE promise as a command-line tool — RFC text in,
// compilable C out.
//
//   $ ./spec2code spec.txt PROTOCOL > generated.c && cc -c generated.c
//   $ ./spec2code --demo > icmp.c   # the bundled revised RFC 792
//
// The emitted translation unit contains the static framework
// declarations, the scenario constants, and one packet-handling function
// per (message, role); it compiles stand-alone with `cc -std=c99`.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "codegen/c_unit.hpp"
#include "core/sage.hpp"
#include "corpus/rfc792.hpp"

int main(int argc, char** argv) {
  using namespace sage;

  std::string text;
  std::string protocol = "ICMP";
  if (argc > 1 && std::strcmp(argv[1], "--demo") != 0) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    if (argc > 2) protocol = argv[2];
  } else {
    text = corpus::rfc792_revised();
  }

  core::Sage sage;
  sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
  const auto run = sage.process(text, protocol);

  // Refuse to emit code for a spec that still needs the author (the
  // feedback loop of Figure 4): report to stderr and fail.
  const auto ambiguous = run.count(core::SentenceStatus::kAmbiguous);
  const auto zero = run.count(core::SentenceStatus::kZeroForms);
  if (ambiguous + zero > 0) {
    std::fprintf(stderr,
                 "spec is not ready: %zu ambiguous and %zu unparseable "
                 "sentences (run rfc_lint for details)\n",
                 ambiguous, zero);
    return 2;
  }

  std::fputs(codegen::emit_compilation_unit(run.functions).c_str(), stdout);
  std::fprintf(stderr, "emitted %zu functions from %zu sentence instances\n",
               run.functions.size(), run.reports.size());
  return 0;
}

#include "ccg/category.hpp"

#include "ccg/interner.hpp"
#include "util/strings.hpp"

namespace sage::ccg {

namespace {

/// Probe key for the category interner: scalars + child pointers. For
/// the stored copy, `name` views the canonical node's own name_.
struct CatKey {
  Category::Slash slash;
  std::string_view name;      // primitive only
  const Category* result;     // complex only
  const Category* arg;        // complex only
  std::uint64_t hash;

  bool operator==(const CatKey& o) const {
    return slash == o.slash && name == o.name && result == o.result &&
           arg == o.arg;
  }
};
struct CatKeyHash {
  std::size_t operator()(const CatKey& k) const {
    return static_cast<std::size_t>(k.hash);
  }
};

using CatTable = InternTable<Category, CatKey, CatKeyHash>;

CatTable& cat_table() {
  static CatTable* table = new CatTable();  // immortal by design
  return *table;
}

CatKey key_of(const Category& c) {
  CatKey key{c.slash(),
             c.is_primitive() ? std::string_view(c.name()) : std::string_view(),
             c.is_primitive() ? nullptr : c.result().get(),
             c.is_primitive() ? nullptr : c.arg().get(), c.hash()};
  return key;
}

}  // namespace

std::size_t category_interner_size() { return cat_table().size(); }

CategoryPtr Category::primitive(std::string name) {
  CatKey key{Slash::kNone, name, nullptr, nullptr, 0};
  key.hash = hash_bytes(hash_mix(kHashSeed, 0x5ca7), key.name);
  return cat_table().intern(
      key,
      [&](std::uint32_t id) {
        auto c = std::shared_ptr<Category>(new Category());
        c->name_ = std::move(name);
        c->hash_ = key.hash;
        c->id_ = id;
        return c;
      },
      [](const Category& c) { return key_of(c); });
}

CategoryPtr Category::complex(CategoryPtr result, Slash slash, CategoryPtr arg) {
  CatKey key{slash, std::string_view(), result.get(), arg.get(), 0};
  key.hash = hash_mix(
      hash_mix(hash_mix(kHashSeed, static_cast<std::uint64_t>(slash)),
               result->hash()),
      arg->hash());
  return cat_table().intern(
      key,
      [&](std::uint32_t id) {
        auto c = std::shared_ptr<Category>(new Category());
        c->slash_ = slash;
        c->result_ = std::move(result);
        c->arg_ = std::move(arg);
        c->hash_ = key.hash;
        c->id_ = id;
        return c;
      },
      [](const Category& c) { return key_of(c); });
}

bool Category::equals(const Category& other) const {
  // Interned: structural equality is pointer equality. The structural
  // walk stays as a safety net for any copied-out-of-interner object.
  if (this == &other) return true;
  if (slash_ != other.slash_) return false;
  if (is_primitive()) return name_ == other.name_;
  return result_->equals(*other.result_) && arg_->equals(*other.arg_);
}

std::string Category::to_string() const {
  if (is_primitive()) return name_;
  const auto wrap = [](const Category& c) {
    return c.is_primitive() ? c.to_string() : "(" + c.to_string() + ")";
  };
  const char slash_char = slash_ == Slash::kForward ? '/' : '\\';
  // The result side keeps left-associative rendering unparenthesized.
  const std::string lhs = result_->is_primitive() ? result_->to_string()
                                                  : "(" + result_->to_string() + ")";
  return lhs + slash_char + wrap(*arg_);
}

namespace {

/// Recursive-descent category parser (left-associative slashes).
class CatParser {
 public:
  explicit CatParser(std::string_view text) : text_(text) {}

  CategoryPtr parse() {
    auto cat = parse_expr();
    skip_ws();
    if (pos_ != text_.size()) return nullptr;
    return cat;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  CategoryPtr parse_expr() {
    auto left = parse_atom();
    if (!left) return nullptr;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (c != '/' && c != '\\') break;
      ++pos_;
      auto right = parse_atom();
      if (!right) return nullptr;
      left = Category::complex(left,
                               c == '/' ? Category::Slash::kForward
                                        : Category::Slash::kBackward,
                               right);
    }
    return left;
  }

  CategoryPtr parse_atom() {
    skip_ws();
    if (pos_ >= text_.size()) return nullptr;
    if (text_[pos_] == '(') {
      ++pos_;
      auto inner = parse_expr();
      skip_ws();
      if (!inner || pos_ >= text_.size() || text_[pos_] != ')') return nullptr;
      ++pos_;
      return inner;
    }
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      name += text_[pos_++];
    }
    if (name.empty()) return nullptr;
    return Category::primitive(std::move(name));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

CategoryPtr Category::parse(std::string_view text) {
  return CatParser(text).parse();
}

const CategoryPtr& cat_S() {
  static const CategoryPtr c = Category::primitive("S");
  return c;
}
const CategoryPtr& cat_NP() {
  static const CategoryPtr c = Category::primitive("NP");
  return c;
}
const CategoryPtr& cat_N() {
  static const CategoryPtr c = Category::primitive("N");
  return c;
}
const CategoryPtr& cat_PP() {
  static const CategoryPtr c = Category::primitive("PP");
  return c;
}
const CategoryPtr& cat_CONJ() {
  static const CategoryPtr c = Category::primitive("CONJ");
  return c;
}

}  // namespace sage::ccg

// CCG syntactic categories (§3 "CCG background").
//
// Primitive categories (S, NP, N, PP, COND, CONJ) combine into complex
// categories with directional slashes: X/Y consumes a Y to its right and
// produces an X; X\Y consumes a Y to its left. Example from the paper:
// "is" has category (S\NP)/NP — combine with an NP on the right, then an
// NP on the left, to form a sentence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace sage::ccg {

class Category;
using CategoryPtr = std::shared_ptr<const Category>;

/// Immutable, hash-consed category tree (see interner.hpp): the
/// factories return canonical pointers, so structurally identical
/// categories are the SAME object — equality is pointer equality, and
/// every node carries a precomputed structural hash and a dense id the
/// chart indexes key on.
class Category {
 public:
  enum class Slash { kNone, kForward, kBackward };

  /// Primitive category, e.g. "S". Interned.
  static CategoryPtr primitive(std::string name);

  /// Complex category `result slash arg`. Interned.
  static CategoryPtr complex(CategoryPtr result, Slash slash, CategoryPtr arg);

  bool is_primitive() const { return slash_ == Slash::kNone; }
  const std::string& name() const { return name_; }
  Slash slash() const { return slash_; }
  const CategoryPtr& result() const { return result_; }
  const CategoryPtr& arg() const { return arg_; }

  /// Precomputed structural hash (equal structures hash equal).
  std::uint64_t hash() const { return hash_; }
  /// Dense interner id; same structure <=> same id.
  std::uint32_t id() const { return id_; }

  bool equals(const Category& other) const;

  /// Render with minimal parentheses: "(S\NP)/NP".
  std::string to_string() const;

  /// Parse "(S\NP)/NP" style text. Slashes are left-associative:
  /// "S\NP/NP" means "(S\NP)/NP". Returns nullptr on syntax error.
  static CategoryPtr parse(std::string_view text);

 private:
  Category() = default;
  std::string name_;          // primitive only
  Slash slash_ = Slash::kNone;
  CategoryPtr result_;        // complex only
  CategoryPtr arg_;           // complex only
  std::uint64_t hash_ = 0;    // structural hash, set by the interner
  std::uint32_t id_ = 0;      // dense interner id
};

inline bool operator==(const Category& a, const Category& b) {
  return a.equals(b);
}

/// Shared singletons for the common primitives.
const CategoryPtr& cat_S();
const CategoryPtr& cat_NP();
const CategoryPtr& cat_N();
const CategoryPtr& cat_PP();
const CategoryPtr& cat_CONJ();

}  // namespace sage::ccg

// Hash-consing (interning) infrastructure for CCG categories and terms.
//
// Both `Category` and `Term` are immutable trees built exclusively
// through factory functions. The factories route every construction
// through a process-wide intern table: structurally identical nodes get
// the SAME canonical `shared_ptr`, so
//
//   * structural equality is pointer equality (no recursive compares on
//     the parse hot path),
//   * every node carries a precomputed structural hash and a dense
//     integer id, which is what the chart's edge-dedup set and the
//     per-cell combinability indexes key on (src/ccg/parser.cpp), and
//   * rebuilding a subtree that already exists allocates nothing —
//     β-reduction steps that do not touch a subtree return the original
//     interned node.
//
// Concurrency: the tables are mutex-striped (shard = high hash bits), so
// parallel parses interning different structures almost never contend.
// Entries are intentionally immortal — the table owns one shared_ptr per
// distinct structure. Growth is bounded in practice because parse-time
// variable ids restart at the same base for every parse (see VarGen in
// term.hpp): repeated workloads re-intern the same finite node universe.
// `category_interner_size()` / `term_interner_size()` expose the live
// table sizes for `sage_debug --parse-stats` and the property tests.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace sage::ccg {

/// FNV-1a mixing, the same stable scheme the logical-form structural
/// hash and the parse cache use. Seed with kHashSeed, then fold values.
inline constexpr std::uint64_t kHashSeed = 14695981039346656037ull;

inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kPrime;
  }
  return h;
}

inline std::uint64_t hash_bytes(std::uint64_t h, std::string_view s) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= kPrime;
  }
  return h;
}

/// Thread-safe hash-consing table. `Key` is a cheap probe view of a
/// node's structure (child pointers + scalars + string_views) carrying
/// its precomputed `hash`; `stored_key_of(node)` rebuilds that view
/// from a canonical node so probes can be compared against residents.
///
/// Each shard is an open-addressing flat table (power-of-two capacity,
/// linear probing). Entries are never deleted — the table owns its
/// nodes for the process lifetime — which is exactly the case where
/// tombstone-free linear probing is both simplest and fastest: a find
/// is one or two contiguous cache lines, with the stored 64-bit hash
/// screened before any full key comparison.
template <typename Node, typename Key, typename KeyHash>
class InternTable {
 public:
  using Ptr = std::shared_ptr<const Node>;

  /// Returns the canonical node for `probe`, creating it with
  /// `make(id)` on first sight. `stored_key_of(node)` must rebuild the
  /// probe key with views into the node's own storage.
  template <typename Factory, typename StoredKeyOf>
  Ptr intern(const Key& probe, Factory&& make, StoredKeyOf&& stored_key_of) {
    Shard& shard = shards_[(probe.hash >> 58) & (kShards - 1)];
    std::lock_guard lock(shard.mutex);
    std::size_t slot = shard.find_slot(probe, stored_key_of);
    if (shard.entries[slot].node != nullptr) return shard.entries[slot].node;
    Ptr node = make(next_id_.fetch_add(1, std::memory_order_relaxed));
    shard.entries[slot] = Entry{probe.hash, node};
    if (++shard.used * 4 > shard.entries.size() * 3) shard.grow();
    return node;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      total += shard.used;
    }
    return total;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct Entry {
    std::uint64_t hash = 0;
    Ptr node;  // nullptr marks an empty slot
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries = std::vector<Entry>(64);
    std::size_t used = 0;

    /// Slot of the resident matching `probe`, or the empty slot where
    /// it belongs. Load is capped at 3/4, so an empty slot always ends
    /// the probe sequence.
    template <typename StoredKeyOf>
    std::size_t find_slot(const Key& probe,
                          StoredKeyOf&& stored_key_of) const {
      const std::size_t mask = entries.size() - 1;
      std::size_t slot = static_cast<std::size_t>(probe.hash) & mask;
      while (entries[slot].node != nullptr) {
        if (entries[slot].hash == probe.hash &&
            stored_key_of(*entries[slot].node) == probe) {
          return slot;
        }
        slot = (slot + 1) & mask;
      }
      return slot;
    }

    void grow() {
      std::vector<Entry> old = std::move(entries);
      entries.assign(old.size() * 2, Entry{});
      const std::size_t mask = entries.size() - 1;
      for (Entry& e : old) {
        if (e.node == nullptr) continue;
        std::size_t slot = static_cast<std::size_t>(e.hash) & mask;
        while (entries[slot].node != nullptr) slot = (slot + 1) & mask;
        entries[slot] = std::move(e);
      }
    }
  };
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint32_t> next_id_{1};
};

/// Live intern-table sizes (distinct structures seen process-wide).
std::size_t category_interner_size();  // defined in category.cpp
std::size_t term_interner_size();      // defined in term.cpp

}  // namespace sage::ccg

#include "ccg/lexicon.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sage::ccg {

void Lexicon::add(std::string_view word, std::string_view category,
                  std::string_view semantics, std::string_view source) {
  LexEntry entry;
  entry.word = util::to_lower(word);
  entry.category = Category::parse(category);
  if (!entry.category) {
    throw util::SageError("bad category '" + std::string(category) +
                          "' for lexicon word '" + std::string(word) + "'");
  }
  entry.semantics = parse_term(semantics);
  if (!entry.semantics) {
    throw util::SageError("bad semantics '" + std::string(semantics) +
                          "' for lexicon word '" + std::string(word) + "'");
  }
  entry.source = std::string(source);
  add_entry(std::move(entry));
}

void Lexicon::add_entry(LexEntry entry) {
  entries_[entry.word].push_back(std::move(entry));
  ++total_;
}

namespace {

/// Lexicon keys are stored lowercase. The chunker already hands the
/// parser lowercased token text, so the overwhelmingly common lookup
/// needs no case folding — detect that and probe with the borrowed
/// string_view directly (the map's std::less<> comparator is
/// transparent), allocating a lowered copy only when required.
bool has_upper(std::string_view s) {
  for (const unsigned char c : s) {
    if (c >= 'A' && c <= 'Z') return true;
  }
  return false;
}

}  // namespace

const std::vector<LexEntry>& Lexicon::lookup(std::string_view word) const {
  static const std::vector<LexEntry> kEmpty;
  const auto it =
      has_upper(word) ? entries_.find(util::to_lower(word)) : entries_.find(word);
  return it == entries_.end() ? kEmpty : it->second;
}

bool Lexicon::contains(std::string_view word) const {
  if (!has_upper(word)) return entries_.find(word) != entries_.end();
  return entries_.find(util::to_lower(word)) != entries_.end();
}

std::size_t Lexicon::count_by_source(std::string_view source) const {
  std::size_t n = 0;
  for (const auto& [word, list] : entries_) {
    for (const auto& e : list) {
      if (e.source == source) ++n;
    }
  }
  return n;
}

std::vector<std::string> Lexicon::words() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [word, list] : entries_) out.push_back(word);
  return out;
}

std::vector<std::string> Lexicon::sources() const {
  std::vector<std::string> out;
  for (const auto& [word, list] : entries_) {
    for (const auto& e : list) {
      if (std::find(out.begin(), out.end(), e.source) == out.end()) {
        out.push_back(e.source);
      }
    }
  }
  return out;
}

}  // namespace sage::ccg

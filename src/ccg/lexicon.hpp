// The CCG lexicon (§3).
//
// Maps surface words to (category, semantics) pairs, e.g.
//   is   => (S\NP)/NP : \x.\y.@Is(y, x)
//   zero => NP        : 0
// A word may carry several entries — that multiplicity is one of the two
// sources of the multiple-logical-form ambiguity the paper studies (the
// other is attachment choice in the chart).
//
// Entries are tagged with the protocol whose parsing required them, which
// reproduces the paper's incremental-lexicon-cost numbers (§6.1/§6.3:
// 71 entries for ICMP, +8 for IGMP, +5 for NTP, +15 for BFD).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ccg/category.hpp"
#include "ccg/term.hpp"

namespace sage::ccg {

/// One lexical entry: word => category : semantics.
struct LexEntry {
  std::string word;       // lowercase surface form
  CategoryPtr category;
  TermPtr semantics;      // closed lambda term
  std::string source;     // which protocol needed it ("core", "icmp", ...)
};

class Lexicon {
 public:
  /// Add an entry from textual category and term syntax. Throws SageError
  /// on malformed definitions (the corpus data is trusted but validated).
  void add(std::string_view word, std::string_view category,
           std::string_view semantics, std::string_view source = "core");

  /// Add a pre-built entry.
  void add_entry(LexEntry entry);

  /// All entries for a (lowercased) word; empty if unknown.
  const std::vector<LexEntry>& lookup(std::string_view word) const;

  bool contains(std::string_view word) const;

  std::size_t size() const { return total_; }

  /// Number of entries contributed by a given source tag.
  std::size_t count_by_source(std::string_view source) const;

  /// Distinct source tags present.
  std::vector<std::string> sources() const;

  /// All distinct surface words with entries (the grammar's closed-class
  /// vocabulary, used by the chunker's no-dictionary fallback).
  std::vector<std::string> words() const;

 private:
  std::map<std::string, std::vector<LexEntry>, std::less<>> entries_;
  std::size_t total_ = 0;
};

}  // namespace sage::ccg

#include "ccg/parse_cache.hpp"

#include <functional>

namespace sage::ccg {

namespace {

/// FNV-1a, the same stable mixing the logical-form structural hash uses.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kPrime;
  }
  return h;
}

}  // namespace

ParseCache::ParseCache(std::size_t capacity, std::size_t shards) {
  if (shards == 0) shards = 1;
  if (capacity == 0) capacity = 1;
  if (shards > capacity) shards = capacity;
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::uint64_t ParseCache::options_fingerprint(const ParserOptions& options) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  h = fnv1a(h, options.enable_composition ? 1 : 0);
  h = fnv1a(h, options.enable_type_raising ? 1 : 0);
  h = fnv1a(h, options.enable_coordination ? 1 : 0);
  h = fnv1a(h, options.record_derivations ? 1 : 0);
  h = fnv1a(h, options.reference_mode ? 1 : 0);
  h = fnv1a(h, options.max_edges_per_cell);
  h = fnv1a(h, options.max_tokens);
  return h;
}

std::string ParseCache::key_of(const std::vector<nlp::Token>& tokens,
                               std::string_view context_fingerprint,
                               const ParserOptions& options) {
  std::string key;
  key.reserve(tokens.size() * 8 + context_fingerprint.size() + 24);
  for (const nlp::Token& tok : tokens) {
    key += static_cast<char>('0' + static_cast<int>(tok.kind));
    if (tok.kind == nlp::TokenKind::kNumber) {
      key += std::to_string(tok.number);
    } else {
      key += tok.lower;
    }
    key += '\x1f';  // unit separator: token texts cannot contain it
  }
  key += '\x1e';  // record separator between sections
  key += context_fingerprint;
  key += '\x1e';
  key += std::to_string(options_fingerprint(options));
  return key;
}

ParseCache::Shard& ParseCache::shard_for(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::optional<CachedParse> ParseCache::lookup(const std::string& key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void ParseCache::insert(const std::string& key, CachedParse value) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value)});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ParseCacheStats ParseCache::stats() const {
  ParseCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  return out;
}

std::size_t ParseCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

void ParseCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace sage::ccg

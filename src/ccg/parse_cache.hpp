// Memoization cache for sentence parses (the batch executor's hot-path
// optimisation).
//
// The ablation benches re-run the same corpora dozens of times, and a
// multi-document batch repeats many sentences verbatim ("The checksum is
// the 16-bit one's complement ..." appears in every ICMP message
// section). Parsing is by far the dominant cost, and it is a pure
// function of (tokens, structural context, parser options) — so the
// pipeline memoizes the post-context candidate set.
//
// Keying: the cache key is the normalized token sequence (kind + lowered
// text + numeric value per token), a fingerprint of the dynamic context
// the pipeline folds into parsing (the structural "field" subject plus
// chunking configuration), and a hash of every ParserOptions knob.
// Distinct options can therefore never alias to the same entry — an
// ablation run with composition disabled does not poison the cache for
// the full-grammar run.
//
// Concurrency: sharded LRU with one mutex per shard (mutex striping).
// Shard choice is the key hash, so two threads parsing different
// sentences almost never contend; hit/miss/eviction counters are
// relaxed atomics surfaced through ProtocolRun for the benches.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ccg/parser.hpp"
#include "lf/logical_form.hpp"
#include "nlp/tokenizer.hpp"

namespace sage::ccg {

/// The memoized outcome of the parse (+ structural-context retry) stage
/// for one sentence: everything downstream winnowing needs, nothing it
/// could mutate in place.
struct CachedParse {
  std::vector<lf::LogicalForm> candidates;
  std::vector<std::string> unknown_tokens;
  bool used_structural_context = false;
};

/// Monotonic counters (totals since construction or clear()).
struct ParseCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

class ParseCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `shards`. Both are clamped to at least 1.
  explicit ParseCache(std::size_t capacity = 4096, std::size_t shards = 8);

  /// Stable fingerprint of every knob that changes parse results.
  static std::uint64_t options_fingerprint(const ParserOptions& options);

  /// Build the full cache key for a token sequence under a dynamic
  /// context (e.g. the structural "field" + chunking mode) and options.
  static std::string key_of(const std::vector<nlp::Token>& tokens,
                            std::string_view context_fingerprint,
                            const ParserOptions& options);

  /// Returns a copy of the cached value and promotes the entry to
  /// most-recently-used; nullopt on miss.
  std::optional<CachedParse> lookup(const std::string& key);

  /// Insert (or refresh) an entry, evicting the shard's LRU tail when
  /// over budget.
  void insert(const std::string& key, CachedParse value);

  ParseCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  void clear();

 private:
  struct Entry {
    std::string key;
    CachedParse value;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(const std::string& key);

  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace sage::ccg

#include "ccg/parser.hpp"

#include <functional>
#include <unordered_set>

#include "lf/logical_form.hpp"

namespace sage::ccg {

namespace {

/// One chart edge: a category with its (beta-normal) semantics, plus an
/// index into the derivation arena when derivations are recorded.
struct Edge {
  CategoryPtr cat;
  TermPtr sem;
  int id = -1;
};

using Cell = std::vector<Edge>;

/// Deduplication key: category + semantics rendering. Two derivations
/// with the same category and semantics are interchangeable.
std::string edge_key(const Edge& e) {
  return e.cat->to_string() + " :: " + term_to_string(e.sem);
}

class Chart {
 public:
  Chart(std::size_t n, std::size_t cap, std::vector<DerivationNode>* arena)
      : n_(n), cap_(cap), cells_(n * n), arena_(arena) {}

  Cell& cell(std::size_t start, std::size_t span) {
    return cells_[(span - 1) * n_ + start];
  }
  const Cell& cell(std::size_t start, std::size_t span) const {
    return cells_[(span - 1) * n_ + start];
  }

  /// Insert if the cell has room and the edge is new; returns true if
  /// added. `rule` and the child ids record provenance for derivations
  /// (the first derivation of a deduplicated edge wins).
  bool add(std::size_t start, std::size_t span, Edge edge,
           std::unordered_set<std::string>& seen, std::size_t* edge_count,
           const std::string& rule, int left = -1, int right = -1) {
    Cell& c = cell(start, span);
    if (c.size() >= cap_) return false;
    std::string key =
        std::to_string(start) + "," + std::to_string(span) + "|" + edge_key(edge);
    if (!seen.insert(std::move(key)).second) return false;
    if (arena_ != nullptr) {
      arena_->push_back(DerivationNode{edge.cat->to_string(),
                                       term_to_string(edge.sem), rule, left,
                                       right});
      edge.id = static_cast<int>(arena_->size()) - 1;
    }
    c.push_back(std::move(edge));
    ++*edge_count;
    return true;
  }

 private:
  std::size_t n_;
  std::size_t cap_;
  std::vector<Cell> cells_;
  std::vector<DerivationNode>* arena_;
};

bool is_conj(const Category& c) {
  return c.is_primitive() && c.name() == "CONJ";
}

/// Generalized coordination semantics (the Φ-rule of CCG [Steedman]).
/// Coordinating two edges of category X yields, for primitive X,
///   \y. @Conj(y, r)
/// and for function categories X = (..(P|A1)|..)|An, the pointwise
///   \y. \x1...\xn. @Conj(y(x1..xn), r(x1..xn))
/// This is what makes the distributive reading of "A and B is C" emerge:
/// type-raised NPs coordinate pointwise over the verb phrase, producing
/// @And(@Is(A,C), @Is(B,C)) alongside the plain @Is(@And(A,B), C).
TermPtr coordination_sem(const TermPtr& conj_pred, const TermPtr& right_sem,
                         const Category& cat) {
  std::vector<int> vars;
  const Category* c = &cat;
  while (!c->is_primitive()) {
    vars.push_back(fresh_var());
    c = c->result().get();
  }
  const int y = fresh_var();
  const auto apply_chain = [&vars](TermPtr f) {
    for (int v : vars) f = mk_app(std::move(f), mk_var(v));
    return f;
  };
  TermPtr body = mk_app(mk_app(conj_pred, apply_chain(mk_var(y))),
                        apply_chain(right_sem));
  for (std::size_t i = vars.size(); i-- > 0;) {
    body = mk_lam(vars[i], std::move(body));
  }
  return mk_lam(y, std::move(body));
}

/// S\NP — cached for the type-raising target.
const CategoryPtr& cat_S_back_NP() {
  static const CategoryPtr c =
      Category::complex(cat_S(), Category::Slash::kBackward, cat_NP());
  return c;
}

/// Copy the subtree rooted at `root` out of the shared arena into a
/// compact, self-contained Derivation.
Derivation extract_derivation(const std::vector<DerivationNode>& arena,
                              int root) {
  Derivation out;
  const std::function<int(int)> copy = [&](int index) -> int {
    if (index < 0 || index >= static_cast<int>(arena.size())) return -1;
    DerivationNode node = arena[static_cast<std::size_t>(index)];
    node.left = copy(node.left);
    node.right = copy(node.right);
    out.nodes.push_back(std::move(node));
    return static_cast<int>(out.nodes.size()) - 1;
  };
  out.root = copy(root);
  return out;
}

}  // namespace

std::string Derivation::to_string() const {
  std::string out;
  const std::function<void(int, const std::string&, bool)> render =
      [&](int index, const std::string& prefix, bool last) {
        if (index < 0) return;
        const DerivationNode& node = nodes[static_cast<std::size_t>(index)];
        if (prefix.empty()) {
          out += node.category + ": " + node.semantics + "   [" + node.rule +
                 "]\n";
        } else {
          out += prefix + (last ? "`-- " : "|-- ") + node.category + ": " +
                 node.semantics + "   [" + node.rule + "]\n";
        }
        const std::string child_prefix =
            prefix.empty() ? std::string("  ")
                           : prefix + (last ? "    " : "|   ");
        if (node.left >= 0 && node.right >= 0) {
          render(node.left, child_prefix, false);
          render(node.right, child_prefix, true);
        } else if (node.left >= 0) {
          render(node.left, child_prefix, true);
        }
      };
  render(root, "", true);
  return out;
}

ParseResult CcgParser::parse(const std::vector<nlp::Token>& tokens) const {
  ParseResult result;
  const std::size_t n = tokens.size();
  if (n == 0 || n > options_.max_tokens) return result;

  std::vector<DerivationNode> arena;
  Chart chart(n, options_.max_edges_per_cell,
              options_.record_derivations ? &arena : nullptr);
  std::unordered_set<std::string> seen;

  // --- lexical edges -----------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const nlp::Token& tok = tokens[i];
    std::vector<std::pair<Edge, std::string>> lexical;

    switch (tok.kind) {
      case nlp::TokenKind::kNounPhrase:
        // Labeled noun phrases enter the chart as N with their surface
        // text as semantics; the unary N->NP rule lifts them.
        lexical.push_back({{cat_N(), mk_str(tok.lower)},
                           "noun phrase '" + tok.text + "'"});
        break;
      case nlp::TokenKind::kNumber:
        lexical.push_back({{cat_NP(), mk_num(tok.number)},
                           "number " + tok.text});
        break;
      default:
        break;
    }
    for (const LexEntry& entry : lexicon_->lookup(tok.lower)) {
      lexical.push_back({{entry.category, entry.semantics},
                         "lexicon '" + tok.text + "'"});
    }
    if (lexical.empty() && tok.kind != nlp::TokenKind::kPunct) {
      result.unknown_tokens.push_back(tok.text);
    }

    for (auto& [edge, rule] : lexical) {
      chart.add(i, 1, std::move(edge), seen, &result.chart_edges, rule);
    }

    // Unary rules on the fresh cell.
    Cell& c = chart.cell(i, 1);
    const std::size_t base = c.size();
    for (std::size_t k = 0; k < base; ++k) {
      const Edge e = c[k];  // copy: add() may reallocate the cell
      if (e.cat->equals(*cat_N())) {
        chart.add(i, 1, {cat_NP(), e.sem}, seen, &result.chart_edges,
                  "N -> NP", e.id);
      }
    }
    if (options_.enable_type_raising) {
      const std::size_t base2 = chart.cell(i, 1).size();
      for (std::size_t k = 0; k < base2; ++k) {
        const Edge e = chart.cell(i, 1)[k];
        if (e.cat->equals(*cat_NP())) {
          // NP -> S/(S\NP) : \f. f(x)
          const int f = fresh_var();
          Edge raised{Category::complex(cat_S(), Category::Slash::kForward,
                                        cat_S_back_NP()),
                      mk_lam(f, mk_app(mk_var(f), e.sem))};
          chart.add(i, 1, std::move(raised), seen, &result.chart_edges,
                    "type raising", e.id);
        }
      }
    }
  }

  // --- binary combination ------------------------------------------------
  const auto reduce_or_drop = [](TermPtr t) { return beta_reduce(t); };

  for (std::size_t span = 2; span <= n; ++span) {
    for (std::size_t start = 0; start + span <= n; ++start) {
      for (std::size_t left_span = 1; left_span < span; ++left_span) {
        const Cell& left = chart.cell(start, left_span);
        const Cell& right = chart.cell(start + left_span, span - left_span);
        for (const Edge& l : left) {
          for (const Edge& r : right) {
            // Forward application: X/Y  Y  =>  X
            if (!l.cat->is_primitive() &&
                l.cat->slash() == Category::Slash::kForward &&
                l.cat->arg()->equals(*r.cat)) {
              if (TermPtr sem = reduce_or_drop(mk_app(l.sem, r.sem))) {
                chart.add(start, span, {l.cat->result(), std::move(sem)}, seen,
                          &result.chart_edges, "forward application", l.id,
                          r.id);
              }
            }
            // Backward application: Y  X\Y  =>  X
            if (!r.cat->is_primitive() &&
                r.cat->slash() == Category::Slash::kBackward &&
                r.cat->arg()->equals(*l.cat)) {
              if (TermPtr sem = reduce_or_drop(mk_app(r.sem, l.sem))) {
                chart.add(start, span, {r.cat->result(), std::move(sem)}, seen,
                          &result.chart_edges, "backward application", l.id,
                          r.id);
              }
            }
            if (options_.enable_composition) {
              // Forward composition: X/Y  Y/Z  =>  X/Z
              if (!l.cat->is_primitive() && !r.cat->is_primitive() &&
                  l.cat->slash() == Category::Slash::kForward &&
                  r.cat->slash() == Category::Slash::kForward &&
                  l.cat->arg()->equals(*r.cat->result())) {
                const int z = fresh_var();
                if (TermPtr sem = reduce_or_drop(mk_lam(
                        z, mk_app(l.sem, mk_app(r.sem, mk_var(z)))))) {
                  chart.add(start, span,
                            {Category::complex(l.cat->result(),
                                               Category::Slash::kForward,
                                               r.cat->arg()),
                             std::move(sem)},
                            seen, &result.chart_edges, "forward composition",
                            l.id, r.id);
                }
              }
              // Backward composition: Y\Z  X\Y  =>  X\Z
              if (!l.cat->is_primitive() && !r.cat->is_primitive() &&
                  l.cat->slash() == Category::Slash::kBackward &&
                  r.cat->slash() == Category::Slash::kBackward &&
                  r.cat->arg()->equals(*l.cat->result())) {
                const int z = fresh_var();
                if (TermPtr sem = reduce_or_drop(mk_lam(
                        z, mk_app(r.sem, mk_app(l.sem, mk_var(z)))))) {
                  chart.add(start, span,
                            {Category::complex(r.cat->result(),
                                               Category::Slash::kBackward,
                                               l.cat->arg()),
                             std::move(sem)},
                            seen, &result.chart_edges, "backward composition",
                            l.id, r.id);
                }
              }
            }
            // Noun compounding: N N => N ("echo reply" + "message" =>
            // "echo reply message"). Two adjacent bare nouns concatenate;
            // this is what lets poorly-labeled noun phrases still parse —
            // at the cost of extra attachment ambiguity (Table 7).
            if (l.cat->equals(*cat_N()) && r.cat->equals(*cat_N()) &&
                l.sem->kind == Term::Kind::kStr &&
                r.sem->kind == Term::Kind::kStr) {
              // Both analyses the parser cannot choose between: the
              // compound as one name, and the head-modifier relation.
              chart.add(start, span,
                        {cat_N(), mk_str(l.sem->name + " " + r.sem->name)},
                        seen, &result.chart_edges, "noun compound", l.id,
                        r.id);
              chart.add(start, span,
                        {cat_N(), mk_pred_app(std::string(lf::pred::kOf),
                                              {mk_str(r.sem->name),
                                               mk_str(l.sem->name)})},
                        seen, &result.chart_edges, "noun compound (head)",
                        l.id, r.id);
            }
            // Coordination (binarized): CONJ X => X\X with the
            // generalized Φ semantics. The CONJ edge's semantics is the
            // bare conjunction predicate (@And / @Or).
            if (options_.enable_coordination && is_conj(*l.cat) &&
                l.sem->kind == Term::Kind::kPred) {
              if (TermPtr sem = reduce_or_drop(
                      coordination_sem(l.sem, r.sem, *r.cat))) {
                chart.add(start, span,
                          {Category::complex(r.cat, Category::Slash::kBackward,
                                             r.cat),
                           std::move(sem)},
                          seen, &result.chart_edges, "coordination", l.id,
                          r.id);
              }
            }
          }
        }
      }

      // Unary rules on the completed cell (N -> NP; type-raise NP).
      Cell& c = chart.cell(start, span);
      const std::size_t base = c.size();
      for (std::size_t k = 0; k < base; ++k) {
        const Edge e = c[k];
        if (e.cat->equals(*cat_N())) {
          chart.add(start, span, {cat_NP(), e.sem}, seen, &result.chart_edges,
                    "N -> NP", e.id);
        }
      }
      if (options_.enable_type_raising && span < n) {
        const std::size_t base2 = chart.cell(start, span).size();
        for (std::size_t k = 0; k < base2; ++k) {
          const Edge e = chart.cell(start, span)[k];
          if (e.cat->equals(*cat_NP())) {
            const int f = fresh_var();
            Edge raised{Category::complex(cat_S(), Category::Slash::kForward,
                                          cat_S_back_NP()),
                        mk_lam(f, mk_app(mk_var(f), e.sem))};
            chart.add(start, span, std::move(raised), seen,
                      &result.chart_edges, "type raising", e.id);
          }
        }
      }
    }
  }

  // --- harvest full-span parses -------------------------------------------
  std::unordered_set<std::string> seen_forms;
  std::unordered_set<std::string> seen_fragments;
  for (const Edge& e : chart.cell(0, n)) {
    if (e.cat->equals(*cat_S())) {
      if (auto form = term_to_logical_form(e.sem)) {
        if (seen_forms.insert(form->to_string()).second) {
          result.forms.push_back(std::move(*form));
          if (options_.record_derivations && e.id >= 0) {
            result.derivations.push_back(extract_derivation(arena, e.id));
          }
        }
      }
    } else if (e.cat->equals(*cat_NP()) || e.cat->equals(*cat_N())) {
      if (auto frag = term_to_logical_form(e.sem)) {
        if (seen_fragments.insert(frag->to_string()).second) {
          result.fragments.push_back(std::move(*frag));
        }
      }
    }
  }
  return result;
}

}  // namespace sage::ccg

#include "ccg/parser.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory_resource>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "lf/logical_form.hpp"
#include "util/arena.hpp"

namespace sage::ccg {

namespace {

/// One chart edge: a category with its (beta-normal) semantics, plus an
/// index into the derivation arena when derivations are recorded.
struct Edge {
  CategoryPtr cat;
  TermPtr sem;
  int id = -1;
};

/// Arena node recorded per edge while parsing. Categories and terms are
/// interned and immortal (interner.hpp), so raw pointers are safe; the
/// strings a DerivationNode needs are rendered lazily at harvest, only
/// for the subtrees that actually reach a sentence-level parse.
struct ArenaNode {
  const Category* cat = nullptr;
  const Term* sem = nullptr;
  std::string rule;
  int left = -1;
  int right = -1;
};

/// Per-cell combinability index: flat (key, edge position) pairs in
/// insertion order. Cells are capped at max_edges_per_cell (≤ ~100
/// entries), so a linear scan over a contiguous array beats a hash map
/// — no node allocations, no hashing, and probes stream one or two
/// cache lines. Ascending positions per key come for free.
using CellIndex = std::pmr::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// A chart cell: its edges plus the dedup set and combinability indexes
/// the production path probes. All index lists hold edge positions in
/// insertion order (ascending), which is what keeps the indexed
/// enumeration byte-identical to the original cross-product scan.
///
/// Allocator-aware: every vector bump-allocates from the per-thread
/// chart arena (util::Arena as a pmr resource), so vector growth never
/// touches the heap after the arena's chunks are warm. The arena's
/// deallocate is a no-op — a growing vector abandons its old block,
/// which reset() reclaims wholesale at the next parse.
struct Cell {
  using allocator_type = std::pmr::polymorphic_allocator<std::byte>;
  explicit Cell(allocator_type alloc)
      : edges(alloc),
        seen(alloc),
        by_cat(alloc),
        fwd_by_result(alloc),
        bwd_by_arg(alloc) {}

  std::pmr::vector<Edge> edges;
  /// Production dedup: (category interner id << 32) | term interner id,
  /// one entry per edge, linearly scanned (cells are small — see
  /// CellIndex). Equivalent to the reference mode's rendered-string key
  /// because rendering is injective on beta-normal terms — same
  /// structure, same id, same string.
  std::pmr::vector<std::uint64_t> seen;
  /// Edges keyed by exact category id (forward application targets,
  /// noun-compound partners).
  CellIndex by_cat;
  /// Forward-slash edges keyed by their result's category id (X/Y edges
  /// under key id(X)) — forward-composition partners.
  CellIndex fwd_by_result;
  /// Backward-slash edges keyed by their argument's category id (X\Y
  /// edges under key id(Y)) — backward application/composition partners.
  CellIndex bwd_by_arg;
};

/// Reference-mode deduplication key: category + semantics rendering. Two
/// derivations with the same category and semantics are interchangeable.
std::string edge_key(const Edge& e) {
  return e.cat->to_string() + " :: " + term_to_string(e.sem);
}

class Chart {
 public:
  Chart(std::size_t n, std::size_t cap, std::vector<ArenaNode>* arena,
        ParseStats* stats, bool reference_mode,
        std::pmr::memory_resource* mr)
      : n_(n),
        cap_(cap),
        cells_(n * n, mr),  // uses-allocator: every Cell vector gets mr
        arena_(arena),
        stats_(stats),
        reference_mode_(reference_mode) {}

  Cell& cell(std::size_t start, std::size_t span) {
    return cells_[(span - 1) * n_ + start];
  }
  const Cell& cell(std::size_t start, std::size_t span) const {
    return cells_[(span - 1) * n_ + start];
  }

  /// Insert if the cell has room and the edge is new; returns true if
  /// added. `rule` is only invoked (to build the provenance string) when
  /// derivations are being recorded; the child ids record provenance for
  /// derivations (the first derivation of a deduplicated edge wins).
  template <typename RuleFn>
  bool add(std::size_t start, std::size_t span, Edge edge, RuleFn&& rule,
           int left = -1, int right = -1) {
    Cell& c = cell(start, span);
    if (c.edges.size() >= cap_) {
      ++stats_->cap_drops;
      return false;
    }
    if (reference_mode_) {
      std::string key = std::to_string(start) + "," + std::to_string(span) +
                        "|" + edge_key(edge);
      if (!seen_strings_.insert(std::move(key)).second) {
        ++stats_->dedup_hits;
        return false;
      }
    } else {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(edge.cat->id()) << 32) | edge.sem->id;
      for (const std::uint64_t k : c.seen) {
        if (k == key) {
          ++stats_->dedup_hits;
          return false;
        }
      }
      c.seen.push_back(key);
    }
    if (arena_ != nullptr) {
      arena_->push_back(
          ArenaNode{edge.cat.get(), edge.sem.get(), rule(), left, right});
      edge.id = static_cast<int>(arena_->size()) - 1;
    }
    if (!reference_mode_) {
      const auto pos = static_cast<std::uint32_t>(c.edges.size());
      c.by_cat.emplace_back(edge.cat->id(), pos);
      if (!edge.cat->is_primitive()) {
        if (edge.cat->slash() == Category::Slash::kForward) {
          c.fwd_by_result.emplace_back(edge.cat->result()->id(), pos);
        } else {
          c.bwd_by_arg.emplace_back(edge.cat->arg()->id(), pos);
        }
      }
    }
    c.edges.push_back(std::move(edge));
    ++stats_->edges_created;
    return true;
  }

 private:
  std::size_t n_;
  std::size_t cap_;
  std::pmr::vector<Cell> cells_;
  std::vector<ArenaNode>* arena_;
  ParseStats* stats_;
  bool reference_mode_;
  std::unordered_set<std::string> seen_strings_;  // reference mode only
};

bool is_conj(const Category& c) {
  return c.is_primitive() && c.name() == "CONJ";
}

/// Generalized coordination semantics (the Φ-rule of CCG [Steedman]).
/// Coordinating two edges of category X yields, for primitive X,
///   \y. @Conj(y, r)
/// and for function categories X = (..(P|A1)|..)|An, the pointwise
///   \y. \x1...\xn. @Conj(y(x1..xn), r(x1..xn))
/// This is what makes the distributive reading of "A and B is C" emerge:
/// type-raised NPs coordinate pointwise over the verb phrase, producing
/// @And(@Is(A,C), @Is(B,C)) alongside the plain @Is(@And(A,B), C).
TermPtr coordination_sem(const TermPtr& conj_pred, const TermPtr& right_sem,
                         const Category& cat, VarGen& vg) {
  std::vector<int> vars;
  const Category* c = &cat;
  while (!c->is_primitive()) {
    vars.push_back(vg.fresh());
    c = c->result().get();
  }
  const int y = vg.fresh();
  const auto apply_chain = [&vars](TermPtr f) {
    for (int v : vars) f = mk_app(std::move(f), mk_var(v));
    return f;
  };
  TermPtr body = mk_app(mk_app(conj_pred, apply_chain(mk_var(y))),
                        apply_chain(right_sem));
  for (std::size_t i = vars.size(); i-- > 0;) {
    body = mk_lam(vars[i], std::move(body));
  }
  return mk_lam(y, std::move(body));
}

/// S\NP — cached for the type-raising target.
const CategoryPtr& cat_S_back_NP() {
  static const CategoryPtr c =
      Category::complex(cat_S(), Category::Slash::kBackward, cat_NP());
  return c;
}

/// S/(S\NP) — the type-raised category itself.
const CategoryPtr& cat_S_fwd_S_back_NP() {
  static const CategoryPtr c =
      Category::complex(cat_S(), Category::Slash::kForward, cat_S_back_NP());
  return c;
}

/// Striped process-wide memo from a term-id key to a prebuilt term —
/// same sharding scheme as the interner. Sound wherever the value is a
/// pure function of canonical inputs.
struct TermMemoShards {
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, TermPtr> map;
  };
  std::array<Shard, 16> shards;

  template <typename Build>
  TermPtr get(std::uint64_t key, Build&& build) {
    Shard& shard = shards[key & 15u];
    {
      std::lock_guard lock(shard.mutex);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) return it->second;
    }
    TermPtr value = build();
    std::lock_guard lock(shard.mutex);
    return shard.map.emplace(key, std::move(value)).first->second;
  }
};

/// Type-raised semantics \f.f(sem), memoized per canonical `sem`. The
/// reserved binder id keeps the term independent of where in the chart
/// the raise happens (see kTypeRaiseVar in term.hpp).
TermPtr type_raised(const TermPtr& sem) {
  static auto* memo = new TermMemoShards();  // immortal
  return memo->get(sem->id, [&] {
    return mk_lam(kTypeRaiseVar, mk_app(mk_var(kTypeRaiseVar), sem));
  });
}

/// Concatenated noun-compound semantics, memoized per (left, right) str
/// pair so repeated N-N combinations skip the string build and re-hash.
TermPtr compound_str(const TermPtr& l, const TermPtr& r) {
  static auto* memo = new TermMemoShards();  // immortal
  const std::uint64_t key = (static_cast<std::uint64_t>(l->id) << 32) | r->id;
  return memo->get(key, [&] { return mk_str(l->name + " " + r->name); });
}

/// The head-modifier analysis @Of(r, l) for the same pair.
TermPtr compound_of(const TermPtr& l, const TermPtr& r) {
  static auto* memo = new TermMemoShards();  // immortal
  const std::uint64_t key = (static_cast<std::uint64_t>(l->id) << 32) | r->id;
  return memo->get(key, [&] {
    return mk_pred_app(std::string(lf::pred::kOf), {r, l});
  });
}

/// View an immortal interned term through the TermPtr API without
/// copying or refcounting (aliasing constructor, null owner).
TermPtr unowned(const Term* t) { return TermPtr(TermPtr(), t); }

/// Copy the subtree rooted at `root` out of the shared arena into a
/// compact, self-contained Derivation, rendering the category/semantics
/// strings only now. Explicit-stack post-order walk (left subtree, right
/// subtree, node) — derivations can be deep enough on long sentences
/// that recursing per node risks the stack.
Derivation extract_derivation(const std::vector<ArenaNode>& arena, int root) {
  Derivation out;
  struct Frame {
    int index;
    int stage = 0;     // 0: visit left, 1: visit right, 2: emit
    int left_out = -1;
  };
  std::vector<Frame> stack;
  int ret = -1;  // result of the most recently completed subtree
  const auto enter = [&](int index) {
    if (index < 0 || index >= static_cast<int>(arena.size())) {
      ret = -1;
      return false;
    }
    stack.push_back(Frame{index});
    return true;
  };
  if (!enter(root)) {
    out.root = -1;
    return out;
  }
  while (!stack.empty()) {
    Frame& f = stack.back();  // invalidated by enter()==true; continue then
    const ArenaNode& node = arena[static_cast<std::size_t>(f.index)];
    if (f.stage == 0) {
      f.stage = 1;
      if (enter(node.left)) continue;
    }
    if (f.stage == 1) {
      f.left_out = ret;
      f.stage = 2;
      if (enter(node.right)) continue;
    }
    out.nodes.push_back(DerivationNode{node.cat->to_string(),
                                       term_to_string(unowned(node.sem)),
                                       node.rule, f.left_out, ret});
    ret = static_cast<int>(out.nodes.size()) - 1;
    stack.pop_back();
  }
  out.root = ret;
  return out;
}

}  // namespace

std::string Derivation::to_string() const {
  std::string out;
  // Explicit-stack pre-order render; pushing right before left keeps the
  // visit order identical to the recursive original.
  struct Frame {
    int index;
    std::string prefix;
    bool last;
  };
  std::vector<Frame> stack;
  if (root >= 0) stack.push_back(Frame{root, "", true});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.index < 0) continue;
    const DerivationNode& node = nodes[static_cast<std::size_t>(f.index)];
    if (f.prefix.empty()) {
      out += node.category + ": " + node.semantics + "   [" + node.rule + "]\n";
    } else {
      out += f.prefix + (f.last ? "`-- " : "|-- ") + node.category + ": " +
             node.semantics + "   [" + node.rule + "]\n";
    }
    const std::string child_prefix =
        f.prefix.empty() ? std::string("  ")
                         : f.prefix + (f.last ? "    " : "|   ");
    if (node.left >= 0 && node.right >= 0) {
      stack.push_back(Frame{node.right, child_prefix, true});
      stack.push_back(Frame{node.left, child_prefix, false});
    } else if (node.left >= 0) {
      stack.push_back(Frame{node.left, child_prefix, true});
    }
  }
  return out;
}

ParseResult CcgParser::parse(const std::vector<nlp::Token>& tokens) const {
  ParseResult result;
  const std::size_t n = tokens.size();
  if (n == 0 || n > options_.max_tokens) return result;

  VarGen vg;  // per-parse: derivations and dedup ids are deterministic
  std::vector<ArenaNode> arena;
  // Per-thread chart arena: reset() rewinds it while keeping its chunks,
  // so after the first few parses warmed the chunks, chart storage costs
  // zero heap allocations per parse. Nothing that escapes parse() points
  // into it — ParseResult deep-copies forms/derivations — so resetting
  // at the next parse is safe.
  static thread_local util::Arena chart_arena;
  chart_arena.reset();
  Chart chart(n, options_.max_edges_per_cell,
              options_.record_derivations ? &arena : nullptr, &result.stats,
              options_.reference_mode, &chart_arena);

  const auto reduce_or_drop = [&](TermPtr t) {
    ++result.stats.beta_reductions;
    return beta_reduce(std::move(t), 4096, &result.stats.beta_steps);
  };

  // --- lexical edges -----------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const nlp::Token& tok = tokens[i];
    bool has_lexical = false;

    switch (tok.kind) {
      case nlp::TokenKind::kNounPhrase:
        // Labeled noun phrases enter the chart as N with their surface
        // text as semantics; the unary N->NP rule lifts them.
        has_lexical = true;
        chart.add(i, 1, Edge{cat_N(), mk_str(tok.lower)},
                  [&] { return "noun phrase '" + tok.text + "'"; });
        break;
      case nlp::TokenKind::kNumber:
        has_lexical = true;
        chart.add(i, 1, Edge{cat_NP(), mk_num(tok.number)},
                  [&] { return "number " + tok.text; });
        break;
      default:
        break;
    }
    for (const LexEntry& entry : lexicon_->lookup(tok.lower)) {
      has_lexical = true;
      chart.add(i, 1, Edge{entry.category, entry.semantics},
                [&] { return "lexicon '" + tok.text + "'"; });
    }
    if (!has_lexical && tok.kind != nlp::TokenKind::kPunct) {
      result.unknown_tokens.push_back(tok.text);
    }

    // Unary rules on the fresh cell.
    const std::size_t base = chart.cell(i, 1).edges.size();
    for (std::size_t k = 0; k < base; ++k) {
      const Edge e = chart.cell(i, 1).edges[k];  // copy: add() reallocates
      if (e.cat.get() == cat_N().get()) {
        chart.add(i, 1, Edge{cat_NP(), e.sem}, [] { return "N -> NP"; },
                  e.id);
      }
    }
    if (options_.enable_type_raising) {
      const std::size_t base2 = chart.cell(i, 1).edges.size();
      for (std::size_t k = 0; k < base2; ++k) {
        const Edge e = chart.cell(i, 1).edges[k];
        if (e.cat.get() == cat_NP().get()) {
          // NP -> S/(S\NP) : \f. f(x)
          chart.add(i, 1, Edge{cat_S_fwd_S_back_NP(), type_raised(e.sem)},
                    [] { return "type raising"; }, e.id);
        }
      }
    }
  }

  // --- binary combination ------------------------------------------------
  // Applies every combinator whose guards pass, in a fixed order, so the
  // result is independent of how the partner edge was found (index probe
  // or cross-product scan).
  const auto try_combine = [&](const Edge& l, const Edge& r, std::size_t start,
                               std::size_t span) {
    // Forward application: X/Y  Y  =>  X
    if (!l.cat->is_primitive() &&
        l.cat->slash() == Category::Slash::kForward &&
        l.cat->arg().get() == r.cat.get()) {
      ++result.stats.beta_reductions;
      if (TermPtr sem = reduce_app(l.sem, r.sem, 4096,
                                   &result.stats.beta_steps)) {
        chart.add(start, span, Edge{l.cat->result(), std::move(sem)},
                  [] { return "forward application"; }, l.id, r.id);
      }
    }
    // Backward application: Y  X\Y  =>  X
    if (!r.cat->is_primitive() &&
        r.cat->slash() == Category::Slash::kBackward &&
        r.cat->arg().get() == l.cat.get()) {
      ++result.stats.beta_reductions;
      if (TermPtr sem = reduce_app(r.sem, l.sem, 4096,
                                   &result.stats.beta_steps)) {
        chart.add(start, span, Edge{r.cat->result(), std::move(sem)},
                  [] { return "backward application"; }, l.id, r.id);
      }
    }
    if (options_.enable_composition) {
      // Forward composition: X/Y  Y/Z  =>  X/Z
      if (!l.cat->is_primitive() && !r.cat->is_primitive() &&
          l.cat->slash() == Category::Slash::kForward &&
          r.cat->slash() == Category::Slash::kForward &&
          l.cat->arg().get() == r.cat->result().get()) {
        const int z = vg.fresh();
        if (TermPtr sem = reduce_or_drop(
                mk_lam(z, mk_app(l.sem, mk_app(r.sem, mk_var(z)))))) {
          chart.add(start, span,
                    Edge{Category::complex(l.cat->result(),
                                           Category::Slash::kForward,
                                           r.cat->arg()),
                         std::move(sem)},
                    [] { return "forward composition"; }, l.id, r.id);
        }
      }
      // Backward composition: Y\Z  X\Y  =>  X\Z
      if (!l.cat->is_primitive() && !r.cat->is_primitive() &&
          l.cat->slash() == Category::Slash::kBackward &&
          r.cat->slash() == Category::Slash::kBackward &&
          r.cat->arg().get() == l.cat->result().get()) {
        const int z = vg.fresh();
        if (TermPtr sem = reduce_or_drop(
                mk_lam(z, mk_app(r.sem, mk_app(l.sem, mk_var(z)))))) {
          chart.add(start, span,
                    Edge{Category::complex(r.cat->result(),
                                           Category::Slash::kBackward,
                                           l.cat->arg()),
                         std::move(sem)},
                    [] { return "backward composition"; }, l.id, r.id);
        }
      }
    }
    // Noun compounding: N N => N ("echo reply" + "message" =>
    // "echo reply message"). Two adjacent bare nouns concatenate;
    // this is what lets poorly-labeled noun phrases still parse —
    // at the cost of extra attachment ambiguity (Table 7).
    if (l.cat.get() == cat_N().get() && r.cat.get() == cat_N().get() &&
        l.sem->kind == Term::Kind::kStr && r.sem->kind == Term::Kind::kStr) {
      // Both analyses the parser cannot choose between: the
      // compound as one name, and the head-modifier relation.
      chart.add(start, span, Edge{cat_N(), compound_str(l.sem, r.sem)},
                [] { return "noun compound"; }, l.id, r.id);
      chart.add(start, span, Edge{cat_N(), compound_of(l.sem, r.sem)},
                [] { return "noun compound (head)"; }, l.id, r.id);
    }
    // Coordination (binarized): CONJ X => X\X with the
    // generalized Φ semantics. The CONJ edge's semantics is the
    // bare conjunction predicate (@And / @Or).
    if (options_.enable_coordination && is_conj(*l.cat) &&
        l.sem->kind == Term::Kind::kPred) {
      if (TermPtr sem =
              reduce_or_drop(coordination_sem(l.sem, r.sem, *r.cat, vg))) {
        chart.add(start, span,
                  Edge{Category::complex(r.cat, Category::Slash::kBackward,
                                         r.cat),
                       std::move(sem)},
                  [] { return "coordination"; }, l.id, r.id);
      }
    }
  };

  // Scratch: candidate right-edge slots, bump-allocated like the cells.
  std::pmr::vector<std::uint32_t> cand(&chart_arena);
  for (std::size_t span = 2; span <= n; ++span) {
    for (std::size_t start = 0; start + span <= n; ++start) {
      for (std::size_t left_span = 1; left_span < span; ++left_span) {
        const Cell& left = chart.cell(start, left_span);
        const Cell& right = chart.cell(start + left_span, span - left_span);
        if (options_.reference_mode) {
          for (const Edge& l : left.edges) {
            for (const Edge& r : right.edges) {
              try_combine(l, r, start, span);
            }
          }
          continue;
        }
        for (const Edge& l : left.edges) {
          // Gather candidate partners from the right cell's indexes. Each
          // probe list is ascending by insertion; the sort+unique merge
          // restores the exact right-cell scan order, so cap truncation
          // and first-derivation-wins dedup behave as in reference mode.
          cand.clear();
          if (options_.enable_coordination && is_conj(*l.cat) &&
              l.sem->kind == Term::Kind::kPred) {
            // Coordination pairs a CONJ with ANY right edge.
            cand.resize(right.edges.size());
            for (std::uint32_t k = 0; k < cand.size(); ++k) cand[k] = k;
          } else {
            const auto probe = [&](const CellIndex& index,
                                   std::uint32_t key) {
              ++result.stats.index_probes;
              for (const auto& [k, pos] : index) {
                if (k == key) cand.push_back(pos);
              }
            };
            if (!l.cat->is_primitive() &&
                l.cat->slash() == Category::Slash::kForward) {
              probe(right.by_cat, l.cat->arg()->id());  // forward application
              if (options_.enable_composition) {
                probe(right.fwd_by_result, l.cat->arg()->id());  // fwd comp
              }
            }
            probe(right.bwd_by_arg, l.cat->id());  // backward application
            if (options_.enable_composition && !l.cat->is_primitive() &&
                l.cat->slash() == Category::Slash::kBackward) {
              probe(right.bwd_by_arg, l.cat->result()->id());  // bwd comp
            }
            if (l.cat.get() == cat_N().get() &&
                l.sem->kind == Term::Kind::kStr) {
              probe(right.by_cat, cat_N()->id());  // noun compound
            }
            std::sort(cand.begin(), cand.end());
            cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
          }
          for (const std::uint32_t k : cand) {
            try_combine(l, right.edges[k], start, span);
          }
        }
      }

      // Unary rules on the completed cell (N -> NP; type-raise NP).
      const std::size_t base = chart.cell(start, span).edges.size();
      for (std::size_t k = 0; k < base; ++k) {
        const Edge e = chart.cell(start, span).edges[k];
        if (e.cat.get() == cat_N().get()) {
          chart.add(start, span, Edge{cat_NP(), e.sem},
                    [] { return "N -> NP"; }, e.id);
        }
      }
      if (options_.enable_type_raising && span < n) {
        const std::size_t base2 = chart.cell(start, span).edges.size();
        for (std::size_t k = 0; k < base2; ++k) {
          const Edge e = chart.cell(start, span).edges[k];
          if (e.cat.get() == cat_NP().get()) {
            chart.add(start, span,
                      Edge{cat_S_fwd_S_back_NP(), type_raised(e.sem)},
                      [] { return "type raising"; }, e.id);
          }
        }
      }
    }
  }

  // --- harvest full-span parses -------------------------------------------
  // Dedup sets live in the chart arena too: node and string storage is
  // bump-allocated and reclaimed by the next parse's reset().
  std::pmr::unordered_set<std::pmr::string> seen_forms(&chart_arena);
  std::pmr::unordered_set<std::pmr::string> seen_fragments(&chart_arena);
  std::string render;  // reused per-candidate render buffer
  const auto render_key = [&](const lf::LogicalForm& form) {
    render.clear();
    form.append_to(render);
    return std::pmr::string(render.begin(), render.end(), &chart_arena);
  };
  for (const Edge& e : chart.cell(0, n).edges) {
    if (e.cat.get() == cat_S().get()) {
      if (auto form = term_to_logical_form(e.sem)) {
        if (seen_forms.insert(render_key(*form)).second) {
          result.forms.push_back(std::move(*form));
          if (options_.record_derivations && e.id >= 0) {
            result.derivations.push_back(extract_derivation(arena, e.id));
          }
        }
      }
    } else if (e.cat.get() == cat_NP().get() || e.cat.get() == cat_N().get()) {
      if (auto frag = term_to_logical_form(e.sem)) {
        if (seen_fragments.insert(render_key(*frag)).second) {
          result.fragments.push_back(std::move(*frag));
        }
      }
    }
  }
  result.chart_edges = result.stats.edges_created;
  result.stats.arena_bytes_reserved = chart_arena.bytes_reserved();
  result.stats.arena_high_water = chart_arena.high_water();
  result.stats.arena_resets = static_cast<std::size_t>(chart_arena.resets());
  return result;
}

}  // namespace sage::ccg

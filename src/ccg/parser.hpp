// The CCG chart parser (§3 "Running CCG").
//
// A CKY-style chart parser over CCG categories with the standard
// combinators: forward/backward application, forward/backward (harmonic)
// composition, restricted forward type-raising (NP -> S/(S\NP)), the
// binarized coordination rule (CONJ X => X\X), and the unary
// type-changing rule N -> NP.
//
// Like the nltk parser the paper builds on, this parser deliberately
// keeps EVERY derivation whose semantics differ — "it outputs zero or
// more logical forms, some of which arise from limitations in CCG, and
// some from ambiguities inherent in the sentence". Derivations with
// identical semantics (spurious ambiguity from composition/type-raising)
// are deduplicated per cell, which is the practical normal-form filter
// [Hockenmaier & Bisk] that real CCG parsers apply.
//
// Hot-path design (docs/PARSER_INTERNALS.md): categories and terms are
// hash-consed (interner.hpp), so edge dedup keys on interner ids instead
// of rendered strings, and each chart cell carries combinability indexes
// (by category id, by forward-slash result, by backward-slash argument)
// that replace the left×right cross-product scan with index probes. The
// original scan survives behind ParserOptions::reference_mode as the
// oracle for the differential tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ccg/lexicon.hpp"
#include "lf/logical_form.hpp"
#include "nlp/tokenizer.hpp"

namespace sage::ccg {

struct ParserOptions {
  bool enable_composition = true;
  bool enable_type_raising = true;
  bool enable_coordination = true;
  /// Record full derivation trees for sentence-level parses (the
  /// Appendix B / Figure 7 output). Off by default: derivations cost
  /// memory and only the explainability surfaces need them.
  bool record_derivations = false;
  /// Differential-testing escape hatch: combine cells with the original
  /// cross-product scan and string-rendered dedup keys instead of the
  /// indexed probes and interner-id keys. Byte-identical output to the
  /// production path (tests/test_differential.cpp holds both to it);
  /// only the work done to get there differs.
  bool reference_mode = false;
  /// Per-cell edge cap; prevents pathological blowup on long sentences.
  std::size_t max_edges_per_cell = 96;
  /// Sentences longer than this are rejected (0 logical forms) — matches
  /// the practical limit the paper's parser had on very long sentences.
  std::size_t max_tokens = 48;
};

/// Hot-path counters for one parse() call (surfaced by
/// `sage_debug --parse-stats` and the parser bench).
struct ParseStats {
  std::size_t edges_created = 0;    // edges admitted to the chart
  std::size_t dedup_hits = 0;       // edges rejected as duplicates
  std::size_t cap_drops = 0;        // edges rejected by the per-cell cap
  std::size_t index_probes = 0;     // cell-index lookups (production mode)
  std::size_t beta_reductions = 0;  // beta_reduce() calls
  std::size_t beta_steps = 0;       // total normal-order steps taken
  // Chart-arena counters (util::Arena backing the chart cells). The
  // arena is thread-local and retained across parses, so reserved bytes
  // reach a steady state and further parses cost zero heap traffic for
  // chart storage.
  std::size_t arena_bytes_reserved = 0;  // chunk capacity held after this parse
  std::size_t arena_high_water = 0;      // peak live bytes in any parse so far
  std::size_t arena_resets = 0;          // lifetime resets on this thread
};

/// One node of a recorded derivation: the edge's category and semantics,
/// the combinator that built it, and its children.
struct DerivationNode {
  std::string category;
  std::string semantics;
  std::string rule;   // "lexicon 'is'", "forward application", ...
  int left = -1;      // indices into Derivation::nodes, -1 = none
  int right = -1;
};

/// A complete derivation for one sentence-level parse (Appendix B of the
/// paper shows one for "For computing the checksum, the checksum should
/// be zero").
struct Derivation {
  std::vector<DerivationNode> nodes;
  int root = -1;

  /// Indented tree rendering.
  std::string to_string() const;
};

/// Outcome of parsing one sentence.
struct ParseResult {
  /// Sentence-level (category S) logical forms, deduplicated.
  std::vector<lf::LogicalForm> forms;
  /// Full-span noun-phrase readings. Fragments (field descriptions that
  /// lack a subject, §4.1 examples A-C) land here; the pipeline re-parses
  /// them with the field name supplied as subject.
  std::vector<lf::LogicalForm> fragments;
  /// Derivation trees for `forms`, index-aligned, when
  /// ParserOptions::record_derivations is set.
  std::vector<Derivation> derivations;
  /// Total chart edges built (for the perf benches).
  std::size_t chart_edges = 0;
  /// Tokens that had no lexical entry at all (diagnosis for 0-LF results).
  std::vector<std::string> unknown_tokens;
  /// Hot-path counters for this parse.
  ParseStats stats;
};

class CcgParser {
 public:
  /// `lexicon` must outlive the parser.
  explicit CcgParser(const Lexicon* lexicon, ParserOptions options = {})
      : lexicon_(lexicon), options_(options) {}

  ParseResult parse(const std::vector<nlp::Token>& tokens) const;

  const ParserOptions& options() const { return options_; }

 private:
  const Lexicon* lexicon_;
  ParserOptions options_;
};

}  // namespace sage::ccg

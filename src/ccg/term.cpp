#include "ccg/term.hpp"

#include <atomic>
#include <cctype>
#include <map>

namespace sage::ccg {

namespace {
std::atomic<int> g_var_counter{1000000};
}

int fresh_var() { return g_var_counter.fetch_add(1); }

TermPtr mk_var(int id) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kVar;
  t->var = id;
  return t;
}

TermPtr mk_lam(int var, TermPtr body) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kLam;
  t->var = var;
  t->a = std::move(body);
  return t;
}

TermPtr mk_app(TermPtr fun, TermPtr arg) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kApp;
  t->a = std::move(fun);
  t->b = std::move(arg);
  return t;
}

TermPtr mk_pred(std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kPred;
  t->name = std::move(name);
  return t;
}

TermPtr mk_str(std::string value) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kStr;
  t->name = std::move(value);
  return t;
}

TermPtr mk_num(long value) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kNum;
  t->number = value;
  return t;
}

TermPtr mk_pred_app(std::string name, std::vector<TermPtr> args) {
  TermPtr t = mk_pred(std::move(name));
  for (auto& a : args) t = mk_app(std::move(t), std::move(a));
  return t;
}

namespace {

/// Substitute `value` for free occurrences of `var` in `term`.
/// Lexicon terms are closed, and combinators only ever substitute terms
/// whose free variables are freshly generated, so variable capture cannot
/// occur (every binder uses a globally unique id).
TermPtr substitute(const TermPtr& term, int var, const TermPtr& value) {
  switch (term->kind) {
    case Term::Kind::kVar:
      return term->var == var ? value : term;
    case Term::Kind::kLam: {
      if (term->var == var) return term;  // shadowed (cannot happen w/ fresh ids)
      TermPtr body = substitute(term->a, var, value);
      return body == term->a ? term : mk_lam(term->var, std::move(body));
    }
    case Term::Kind::kApp: {
      TermPtr f = substitute(term->a, var, value);
      TermPtr x = substitute(term->b, var, value);
      return (f == term->a && x == term->b) ? term
                                            : mk_app(std::move(f), std::move(x));
    }
    default:
      return term;
  }
}

/// One normal-order reduction step; nullptr when already in normal form.
TermPtr step(const TermPtr& term) {
  switch (term->kind) {
    case Term::Kind::kApp: {
      if (term->a->kind == Term::Kind::kLam) {
        return substitute(term->a->a, term->a->var, term->b);
      }
      if (TermPtr f = step(term->a)) return mk_app(std::move(f), term->b);
      if (TermPtr x = step(term->b)) return mk_app(term->a, std::move(x));
      return nullptr;
    }
    case Term::Kind::kLam: {
      if (TermPtr body = step(term->a)) return mk_lam(term->var, std::move(body));
      return nullptr;
    }
    default:
      return nullptr;
  }
}

}  // namespace

TermPtr beta_reduce(const TermPtr& term, int max_steps) {
  TermPtr current = term;
  for (int i = 0; i < max_steps; ++i) {
    TermPtr next = step(current);
    if (!next) return current;
    current = std::move(next);
  }
  return nullptr;  // did not normalize within the cap
}

std::string term_to_string(const TermPtr& term) {
  if (!term) return "<null>";
  switch (term->kind) {
    case Term::Kind::kVar:
      return "x" + std::to_string(term->var);
    case Term::Kind::kLam:
      return "\\x" + std::to_string(term->var) + "." + term_to_string(term->a);
    case Term::Kind::kApp: {
      // Collect the application spine for @Pred(a, b) style printing.
      std::vector<const Term*> args;
      const Term* head = term.get();
      while (head->kind == Term::Kind::kApp) {
        args.push_back(head->b.get());
        head = head->a.get();
      }
      std::string out;
      if (head->kind == Term::Kind::kPred) {
        out = head->name;
      } else {
        out = term_to_string(std::make_shared<Term>(*head));
      }
      out += "(";
      for (std::size_t i = args.size(); i-- > 0;) {
        out += term_to_string(std::make_shared<Term>(*args[i]));
        if (i != 0) out += ", ";
      }
      out += ")";
      return out;
    }
    case Term::Kind::kPred:
      return term->name;
    case Term::Kind::kStr:
      return "\"" + term->name + "\"";
    case Term::Kind::kNum:
      return std::to_string(term->number);
  }
  return "?";
}

std::optional<lf::LogicalForm> term_to_logical_form(const TermPtr& term) {
  if (!term) return std::nullopt;
  switch (term->kind) {
    case Term::Kind::kStr:
      return lf::LfNode::str(term->name);
    case Term::Kind::kNum:
      return lf::LfNode::num(term->number);
    case Term::Kind::kPred:
      return lf::LfNode::predicate(term->name);
    case Term::Kind::kApp: {
      std::vector<const Term*> spine;
      const Term* head = term.get();
      while (head->kind == Term::Kind::kApp) {
        spine.push_back(head->b.get());
        head = head->a.get();
      }
      if (head->kind != Term::Kind::kPred) return std::nullopt;
      std::vector<lf::LfNode> args;
      args.reserve(spine.size());
      for (std::size_t i = spine.size(); i-- > 0;) {
        auto arg = term_to_logical_form(std::make_shared<Term>(*spine[i]));
        if (!arg) return std::nullopt;
        args.push_back(std::move(*arg));
      }
      return lf::LfNode::predicate(head->name, std::move(args));
    }
    case Term::Kind::kVar:
    case Term::Kind::kLam:
      return std::nullopt;  // not a ground logical form
  }
  return std::nullopt;
}

namespace {

/// Parser for the lexicon's term syntax.
class TermParser {
 public:
  explicit TermParser(std::string_view text) : text_(text) {}

  TermPtr parse() {
    TermPtr t = parse_term();
    skip_ws();
    if (t && pos_ != text_.size()) return nullptr;
    return t;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  TermPtr parse_term() {
    skip_ws();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '\\') return parse_lambda();
    return parse_applied();
  }

  TermPtr parse_lambda() {
    ++pos_;  // backslash
    std::string name = parse_ident();
    if (name.empty() || !eat('.')) return nullptr;
    const int id = fresh_var();
    vars_[name] = id;
    TermPtr body = parse_term();
    vars_.erase(name);
    if (!body) return nullptr;
    return mk_lam(id, std::move(body));
  }

  /// atom optionally followed by (arg, arg, ...) application lists.
  TermPtr parse_applied() {
    TermPtr head = parse_atom();
    if (!head) return nullptr;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '(') break;
      ++pos_;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
        continue;  // nullary application: just the head
      }
      while (true) {
        TermPtr arg = parse_term();
        if (!arg) return nullptr;
        head = mk_app(std::move(head), std::move(arg));
        if (eat(')')) break;
        if (!eat(',')) return nullptr;
      }
    }
    return head;
  }

  TermPtr parse_atom() {
    skip_ws();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') value += text_[pos_++];
      if (pos_ >= text_.size()) return nullptr;
      ++pos_;
      return mk_str(std::move(value));
    }
    if (c == '@') {
      ++pos_;
      std::string name = parse_ident();
      if (name.empty()) return nullptr;
      return mk_pred("@" + name);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-') {
      std::string digits;
      if (c == '-') {
        digits += c;
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        digits += text_[pos_++];
      }
      if (digits.empty() || digits == "-") return nullptr;
      return mk_num(std::stol(digits));
    }
    const std::string name = parse_ident();
    if (name.empty()) return nullptr;
    const auto it = vars_.find(name);
    if (it == vars_.end()) return nullptr;  // unbound variable
    return mk_var(it->second);
  }

  std::string parse_ident() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      out += text_[pos_++];
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::map<std::string, int> vars_;
};

}  // namespace

TermPtr parse_term(std::string_view text) { return TermParser(text).parse(); }

}  // namespace sage::ccg

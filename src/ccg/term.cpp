#include "ccg/term.hpp"

#include <atomic>
#include <cctype>
#include <map>
#include <unordered_map>

#include "ccg/interner.hpp"

namespace sage::ccg {

namespace {
std::atomic<int> g_var_counter{kLexVarBase};

/// Probe key for the term interner: scalars + child pointers. For the
/// stored copy, `name` views the canonical node's own storage.
struct TermKey {
  Term::Kind kind;
  int var;
  long number;
  std::string_view name;
  const Term* a;
  const Term* b;
  std::uint64_t hash;

  bool operator==(const TermKey& o) const {
    return kind == o.kind && var == o.var && number == o.number &&
           name == o.name && a == o.a && b == o.b;
  }
};
struct TermKeyHash {
  std::size_t operator()(const TermKey& k) const {
    return static_cast<std::size_t>(k.hash);
  }
};

using TermTable = InternTable<Term, TermKey, TermKeyHash>;

TermTable& term_table() {
  static TermTable* table = new TermTable();  // immortal by design
  return *table;
}

std::uint64_t term_hash(const TermKey& k) {
  std::uint64_t h = hash_mix(kHashSeed, static_cast<std::uint64_t>(k.kind));
  h = hash_mix(h, static_cast<std::uint64_t>(k.var));
  h = hash_mix(h, static_cast<std::uint64_t>(k.number));
  h = hash_bytes(h, k.name);
  h = hash_mix(h, k.a != nullptr ? k.a->hash : 0);
  h = hash_mix(h, k.b != nullptr ? k.b->hash : 0);
  return h;
}

TermKey key_of(const Term& t) {
  TermKey key{t.kind, t.var, t.number, t.name, t.a.get(), t.b.get(), t.hash};
  return key;
}

TermPtr intern_term(Term::Kind kind, int var, long number, std::string name,
                    TermPtr a, TermPtr b) {
  TermKey key{kind, var, number, name, a.get(), b.get(), 0};
  key.hash = term_hash(key);
  return term_table().intern(
      key,
      [&](std::uint32_t id) {
        auto t = std::make_shared<Term>();
        t->kind = kind;
        t->var = var;
        t->number = number;
        t->name = std::move(name);
        t->a = std::move(a);
        t->b = std::move(b);
        t->hash = key.hash;
        t->id = id;
        switch (kind) {
          case Term::Kind::kVar:
            t->var_bloom = 1ull << (static_cast<unsigned>(var) & 63u);
            break;
          case Term::Kind::kLam:
            t->normal = t->a->normal;
            t->var_bloom = t->a->var_bloom;
            break;
          case Term::Kind::kApp:
            t->normal = t->a->normal && t->b->normal &&
                        t->a->kind != Term::Kind::kLam;
            t->var_bloom = t->a->var_bloom | t->b->var_bloom;
            break;
          default:
            break;  // leaves: normal, no variables
        }
        return t;
      },
      [](const Term& t) { return key_of(t); });
}

}  // namespace

std::size_t term_interner_size() { return term_table().size(); }

int fresh_var() { return g_var_counter.fetch_add(1); }

TermPtr mk_var(int id) {
  return intern_term(Term::Kind::kVar, id, 0, {}, nullptr, nullptr);
}

TermPtr mk_lam(int var, TermPtr body) {
  return intern_term(Term::Kind::kLam, var, 0, {}, std::move(body), nullptr);
}

TermPtr mk_app(TermPtr fun, TermPtr arg) {
  return intern_term(Term::Kind::kApp, 0, 0, {}, std::move(fun),
                     std::move(arg));
}

TermPtr mk_pred(std::string name) {
  return intern_term(Term::Kind::kPred, 0, 0, std::move(name), nullptr,
                     nullptr);
}

TermPtr mk_str(std::string value) {
  return intern_term(Term::Kind::kStr, 0, 0, std::move(value), nullptr,
                     nullptr);
}

TermPtr mk_num(long value) {
  return intern_term(Term::Kind::kNum, 0, value, {}, nullptr, nullptr);
}

TermPtr mk_pred_app(std::string name, std::vector<TermPtr> args) {
  TermPtr t = mk_pred(std::move(name));
  for (auto& a : args) t = mk_app(std::move(t), std::move(a));
  return t;
}

namespace {

/// Substitute `value` for free occurrences of `var` in `term`.
/// No alpha-renaming: lexicon terms are closed, combinator wrappers use
/// ids fresh within the parse, and the one reused binder id
/// (kTypeRaiseVar) is only ever bound over its own head occurrence —
/// so the shadowing check below is exact and capture cannot occur
/// (docs/PARSER_INTERNALS.md spells out the argument).
TermPtr substitute(const TermPtr& term, int var, const TermPtr& value) {
  // Bloom miss proves `var` does not occur anywhere below: no walk.
  if ((term->var_bloom & (1ull << (static_cast<unsigned>(var) & 63u))) == 0) {
    return term;
  }
  switch (term->kind) {
    case Term::Kind::kVar:
      return term->var == var ? value : term;
    case Term::Kind::kLam: {
      if (term->var == var) return term;  // shadowed

      TermPtr body = substitute(term->a, var, value);
      return body == term->a ? term : mk_lam(term->var, std::move(body));
    }
    case Term::Kind::kApp: {
      TermPtr f = substitute(term->a, var, value);
      TermPtr x = substitute(term->b, var, value);
      return (f == term->a && x == term->b) ? term
                                            : mk_app(std::move(f), std::move(x));
    }
    default:
      return term;
  }
}

/// One normal-order reduction step; nullptr when already in normal form.
TermPtr step(const TermPtr& term) {
  if (term->normal) return nullptr;  // memoized: no redex below
  switch (term->kind) {
    case Term::Kind::kApp: {
      if (term->a->kind == Term::Kind::kLam) {
        return substitute(term->a->a, term->a->var, term->b);
      }
      if (TermPtr f = step(term->a)) return mk_app(std::move(f), term->b);
      if (TermPtr x = step(term->b)) return mk_app(term->a, std::move(x));
      return nullptr;
    }
    case Term::Kind::kLam: {
      if (TermPtr body = step(term->a)) return mk_lam(term->var, std::move(body));
      return nullptr;
    }
    default:
      return nullptr;
  }
}

}  // namespace

namespace {

/// Memo of successful normalizations ("computed table"): input term id
/// -> (normal form, steps it took). Sound because terms are canonical
/// and beta_reduce is a pure function of its input; shared process-wide
/// so repeated combinations across sentences and batch passes reduce
/// once. Striped like the interner. Entries are only reused when the
/// caller's step budget covers the recorded cost, so a generous cache
/// can never turn a capped failure into a success.
struct BetaMemoShard {
  std::mutex mutex;
  std::unordered_map<std::uint32_t, std::pair<TermPtr, std::uint32_t>> map;
};

std::array<BetaMemoShard, 16>& beta_memo() {
  static auto* shards = new std::array<BetaMemoShard, 16>();  // immortal
  return *shards;
}

/// Same idea keyed on (fun id, arg id) pairs for reduce_app().
struct AppMemoShard {
  std::mutex mutex;
  std::unordered_map<std::uint64_t, std::pair<TermPtr, std::uint32_t>> map;
};

std::array<AppMemoShard, 16>& app_memo() {
  static auto* shards = new std::array<AppMemoShard, 16>();  // immortal
  return *shards;
}

}  // namespace

TermPtr beta_reduce(const TermPtr& term, int max_steps,
                    std::size_t* steps_out) {
  if (term->normal) return term;
  BetaMemoShard& shard = beta_memo()[term->id & 15u];
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.map.find(term->id);
    if (it != shard.map.end() &&
        it->second.second <= static_cast<std::uint32_t>(max_steps)) {
      if (steps_out != nullptr) *steps_out += it->second.second;
      return it->second.first;
    }
  }
  TermPtr current = term;
  for (int i = 0; i < max_steps; ++i) {
    TermPtr next = step(current);
    if (!next) {
      std::lock_guard lock(shard.mutex);
      shard.map.emplace(term->id,
                        std::make_pair(current, static_cast<std::uint32_t>(i)));
      if (steps_out != nullptr) *steps_out += static_cast<std::size_t>(i);
      return current;
    }
    current = std::move(next);
  }
  return nullptr;  // did not normalize within the cap
}

TermPtr reduce_app(const TermPtr& fun, const TermPtr& arg, int max_steps,
                   std::size_t* steps_out) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(fun->id) << 32) | arg->id;
  AppMemoShard& shard = app_memo()[key & 15u];
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end() &&
        it->second.second <= static_cast<std::uint32_t>(max_steps)) {
      if (steps_out != nullptr) *steps_out += it->second.second;
      return it->second.first;
    }
  }
  std::size_t steps = 0;
  TermPtr reduced = beta_reduce(mk_app(fun, arg), max_steps, &steps);
  if (steps_out != nullptr) *steps_out += steps;
  if (reduced != nullptr) {
    std::lock_guard lock(shard.mutex);
    shard.map.emplace(key, std::make_pair(reduced,
                                          static_cast<std::uint32_t>(steps)));
  }
  return reduced;
}

namespace {

/// Append the rendering of `term` to `out` without allocating temporary
/// Term copies (renders must stay byte-identical to the historical
/// recursive formatter — golden corpora depend on these strings).
void append_term(const Term* term, std::string& out) {
  switch (term->kind) {
    case Term::Kind::kVar:
      out += 'x';
      out += std::to_string(term->var);
      return;
    case Term::Kind::kLam:
      out += "\\x";
      out += std::to_string(term->var);
      out += '.';
      append_term(term->a.get(), out);
      return;
    case Term::Kind::kApp: {
      // Collect the application spine for @Pred(a, b) style printing.
      std::vector<const Term*> args;
      const Term* head = term;
      while (head->kind == Term::Kind::kApp) {
        args.push_back(head->b.get());
        head = head->a.get();
      }
      if (head->kind == Term::Kind::kPred) {
        out += head->name;
      } else {
        append_term(head, out);
      }
      out += '(';
      for (std::size_t i = args.size(); i-- > 0;) {
        append_term(args[i], out);
        if (i != 0) out += ", ";
      }
      out += ')';
      return;
    }
    case Term::Kind::kPred:
      out += term->name;
      return;
    case Term::Kind::kStr:
      out += '"';
      out += term->name;
      out += '"';
      return;
    case Term::Kind::kNum:
      out += std::to_string(term->number);
      return;
  }
  out += '?';
}

std::optional<lf::LfNode> term_to_lf_node(const Term* term) {
  switch (term->kind) {
    case Term::Kind::kStr:
      return lf::LfNode::str(term->name);
    case Term::Kind::kNum:
      return lf::LfNode::num(term->number);
    case Term::Kind::kPred:
      return lf::LfNode::predicate(term->name);
    case Term::Kind::kApp: {
      std::vector<const Term*> spine;
      const Term* head = term;
      while (head->kind == Term::Kind::kApp) {
        spine.push_back(head->b.get());
        head = head->a.get();
      }
      if (head->kind != Term::Kind::kPred) return std::nullopt;
      std::vector<lf::LfNode> args;
      args.reserve(spine.size());
      for (std::size_t i = spine.size(); i-- > 0;) {
        auto arg = term_to_lf_node(spine[i]);
        if (!arg) return std::nullopt;
        args.push_back(std::move(*arg));
      }
      return lf::LfNode::predicate(head->name, std::move(args));
    }
    case Term::Kind::kVar:
    case Term::Kind::kLam:
      return std::nullopt;  // not a ground logical form
  }
  return std::nullopt;
}

}  // namespace

std::string term_to_string(const TermPtr& term) {
  if (!term) return "<null>";
  std::string out;
  append_term(term.get(), out);
  return out;
}

std::optional<lf::LogicalForm> term_to_logical_form(const TermPtr& term) {
  if (!term) return std::nullopt;
  return term_to_lf_node(term.get());
}

namespace {

/// Parser for the lexicon's term syntax.
class TermParser {
 public:
  explicit TermParser(std::string_view text) : text_(text) {}

  TermPtr parse() {
    TermPtr t = parse_term();
    skip_ws();
    if (t && pos_ != text_.size()) return nullptr;
    return t;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  TermPtr parse_term() {
    skip_ws();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '\\') return parse_lambda();
    return parse_applied();
  }

  TermPtr parse_lambda() {
    ++pos_;  // backslash
    std::string name = parse_ident();
    if (name.empty() || !eat('.')) return nullptr;
    const int id = fresh_var();
    vars_[name] = id;
    TermPtr body = parse_term();
    vars_.erase(name);
    if (!body) return nullptr;
    return mk_lam(id, std::move(body));
  }

  /// atom optionally followed by (arg, arg, ...) application lists.
  TermPtr parse_applied() {
    TermPtr head = parse_atom();
    if (!head) return nullptr;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '(') break;
      ++pos_;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
        continue;  // nullary application: just the head
      }
      while (true) {
        TermPtr arg = parse_term();
        if (!arg) return nullptr;
        head = mk_app(std::move(head), std::move(arg));
        if (eat(')')) break;
        if (!eat(',')) return nullptr;
      }
    }
    return head;
  }

  TermPtr parse_atom() {
    skip_ws();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') value += text_[pos_++];
      if (pos_ >= text_.size()) return nullptr;
      ++pos_;
      return mk_str(std::move(value));
    }
    if (c == '@') {
      ++pos_;
      std::string name = parse_ident();
      if (name.empty()) return nullptr;
      return mk_pred("@" + name);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-') {
      std::string digits;
      if (c == '-') {
        digits += c;
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        digits += text_[pos_++];
      }
      if (digits.empty() || digits == "-") return nullptr;
      return mk_num(std::stol(digits));
    }
    const std::string name = parse_ident();
    if (name.empty()) return nullptr;
    const auto it = vars_.find(name);
    if (it == vars_.end()) return nullptr;  // unbound variable
    return mk_var(it->second);
  }

  std::string parse_ident() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      out += text_[pos_++];
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::map<std::string, int> vars_;
};

}  // namespace

TermPtr parse_term(std::string_view text) { return TermParser(text).parse(); }

}  // namespace sage::ccg

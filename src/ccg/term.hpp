// Lambda-calculus semantic terms (§3).
//
// CCG couples every syntactic category with a semantics written as a
// lambda expression, e.g.  is => (S\NP)/NP : \x.\y.@Is(y,x).
// Combinators apply/compose these terms; after a full parse the sentence
// term β-reduces to a ground tree of predicates — the logical form.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lf/logical_form.hpp"

namespace sage::ccg {

struct Term;
using TermPtr = std::shared_ptr<const Term>;

/// Immutable, hash-consed lambda term (see interner.hpp): the mk_*
/// factories return canonical pointers, so structurally identical terms
/// are the SAME object. Never mutated after build.
struct Term {
  enum class Kind : std::uint8_t {
    kVar,   // bound variable (id)
    kLam,   // \v. body
    kApp,   // fun arg
    kPred,  // predicate constant, e.g. "@Is"
    kStr,   // string literal
    kNum,   // numeric literal
  };

  Kind kind = Kind::kVar;
  int var = 0;        // kVar, kLam
  std::string name;   // kPred, kStr
  long number = 0;    // kNum
  TermPtr a;          // kLam: body; kApp: function
  TermPtr b;          // kApp: argument

  std::uint64_t hash = 0;  // precomputed structural hash (interner-set)
  std::uint32_t id = 0;    // dense interner id; same structure <=> same id

  // Memoized structural facts, also set at intern time. Hash-consing is
  // what makes these pay: every shared subterm carries them, so
  // beta-reduction skips normal-form subtrees in O(1) and substitution
  // returns untouched subtrees without walking them.
  /// True iff the subtree contains no redex (kApp with a kLam function).
  bool normal = true;
  /// Bloom filter over the variable ids occurring in the subtree
  /// (bit = 1 << (id & 63)). A clear bit proves the variable is absent.
  std::uint64_t var_bloom = 0;
};

TermPtr mk_var(int id);
TermPtr mk_lam(int var, TermPtr body);
TermPtr mk_app(TermPtr fun, TermPtr arg);
TermPtr mk_pred(std::string name);
TermPtr mk_str(std::string value);
TermPtr mk_num(long value);

/// Base id for lexicon/surface-syntax binders (process-wide counter —
/// fresh_var() below). Kept disjoint from parse-time ids so substitution
/// can never capture (every binder id in a term is unique).
inline constexpr int kLexVarBase = 1'000'000;

/// Base id for parse-time fresh variables: every CcgParser::parse call
/// restarts its own VarGen here, so rendered terms, derivations, and
/// dedup identities are deterministic regardless of thread interleaving
/// — and the term interner stays bounded across a batch run (repeated
/// parses re-intern the same ids instead of minting new ones forever).
inline constexpr int kParseVarBase = 1'000'000'000;

/// Reserved binder id for the type-raising wrapper \f.f(x). Outside both
/// the lexicon and parse-time ranges, and only ever bound in that head
/// position, so a single id is capture-safe (docs/PARSER_INTERNALS.md)
/// and raised terms become canonical per raised semantics — the parser
/// memoizes them instead of rebuilding per chart cell.
inline constexpr int kTypeRaiseVar = kParseVarBase - 1;

/// Per-parse fresh-variable generator (not thread-safe; one per parse).
class VarGen {
 public:
  int fresh() { return next_++; }

 private:
  int next_ = kParseVarBase;
};

/// Fresh variable id from the process-wide counter (kLexVarBase range).
/// Used only when parsing lexicon term syntax; chart parsing threads a
/// per-parse VarGen instead.
int fresh_var();

/// Build @Pred(arg1, ..., argN) as an application spine.
TermPtr mk_pred_app(std::string name, std::vector<TermPtr> args);

/// Full normal-order β-reduction with a step cap (malformed combinations
/// could otherwise loop). Returns nullptr if the cap is exceeded.
/// Substitution shares untouched subtrees, and interning makes rebuilt
/// already-seen subtrees allocation-free. `steps_out`, when non-null, is
/// incremented by the number of reduction steps taken (parse stats).
TermPtr beta_reduce(const TermPtr& term, int max_steps = 4096,
                    std::size_t* steps_out = nullptr);

/// beta_reduce(mk_app(fun, arg)) with a process-wide memo keyed on the
/// (fun, arg) interner-id pair — the parser's application fast path. A
/// memo hit skips even the wrapper construction. Exact: application
/// introduces no fresh variables, so the result is a pure function of
/// the canonical pair. Returns nullptr if reduction exceeds `max_steps`.
TermPtr reduce_app(const TermPtr& fun, const TermPtr& arg,
                   int max_steps = 4096, std::size_t* steps_out = nullptr);

/// Render for diagnostics: "\x1.@Is(x1, @Num(0))".
std::string term_to_string(const TermPtr& term);

/// Convert a fully reduced, closed term into a logical form. Fails
/// (nullopt) if lambdas/variables remain or an application head is not a
/// predicate — such parses are discarded (they are CCG artifacts).
std::optional<lf::LogicalForm> term_to_logical_form(const TermPtr& term);

/// Parse the lexicon surface syntax:
///   \x.\y.@Is(y, x)        lambdas and predicate application
///   @Action("compute", x)  string literals
///   f(x)                   applying a bound variable
///   16                     numeric literal
/// Returns nullptr on syntax errors.
TermPtr parse_term(std::string_view text);

}  // namespace sage::ccg

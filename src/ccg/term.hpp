// Lambda-calculus semantic terms (§3).
//
// CCG couples every syntactic category with a semantics written as a
// lambda expression, e.g.  is => (S\NP)/NP : \x.\y.@Is(y,x).
// Combinators apply/compose these terms; after a full parse the sentence
// term β-reduces to a ground tree of predicates — the logical form.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lf/logical_form.hpp"

namespace sage::ccg {

struct Term;
using TermPtr = std::shared_ptr<const Term>;

/// Immutable lambda term. Shared substructure; never mutated after build.
struct Term {
  enum class Kind : std::uint8_t {
    kVar,   // bound variable (id)
    kLam,   // \v. body
    kApp,   // fun arg
    kPred,  // predicate constant, e.g. "@Is"
    kStr,   // string literal
    kNum,   // numeric literal
  };

  Kind kind = Kind::kVar;
  int var = 0;        // kVar, kLam
  std::string name;   // kPred, kStr
  long number = 0;    // kNum
  TermPtr a;          // kLam: body; kApp: function
  TermPtr b;          // kApp: argument
};

TermPtr mk_var(int id);
TermPtr mk_lam(int var, TermPtr body);
TermPtr mk_app(TermPtr fun, TermPtr arg);
TermPtr mk_pred(std::string name);
TermPtr mk_str(std::string value);
TermPtr mk_num(long value);

/// Fresh variable id (process-wide counter).
int fresh_var();

/// Build @Pred(arg1, ..., argN) as an application spine.
TermPtr mk_pred_app(std::string name, std::vector<TermPtr> args);

/// Full normal-order β-reduction with a step cap (malformed combinations
/// could otherwise loop). Returns nullptr if the cap is exceeded.
TermPtr beta_reduce(const TermPtr& term, int max_steps = 4096);

/// Render for diagnostics: "\x1.@Is(x1, @Num(0))".
std::string term_to_string(const TermPtr& term);

/// Convert a fully reduced, closed term into a logical form. Fails
/// (nullopt) if lambdas/variables remain or an application head is not a
/// predicate — such parses are discarded (they are CCG artifacts).
std::optional<lf::LogicalForm> term_to_logical_form(const TermPtr& term);

/// Parse the lexicon surface syntax:
///   \x.\y.@Is(y, x)        lambdas and predicate application
///   @Action("compute", x)  string literals
///   f(x)                   applying a bound variable
///   16                     numeric literal
/// Returns nullptr on syntax errors.
TermPtr parse_term(std::string_view text);

}  // namespace sage::ccg

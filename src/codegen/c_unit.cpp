#include "codegen/c_unit.hpp"

#include <map>
#include <set>

#include "net/schema.hpp"
#include "util/strings.hpp"

namespace sage::codegen {

namespace {

/// Byte-array-valued fields, per the packet-schema registry (the same
/// view runtime::SchemaExecEnv executes against). The substring
/// fallback keeps non-registry layers behaving as before.
bool is_bytes_field(const FieldRef& ref) {
  const auto& registry = net::schema::SchemaRegistry::instance();
  const auto* spec = ref.field_id >= 0
                         ? registry.field_by_id(ref.field_id)
                         : registry.field(ref.layer, ref.field);
  if (spec != nullptr) return spec->kind == net::schema::FieldKind::kBytes;
  return ref.field == "data" ||
         ref.field.find("datagram") != std::string::npos ||
         ref.field.find("internet_header") != std::string::npos;
}

/// Byte-array-valued framework functions.
bool is_bytes_function(const std::string& name) {
  return name == "original_datagram_excerpt" || name == "copy_field";
}

struct Collected {
  // layer -> field -> is_bytes
  std::map<std::string, std::map<std::string, bool>> fields;
  std::set<std::string> functions;
  std::set<std::string> symbols;  // scenario constants
};

void collect_expr(const Expr& expr, Collected& out);

void collect_cond(const Cond& cond, Collected& out) {
  if (cond.kind == Cond::Kind::kCompare) {
    collect_expr(cond.lhs, out);
    collect_expr(cond.rhs, out);
  }
  for (const auto& child : cond.children) collect_cond(child, out);
}

void collect_expr(const Expr& expr, Collected& out) {
  switch (expr.kind) {
    case Expr::Kind::kField:
      out.fields[expr.field.layer][expr.field.field] = is_bytes_field(expr.field);
      break;
    case Expr::Kind::kCall:
      out.functions.insert(expr.name);
      for (const auto& a : expr.args) collect_expr(a, out);
      break;
    case Expr::Kind::kName: {
      const std::string id = util::to_snake_case(expr.name);
      if (id != "scenario") out.symbols.insert(id);
      break;
    }
    case Expr::Kind::kConst:
      break;
  }
}

void collect_stmt(const Stmt& stmt, Collected& out) {
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
      out.fields[stmt.target.layer][stmt.target.field] =
          is_bytes_field(stmt.target);
      collect_expr(stmt.value, out);
      break;
    case Stmt::Kind::kCall:
      out.functions.insert(stmt.fn);
      for (const auto& a : stmt.args) collect_expr(a, out);
      break;
    case Stmt::Kind::kIf:
      collect_cond(stmt.cond, out);
      break;
    case Stmt::Kind::kSeq:
    case Stmt::Kind::kComment:
      break;
  }
  for (const auto& child : stmt.body) collect_stmt(child, out);
}

}  // namespace

std::string c_framework_header() {
  return
      "/* sage static framework (C declarations) */\n"
      "struct sage_bytes {\n"
      "    const unsigned char *ptr;\n"
      "    unsigned long len;\n"
      "};\n\n";
}

std::string emit_compilation_unit(
    std::span<const GeneratedFunction> functions) {
  Collected collected;
  for (const auto& fn : functions) collect_stmt(fn.body, collected);

  std::string out = c_framework_header();

  // struct packet, built from exactly the fields the generated code uses.
  out += "struct packet {\n";
  for (const auto& [layer, fields] : collected.fields) {
    out += "    struct {\n";
    for (const auto& [field, bytes] : fields) {
      out += std::string("        ") +
             (bytes ? "struct sage_bytes " : "long ") + field + ";\n";
    }
    out += "    } " + layer + ";\n";
  }
  out += "};\n\n";

  // The event scenario the framework supplies (see §5.2's context use).
  out += "static long scenario;\n";
  long next = 1;
  for (const auto& symbol : collected.symbols) {
    out += "static const long " + symbol + " = " + std::to_string(next++) +
           ";\n";
  }
  out += "\n";

  // Framework function declarations. C99 empty parameter lists leave the
  // arity unspecified, matching the variadic way RFC text names them.
  for (const auto& fn : collected.functions) {
    out += std::string(is_bytes_function(fn) ? "struct sage_bytes " : "long ") +
           fn + "();\n";
  }
  out += "\n";

  for (const auto& fn : functions) {
    out += fn.c_source;
    out += "\n";
  }
  return out;
}

}  // namespace sage::codegen

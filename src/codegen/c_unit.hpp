// Self-contained C compilation units (§5.1's static framework, C side).
//
// The paper's generated code is C that links against a static framework.
// Besides the executable IR (which the simulator runs), this module
// renders a complete, compilable C translation unit: the framework's
// struct/function declarations, the scenario constants the generated
// guards reference, and every generated function. The test suite feeds
// the result to the system C compiler — the generated code is real C,
// not pseudo-code.
#pragma once

#include <span>
#include <string>

#include "codegen/ir.hpp"

namespace sage::codegen {

/// The static-framework C header: `struct packet` (with ip/icmp/igmp/
/// udp/ntp/bfd layers), framework function declarations, and the
/// `scenario` variable.
std::string c_framework_header();

/// A full translation unit: framework header + scenario constants used
/// by `functions` + the functions themselves.
std::string emit_compilation_unit(std::span<const GeneratedFunction> functions);

}  // namespace sage::codegen

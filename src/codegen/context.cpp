#include "codegen/context.hpp"

#include "net/schema.hpp"
#include "util/strings.hpp"

namespace sage::codegen {

DynamicContext DynamicContext::from_map(
    const std::map<std::string, std::string>& m) {
  DynamicContext ctx;
  const auto get = [&m](const char* key) {
    const auto it = m.find(key);
    return it == m.end() ? std::string() : it->second;
  };
  ctx.protocol = get("protocol");
  ctx.message = get("message");
  ctx.field = get("field");
  ctx.role = get("role");
  return ctx;
}

std::string DynamicContext::to_string() const {
  return "{\"protocol\": \"" + protocol + "\", \"message\": \"" + message +
         "\", \"field\": \"" + field + "\", \"role\": \"" + role + "\"}";
}

std::string layer_for_protocol(std::string_view protocol) {
  return util::to_lower(protocol);
}

void StaticContext::add_field(std::string_view phrase, FieldRef ref) {
  // Annotate the ref against the packet-schema registry at table-build
  // time so every ref handed out by resolve_field carries its dense id.
  if (ref.field_id < 0) {
    const auto* spec =
        net::schema::SchemaRegistry::instance().field(ref.layer, ref.field);
    if (spec != nullptr) ref.field_id = spec->id;
  }
  fields_[util::to_lower(phrase)].push_back(std::move(ref));
}

void StaticContext::add_function(std::string_view phrase, std::string_view fn) {
  functions_[util::to_lower(phrase)] = std::string(fn);
}

std::optional<FieldRef> StaticContext::field(
    std::string_view phrase, std::string_view preferred_layer) const {
  const auto it = fields_.find(util::to_lower(phrase));
  if (it == fields_.end() || it->second.empty()) return std::nullopt;
  for (const auto& ref : it->second) {
    if (!preferred_layer.empty() && ref.layer == preferred_layer) return ref;
  }
  return it->second.front();
}

std::optional<FieldRef> StaticContext::field(
    std::string_view phrase,
    std::span<const std::string> preferred_layers) const {
  const auto it = fields_.find(util::to_lower(phrase));
  if (it == fields_.end() || it->second.empty()) return std::nullopt;
  for (const auto& layer : preferred_layers) {
    for (const auto& ref : it->second) {
      if (ref.layer == layer) return ref;
    }
  }
  return it->second.front();
}

std::optional<std::string> StaticContext::function(
    std::string_view phrase) const {
  const auto it = functions_.find(util::to_lower(phrase));
  if (it == functions_.end()) return std::nullopt;
  return it->second;
}

std::size_t StaticContext::field_count() const {
  std::size_t n = 0;
  for (const auto& [phrase, refs] : fields_) n += refs.size();
  return n;
}

StaticContext StaticContext::standard() {
  StaticContext ctx;

  // ---- IP layer (lower-layer protocol knowledge, §5.1) -------------------
  ctx.add_field("source address", {"ip", "src"});
  ctx.add_field("destination address", {"ip", "dst"});
  ctx.add_field("source and destination addresses", {"ip", "addresses"});
  ctx.add_field("time to live", {"ip", "ttl"});
  ctx.add_field("type of service", {"ip", "tos"});
  ctx.add_field("total length", {"ip", "total_length"});
  ctx.add_field("internet header", {"ip", "header"});

  // ---- ICMP fields --------------------------------------------------------
  ctx.add_field("type", {"icmp", "type"});
  ctx.add_field("code", {"icmp", "code"});
  ctx.add_field("checksum", {"icmp", "checksum"});
  ctx.add_field("identifier", {"icmp", "identifier"});
  ctx.add_field("sequence number", {"icmp", "sequence_number"});
  ctx.add_field("gateway internet address", {"icmp", "gateway_internet_address"});
  ctx.add_field("gateway address", {"icmp", "gateway_internet_address"});
  ctx.add_field("pointer", {"icmp", "pointer"});
  ctx.add_field("originate timestamp", {"icmp", "originate_timestamp"});
  ctx.add_field("receive timestamp", {"icmp", "receive_timestamp"});
  ctx.add_field("transmit timestamp", {"icmp", "transmit_timestamp"});
  ctx.add_field("data", {"icmp", "data"});
  ctx.add_field("unused", {"icmp", "unused"});
  ctx.add_field("checksum field", {"icmp", "checksum"});
  ctx.add_field("icmp message", {"icmp", "message"});

  // ---- IPv6 layer (ICMPv6 lower-layer knowledge, RFC 8200) ----------------
  ctx.add_field("source address", {"ip6", "src"});
  ctx.add_field("destination address", {"ip6", "dst"});
  ctx.add_field("source and destination addresses", {"ip6", "addresses"});
  ctx.add_field("hop limit", {"ip6", "hop_limit"});
  ctx.add_field("ipv6 header", {"ip6", "header"});

  // ---- ICMPv6 fields (RFC 4443) -------------------------------------------
  ctx.add_field("type", {"icmp6", "type"});
  ctx.add_field("code", {"icmp6", "code"});
  ctx.add_field("checksum", {"icmp6", "checksum"});
  ctx.add_field("checksum field", {"icmp6", "checksum"});
  ctx.add_field("identifier", {"icmp6", "identifier"});
  ctx.add_field("sequence number", {"icmp6", "sequence_number"});
  ctx.add_field("pointer", {"icmp6", "pointer"});
  ctx.add_field("mtu", {"icmp6", "mtu"});
  ctx.add_field("unused", {"icmp6", "unused"});
  ctx.add_field("data", {"icmp6", "data"});
  ctx.add_field("icmpv6 message", {"icmp6", "message"});
  ctx.add_field("invoking packet", {"icmp6", "data"});

  // ---- DHCP option fields (RFC 2132, TLV-located) -------------------------
  ctx.add_field("subnet mask", {"dhcp", "subnet_mask"});
  ctx.add_field("requested ip address", {"dhcp", "requested_ip"});
  ctx.add_field("lease time", {"dhcp", "lease_time"});
  ctx.add_field("message type", {"dhcp", "message_type"});
  ctx.add_field("server identifier", {"dhcp", "server_identifier"});
  ctx.add_field("transaction id", {"dhcp", "xid"});

  // ---- IGMP fields (§6.3) -------------------------------------------------
  ctx.add_field("version", {"igmp", "version"});
  ctx.add_field("group address", {"igmp", "group_address"});
  ctx.add_field("group address field", {"igmp", "group_address"});
  ctx.add_field("host group address", {"igmp", "host_group_address"});
  ctx.add_field("type", {"igmp", "type"});
  ctx.add_field("checksum", {"igmp", "checksum"});
  ctx.add_field("unused", {"igmp", "unused"});
  ctx.add_field("unused field", {"igmp", "unused"});
  ctx.add_field("checksum field", {"igmp", "checksum"});
  ctx.add_field("igmp message", {"igmp", "message"});

  // ---- NTP fields (§6.3, RFC 1059 Appendix B) ------------------------------
  ctx.add_field("leap indicator", {"ntp", "leap_indicator"});
  ctx.add_field("version number", {"ntp", "version"});
  ctx.add_field("stratum", {"ntp", "stratum"});
  ctx.add_field("poll", {"ntp", "poll"});
  ctx.add_field("precision", {"ntp", "precision"});
  ctx.add_field("reference timestamp", {"ntp", "reference_timestamp"});
  ctx.add_field("originate timestamp", {"ntp", "originate_timestamp"});
  ctx.add_field("receive timestamp", {"ntp", "receive_timestamp"});
  ctx.add_field("transmit timestamp", {"ntp", "transmit_timestamp"});
  ctx.add_field("mode", {"ntp", "mode"});
  ctx.add_field("peer timer", {"ntp", "peer_timer"});

  // ---- UDP fields (NTP encapsulation, RFC 1059 Appendix A) ----------------
  ctx.add_field("source port", {"udp", "src_port"});
  ctx.add_field("destination port", {"udp", "dst_port"});
  ctx.add_field("length", {"udp", "length"});

  // ---- BFD state variables (§6.4, RFC 5880 §6.8.1) ------------------------
  ctx.add_field("bfd.sessionstate", {"bfd", "session_state"});
  ctx.add_field("bfd.remotesessionstate", {"bfd", "remote_session_state"});
  ctx.add_field("bfd.localdiscr", {"bfd", "local_discr"});
  ctx.add_field("bfd.remotediscr", {"bfd", "remote_discr"});
  ctx.add_field("bfd.localdiag", {"bfd", "local_diag"});
  ctx.add_field("bfd.desiredmintxinterval", {"bfd", "desired_min_tx_interval"});
  ctx.add_field("bfd.requiredminrxinterval", {"bfd", "required_min_rx_interval"});
  ctx.add_field("bfd.remoteminrxinterval", {"bfd", "remote_min_rx_interval"});
  ctx.add_field("bfd.demandmode", {"bfd", "demand_mode"});
  ctx.add_field("bfd.remotedemandmode", {"bfd", "remote_demand_mode"});
  ctx.add_field("bfd.detectmult", {"bfd", "detect_mult"});
  ctx.add_field("bfd.authtype", {"bfd", "auth_type"});
  ctx.add_field("your discriminator field", {"bfd", "your_discriminator"});
  ctx.add_field("your discriminator", {"bfd", "your_discriminator"});
  ctx.add_field("my discriminator field", {"bfd", "my_discriminator"});
  ctx.add_field("my discriminator", {"bfd", "my_discriminator"});
  ctx.add_field("state field", {"bfd", "state"});
  ctx.add_field("detect mult field", {"bfd", "detect_mult_field"});
  ctx.add_field("demand bit", {"bfd", "demand_bit"});
  ctx.add_field("poll bit", {"bfd", "poll_bit"});
  ctx.add_field("multipoint bit", {"bfd", "multipoint_bit"});
  ctx.add_field("required min rx interval field",
                {"bfd", "required_min_rx_interval_field"});
  ctx.add_field("required min echo rx interval field",
                {"bfd", "required_min_echo_rx_interval_field"});

  // ---- TCP probe fields (§7 reach experiment) ------------------------------
  ctx.add_field("syn bit", {"tcp", "syn_bit"});
  ctx.add_field("ack bit", {"tcp", "ack_bit"});
  ctx.add_field("rst bit", {"tcp", "rst_bit"});
  ctx.add_field("fin bit", {"tcp", "fin_bit"});
  ctx.add_field("connection state", {"tcp", "connection_state"});
  ctx.add_field("segment", {"tcp", "segment"});

  // ---- BGP probe fields (§7 reach experiment) -------------------------------
  ctx.add_field("hold timer", {"bgp", "hold_timer"});
  ctx.add_field("marker field", {"bgp", "marker"});
  ctx.add_field("version field", {"bgp", "version"});

  // ---- framework functions (§5.1: one's complement, OS services) ----------
  ctx.add_function("one's complement sum", "ones_complement_sum");
  ctx.add_function("ones complement sum", "ones_complement_sum");
  ctx.add_function("16-bit one's complement", "ones_complement");
  ctx.add_function("reverse", "reverse_addresses");
  ctx.add_function("reversed", "reverse_addresses");
  ctx.add_function("recompute", "recompute_checksum");
  ctx.add_function("recomputed", "recompute_checksum");
  ctx.add_function("compute", "compute_checksum");
  ctx.add_function("copy", "copy_field");
  ctx.add_function("discard", "discard");
  ctx.add_function("send", "send");
  ctx.add_function("select_session", "select_session");
  ctx.add_function("cease_transmission", "cease_transmission");
  ctx.add_function("timeout", "timeout");
  // OS/event services the RFC text references but never defines (§5.1):
  ctx.add_function("better gateway", "better_gateway");
  // The router service RFC 4443's Packet Too Big rewrite references: the
  // MTU of the next-hop link, served by the framework deterministically.
  ctx.add_function("link mtu", "link_mtu");
  ctx.add_function("octet", "error_octet");
  ctx.add_function("current time", "current_time");
  ctx.add_function("time the sender last touched the message", "current_time");
  ctx.add_function("time the echoer first touched the message", "receive_time");
  ctx.add_function("time the echoer last touched the message", "transmit_time");

  return ctx;
}

std::optional<FieldRef> ResolutionContext::resolve_field(
    std::string_view phrase) const {
  const std::string key = util::to_lower(util::trim(phrase));
  const std::string layer = layer_for_protocol(dynamic_.protocol);

  // Layer preference order: the protocol's own layer first, then the
  // rest of its schema-bound layers. A multi-layer protocol like ICMPv6
  // resolves "source address" to ip6.src, not whichever layer registered
  // the phrase first; protocols outside the registry keep the
  // single-layer behavior.
  std::vector<std::string> preference{layer};
  if (const auto* schema =
          net::schema::SchemaRegistry::instance().protocol(dynamic_.protocol)) {
    for (const auto& bound : schema->layers) {
      if (bound != layer) preference.push_back(bound);
    }
  }

  // Dynamic context first (§5.2): a bare reference to the field being
  // described ("type", or an empty phrase meaning "this field") resolves
  // through the document structure.
  if (!dynamic_.field.empty()) {
    const std::string field_key = util::to_lower(dynamic_.field);
    if (key.empty() || key == field_key ||
        key == "the " + field_key) {
      // The group tells us which layer's field is being described
      // ("IP Fields" vs "ICMP Fields").
      if (auto from_static = statics_->field(key.empty() ? field_key : key,
                                             preference)) {
        return from_static;
      }
      return FieldRef{layer, util::to_snake_case(dynamic_.field)};
    }
  }

  // Then the static context.
  return statics_->field(key, preference);
}

std::optional<std::string> ResolutionContext::resolve_function(
    std::string_view phrase) const {
  return statics_->function(util::to_lower(util::trim(phrase)));
}

}  // namespace sage::codegen

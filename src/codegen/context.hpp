// Context dictionaries (§5.2).
//
// A logical form alone cannot be compiled: @Is("type", 3) does not say
// *which* type field. SAGE attaches two dictionaries:
//   * the DYNAMIC context, auto-generated per sentence from document
//     structure (protocol, message, field, role — Table 4), and
//   * the STATIC context, pre-defined knowledge about lower layers and
//     the OS: "source address" names the IP header's source field,
//     "one's complement sum" names a framework function, bfd.* names
//     session state variables.
// During code generation SAGE "first searches the dynamic context, then
// the static context" — resolve_field implements exactly that order.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "codegen/ir.hpp"

namespace sage::codegen {

/// Dynamic context for one sentence (Table 4).
struct DynamicContext {
  std::string protocol;  // "ICMP"
  std::string message;   // "Destination Unreachable Message"
  std::string field;     // "Checksum" (empty for prose sentences)
  std::string role;      // "sender" / "receiver" / ""

  static DynamicContext from_map(const std::map<std::string, std::string>& m);
  std::string to_string() const;
};

/// The pre-defined static context dictionary.
class StaticContext {
 public:
  /// Build the standard SAGE static context: IP-layer phrases, ICMP
  /// fields, IGMP/NTP/BFD extensions, and the framework function table.
  static StaticContext standard();

  /// Register phrase -> field mapping (phrases are lowercased). The same
  /// phrase may map to fields in several layers ("originate timestamp"
  /// exists in both ICMP and NTP); resolution prefers the layer of the
  /// sentence's protocol.
  void add_field(std::string_view phrase, FieldRef ref);

  /// Register phrase -> framework function name.
  void add_function(std::string_view phrase, std::string_view fn);

  /// Field lookup by phrase. `preferred_layer` breaks multi-layer ties;
  /// nullopt when the phrase is unknown.
  std::optional<FieldRef> field(std::string_view phrase,
                                std::string_view preferred_layer = "") const;

  /// Multi-layer tie-break: the first layer in `preferred_layers` that
  /// has a ref for the phrase wins. Protocols whose schema binds several
  /// layers (ICMPv6 over ip6) resolve "source address" to their own
  /// network layer instead of whichever protocol registered the phrase
  /// first.
  std::optional<FieldRef> field(
      std::string_view phrase,
      std::span<const std::string> preferred_layers) const;

  /// Function lookup by phrase.
  std::optional<std::string> function(std::string_view phrase) const;

  std::size_t field_count() const;
  std::size_t function_count() const { return functions_.size(); }

 private:
  std::map<std::string, std::vector<FieldRef>, std::less<>> fields_;
  std::map<std::string, std::string, std::less<>> functions_;
};

/// Layer tag for a protocol name: "ICMP" -> "icmp".
std::string layer_for_protocol(std::string_view protocol);

/// Resolution context handed to predicate handlers: dynamic first, then
/// static (§5.2).
class ResolutionContext {
 public:
  ResolutionContext(DynamicContext dynamic, const StaticContext* statics)
      : dynamic_(std::move(dynamic)), statics_(statics) {}

  const DynamicContext& dynamic() const { return dynamic_; }
  const StaticContext& statics() const { return *statics_; }

  /// Resolve a surface phrase to a field reference. The dynamic context
  /// disambiguates bare words: "checksum" inside an "ICMP Fields" group
  /// resolves to icmp.checksum, not ip.checksum.
  std::optional<FieldRef> resolve_field(std::string_view phrase) const;

  /// Resolve a phrase to a framework function name.
  std::optional<std::string> resolve_function(std::string_view phrase) const;

 private:
  DynamicContext dynamic_;
  const StaticContext* statics_;
};

}  // namespace sage::codegen

// C source emitter: renders the IR as the C code SAGE would hand to a
// developer (Table 4's CODE row: `hdr->type = 3;`).
#pragma once

#include <string>

#include "codegen/ir.hpp"

namespace sage::codegen {

/// Render an expression ("in->icmp.identifier", "ones_complement_sum(...)").
std::string emit_expr(const Expr& expr);

/// Render a condition ("in->icmp.code == 0").
std::string emit_cond(const Cond& cond);

/// Render a statement (tree) with `indent` leading spaces per level.
std::string emit_stmt(const Stmt& stmt, int indent = 0);

/// Render a full generated function: signature + body.
std::string emit_function(const GeneratedFunction& fn);

}  // namespace sage::codegen

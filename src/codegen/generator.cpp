#include "codegen/generator.hpp"

#include "util/strings.hpp"

namespace sage::codegen {

namespace {

/// Does this statement (tree) contain a checksum computation call?
bool contains_checksum_call(const Stmt& stmt) {
  if (stmt.kind == Stmt::Kind::kCall &&
      (stmt.fn == "compute_checksum" || stmt.fn == "recompute_checksum")) {
    return true;
  }
  for (const auto& s : stmt.body) {
    if (contains_checksum_call(s)) return true;
  }
  return false;
}

}  // namespace

std::string CodeGenerator::function_name(const std::string& protocol,
                                         const std::string& message,
                                         const std::string& role) {
  std::string msg = message;
  // "Destination Unreachable Message" -> "destination_unreachable".
  const std::string suffix = " Message";
  if (util::ends_with(msg, suffix)) {
    msg = msg.substr(0, msg.size() - suffix.size());
  }
  return util::to_snake_case(protocol) + "_" + util::to_snake_case(msg) + "_" +
         util::to_snake_case(role);
}

GenerationOutcome CodeGenerator::generate(
    const std::string& protocol, const std::string& message,
    const std::string& role, std::span<const SentenceLf> sentences) const {
  GenerationOutcome outcome;

  std::vector<Stmt> main_body;
  std::vector<Stmt> advice;  // @AdvBefore statements, hoisted later

  for (const auto& s : sentences) {
    // Pre-processing: @AdvComment forms generate no code (§5.2).
    if (s.form.is_predicate(lf::pred::kAdvComment)) {
      Stmt c = Stmt::comment(s.sentence.empty() ? "non-actionable"
                                                : s.sentence);
      main_body.push_back(std::move(c));
      continue;
    }

    DynamicContext ctx = s.context;
    ctx.role = role;
    const ResolutionContext resolution(ctx, statics_);
    LfConverter converter(&resolution, registry_);

    const bool is_advice = s.form.is_predicate(lf::pred::kAdvBefore);
    const lf::LfNode& to_convert =
        is_advice && s.form.args.size() == 2 ? s.form.args[1] : s.form;

    auto stmt = converter.to_stmt(to_convert);
    if (!stmt) {
      outcome.failed_sentences.push_back(s.sentence);
      outcome.diagnostics.push_back(
          converter.errors().empty()
              ? "no handler produced code for " + s.form.to_string()
              : converter.errors().back());
      continue;
    }
    stmt->text = s.sentence;  // provenance
    if (is_advice) {
      advice.push_back(std::move(*stmt));
    } else {
      main_body.push_back(std::move(*stmt));
    }
  }

  // Advice processing (§5.2): @AdvBefore statements execute before the
  // function they advise — here, before the checksum computation the
  // sentence order would otherwise place first.
  std::vector<Stmt> body;
  bool advice_inserted = advice.empty();
  for (auto& stmt : main_body) {
    if (!advice_inserted && contains_checksum_call(stmt)) {
      for (auto& a : advice) body.push_back(std::move(a));
      advice_inserted = true;
    }
    body.push_back(std::move(stmt));
  }
  if (!advice_inserted) {
    // No checksum call found: advice still runs, ahead of everything.
    std::vector<Stmt> prefixed;
    for (auto& a : advice) prefixed.push_back(std::move(a));
    for (auto& s : body) prefixed.push_back(std::move(s));
    body = std::move(prefixed);
  }

  GeneratedFunction fn;
  fn.name = function_name(protocol, message, role);
  fn.protocol = protocol;
  fn.message = message;
  fn.role = role;
  fn.body = Stmt::seq(std::move(body));
  fn.c_source = emit_function(fn);
  outcome.function = std::move(fn);
  return outcome;
}

}  // namespace sage::codegen

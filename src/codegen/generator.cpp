#include "codegen/generator.hpp"

#include <algorithm>
#include <atomic>

#include "net/schema.hpp"
#include "util/strings.hpp"
#include "util/symbols.hpp"

namespace sage::codegen {

namespace {

std::atomic<std::size_t> g_schema_resolved{0};
std::atomic<std::size_t> g_schema_unresolved{0};

/// Post-pass over a generated statement tree: annotate every FieldRef
/// with its dense registry id (generation-time schema resolution) and
/// precompute symbol values for kName expressions against the
/// protocol's symbol table. Unresolvable field names are collected as
/// diagnostics; they fall back to the interpreter's string path.
class SchemaAnnotator {
 public:
  SchemaAnnotator(const net::schema::ProtocolSchema* schema,
                  std::vector<std::string>* unresolved)
      : schema_(schema), unresolved_(unresolved) {}

  void annotate(Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kAssign) {
      note(stmt.target);
      annotate(stmt.value);
    }
    for (auto& a : stmt.args) annotate(a);
    if (stmt.kind == Stmt::Kind::kIf) annotate(stmt.cond);
    for (auto& child : stmt.body) annotate(child);
  }

 private:
  void note(FieldRef& ref) {
    if (!ref.valid()) return;
    if (ref.field_id < 0) {
      const auto* spec =
          net::schema::SchemaRegistry::instance().field(ref.layer, ref.field);
      if (spec != nullptr) ref.field_id = spec->id;
    }
    if (ref.field_id >= 0) {
      g_schema_resolved.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    g_schema_unresolved.fetch_add(1, std::memory_order_relaxed);
    const std::string name = ref.to_string();
    if (std::find(unresolved_->begin(), unresolved_->end(), name) ==
        unresolved_->end()) {
      unresolved_->push_back(name);
    }
  }

  void annotate(Expr& expr) {
    if (expr.kind == Expr::Kind::kField) note(expr.field);
    if (expr.kind == Expr::Kind::kName) cache_symbol(expr);
    for (auto& a : expr.args) annotate(a);
  }

  /// Mirror of SchemaExecEnv::resolve_symbol, minus the per-run
  /// "scenario" alias (which must stay a runtime lookup).
  void cache_symbol(Expr& expr) {
    const std::string lower = util::to_lower(expr.name);
    if (lower == "scenario") return;
    if (schema_ != nullptr) {
      for (const auto& sym : schema_->symbols) {
        if (sym.name == lower) {
          expr.symbol_cached = true;
          expr.symbol_cache = sym.value;
          return;
        }
      }
    }
    expr.symbol_cached = true;
    expr.symbol_cache = util::symbol_value(expr.name);
  }

  void annotate(Cond& cond) {
    if (cond.kind == Cond::Kind::kCompare) {
      annotate(cond.lhs);
      annotate(cond.rhs);
    }
    for (auto& child : cond.children) annotate(child);
  }

  const net::schema::ProtocolSchema* schema_;
  std::vector<std::string>* unresolved_;
};

/// Does this statement (tree) contain a checksum computation call?
bool contains_checksum_call(const Stmt& stmt) {
  if (stmt.kind == Stmt::Kind::kCall &&
      (stmt.fn == "compute_checksum" || stmt.fn == "recompute_checksum")) {
    return true;
  }
  for (const auto& s : stmt.body) {
    if (contains_checksum_call(s)) return true;
  }
  return false;
}

}  // namespace

SchemaResolutionStats schema_resolution_stats() {
  return {g_schema_resolved.load(std::memory_order_relaxed),
          g_schema_unresolved.load(std::memory_order_relaxed)};
}

void reset_schema_resolution_stats() {
  g_schema_resolved.store(0, std::memory_order_relaxed);
  g_schema_unresolved.store(0, std::memory_order_relaxed);
}

std::string CodeGenerator::function_name(const std::string& protocol,
                                         const std::string& message,
                                         const std::string& role) {
  std::string msg = message;
  // "Destination Unreachable Message" -> "destination_unreachable".
  const std::string suffix = " Message";
  if (util::ends_with(msg, suffix)) {
    msg = msg.substr(0, msg.size() - suffix.size());
  }
  return util::to_snake_case(protocol) + "_" + util::to_snake_case(msg) + "_" +
         util::to_snake_case(role);
}

GenerationOutcome CodeGenerator::generate(
    const std::string& protocol, const std::string& message,
    const std::string& role, std::span<const SentenceLf> sentences) const {
  GenerationOutcome outcome;

  std::vector<Stmt> main_body;
  std::vector<Stmt> advice;  // @AdvBefore statements, hoisted later

  for (const auto& s : sentences) {
    // Pre-processing: @AdvComment forms generate no code (§5.2).
    if (s.form.is_predicate(lf::pred::kAdvComment)) {
      Stmt c = Stmt::comment(s.sentence.empty() ? "non-actionable"
                                                : s.sentence);
      main_body.push_back(std::move(c));
      continue;
    }

    DynamicContext ctx = s.context;
    ctx.role = role;
    const ResolutionContext resolution(ctx, statics_);
    LfConverter converter(&resolution, registry_);

    const bool is_advice = s.form.is_predicate(lf::pred::kAdvBefore);
    const lf::LfNode& to_convert =
        is_advice && s.form.args.size() == 2 ? s.form.args[1] : s.form;

    auto stmt = converter.to_stmt(to_convert);
    if (!stmt) {
      outcome.failed_sentences.push_back(s.sentence);
      outcome.diagnostics.push_back(
          converter.errors().empty()
              ? "no handler produced code for " + s.form.to_string()
              : converter.errors().back());
      continue;
    }
    stmt->text = s.sentence;  // provenance
    if (is_advice) {
      advice.push_back(std::move(*stmt));
    } else {
      main_body.push_back(std::move(*stmt));
    }
  }

  // Advice processing (§5.2): @AdvBefore statements execute before the
  // function they advise — here, before the checksum computation the
  // sentence order would otherwise place first.
  std::vector<Stmt> body;
  bool advice_inserted = advice.empty();
  for (auto& stmt : main_body) {
    if (!advice_inserted && contains_checksum_call(stmt)) {
      for (auto& a : advice) body.push_back(std::move(a));
      advice_inserted = true;
    }
    body.push_back(std::move(stmt));
  }
  if (!advice_inserted) {
    // No checksum call found: advice still runs, ahead of everything.
    std::vector<Stmt> prefixed;
    for (auto& a : advice) prefixed.push_back(std::move(a));
    for (auto& s : body) prefixed.push_back(std::move(s));
    body = std::move(prefixed);
  }

  GeneratedFunction fn;
  fn.name = function_name(protocol, message, role);
  fn.protocol = protocol;
  fn.message = message;
  fn.role = role;
  fn.body = Stmt::seq(std::move(body));

  // Schema resolution (see SchemaAnnotator): runs before emission, but
  // neither field ids nor symbol caches are rendered into the C text, so
  // goldens are unaffected.
  SchemaAnnotator annotator(
      net::schema::SchemaRegistry::instance().protocol(protocol),
      &outcome.unresolved_fields);
  annotator.annotate(fn.body);

  fn.c_source = emit_function(fn);
  outcome.function = std::move(fn);
  return outcome;
}

}  // namespace sage::codegen

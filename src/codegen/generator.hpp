// The code generator (§5.2 "Logical Forms to Code").
//
// Assembles winnowed, per-sentence logical forms into packet-handling
// functions: one per (protocol, message, role). Pre-processing filters
// @AdvComment forms; conversion runs the post-order handler traversal;
// advice processing hoists @AdvBefore statements ahead of the checksum
// computation; and naming/role separation follows the context
// dictionaries.
//
// Sentences whose logical form fails conversion are reported back — that
// is the signal driving the paper's "iterative discovery of
// non-actionable sentences" loop (the core pipeline re-tags them
// @AdvComment and reruns).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "codegen/context.hpp"
#include "codegen/emitter.hpp"
#include "codegen/handlers.hpp"
#include "codegen/ir.hpp"
#include "lf/logical_form.hpp"

namespace sage::codegen {

/// One sentence ready for code generation: its (single) winnowed logical
/// form plus dynamic context.
struct SentenceLf {
  lf::LogicalForm form;
  DynamicContext context;
  std::string sentence;  // original text, for provenance/comments
};

/// Outcome of generating one function.
struct GenerationOutcome {
  std::optional<GeneratedFunction> function;
  /// Sentences whose LF could not be converted (code-generation
  /// failures); candidates for @AdvComment tagging.
  std::vector<std::string> failed_sentences;
  /// Conversion diagnostics, aligned with failed_sentences.
  std::vector<std::string> diagnostics;
  /// "layer.field" names in the generated IR that did not resolve
  /// against the packet-schema registry (deduplicated). These run
  /// through the interpreter's slow string path and usually indicate a
  /// context-dictionary entry the registry does not know about.
  std::vector<std::string> unresolved_fields;
};

/// Process-wide counters for schema-id resolution during generation
/// (surfaced by sage_debug --parse-stats).
struct SchemaResolutionStats {
  std::size_t resolved = 0;    // FieldRefs annotated with a dense id
  std::size_t unresolved = 0;  // FieldRefs left on the string path
};

SchemaResolutionStats schema_resolution_stats();
void reset_schema_resolution_stats();

class CodeGenerator {
 public:
  CodeGenerator(const StaticContext* statics, const HandlerRegistry* registry)
      : statics_(statics), registry_(registry) {}

  /// Generate the handler function for (protocol, message, role) from the
  /// given sentences (in document order, per §5.2's ordering rule).
  GenerationOutcome generate(const std::string& protocol,
                             const std::string& message,
                             const std::string& role,
                             std::span<const SentenceLf> sentences) const;

  /// Function name derived from the context dictionaries (§5.2: "sage
  /// uses the context to generate unique names for the function, based on
  /// the protocol, the message type, and the role").
  static std::string function_name(const std::string& protocol,
                                   const std::string& message,
                                   const std::string& role);

 private:
  const StaticContext* statics_;
  const HandlerRegistry* registry_;
};

}  // namespace sage::codegen

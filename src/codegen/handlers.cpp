#include "codegen/handlers.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace sage::codegen {

namespace {

using lf::LfNode;

/// Pseudo-labels for leaves.
std::string node_key(const LfNode& node) {
  switch (node.kind) {
    case LfNode::Kind::kPredicate:
      return node.label;
    case LfNode::Kind::kString:
      return "$str";
    case LfNode::Kind::kNumber:
      return "$num";
  }
  return "?";
}

/// The surface phrase of a nominal node ("source address", or the joined
/// phrase of an @Of chain like "address of the source" -> handled by the
/// of-expr handler instead).
std::optional<std::string> leaf_phrase(const LfNode& n) {
  if (n.is_string()) return n.label;
  return std::nullopt;
}

/// BFD/NTP symbolic values ("Up", "Down", "Init", "AdminDown", "symmetric
/// mode", ...) that are values rather than fields.
bool is_symbolic_value(const std::string& phrase) {
  static const std::vector<std::string> kValues = {
      "up",        "down",  "init",          "admindown",
      "adminDown", "zero",  "symmetric mode", "client mode",
      "active",    "passive"};
  const std::string lower = util::to_lower(phrase);
  return std::find(kValues.begin(), kValues.end(), lower) != kValues.end();
}

Handler make(std::string name, std::string predicate, OutKind produces,
             std::string source,
             std::function<std::optional<HandlerOutput>(LfConverter&,
                                                        const LfNode&)>
                 fn) {
  Handler h;
  h.name = std::move(name);
  h.predicate = std::move(predicate);
  h.produces = produces;
  h.source = std::move(source);
  h.fn = std::move(fn);
  return h;
}

// ---------------------------------------------------------------------------
// Statement handlers
// ---------------------------------------------------------------------------

/// @Is(field, value) -> target = value. Table 4's example:
/// @Is('type', '3') + {field: Type, message: Destination Unreachable}
/// -> hdr->type = 3;
std::string flatten_strings(const LfNode& n) {
  std::string flat;
  const std::function<void(const LfNode&)> render = [&](const LfNode& m) {
    if (m.is_string()) {
      if (!flat.empty()) flat += ' ';
      flat += util::to_lower(m.label);
    }
    for (const auto& a : m.args) render(a);
  };
  render(n);
  return flat;
}

std::optional<HandlerOutput> is_assign(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2) return std::nullopt;

  // The address idiom of RFC 792's echo section (Table 7's sentence):
  // "The address of the source in an echo message will be the
  // destination of the echo reply message" — the reply's destination is
  // the request's source.
  {
    const std::string lhs = flatten_strings(n.args[0]);
    const std::string rhs = flatten_strings(n.args[1]);
    const std::string both = lhs + " | " + rhs;
    const bool mentions_source = both.find("source") != std::string::npos;
    const bool mentions_destination =
        both.find("destination") != std::string::npos;
    const bool mentions_address = both.find("address") != std::string::npos;
    const bool mentions_reply = both.find("reply") != std::string::npos;
    if (mentions_source && mentions_destination && mentions_address &&
        mentions_reply) {
      // Resolve through the context so the protocol's own network layer
      // wins (ip.dst for ICMP, ip6.dst for ICMPv6).
      const auto dst = conv.context().resolve_field("destination address");
      const auto src = conv.context().resolve_field("source address");
      if (dst && src) {
        return HandlerOutput::of(Stmt::assign(
            *dst, Expr::field_read(*src, PacketSel::kIncoming)));
      }
    }
  }

  const auto phrase = leaf_phrase(n.args[0]);
  if (!phrase) return std::nullopt;
  const auto target = conv.context().resolve_field(*phrase);
  if (!target) {
    conv.report("cannot resolve field '" + *phrase + "'");
    return std::nullopt;
  }
  const auto value = conv.to_expr(n.args[1]);
  if (!value) return std::nullopt;
  // "The checksum is the 16-bit one's complement of the one's complement
  // sum of the ICMP message ..." compiles to the framework's deferred
  // checksum routine: it must run over the finished message, after the
  // variable-length data is in place.
  if (target->field == "checksum" && value->kind == Expr::Kind::kCall &&
      util::starts_with(value->name, "ones_complement")) {
    return HandlerOutput::of(Stmt::call("compute_checksum"));
  }
  return HandlerOutput::of(Stmt::assign(*target, *value));
}

/// @Is(@And(f1, f2), value) -> both fields assigned ("the identifier and
/// the sequence number are the values from the echo message").
std::optional<HandlerOutput> is_assign_compound(LfConverter& conv,
                                                const LfNode& n) {
  if (n.args.size() != 2 || !n.args[0].is_predicate(lf::pred::kAnd)) {
    return std::nullopt;
  }
  std::vector<Stmt> assigns;
  for (const auto& part : n.args[0].args) {
    const auto phrase = leaf_phrase(part);
    if (!phrase) return std::nullopt;
    const auto target = conv.context().resolve_field(*phrase);
    if (!target) {
      conv.report("cannot resolve field '" + *phrase + "'");
      return std::nullopt;
    }
    // Distribute the right-hand side over the conjoined targets; a
    // value described as "from the <message>" copies the same-named
    // field of the incoming packet.
    auto value = conv.to_expr(n.args[1]);
    if (!value) return std::nullopt;
    if (value->kind == Expr::Kind::kCall && value->name == "copy_field") {
      value->args = {Expr::field_read(*target, PacketSel::kIncoming)};
    }
    assigns.push_back(Stmt::assign(*target, std::move(*value)));
  }
  return HandlerOutput::of(Stmt::seq(std::move(assigns)));
}

/// A bare numeric logical form under a field description assigns the
/// value to the described field (the "Type / 3" idiom of RFC 792).
std::optional<HandlerOutput> num_field_default(LfConverter& conv,
                                               const LfNode& n) {
  if (!n.is_number()) return std::nullopt;
  const auto target = conv.context().resolve_field("");
  if (!target) return std::nullopt;
  return HandlerOutput::of(Stmt::assign(*target, Expr::constant(n.number)));
}

/// @If(cond, body) -> if statement.
std::optional<HandlerOutput> if_stmt(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2) return std::nullopt;
  const auto cond = conv.to_cond(n.args[0]);
  if (!cond) return std::nullopt;
  const auto body = conv.to_stmt(n.args[1]);
  if (!body) return std::nullopt;
  return HandlerOutput::of(Stmt::if_then(*cond, {*body}));
}

/// @And(s1, s2) at statement level -> sequence.
std::optional<HandlerOutput> and_seq(LfConverter& conv, const LfNode& n) {
  std::vector<Stmt> body;
  for (const auto& part : n.args) {
    const auto s = conv.to_stmt(part);
    if (!s) return std::nullopt;
    body.push_back(*s);
  }
  return HandlerOutput::of(Stmt::seq(std::move(body)));
}

/// @Action("copy", target[, source]) -> read from the incoming packet,
/// write the outgoing one.
std::optional<HandlerOutput> action_copy(LfConverter& conv, const LfNode& n) {
  if (n.args.empty() || !n.args[0].is_string() || n.args[0].label != "copy") {
    return std::nullopt;
  }
  if (n.args.size() < 2) return std::nullopt;
  const auto phrase = leaf_phrase(n.args[1]);
  if (!phrase) return std::nullopt;
  // "copy" may target a conjunction of fields.
  std::vector<std::string> phrases = {*phrase};
  if (n.args[1].is_predicate(lf::pred::kAnd)) {
    phrases.clear();
    for (const auto& part : n.args[1].args) {
      const auto p = leaf_phrase(part);
      if (!p) return std::nullopt;
      phrases.push_back(*p);
    }
  }
  std::vector<Stmt> body;
  for (const auto& p : phrases) {
    const auto target = conv.context().resolve_field(p);
    if (!target) {
      conv.report("cannot resolve field '" + p + "'");
      return std::nullopt;
    }
    body.push_back(Stmt::assign(
        *target, Expr::field_read(*target, PacketSel::kIncoming)));
  }
  return HandlerOutput::of(body.size() == 1 ? body[0]
                                            : Stmt::seq(std::move(body)));
}

/// @Action("reverse", addresses) -> framework reverse_addresses().
std::optional<HandlerOutput> action_reverse(LfConverter& conv,
                                            const LfNode& n) {
  if (n.args.empty() || !n.args[0].is_string() ||
      n.args[0].label != "reverse") {
    return std::nullopt;
  }
  (void)conv;
  return HandlerOutput::of(Stmt::call("reverse_addresses"));
}

/// @Action("recompute", checksum) -> framework recompute_checksum().
std::optional<HandlerOutput> action_recompute(LfConverter& conv,
                                              const LfNode& n) {
  if (n.args.empty() || !n.args[0].is_string() ||
      n.args[0].label != "recompute") {
    return std::nullopt;
  }
  (void)conv;
  return HandlerOutput::of(Stmt::call("recompute_checksum"));
}

/// Generic @Action(fn, args...) -> framework call.
std::optional<HandlerOutput> action_call(LfConverter& conv, const LfNode& n) {
  if (n.args.empty() || !n.args[0].is_string()) return std::nullopt;
  const auto fn = conv.context().resolve_function(n.args[0].label);
  if (!fn) {
    conv.report("unknown framework function '" + n.args[0].label + "'");
    return std::nullopt;
  }
  std::vector<Expr> args;
  for (std::size_t i = 1; i < n.args.size(); ++i) {
    const auto e = conv.to_expr(n.args[i]);
    if (!e) return std::nullopt;
    args.push_back(*e);
  }
  return HandlerOutput::of(Stmt::call(*fn, std::move(args)));
}

/// @Compute(x) -> checksum computation over the message.
std::optional<HandlerOutput> compute_stmt(LfConverter& conv, const LfNode& n) {
  (void)conv;
  (void)n;
  return HandlerOutput::of(Stmt::call("compute_checksum"));
}

/// @May(body): permitted behavior. It binds the *sender* — the §6.5
/// under-specification: "a sender may generate a non-zero identifier,
/// and the receiver should set the identifier to be zero in the reply"
/// was the buggy reading; the corrected spec scopes @May to the sender.
std::optional<HandlerOutput> may_stmt(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 1) return std::nullopt;
  if (conv.context().dynamic().role == "receiver") {
    return HandlerOutput::of(
        Stmt::comment("permitted for sender only: not generated here"));
  }
  const auto body = conv.to_stmt(n.args[0]);
  if (!body) return std::nullopt;
  return HandlerOutput::of(*body);
}

/// @Must(body): mandatory behavior; generated unconditionally.
std::optional<HandlerOutput> must_stmt(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 1) return std::nullopt;
  const auto body = conv.to_stmt(n.args[0]);
  if (!body) return std::nullopt;
  return HandlerOutput::of(*body);
}

/// @AdvBefore(advice, main): the advice statement must execute before
/// the main computation (Figure 2's "For computing the checksum, the
/// checksum should be zero"). The converter emits advice first; the
/// generator additionally hoists it before the checksum call.
std::optional<HandlerOutput> advbefore_stmt(LfConverter& conv,
                                            const LfNode& n) {
  if (n.args.size() != 2) return std::nullopt;
  const auto main_clause = conv.to_stmt(n.args[1]);
  if (!main_clause) return std::nullopt;
  return HandlerOutput::of(*main_clause);
}

/// @AdvComment(...): non-actionable text — kept as a comment.
std::optional<HandlerOutput> advcomment_stmt(LfConverter& conv,
                                             const LfNode& n) {
  (void)conv;
  std::string text = "non-actionable";
  if (!n.args.empty() && n.args[0].is_string()) text = n.args[0].label;
  return HandlerOutput::of(Stmt::comment(std::move(text)));
}

/// @Case(value, name): the "0 = net unreachable" idiom (§3). The field
/// being described takes the value when the named scenario applies; the
/// static framework supplies the current scenario at run time (the event
/// that triggered the message — net unreachable vs port unreachable,
/// echo vs echo reply).
std::optional<HandlerOutput> case_stmt(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2 || !n.args[0].is_number()) return std::nullopt;
  const std::string name =
      n.args[1].is_string() ? n.args[1].label : n.args[1].to_string();
  const auto target = conv.context().resolve_field("");
  if (!target) {
    return HandlerOutput::of(Stmt::comment(
        "case " + std::to_string(n.args[0].number) + " = " + name));
  }
  Cond cond = Cond::compare(Expr::symbol("scenario"), CmpOp::kEq,
                            Expr::symbol(util::to_lower(name)));
  Stmt assign = Stmt::assign(*target, Expr::constant(n.args[0].number));
  return HandlerOutput::of(Stmt::if_then(std::move(cond), {std::move(assign)}));
}

/// @When(scenario, body): "In a host membership query message, the group
/// address field is zero" — the body applies when the named message
/// variant is being formed. The static framework supplies the current
/// scenario, exactly as for @Case.
std::optional<HandlerOutput> when_stmt(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2 || !n.args[0].is_string()) return std::nullopt;
  const auto body = conv.to_stmt(n.args[1]);
  if (!body) return std::nullopt;
  Cond cond = Cond::compare(Expr::symbol("scenario"), CmpOp::kEq,
                            Expr::symbol(util::to_lower(n.args[0].label)));
  return HandlerOutput::of(Stmt::if_then(std::move(cond), {*body}));
}

/// @Send(message[, destination]) -> framework send.
std::optional<HandlerOutput> send_stmt(LfConverter& conv, const LfNode& n) {
  std::vector<Expr> args;
  for (const auto& a : n.args) {
    if (a.is_string()) {
      args.push_back(Expr::symbol(a.label));
    } else {
      const auto e = conv.to_expr(a);
      if (!e) return std::nullopt;
      args.push_back(*e);
    }
  }
  return HandlerOutput::of(Stmt::call("send_message", std::move(args)));
}

/// @Discard(packet) -> framework discard.
std::optional<HandlerOutput> discard_stmt(LfConverter& conv, const LfNode& n) {
  (void)conv;
  (void)n;
  return HandlerOutput::of(Stmt::call("discard_packet"));
}

// ---------------------------------------------------------------------------
// Expression handlers
// ---------------------------------------------------------------------------

std::optional<HandlerOutput> num_expr(LfConverter& conv, const LfNode& n) {
  (void)conv;
  if (!n.is_number()) return std::nullopt;
  return HandlerOutput::of(Expr::constant(n.number));
}

/// String leaf as a value: a field read (incoming packet), a symbolic
/// state value (BFD "Up"), or a framework value function.
std::optional<HandlerOutput> str_value_expr(LfConverter& conv,
                                            const LfNode& n) {
  if (!n.is_string()) return std::nullopt;
  if (is_symbolic_value(n.label)) {
    return HandlerOutput::of(Expr::symbol(util::to_lower(n.label)));
  }
  if (const auto field = conv.context().resolve_field(n.label)) {
    return HandlerOutput::of(
        Expr::field_read(*field, PacketSel::kIncoming));
  }
  if (const auto fn = conv.context().resolve_function(n.label)) {
    return HandlerOutput::of(Expr::call(*fn));
  }
  // "the values from the echo message" style references: a copy marker
  // that the assignment handler retargets to the assigned field.
  const std::string lower = util::to_lower(n.label);
  if (lower.find("message") != std::string::npos ||
      lower.find("request") != std::string::npos) {
    return HandlerOutput::of(Expr::call("copy_field"));
  }
  conv.report("cannot resolve value '" + n.label + "'");
  return std::nullopt;
}

/// @Of(a, b) as a value. Three idioms, tried in order:
///   * function-of: "one's complement sum of the ICMP message"
///     -> ones_complement_sum(icmp_message)
///   * excerpt idiom: "internet header ... 64 bits ... original
///     datagram" -> original_datagram_excerpt()
///   * field path: "address of the gateway" -> gateway field read.
std::optional<HandlerOutput> of_expr(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2) return std::nullopt;

  // Render the whole chain as a phrase for idiom detection.
  std::string flat;
  const std::function<void(const LfNode&)> render = [&](const LfNode& m) {
    if (m.is_string()) {
      if (!flat.empty()) flat += ' ';
      flat += util::to_lower(m.label);
    }
    for (const auto& a : m.args) render(a);
  };
  render(n);

  if ((flat.find("internet header") != std::string::npos ||
       flat.find("ipv6 header") != std::string::npos) &&
      (flat.find("64 bits") != std::string::npos ||
       flat.find("original") != std::string::npos ||
       flat.find("invoking packet") != std::string::npos)) {
    return HandlerOutput::of(Expr::call("original_datagram_excerpt"));
  }
  // "The source network and address from the original datagram's data" /
  // "The source address from the invoking packet": error messages are
  // addressed back to the original sender, in whichever network layer
  // the protocol runs over.
  if (flat.find("source") != std::string::npos &&
      (flat.find("original datagram") != std::string::npos ||
       flat.find("invoking packet") != std::string::npos)) {
    if (const auto src = conv.context().resolve_field("source address")) {
      return HandlerOutput::of(
          Expr::field_read(*src, PacketSel::kIncoming));
    }
  }

  const auto head = leaf_phrase(n.args[0]);
  if (head) {
    if (const auto fn = conv.context().resolve_function(*head)) {
      // Framework value function; the possessor becomes its argument
      // when it itself resolves ("one's complement sum of the ICMP
      // message"), and is absorbed otherwise ("the octet of the error").
      if (const auto arg = conv.to_expr(n.args[1])) {
        return HandlerOutput::of(Expr::call(*fn, {*arg}));
      }
      return HandlerOutput::of(Expr::call(*fn));
    }
    // "address of the source" -> the source address field.
    if (n.args[1].is_string()) {
      const std::string path = n.args[1].label + " " + *head;
      if (const auto field = conv.context().resolve_field(path)) {
        return HandlerOutput::of(
            Expr::field_read(*field, PacketSel::kIncoming));
      }
    }
    if (const auto field = conv.context().resolve_field(*head)) {
      return HandlerOutput::of(Expr::field_read(*field, PacketSel::kIncoming));
    }
  }
  conv.report("cannot resolve @Of value '" + n.to_string() + "'");
  return std::nullopt;
}

/// @And as a value — the excerpt idiom: "the internet header plus the
/// first 64 bits of the original datagram's data" parses as a nominal
/// conjunction; the static framework provides the excerpt as one unit.
std::optional<HandlerOutput> and_excerpt_expr(LfConverter& conv,
                                              const LfNode& n) {
  std::string flat;
  const std::function<void(const LfNode&)> render = [&](const LfNode& m) {
    if (m.is_string()) {
      if (!flat.empty()) flat += ' ';
      flat += util::to_lower(m.label);
    }
    for (const auto& a : m.args) render(a);
  };
  render(n);
  if ((flat.find("internet header") != std::string::npos ||
       flat.find("ipv6 header") != std::string::npos) &&
      (flat.find("64 bits") != std::string::npos ||
       flat.find("original") != std::string::npos ||
       flat.find("invoking packet") != std::string::npos)) {
    return HandlerOutput::of(Expr::call("original_datagram_excerpt"));
  }
  (void)conv;
  return std::nullopt;
}

/// @Action / @Compute as a value: "the 16-bit one's complement of X".
std::optional<HandlerOutput> action_expr(LfConverter& conv, const LfNode& n) {
  if (n.args.empty() || !n.args[0].is_string()) return std::nullopt;
  const auto fn = conv.context().resolve_function(n.args[0].label);
  if (!fn) return std::nullopt;
  std::vector<Expr> args;
  for (std::size_t i = 1; i < n.args.size(); ++i) {
    const auto e = conv.to_expr(n.args[i]);
    if (!e) return std::nullopt;
    args.push_back(*e);
  }
  return HandlerOutput::of(Expr::call(*fn, std::move(args)));
}

// ---------------------------------------------------------------------------
// Condition handlers
// ---------------------------------------------------------------------------

/// @Is(a, b) in condition position -> equality test.
std::optional<HandlerOutput> is_cond(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2) return std::nullopt;
  std::optional<Expr> lhs;
  if (const auto phrase = leaf_phrase(n.args[0])) {
    if (const auto field = conv.context().resolve_field(*phrase)) {
      lhs = Expr::field_read(*field, PacketSel::kIncoming);
    } else if (is_symbolic_value(*phrase)) {
      lhs = Expr::symbol(util::to_lower(*phrase));
    }
  }
  if (!lhs) lhs = conv.to_expr(n.args[0]);
  if (!lhs) return std::nullopt;
  const auto rhs = conv.to_expr(n.args[1]);
  if (!rhs) return std::nullopt;
  return HandlerOutput::of(Cond::compare(*lhs, CmpOp::kEq, *rhs));
}

/// @Nonzero(field) -> field != 0.
std::optional<HandlerOutput> nonzero_cond(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 1) return std::nullopt;
  const auto e = conv.to_expr(n.args[0]);
  if (!e) return std::nullopt;
  return HandlerOutput::of(Cond::compare(*e, CmpOp::kNe, Expr::constant(0)));
}

std::optional<HandlerOutput> and_cond(LfConverter& conv, const LfNode& n) {
  std::vector<Cond> children;
  for (const auto& part : n.args) {
    const auto c = conv.to_cond(part);
    if (!c) return std::nullopt;
    children.push_back(*c);
  }
  return HandlerOutput::of(Cond::conj(std::move(children)));
}

std::optional<HandlerOutput> or_cond(LfConverter& conv, const LfNode& n) {
  std::vector<Cond> children;
  for (const auto& part : n.args) {
    const auto c = conv.to_cond(part);
    if (!c) return std::nullopt;
    children.push_back(*c);
  }
  return HandlerOutput::of(Cond::disj(std::move(children)));
}

// ---------------------------------------------------------------------------
// IGMP additions (§6.3: 4 extra handlers)
// ---------------------------------------------------------------------------

std::optional<HandlerOutput> in_expr(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2) return std::nullopt;
  // "@In(a, b)": a located in b — resolve the head like @Of.
  if (const auto phrase = leaf_phrase(n.args[0])) {
    if (const auto field = conv.context().resolve_field(*phrase)) {
      return HandlerOutput::of(Expr::field_read(*field, PacketSel::kIncoming));
    }
  }
  conv.report("cannot resolve @In value '" + n.to_string() + "'");
  return std::nullopt;
}

std::optional<HandlerOutput> not_cond(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 1) return std::nullopt;
  const auto inner = conv.to_cond(n.args[0]);
  if (!inner) return std::nullopt;
  return HandlerOutput::of(Cond::negate(*inner));
}

std::optional<HandlerOutput> greater_cond(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2) return std::nullopt;
  const auto lhs = conv.to_expr(n.args[0]);
  const auto rhs = conv.to_expr(n.args[1]);
  if (!lhs || !rhs) return std::nullopt;
  return HandlerOutput::of(Cond::compare(*lhs, CmpOp::kGt, *rhs));
}

std::optional<HandlerOutput> less_cond(LfConverter& conv, const LfNode& n) {
  if (n.args.size() != 2) return std::nullopt;
  const auto lhs = conv.to_expr(n.args[0]);
  const auto rhs = conv.to_expr(n.args[1]);
  if (!lhs || !rhs) return std::nullopt;
  return HandlerOutput::of(Cond::compare(*lhs, CmpOp::kLt, *rhs));
}

// ---------------------------------------------------------------------------
// BFD additions (§6.4: 8 extra handlers for state management)
// ---------------------------------------------------------------------------

/// @Select(session[, key]) -> framework select_session.
std::optional<HandlerOutput> select_stmt(LfConverter& conv, const LfNode& n) {
  std::vector<Expr> args;
  if (!n.args.empty()) {
    if (n.args.size() > 1) {
      const auto key = conv.to_expr(n.args[1]);
      if (key) args.push_back(*key);
    }
  }
  return HandlerOutput::of(Stmt::call("select_session", std::move(args)));
}

/// @Cease(activity) -> framework cease_transmission.
std::optional<HandlerOutput> cease_stmt(LfConverter& conv, const LfNode& n) {
  (void)conv;
  (void)n;
  return HandlerOutput::of(Stmt::call("cease_transmission"));
}

/// bfd.* variable assignment with a symbolic state value:
/// "bfd.SessionState is Up" -> state variable write.
std::optional<HandlerOutput> bfd_var_assign(LfConverter& conv,
                                            const LfNode& n) {
  if (n.args.size() != 2 || !n.args[0].is_string()) return std::nullopt;
  if (util::to_lower(n.args[0].label).find("bfd.") != 0) return std::nullopt;
  const auto target = conv.context().resolve_field(n.args[0].label);
  if (!target) {
    conv.report("unknown BFD state variable '" + n.args[0].label + "'");
    return std::nullopt;
  }
  const auto value = conv.to_expr(n.args[1]);
  if (!value) return std::nullopt;
  return HandlerOutput::of(Stmt::assign(*target, *value));
}

/// Symbolic BFD state values as expressions.
std::optional<HandlerOutput> state_value_expr(LfConverter& conv,
                                              const LfNode& n) {
  (void)conv;
  if (!n.is_string() || !is_symbolic_value(n.label)) return std::nullopt;
  return HandlerOutput::of(Expr::symbol(util::to_lower(n.label)));
}

/// @Action("timeout" / "transmit" ...) in state-management text.
std::optional<HandlerOutput> timer_stmt(LfConverter& conv, const LfNode& n) {
  if (n.args.empty() || !n.args[0].is_string()) return std::nullopt;
  const std::string name = util::to_lower(n.args[0].label);
  if (name != "timeout" && name != "transmit") return std::nullopt;
  (void)conv;
  return HandlerOutput::of(Stmt::call(name == "timeout" ? "call_timeout"
                                                        : "transmit_packet"));
}

/// bfd.* variable reads in conditions.
std::optional<HandlerOutput> bfd_var_cond(LfConverter& conv, const LfNode& n) {
  if (!n.is_predicate(lf::pred::kIs) || n.args.size() != 2 ||
      !n.args[0].is_string()) {
    return std::nullopt;
  }
  if (util::to_lower(n.args[0].label).find("bfd.") != 0) return std::nullopt;
  const auto field = conv.context().resolve_field(n.args[0].label);
  if (!field) return std::nullopt;
  const auto rhs = conv.to_expr(n.args[1]);
  if (!rhs) return std::nullopt;
  return HandlerOutput::of(Cond::compare(
      Expr::field_read(*field, PacketSel::kIncoming), CmpOp::kEq, *rhs));
}

/// @Select in condition position: "the session is not found" — the
/// framework's session lookup as a boolean.
std::optional<HandlerOutput> select_cond(LfConverter& conv, const LfNode& n) {
  (void)conv;
  (void)n;
  return HandlerOutput::of(Cond::compare(Expr::call("session_lookup"),
                                         CmpOp::kNe, Expr::constant(0)));
}

/// @Nonzero over a BFD packet field ("the Your Discriminator field is
/// nonzero").
std::optional<HandlerOutput> bfd_nonzero_cond(LfConverter& conv,
                                              const LfNode& n) {
  if (!n.is_predicate(lf::pred::kNonzero) || n.args.size() != 1 ||
      !n.args[0].is_string()) {
    return std::nullopt;
  }
  const auto field = conv.context().resolve_field(n.args[0].label);
  if (!field || field->layer != "bfd") return std::nullopt;
  return HandlerOutput::of(
      Cond::compare(Expr::field_read(*field, PacketSel::kIncoming), CmpOp::kNe,
                    Expr::constant(0)));
}

}  // namespace

void HandlerRegistry::add(Handler handler) {
  handlers_.push_back(std::move(handler));
}

std::vector<const Handler*> HandlerRegistry::lookup(std::string_view predicate,
                                                    OutKind kind) const {
  std::vector<const Handler*> out;
  for (const auto& h : handlers_) {
    if (h.predicate == predicate && h.produces == kind) out.push_back(&h);
  }
  return out;
}

std::size_t HandlerRegistry::count_by_source(std::string_view source) const {
  return static_cast<std::size_t>(
      std::count_if(handlers_.begin(), handlers_.end(),
                    [&source](const Handler& h) { return h.source == source; }));
}

HandlerRegistry HandlerRegistry::standard() {
  HandlerRegistry reg;
  // ---- ICMP: 25 handlers (§6.1) ------------------------------------------
  reg.add(make("is-assign-compound", "@Is", OutKind::kStmt, "icmp",
               is_assign_compound));
  reg.add(make("is-assign", "@Is", OutKind::kStmt, "icmp", is_assign));
  reg.add(make("num-field-default", "$num", OutKind::kStmt, "icmp",
               num_field_default));
  reg.add(make("if-stmt", "@If", OutKind::kStmt, "icmp", if_stmt));
  reg.add(make("and-seq", "@And", OutKind::kStmt, "icmp", and_seq));
  reg.add(make("action-copy", "@Action", OutKind::kStmt, "icmp", action_copy));
  reg.add(make("action-reverse", "@Action", OutKind::kStmt, "icmp",
               action_reverse));
  reg.add(make("action-recompute", "@Action", OutKind::kStmt, "icmp",
               action_recompute));
  reg.add(make("action-call", "@Action", OutKind::kStmt, "icmp", action_call));
  reg.add(make("compute-stmt", "@Compute", OutKind::kStmt, "icmp",
               compute_stmt));
  reg.add(make("may-stmt", "@May", OutKind::kStmt, "icmp", may_stmt));
  reg.add(make("must-stmt", "@Must", OutKind::kStmt, "icmp", must_stmt));
  reg.add(make("advbefore-stmt", "@AdvBefore", OutKind::kStmt, "icmp",
               advbefore_stmt));
  reg.add(make("advcomment-stmt", "@AdvComment", OutKind::kStmt, "icmp",
               advcomment_stmt));
  reg.add(make("case-stmt", "@Case", OutKind::kStmt, "icmp", case_stmt));
  reg.add(make("when-stmt", "@When", OutKind::kStmt, "icmp", when_stmt));
  reg.add(make("discard-stmt", "@Discard", OutKind::kStmt, "icmp",
               discard_stmt));
  reg.add(make("num-expr", "$num", OutKind::kExpr, "icmp", num_expr));
  reg.add(make("str-value-expr", "$str", OutKind::kExpr, "icmp",
               str_value_expr));
  reg.add(make("of-expr", "@Of", OutKind::kExpr, "icmp", of_expr));
  reg.add(make("action-expr", "@Action", OutKind::kExpr, "icmp", action_expr));
  reg.add(make("and-excerpt-expr", "@And", OutKind::kExpr, "icmp",
               and_excerpt_expr));
  reg.add(make("is-cond", "@Is", OutKind::kCond, "icmp", is_cond));
  reg.add(make("and-cond", "@And", OutKind::kCond, "icmp", and_cond));
  reg.add(make("or-cond", "@Or", OutKind::kCond, "icmp", or_cond));

  // ---- IGMP: +4 (§6.3) -----------------------------------------------------
  reg.add(make("send-stmt", "@Send", OutKind::kStmt, "igmp", send_stmt));
  reg.add(make("in-expr", "@In", OutKind::kExpr, "igmp", in_expr));
  reg.add(make("not-cond", "@Not", OutKind::kCond, "igmp", not_cond));
  reg.add(make("greater-cond", "@Greater", OutKind::kCond, "igmp",
               greater_cond));

  // ---- NTP: peer-variable sentences (Table 11) --------------------------------
  reg.add(make("timer-stmt", "@Action", OutKind::kStmt, "ntp", timer_stmt));
  reg.add(make("less-cond", "@Less", OutKind::kCond, "ntp", less_cond));

  // ---- BFD: +8 (§6.4) --------------------------------------------------------
  reg.add(make("bfd-var-assign", "@Is", OutKind::kStmt, "bfd", bfd_var_assign));
  reg.add(make("bfd-var-cond", "@Is", OutKind::kCond, "bfd", bfd_var_cond));
  reg.add(make("bfd-nonzero-cond", "@Nonzero", OutKind::kCond, "bfd",
               bfd_nonzero_cond));
  reg.add(make("nonzero-cond", "@Nonzero", OutKind::kCond, "bfd",
               nonzero_cond));
  reg.add(make("select-cond", "@Select", OutKind::kCond, "bfd", select_cond));
  reg.add(make("select-stmt", "@Select", OutKind::kStmt, "bfd", select_stmt));
  reg.add(make("cease-stmt", "@Cease", OutKind::kStmt, "bfd", cease_stmt));
  reg.add(make("state-value-expr", "$str", OutKind::kExpr, "bfd",
               state_value_expr));

  return reg;
}

std::optional<HandlerOutput> LfConverter::dispatch(const lf::LfNode& node,
                                                   OutKind kind) {
  const std::string key = node_key(node);
  for (const Handler* h : registry_->lookup(key, kind)) {
    // BFD-specific handlers take precedence for bfd.* targets; they are
    // registered later, so try specialized handlers (which self-select
    // via nullopt) in order and fall through.
    if (auto out = h->fn(*this, node)) return out;
  }
  return std::nullopt;
}

std::optional<Stmt> LfConverter::to_stmt(const lf::LfNode& node) {
  // Specialized handlers registered later must still win over the generic
  // ICMP ones when they apply (bfd-var-assign vs is-assign): try handlers
  // in reverse-registration order for statements whose first argument is
  // a bfd.* variable, else in registration order.
  const std::string key = node_key(node);
  const auto handlers = registry_->lookup(key, OutKind::kStmt);
  const bool bfd_target = node.kind == lf::LfNode::Kind::kPredicate &&
                          !node.args.empty() && node.args[0].is_string() &&
                          util::to_lower(node.args[0].label).find("bfd.") == 0;
  if (bfd_target) {
    for (auto it = handlers.rbegin(); it != handlers.rend(); ++it) {
      if (auto out = (*it)->fn(*this, node)) return out->stmt;
    }
    return std::nullopt;
  }
  for (const Handler* h : handlers) {
    if (auto out = h->fn(*this, node)) return out->stmt;
  }
  return std::nullopt;
}

std::optional<Expr> LfConverter::to_expr(const lf::LfNode& node) {
  if (auto out = dispatch(node, OutKind::kExpr)) return out->expr;
  return std::nullopt;
}

std::optional<Cond> LfConverter::to_cond(const lf::LfNode& node) {
  const std::string key = node_key(node);
  const auto handlers = registry_->lookup(key, OutKind::kCond);
  // bfd-specific condition handlers are registered after the generic
  // ones; for bfd.* subjects try them first.
  const bool bfd_target = node.kind == lf::LfNode::Kind::kPredicate &&
                          !node.args.empty() && node.args[0].is_string() &&
                          util::to_lower(node.args[0].label).find("bfd.") == 0;
  if (bfd_target) {
    for (auto it = handlers.rbegin(); it != handlers.rend(); ++it) {
      if (auto out = (*it)->fn(*this, node)) return out->cond;
    }
  }
  for (const Handler* h : handlers) {
    if (auto out = h->fn(*this, node)) return out->cond;
  }
  return std::nullopt;
}

}  // namespace sage::codegen

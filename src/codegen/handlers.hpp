// Predicate handler functions (§5.2 "Code generation", §6.1: "we defined
// 25 predicate handler functions to convert LFs to code snippets").
//
// Code generation is a post-order traversal of the (single, winnowed)
// logical form; at each node the registry supplies a handler that turns
// the predicate into an IR fragment, using the resolution context to map
// surface phrases onto fields and framework functions. Handlers are
// tagged with the protocol that required them, reproducing the paper's
// incremental-cost numbers (25 for ICMP, +4 for IGMP, +8 for BFD).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "codegen/context.hpp"
#include "codegen/ir.hpp"
#include "lf/logical_form.hpp"

namespace sage::codegen {

class LfConverter;

/// What a handler produces.
enum class OutKind { kStmt, kExpr, kCond };

struct HandlerOutput {
  OutKind kind = OutKind::kStmt;
  Stmt stmt;
  Expr expr;
  Cond cond;

  static HandlerOutput of(Stmt s) {
    HandlerOutput o;
    o.kind = OutKind::kStmt;
    o.stmt = std::move(s);
    return o;
  }
  static HandlerOutput of(Expr e) {
    HandlerOutput o;
    o.kind = OutKind::kExpr;
    o.expr = std::move(e);
    return o;
  }
  static HandlerOutput of(Cond c) {
    HandlerOutput o;
    o.kind = OutKind::kCond;
    o.cond = std::move(c);
    return o;
  }
};

/// One predicate handler. `predicate` is the LF label it applies to
/// ("@Is", ...), or the pseudo-labels "$str" / "$num" for leaves.
/// Returning nullopt means "this handler does not apply"; the next
/// registered handler for the same predicate is tried.
struct Handler {
  std::string name;       // e.g. "is-assign"
  std::string predicate;  // e.g. "@Is"
  OutKind produces = OutKind::kStmt;
  std::string source;     // "icmp", "igmp", "bfd"
  std::function<std::optional<HandlerOutput>(LfConverter&, const lf::LfNode&)>
      fn;
};

class HandlerRegistry {
 public:
  /// The full SAGE handler set (ICMP 25, IGMP +4, BFD +8).
  static HandlerRegistry standard();

  void add(Handler handler);

  /// Handlers applicable to `predicate` producing `kind`, in
  /// registration order.
  std::vector<const Handler*> lookup(std::string_view predicate,
                                     OutKind kind) const;

  std::size_t size() const { return handlers_.size(); }
  std::size_t count_by_source(std::string_view source) const;

  const std::vector<Handler>& all() const { return handlers_; }

 private:
  std::vector<Handler> handlers_;
};

/// Drives the post-order conversion; handlers call back into it for
/// sub-trees.
class LfConverter {
 public:
  LfConverter(const ResolutionContext* context, const HandlerRegistry* registry)
      : context_(context), registry_(registry) {}

  std::optional<Stmt> to_stmt(const lf::LfNode& node);
  std::optional<Expr> to_expr(const lf::LfNode& node);
  std::optional<Cond> to_cond(const lf::LfNode& node);

  const ResolutionContext& context() const { return *context_; }

  /// Diagnostics accumulated during conversion (why a sentence failed to
  /// generate code — input to the iterative non-actionable discovery).
  const std::vector<std::string>& errors() const { return errors_; }
  void report(std::string error) { errors_.push_back(std::move(error)); }

 private:
  std::optional<HandlerOutput> dispatch(const lf::LfNode& node, OutKind kind);

  const ResolutionContext* context_;
  const HandlerRegistry* registry_;
  std::vector<std::string> errors_;
};

}  // namespace sage::codegen

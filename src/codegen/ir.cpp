#include "codegen/ir.hpp"

namespace sage::codegen {

std::size_t Stmt::executable_count() const {
  switch (kind) {
    case Kind::kAssign:
    case Kind::kCall:
      return 1;
    case Kind::kComment:
      return 0;
    case Kind::kIf:
    case Kind::kSeq: {
      std::size_t n = kind == Kind::kIf ? 1 : 0;
      for (const auto& s : body) n += s.executable_count();
      return n;
    }
  }
  return 0;
}

}  // namespace sage::codegen

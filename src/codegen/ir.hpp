// Executable intermediate representation for generated protocol code.
//
// The paper's code generator emits C; ours emits C text too (for
// inspection and golden tests) but pairs it with this IR, which the
// static-framework interpreter (src/runtime) executes directly so that
// generated code can be driven end-to-end inside the simulator without a
// compiler in the loop (see DESIGN.md, "Dual codegen backend").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sage::codegen {

/// A resolved reference to a protocol field: layer + field, e.g.
/// {"ip", "src"}, {"icmp", "type"}, {"bfd", "session_state"}.
struct FieldRef {
  std::string layer;
  std::string field;
  /// Dense id in the packet-schema registry (net/schema.hpp), attached at
  /// generation time; -1 when the name is not a registered field. Runtime
  /// environments dispatch on this id instead of comparing strings.
  int field_id = -1;

  bool valid() const { return !layer.empty() && !field.empty(); }
  std::string to_string() const { return layer + "." + field; }
  /// Identity is the name, not the annotation: two refs to the same
  /// layer.field compare equal whether or not ids have been attached.
  bool operator==(const FieldRef& o) const {
    return layer == o.layer && field == o.field;
  }
};

/// Which packet a field read refers to: the incoming (triggering) packet
/// or the outgoing (reply under construction).
enum class PacketSel : std::uint8_t { kIncoming, kOutgoing };

/// Expression: constant, field read, or framework-function call.
struct Expr {
  enum class Kind : std::uint8_t { kConst, kField, kCall, kName };

  Kind kind = Kind::kConst;
  long value = 0;            // kConst
  FieldRef field;            // kField
  PacketSel packet = PacketSel::kIncoming;  // kField
  std::string name;          // kCall: function; kName: symbolic value
  std::vector<Expr> args;    // kCall
  /// kName only: the symbol's value precomputed at generation time
  /// against the protocol schema (never set for "scenario", whose value
  /// is per-run). The interpreter skips resolve_symbol when set.
  bool symbol_cached = false;
  long symbol_cache = 0;

  static Expr constant(long v) {
    Expr e;
    e.kind = Kind::kConst;
    e.value = v;
    return e;
  }
  static Expr field_read(FieldRef f, PacketSel sel = PacketSel::kIncoming) {
    Expr e;
    e.kind = Kind::kField;
    e.field = std::move(f);
    e.packet = sel;
    return e;
  }
  static Expr call(std::string fn, std::vector<Expr> args = {}) {
    Expr e;
    e.kind = Kind::kCall;
    e.name = std::move(fn);
    e.args = std::move(args);
    return e;
  }
  static Expr symbol(std::string name) {
    Expr e;
    e.kind = Kind::kName;
    e.name = std::move(name);
    return e;
  }
};

/// Comparison operator for conditions.
enum class CmpOp : std::uint8_t { kEq, kNe, kGt, kLt };

/// Condition: a comparison, or a boolean combination of conditions.
struct Cond {
  enum class Kind : std::uint8_t { kCompare, kAnd, kOr, kNot, kTrue };

  Kind kind = Kind::kTrue;
  CmpOp op = CmpOp::kEq;         // kCompare
  Expr lhs, rhs;                 // kCompare
  std::vector<Cond> children;    // kAnd/kOr/kNot

  static Cond always() { return Cond{}; }
  static Cond compare(Expr lhs, CmpOp op, Expr rhs) {
    Cond c;
    c.kind = Kind::kCompare;
    c.lhs = std::move(lhs);
    c.op = op;
    c.rhs = std::move(rhs);
    return c;
  }
  static Cond conj(std::vector<Cond> children) {
    Cond c;
    c.kind = Kind::kAnd;
    c.children = std::move(children);
    return c;
  }
  static Cond disj(std::vector<Cond> children) {
    Cond c;
    c.kind = Kind::kOr;
    c.children = std::move(children);
    return c;
  }
  static Cond negate(Cond inner) {
    Cond c;
    c.kind = Kind::kNot;
    c.children.push_back(std::move(inner));
    return c;
  }
};

/// Statement tree.
struct Stmt {
  enum class Kind : std::uint8_t {
    kAssign,   // target = value
    kCall,     // framework function for effect
    kIf,       // if (cond) body
    kSeq,      // body statements in order
    kComment,  // @AdvComment and non-actionable text, kept for provenance
  };

  Kind kind = Kind::kSeq;
  FieldRef target;           // kAssign
  Expr value;                // kAssign
  std::string fn;            // kCall
  std::vector<Expr> args;    // kCall
  Cond cond;                 // kIf
  std::vector<Stmt> body;    // kIf/kSeq
  std::string text;          // kComment; also provenance sentence for any node

  static Stmt assign(FieldRef target, Expr value) {
    Stmt s;
    s.kind = Kind::kAssign;
    s.target = std::move(target);
    s.value = std::move(value);
    return s;
  }
  static Stmt call(std::string fn, std::vector<Expr> args = {}) {
    Stmt s;
    s.kind = Kind::kCall;
    s.fn = std::move(fn);
    s.args = std::move(args);
    return s;
  }
  static Stmt if_then(Cond cond, std::vector<Stmt> body) {
    Stmt s;
    s.kind = Kind::kIf;
    s.cond = std::move(cond);
    s.body = std::move(body);
    return s;
  }
  static Stmt seq(std::vector<Stmt> body) {
    Stmt s;
    s.kind = Kind::kSeq;
    s.body = std::move(body);
    return s;
  }
  static Stmt comment(std::string text) {
    Stmt s;
    s.kind = Kind::kComment;
    s.text = std::move(text);
    return s;
  }

  /// Number of executable statements (comments and empty seqs excluded).
  std::size_t executable_count() const;
};

/// A complete generated function: one packet-handling routine (§5.2:
/// "SAGE then concatenates code for all the logical forms in a message
/// into a packet handling function", one per sender/receiver role).
struct GeneratedFunction {
  std::string name;        // e.g. "icmp_echo_receiver"
  std::string protocol;    // "ICMP"
  std::string message;     // "Echo or Echo Reply Message"
  std::string role;        // "sender" | "receiver"
  Stmt body;               // kSeq root
  std::string c_source;    // emitted C text
};

}  // namespace sage::codegen

#include "codegen/lowering.hpp"

#include <algorithm>
#include <atomic>

#include "net/schema.hpp"
#include "util/strings.hpp"
#include "util/symbols.hpp"

namespace sage::codegen {

namespace {

std::atomic<std::size_t> g_programs_compiled{0};
std::atomic<std::size_t> g_program_bytes{0};
std::atomic<std::size_t> g_vm_ops{0};
std::atomic<std::size_t> g_vm_slow{0};
std::atomic<std::size_t> g_tree_stmts{0};

namespace schema = net::schema;

/// Flattens one Stmt tree. Mirrors the tree interpreter's evaluation
/// order exactly: the linear program visits the same env accesses in the
/// same sequence, so the two backends are observationally identical
/// (tests/test_vm.cpp and test_vm_differential.cpp pin this).
class Lowering {
 public:
  explicit Lowering(const GeneratedFunction& fn)
      : schema_(schema::SchemaRegistry::instance().protocol(fn.protocol)) {
    out_.function_name = fn.name;
    out_.protocol = fn.protocol;
  }

  LinearProgram run(const Stmt& body) {
    stmt(body);
    emit({LinOp::kHalt});
    out_.max_stack = max_depth_;
    return std::move(out_);
  }

 private:
  /// A forward jump target: indices of emitted jump insns to patch.
  struct Label {
    std::vector<std::uint32_t> fixups;
  };

  void bind(Label& label) {
    const auto here = static_cast<std::uint32_t>(out_.code.size());
    for (const auto idx : label.fixups) out_.code[idx].c = here;
    label.fixups.clear();
  }

  void emit(LinInsn insn) { out_.code.push_back(insn); }

  void emit_jump(LinOp op, Label& label) {
    label.fixups.push_back(static_cast<std::uint32_t>(out_.code.size()));
    emit({op});
  }

  void push_depth(int delta) {
    depth_ += delta;
    max_depth_ = std::max(max_depth_, static_cast<std::uint32_t>(
                                          depth_ < 0 ? 0 : depth_));
  }

  std::uint16_t ref_index(const FieldRef& ref, PacketSel sel) {
    out_.refs.push_back({ref, sel});
    return static_cast<std::uint16_t>(out_.refs.size() - 1);
  }

  std::uint16_t name_index(const std::string& name) {
    for (std::size_t i = 0; i < out_.names.size(); ++i) {
      if (out_.names[i] == name) return static_cast<std::uint16_t>(i);
    }
    out_.names.push_back(name);
    return static_cast<std::uint16_t>(out_.names.size() - 1);
  }

  // Mirror of SchemaExecEnv::binding()'s spec resolution: dense id when
  // annotated, registry name lookup (with payload-pattern fallback)
  // otherwise.
  const schema::FieldSpec* resolve_spec(const FieldRef& ref) const {
    const auto& reg = schema::SchemaRegistry::instance();
    if (ref.field_id >= 0) return reg.field_by_id(ref.field_id);
    return reg.field(ref.layer, ref.field);
  }

  /// Mirror of SchemaExecEnv::is_bytes_field: the field is the payload
  /// of a layer this protocol actually binds.
  bool is_bytes_field(const FieldRef& ref) const {
    const auto* spec = resolve_spec(ref);
    if (spec == nullptr || spec->kind != schema::FieldKind::kBytes ||
        schema_ == nullptr) {
      return false;
    }
    const auto* layer =
        schema::SchemaRegistry::instance().layer_by_id(spec->id);
    return layer != nullptr &&
           std::find(schema_->layers.begin(), schema_->layers.end(),
                     layer->name) != schema_->layers.end();
  }

  /// Mirror of SchemaExecEnv::is_bytes_function (the ICMP profile's two
  /// byte-valued framework functions); test_vm_differential.cpp pins the
  /// agreement.
  bool is_bytes_function(const std::string& fn) const {
    return out_.protocol == "ICMP" &&
           (fn == "original_datagram_excerpt" || fn == "copy_field");
  }

  bool is_bytes_expr(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kField: return is_bytes_field(e.field);
      case Expr::Kind::kCall: return is_bytes_function(e.name);
      default: return false;
    }
  }

  void expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kConst:
        emit({LinOp::kPushConst, 0, 0, 0, e.value});
        push_depth(1);
        return;
      case Expr::Kind::kField:
        emit({LinOp::kPushField, static_cast<std::uint8_t>(e.packet),
              ref_index(e.field, e.packet)});
        push_depth(1);
        return;
      case Expr::Kind::kName: {
        // Constant-fold the symbol exactly as resolve_symbol would: the
        // SchemaAnnotator cache when present; otherwise the schema symbol
        // table / util::symbol_value, both immutable. Only the per-run
        // scenario alias survives as a runtime op.
        long value = 0;
        if (e.symbol_cached) {
          value = e.symbol_cache;
        } else {
          const std::string lower = util::to_lower(e.name);
          if (schema_ != nullptr && schema_->scenario_symbol &&
              lower == "scenario") {
            emit({LinOp::kPushScenario});
            push_depth(1);
            return;
          }
          bool found = false;
          if (schema_ != nullptr) {
            for (const auto& s : schema_->symbols) {
              if (s.name == lower) {
                value = s.value;
                found = true;
                break;
              }
            }
          }
          if (!found) value = util::symbol_value(e.name);
        }
        emit({LinOp::kPushConst, 0, 0, 0, value});
        push_depth(1);
        return;
      }
      case Expr::Kind::kCall: {
        for (const auto& a : e.args) expr(a);
        emit({LinOp::kCallScalar, static_cast<std::uint8_t>(e.args.size()),
              name_index(e.name)});
        push_depth(1 - static_cast<int>(e.args.size()));
        return;
      }
    }
  }

  /// Emit code that jumps to `target` when `c` evaluates to `jump_if`,
  /// falling through otherwise — the standard short-circuit lowering.
  /// Evaluation order (and therefore error order) matches the tree
  /// interpreter's test().
  void cond(const Cond& c, Label& target, bool jump_if) {
    switch (c.kind) {
      case Cond::Kind::kTrue:
        if (jump_if) emit_jump(LinOp::kJump, target);
        return;
      case Cond::Kind::kCompare:
        expr(c.lhs);
        expr(c.rhs);
        emit({LinOp::kCmp, static_cast<std::uint8_t>(c.op)});
        push_depth(-1);
        emit_jump(jump_if ? LinOp::kJumpIfTrue : LinOp::kJumpIfFalse, target);
        push_depth(-1);
        return;
      case Cond::Kind::kAnd: {
        if (c.children.empty()) {  // vacuous conjunction: true
          if (jump_if) emit_jump(LinOp::kJump, target);
          return;
        }
        if (!jump_if) {
          for (const auto& child : c.children) cond(child, target, false);
          return;
        }
        Label fail;
        for (std::size_t i = 0; i + 1 < c.children.size(); ++i) {
          cond(c.children[i], fail, false);
        }
        cond(c.children.back(), target, true);
        bind(fail);
        return;
      }
      case Cond::Kind::kOr: {
        if (c.children.empty()) {  // vacuous disjunction: false
          if (!jump_if) emit_jump(LinOp::kJump, target);
          return;
        }
        if (jump_if) {
          for (const auto& child : c.children) cond(child, target, true);
          return;
        }
        Label pass;
        for (std::size_t i = 0; i + 1 < c.children.size(); ++i) {
          cond(c.children[i], pass, true);
        }
        cond(c.children.back(), target, false);
        bind(pass);
        return;
      }
      case Cond::Kind::kNot:
        if (c.children.empty()) {  // tree: empty negation reads as false
          if (!jump_if) emit_jump(LinOp::kJump, target);
          return;
        }
        cond(c.children[0], target, !jump_if);
        return;
    }
  }

  void assign(const Stmt& s) {
    if (is_bytes_expr(s.value) || is_bytes_field(s.target)) {
      BytesSrc src = BytesSrc::kNone;
      std::uint16_t b = 0;
      std::uint8_t sel = 0;
      if (s.value.kind == Expr::Kind::kField) {
        src = BytesSrc::kField;
        b = ref_index(s.value.field, s.value.packet);
        sel = static_cast<std::uint8_t>(s.value.packet);
      } else if (s.value.kind == Expr::Kind::kCall) {
        src = BytesSrc::kCall;
        b = name_index(s.value.name);
      }
      emit({LinOp::kAssignBytes,
            static_cast<std::uint8_t>(static_cast<std::uint8_t>(src) |
                                      (sel << 4)),
            b, ref_index(s.target, PacketSel::kOutgoing)});
      return;
    }
    expr(s.value);
    emit({LinOp::kStoreField, 0, ref_index(s.target, PacketSel::kOutgoing)});
    push_depth(-1);
  }

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kComment:
        return;
      case Stmt::Kind::kSeq:
        for (const auto& child : s.body) stmt(child);
        return;
      case Stmt::Kind::kIf: {
        Label after;
        cond(s.cond, after, /*jump_if=*/false);
        for (const auto& child : s.body) stmt(child);
        bind(after);
        return;
      }
      case Stmt::Kind::kAssign:
        assign(s);
        return;
      case Stmt::Kind::kCall: {
        for (const auto& a : s.args) expr(a);
        emit({LinOp::kCallEffect, static_cast<std::uint8_t>(s.args.size()),
              name_index(s.fn)});
        push_depth(-static_cast<int>(s.args.size()));
        return;
      }
    }
  }

  const schema::ProtocolSchema* schema_;
  LinearProgram out_;
  int depth_ = 0;
  std::uint32_t max_depth_ = 0;
};

}  // namespace

ExecStats exec_stats() {
  return {g_programs_compiled.load(std::memory_order_relaxed),
          g_program_bytes.load(std::memory_order_relaxed),
          g_vm_ops.load(std::memory_order_relaxed),
          g_vm_slow.load(std::memory_order_relaxed),
          g_tree_stmts.load(std::memory_order_relaxed)};
}

void reset_exec_stats() {
  g_programs_compiled.store(0, std::memory_order_relaxed);
  g_program_bytes.store(0, std::memory_order_relaxed);
  g_vm_ops.store(0, std::memory_order_relaxed);
  g_vm_slow.store(0, std::memory_order_relaxed);
  g_tree_stmts.store(0, std::memory_order_relaxed);
}

void note_program_compiled(std::size_t bytes) {
  g_programs_compiled.fetch_add(1, std::memory_order_relaxed);
  g_program_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void note_vm_execution(std::size_t ops, std::size_t slow_entries) {
  g_vm_ops.fetch_add(ops, std::memory_order_relaxed);
  if (slow_entries != 0) {
    g_vm_slow.fetch_add(slow_entries, std::memory_order_relaxed);
  }
}

void note_tree_execution(std::size_t stmts) {
  g_tree_stmts.fetch_add(stmts, std::memory_order_relaxed);
}

LinearProgram compile_to_program(const GeneratedFunction& fn) {
  return Lowering(fn).run(fn.body);
}

}  // namespace sage::codegen

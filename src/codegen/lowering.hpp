// Lowering pass: generated Stmt trees -> flat linear programs.
//
// The static-framework interpreter (src/runtime/interpreter.cpp) walks
// the IR tree per packet; dispatch overhead dominates the responder hot
// path now that the packet path itself is zero-copy. compile_to_program()
// flattens a GeneratedFunction once into a contiguous instruction array:
// control flow becomes explicit jumps (If/And/Or/Not short-circuit
// lowered to kJumpIfFalse/kJumpIfTrue), kName symbols are resolved to
// inline constants at compile time (reusing the SchemaAnnotator caches;
// only the per-run "scenario" alias stays a runtime op), and every field
// access carries its resolved registry id.
//
// This is the codegen half of the threaded-code backend: the linear
// program is still protocol-agnostic (field ops reference FieldRefs, not
// storage). runtime/vm/program.cpp specializes it against a protocol's
// binding table into directly executable ops (docs/EXECUTION.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/ir.hpp"

namespace sage::codegen {

/// Process-wide execution counters for the generated-code backends,
/// alongside SchemaResolutionStats: how many handler programs were
/// compiled (and their footprint), how much work the threaded VM did,
/// and how many statements the tree interpreter stepped. Exposed on
/// core::ProtocolRun and by sage_debug --parse-stats.
struct ExecStats {
  std::size_t programs_compiled = 0;   // vm programs built
  std::size_t program_bytes = 0;       // code + side tables, bytes
  std::size_t ops_executed = 0;        // vm instructions retired
  std::size_t slow_path_entries = 0;   // vm ops that left the flat path
  std::size_t tree_stmts_executed = 0; // tree-interpreter statements
};

ExecStats exec_stats();
void reset_exec_stats();

/// Counter hooks (called by the runtime backends; relaxed atomics).
void note_program_compiled(std::size_t bytes);
void note_vm_execution(std::size_t ops, std::size_t slow_entries);
void note_tree_execution(std::size_t stmts);

/// Linear-program opcode (protocol-agnostic; see docs/EXECUTION.md for
/// the executable vocabulary this lowers into).
enum class LinOp : std::uint8_t {
  kHalt,         // end of program
  kPushConst,    // push imm
  kPushField,    // push field read: a=PacketSel, b=ref index
  kPushScenario, // push the per-run scenario symbol value
  kCallScalar,   // a=arg count, b=name index; pops args, pushes result
  kCmp,          // a=CmpOp; pops rhs,lhs, pushes 0/1
  kJump,         // ip = c
  kJumpIfFalse,  // pop; if 0 -> ip = c
  kJumpIfTrue,   // pop; if nonzero -> ip = c
  kStoreField,   // pop value into field: b=ref index
  kAssignBytes,  // bytes assignment: a=BytesSrc|sel<<4, b=src idx, c=target ref
  kCallEffect,   // a=arg count, b=name index; pops args
};

/// Value source of a bytes assignment (kAssignBytes.a low nibble).
enum class BytesSrc : std::uint8_t { kField, kCall, kNone };

/// One fixed-size linear instruction. Operand meaning is per-op; imm
/// holds inline constants (and, after runtime specialization, baked
/// schema FieldSpec pointers).
struct LinInsn {
  LinOp op = LinOp::kHalt;
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::int64_t imm = 0;
};

/// A field access recorded in the side table: the ref (with its resolved
/// id) plus the packet selector, kept for slow-path dispatch and for
/// building the tree-identical error messages lazily.
struct FieldUse {
  FieldRef ref;
  PacketSel sel = PacketSel::kIncoming;
};

/// The flat form of one GeneratedFunction.
struct LinearProgram {
  std::string function_name;
  std::string protocol;
  std::vector<LinInsn> code;     // ends with kHalt
  std::vector<FieldUse> refs;    // kPushField/kStoreField/kAssignBytes operands
  std::vector<std::string> names;  // framework-function names
  std::uint32_t max_stack = 0;   // value-stack high water, in slots
};

/// Lower `fn.body` to a linear program against `fn.protocol`'s schema.
/// Deterministic and total: every tree shape lowers (unknown fields and
/// unwritable targets become ops that fail exactly like the tree
/// interpreter's env calls do).
LinearProgram compile_to_program(const GeneratedFunction& fn);

}  // namespace sage::codegen

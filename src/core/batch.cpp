#include "core/batch.hpp"

namespace sage::core {

ProtocolRun Sage::run_protocol_parallel(const std::string& rfc_text,
                                        const std::string& protocol,
                                        const BatchOptions& options) {
  util::ThreadPool pool(options.jobs);
  return process_impl(rfc_text, protocol, options.sage, &pool);
}

ProtocolRun Sage::run_protocol_parallel(const std::string& rfc_text,
                                        const std::string& protocol) {
  return run_protocol_parallel(rfc_text, protocol, BatchOptions{});
}

BatchRunner::BatchRunner(std::size_t jobs, std::size_t cache_capacity)
    : pool_(jobs),
      cache_(cache_capacity == 0
                 ? nullptr
                 : std::make_shared<ccg::ParseCache>(cache_capacity)) {}

std::vector<BatchDocumentResult> BatchRunner::run(
    const std::vector<BatchJob>& batch) {
  std::vector<BatchDocumentResult> results;
  results.reserve(batch.size());
  for (const BatchJob& job : batch) {
    Sage sage;
    sage.set_parse_cache(cache_);
    sage.annotate_non_actionable(job.non_actionable);
    BatchDocumentResult result;
    result.name = job.name;
    result.run = sage.process_impl(job.rfc_text, job.protocol, job.options,
                                   &pool_);
    results.push_back(std::move(result));
  }
  return results;
}

std::string protocol_run_signature(const ProtocolRun& run) {
  std::string out;
  out += "document: " + run.document.title + "\n";
  out += "sections: " + std::to_string(run.document.sections.size()) + "\n";
  for (const SentenceReport& report : run.reports) {
    out += "sentence: " + report.sentence.text + "\n";
    for (const auto& [key, value] : report.sentence.context) {
      out += "  ctx " + key + "=" + value + "\n";
    }
    out += "  status: " + sentence_status_name(report.status) + "\n";
    out += "  base_forms: " + std::to_string(report.base_forms) + "\n";
    for (const auto& candidate : report.base_candidates) {
      out += "  candidate: " + candidate.to_string() + "\n";
    }
    for (const auto& stage : report.winnow.stages) {
      out += "  stage " + stage.stage + ": " +
             std::to_string(stage.remaining) + "\n";
    }
    for (const auto& [check, removed] : report.winnow.removed_by_check) {
      out += "  removed " + check + ": " + std::to_string(removed) + "\n";
    }
    for (const auto& survivor : report.winnow.survivors) {
      out += "  survivor: " + survivor.to_string() + "\n";
    }
    if (report.final_form) {
      out += "  final: " + report.final_form->to_string() + "\n";
    }
    for (const auto& unknown : report.unknown_tokens) {
      out += "  unknown: " + unknown + "\n";
    }
    out += "  structural_context: ";
    out += report.used_structural_context ? "yes\n" : "no\n";
  }
  for (const auto& function : run.functions) {
    out += "function: " + function.name + " [" + function.protocol + "/" +
           function.message + "/" + function.role + "]\n";
    out += function.c_source + "\n";
  }
  for (const auto& discovered : run.discovered_non_actionable) {
    out += "discovered: " + discovered + "\n";
  }
  return out;
}

}  // namespace sage::core

// The parallel batch pipeline executor.
//
// The pipeline is embarrassingly parallel at sentence granularity:
// parse + winnow is a pure function of (sentence, context, options), and
// only code generation consumes results in document order. The executor
// therefore fans sentence jobs across a fixed ThreadPool and joins
// before stage 3, emitting SentenceReports at their original indices —
// the determinism contract (docs/PARALLELISM.md) is that serial and
// parallel runs produce byte-identical ProtocolRuns.
//
// BatchRunner extends this to many documents: each document gets a
// fresh Sage (annotation sets differ per protocol) but all of them
// share one ParseCache, so sentences repeated across documents — or
// across repeated runs of the same corpus, which is what every ablation
// bench does — parse once.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ccg/parse_cache.hpp"
#include "core/sage.hpp"
#include "util/thread_pool.hpp"

namespace sage::core {

/// Configuration for Sage::run_protocol_parallel.
struct BatchOptions {
  /// Worker threads for the sentence fan-out; 0 picks
  /// hardware_concurrency.
  std::size_t jobs = 0;
  SageOptions sage;
};

/// One document in a multi-document batch.
struct BatchJob {
  std::string name;      // label for the result ("ICMP original", ...)
  std::string rfc_text;
  std::string protocol;
  /// Pre-annotated non-actionable sentences for this document.
  std::vector<std::string> non_actionable;
  SageOptions options;
};

struct BatchDocumentResult {
  std::string name;
  ProtocolRun run;
};

/// Multi-document executor: one shared pool, one shared parse cache.
/// Documents run in input order (their stage-3 codegen is order
/// sensitive); each document's sentences fan out across the pool.
class BatchRunner {
 public:
  /// `jobs == 0` picks hardware_concurrency; `cache_capacity == 0`
  /// disables the shared parse cache.
  explicit BatchRunner(std::size_t jobs = 0, std::size_t cache_capacity = 4096);

  std::vector<BatchDocumentResult> run(const std::vector<BatchJob>& batch);

  std::size_t jobs() const { return pool_.size(); }
  /// The shared cache (nullptr when disabled). Persists across run()
  /// calls, which is what makes repeated benches cheap.
  const std::shared_ptr<ccg::ParseCache>& cache() const { return cache_; }

 private:
  util::ThreadPool pool_;
  std::shared_ptr<ccg::ParseCache> cache_;
};

/// Canonical rendering of everything the determinism contract covers:
/// the full SentenceReport sequence (status, candidate sets, winnow
/// stage counts, final forms, context flags), the generated functions
/// (names and C bodies), and the discovered-non-actionable list. Serial
/// and parallel runs must render byte-identically; the differential
/// tests and the scaling bench both assert on this string. Cache
/// counters are deliberately excluded — they are the one field allowed
/// to differ.
std::string protocol_run_signature(const ProtocolRun& run);

}  // namespace sage::core

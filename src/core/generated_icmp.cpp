#include "core/generated_icmp.hpp"

#include "corpus/rfc792.hpp"

namespace sage::core {

const ProtocolRun& canonical_icmp_run() {
  static const ProtocolRun run = [] {
    Sage sage;
    sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
    return sage.process(corpus::rfc792_revised(), "ICMP");
  }();
  return run;
}

}  // namespace sage::core

#include "core/generated_icmp.hpp"

#include "corpus/rfc4443.hpp"
#include "corpus/rfc792.hpp"

namespace sage::core {

const ProtocolRun& canonical_icmp_run() {
  static const ProtocolRun run = [] {
    Sage sage;
    sage.annotate_non_actionable(corpus::icmp_non_actionable_annotations());
    return sage.process(corpus::rfc792_revised(), "ICMP");
  }();
  return run;
}

const ProtocolRun& canonical_icmp6_run() {
  static const ProtocolRun run = [] {
    Sage sage;
    sage.annotate_non_actionable(corpus::icmp6_non_actionable_annotations());
    return sage.process(corpus::rfc4443_revised(), "ICMP6");
  }();
  return run;
}

}  // namespace sage::core

// The canonical generated-ICMP artifact: one pipeline run over the
// revised RFC 792 text with the standard non-actionable annotations,
// memoized process-wide. The fuzz harness, the debug tool, and the
// throughput bench all differentially test the *same* generated code, and
// none of them pays for a second multi-second pipeline pass.
#pragma once

#include "core/sage.hpp"

namespace sage::core {

/// Processed once per process (thread-safe); immutable afterwards.
const ProtocolRun& canonical_icmp_run();

/// Same contract for the revised RFC 4443 text (ICMPv6).
const ProtocolRun& canonical_icmp6_run();

}  // namespace sage::core

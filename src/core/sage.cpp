#include "core/sage.hpp"

#include <algorithm>

#include "corpus/lexicon_data.hpp"
#include "corpus/terms.hpp"
#include "disambig/checks.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace sage::core {

std::string sentence_status_name(SentenceStatus status) {
  switch (status) {
    case SentenceStatus::kParsed: return "parsed";
    case SentenceStatus::kZeroForms: return "zero-forms";
    case SentenceStatus::kAmbiguous: return "ambiguous";
    case SentenceStatus::kNonActionable: return "non-actionable";
  }
  return "?";
}

std::size_t ProtocolRun::count(SentenceStatus status) const {
  return static_cast<std::size_t>(
      std::count_if(reports.begin(), reports.end(),
                    [status](const SentenceReport& r) {
                      return r.status == status;
                    }));
}

Sage::Sage()
    : lexicon_(corpus::make_lexicon()),
      dictionary_(corpus::make_term_dictionary()),
      winnower_(disambig::all_checks()),
      handlers_(codegen::HandlerRegistry::standard()),
      statics_(codegen::StaticContext::standard()),
      parse_cache_(std::make_shared<ccg::ParseCache>()) {
  for (auto& word : lexicon_.words()) closed_class_.insert(std::move(word));
}

void Sage::annotate_non_actionable(const std::vector<std::string>& sentences) {
  for (const auto& s : sentences) {
    non_actionable_.insert(util::to_lower(util::trim(s)));
  }
}

std::vector<std::string> Sage::roles_for_message(const std::string& message) {
  const std::string lower = util::to_lower(message);
  if (lower.find("echo") != std::string::npos ||
      lower.find("timestamp") != std::string::npos ||
      lower.find("information") != std::string::npos) {
    return {"sender", "receiver"};
  }
  return {"sender"};
}

std::vector<std::string> Sage::roles_for_sentence(const std::string& text,
                                                  const std::string& message) {
  const std::string lower = util::to_lower(text);
  const auto roles = roles_for_message(message);
  if (roles.size() == 1) return roles;
  // Role markers (§5.2: "Whether a logical form applies to the sender or
  // the receiver is also encoded in the context dictionary"):
  //   * "To form an X reply ..." / "In the X reply message, ..." /
  //     "... must be returned ..." describe the responder;
  //   * sentences about "the sender" bind the sender;
  //   * sentences about "the echoer" bind the responder.
  if (lower.find("to form") != std::string::npos ||
      lower.find("returned") != std::string::npos ||
      lower.find("echoer") != std::string::npos ||
      (util::starts_with(lower, "in the") &&
       lower.find("reply message") != std::string::npos)) {
    return {"receiver"};
  }
  if (lower.find("sender") != std::string::npos) {
    return {"sender"};
  }
  return roles;
}

SentenceReport Sage::analyze_sentence(const rfc::SpecSentence& sentence,
                                      const SageOptions& options) const {
  SentenceReport report;
  report.sentence = sentence;

  // Annotated non-actionable sentences skip parsing entirely: their
  // logical form is @AdvComment (§5.2).
  if (non_actionable_.count(util::to_lower(util::trim(sentence.text))) != 0) {
    report.status = SentenceStatus::kNonActionable;
    report.final_form = lf::LfNode::predicate(
        std::string(lf::pred::kAdvComment), {lf::LfNode::str(sentence.text)});
    return report;
  }

  // Tokenize + noun-phrase labeling.
  const nlp::NounPhraseChunker chunker(
      options.use_term_dictionary ? &dictionary_ : &empty_dictionary_,
      &closed_class_);
  nlp::ChunkingMode mode = options.chunking;
  if (!options.use_term_dictionary && mode == nlp::ChunkingMode::kFull) {
    mode = nlp::ChunkingMode::kNoDictionary;
  }
  const auto tokens = chunker.chunk(nlp::tokenize(sentence.text), mode);

  const auto field_it = sentence.context.find("field");
  const std::string field =
      field_it == sentence.context.end() ? "" : field_it->second;

  // CCG parsing + structural-context retry, memoized.
  ccg::CachedParse parsed = parse_with_context(tokens, field, options.parser);
  report.unknown_tokens = std::move(parsed.unknown_tokens);
  report.used_structural_context = parsed.used_structural_context;

  report.base_forms = parsed.candidates.size();
  report.base_candidates = parsed.candidates;
  report.winnow = winnower_.winnow(parsed.candidates);

  if (report.winnow.survivors.empty()) {
    report.status = SentenceStatus::kZeroForms;
  } else if (report.winnow.survivors.size() > 1) {
    report.status = SentenceStatus::kAmbiguous;
  } else {
    report.status = SentenceStatus::kParsed;
    report.final_form = report.winnow.survivors[0];
  }
  return report;
}

ccg::CachedParse Sage::parse_with_context(
    const std::vector<nlp::Token>& tokens, const std::string& field,
    const ccg::ParserOptions& options) const {
  std::string key;
  if (parse_cache_ != nullptr) {
    // Dynamic-context fingerprint: the structural "field" subject is the
    // only context the parse stage folds in (chunking choices are
    // already reflected in the token sequence itself).
    key = ccg::ParseCache::key_of(tokens, "field=" + util::to_lower(field),
                                  options);
    if (auto cached = parse_cache_->lookup(key)) return *std::move(cached);
  }

  ccg::CachedParse out;
  const ccg::CcgParser parser(&lexicon_, options);
  auto parsed = parser.parse(tokens);
  out.unknown_tokens = std::move(parsed.unknown_tokens);

  std::vector<lf::LogicalForm>& candidates = out.candidates;
  candidates = std::move(parsed.forms);

  // Zero sentence-level parses: supply the subject from structural
  // context (§4.1 "Causes of ambiguities: zero logical forms"). A field
  // description fragment becomes "<field> is <fragment>".
  if (candidates.empty() && !field.empty()) {
    if (!parsed.fragments.empty()) {
      // Fragment (examples A/B): the whole sentence is a noun phrase
      // describing the field's value — "<field> is <fragment>".
      out.used_structural_context = true;
      for (const auto& fragment : parsed.fragments) {
        candidates.push_back(lf::LfNode::predicate(
            std::string(lf::pred::kIs),
            {lf::LfNode::str(util::to_lower(field)), fragment}));
      }
    } else {
      // Clause missing its subject (example C: "If code = 0, identifies
      // the octet ..."): re-parse with the field supplied as subject,
      // trying the start of the sentence and each post-comma position.
      std::vector<std::size_t> positions = {0};
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind == nlp::TokenKind::kPunct && tokens[i].text == ",") {
          positions.push_back(i + 1);
        }
      }
      for (const std::size_t pos : positions) {
        std::vector<nlp::Token> with_subject = tokens;
        with_subject.insert(with_subject.begin() + static_cast<long>(pos),
                            nlp::make_noun_phrase(util::to_lower(field)));
        auto retry = parser.parse(with_subject);
        // Structural context tells us the sentence *describes* this
        // field: readings that instead test the field in the condition
        // contradict the document structure and are dropped.
        const std::string field_lower = util::to_lower(field);
        // Explicit-stack search (forms can nest deeply; recursion via
        // std::function also allocates per level).
        const auto mentions = [&field_lower](const lf::LfNode& root) {
          std::vector<const lf::LfNode*> stack = {&root};
          while (!stack.empty()) {
            const lf::LfNode* n = stack.back();
            stack.pop_back();
            if (n->is_string() && n->label == field_lower) return true;
            for (const auto& a : n->args) stack.push_back(&a);
          }
          return false;
        };
        std::vector<lf::LogicalForm> filtered;
        for (auto& form : retry.forms) {
          if (form.is_predicate(lf::pred::kIf) && form.args.size() == 2 &&
              mentions(form.args[0]) && !mentions(form.args[1])) {
            continue;
          }
          filtered.push_back(std::move(form));
        }
        if (!filtered.empty()) {
          out.used_structural_context = true;
          candidates = std::move(filtered);
          break;
        }
      }
    }
  }

  if (parse_cache_ != nullptr) parse_cache_->insert(key, out);
  return out;
}

ProtocolRun Sage::process(const std::string& rfc_text,
                          const std::string& protocol,
                          const SageOptions& options) {
  return process_impl(rfc_text, protocol, options, nullptr);
}

ProtocolRun Sage::process_impl(const std::string& rfc_text,
                               const std::string& protocol,
                               const SageOptions& options,
                               util::ThreadPool* pool) {
  ProtocolRun run;
  const ccg::ParseCacheStats before =
      parse_cache_ == nullptr ? ccg::ParseCacheStats{} : parse_cache_->stats();
  run.document = rfc::preprocess(rfc_text, protocol);
  const auto sentences = rfc::extract_sentences(run.document, protocol);

  // Stage 1+2: parse and winnow every sentence instance. Sentences are
  // independent here, so this is the stage that fans out across the
  // pool; each report lands at its original index, making the output
  // sequence independent of scheduling order.
  run.reports.resize(sentences.size());
  const auto analyze_one = [&](std::size_t i) {
    run.reports[i] = analyze_sentence(sentences[i], options);
  };
  if (pool != nullptr) {
    pool->parallel_for(sentences.size(), analyze_one);
  } else {
    for (std::size_t i = 0; i < sentences.size(); ++i) analyze_one(i);
  }

  // Group winnowed forms per (message, role), in document order.
  std::map<std::string, std::vector<codegen::SentenceLf>> per_function;
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    const auto& sentence = sentences[i];
    const SentenceReport& report = run.reports[i];
    if (!report.final_form) continue;

    const auto message_it = sentence.context.find("message");
    const std::string message =
        message_it == sentence.context.end() ? "" : message_it->second;
    for (const auto& role : roles_for_sentence(sentence.text, message)) {
      codegen::SentenceLf entry;
      entry.form = *report.final_form;
      entry.context = codegen::DynamicContext::from_map(sentence.context);
      entry.context.role = role;
      entry.sentence = sentence.text;
      per_function[message + "\x1f" + role].push_back(std::move(entry));
    }
  }

  // Stage 3: code generation, with one iterative-discovery pass: any
  // sentence that fails conversion is tagged @AdvComment and the
  // function is regenerated (§5.2 "Iterative discovery of non-actionable
  // sentences").
  const codegen::CodeGenerator generator(&statics_, &handlers_);
  for (auto& [key, sentence_lfs] : per_function) {
    const auto sep = key.find('\x1f');
    const std::string message = key.substr(0, sep);
    const std::string role = key.substr(sep + 1);

    auto outcome = generator.generate(protocol, message, role, sentence_lfs);
    if (!outcome.failed_sentences.empty()) {
      for (const auto& failed : outcome.failed_sentences) {
        run.discovered_non_actionable.push_back(failed);
        non_actionable_.insert(util::to_lower(util::trim(failed)));
        for (auto& entry : sentence_lfs) {
          if (entry.sentence == failed) {
            entry.form = lf::LfNode::predicate(
                std::string(lf::pred::kAdvComment),
                {lf::LfNode::str(failed)});
          }
        }
        // Reflect the discovery in the per-sentence reports.
        for (auto& report : run.reports) {
          if (report.sentence.text == failed) {
            report.status = SentenceStatus::kNonActionable;
          }
        }
      }
      outcome = generator.generate(protocol, message, role, sentence_lfs);
    }
    if (outcome.function) {
      run.functions.push_back(std::move(*outcome.function));
    }
    for (auto& name : outcome.unresolved_fields) {
      if (std::find(run.unresolved_fields.begin(), run.unresolved_fields.end(),
                    name) == run.unresolved_fields.end()) {
        run.unresolved_fields.push_back(std::move(name));
      }
    }
  }

  // Deduplicate discovered sentences (a sentence may feed two roles).
  std::sort(run.discovered_non_actionable.begin(),
            run.discovered_non_actionable.end());
  run.discovered_non_actionable.erase(
      std::unique(run.discovered_non_actionable.begin(),
                  run.discovered_non_actionable.end()),
      run.discovered_non_actionable.end());

  if (parse_cache_ != nullptr) {
    const ccg::ParseCacheStats after = parse_cache_->stats();
    run.cache.hits = after.hits - before.hits;
    run.cache.misses = after.misses - before.misses;
    run.cache.evictions = after.evictions - before.evictions;
  }
  run.exec = codegen::exec_stats();
  return run;
}

}  // namespace sage::core

// The SAGE pipeline (Figure 1): parsing -> disambiguation -> code
// generation, with the human-in-the-loop feedback points the paper
// describes (Figure 4): sentences that still carry 0 or >1 logical forms
// after winnowing are flagged for rewriting; sentences that parse but
// fail code generation are iteratively discovered as non-actionable and
// tagged @AdvComment.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "ccg/lexicon.hpp"
#include "ccg/parse_cache.hpp"
#include "ccg/parser.hpp"
#include "codegen/context.hpp"
#include "codegen/generator.hpp"
#include "codegen/handlers.hpp"
#include "codegen/lowering.hpp"
#include "disambig/winnower.hpp"
#include "nlp/chunker.hpp"
#include "nlp/term_dictionary.hpp"
#include "rfc/preprocessor.hpp"

namespace sage::util {
class ThreadPool;
}  // namespace sage::util

namespace sage::core {

struct BatchOptions;  // core/batch.hpp
class BatchRunner;

/// Outcome classification for one sentence instance.
enum class SentenceStatus {
  kParsed,         // exactly one logical form after winnowing
  kZeroForms,      // no sentence-level parse even with structural context
  kAmbiguous,      // >1 logical forms survive winnowing: rewrite needed
  kNonActionable,  // tagged @AdvComment (annotated or discovered)
};

std::string sentence_status_name(SentenceStatus status);

/// Full per-sentence record: counts at every stage, for the evaluation
/// benches (Figures 5/6, Tables 6/8).
struct SentenceReport {
  rfc::SpecSentence sentence;
  std::size_t base_forms = 0;  // logical forms before winnowing
  /// The pre-winnowing candidate set (Figure 5's "Base"; Figure 6 applies
  /// each check family to this set in isolation).
  std::vector<lf::LogicalForm> base_candidates;
  disambig::WinnowResult winnow;
  SentenceStatus status = SentenceStatus::kZeroForms;
  std::optional<lf::LogicalForm> final_form;
  std::vector<std::string> unknown_tokens;
  bool used_structural_context = false;  // fragment re-parsed with field subject
};

/// Result of processing one RFC.
struct ProtocolRun {
  rfc::RfcDocument document;
  std::vector<SentenceReport> reports;
  std::vector<codegen::GeneratedFunction> functions;
  /// Sentences auto-discovered as non-actionable this run (code
  /// generation failed; tagged @AdvComment for the next pass).
  std::vector<std::string> discovered_non_actionable;
  /// "layer.field" names the code generator could not resolve against
  /// the packet-schema registry (deduplicated across functions). These
  /// execute through the interpreter's string path instead of dense-id
  /// dispatch; not rendered anywhere, so run signatures are unaffected.
  std::vector<std::string> unresolved_fields;
  /// Parse-cache activity attributable to this run (hits/misses/
  /// evictions that happened while it executed). Zero when the cache is
  /// disabled.
  ccg::ParseCacheStats cache;
  /// Generated-code execution counters at the end of this run
  /// (codegen/lowering.hpp). Process-wide monotonic totals — programs
  /// compiled, VM ops retired, tree statements stepped — snapshotted
  /// here so callers (sage_debug --parse-stats) can report backend
  /// activity without reaching into the runtime.
  codegen::ExecStats exec;

  std::size_t count(SentenceStatus status) const;
};

/// Pipeline configuration (ablations for Tables 7/8).
struct SageOptions {
  nlp::ChunkingMode chunking = nlp::ChunkingMode::kFull;
  bool use_term_dictionary = true;  // false: Table 8 "no dictionary" row
  ccg::ParserOptions parser;
};

class Sage {
 public:
  Sage();

  /// Mark sentences as non-actionable ahead of a run (the annotations a
  /// previous run discovered, or a human supplied).
  void annotate_non_actionable(const std::vector<std::string>& sentences);

  /// Parse + winnow a single sentence with explicit dynamic context.
  SentenceReport analyze_sentence(const rfc::SpecSentence& sentence,
                                  const SageOptions& options = {}) const;

  /// Run the full pipeline over an RFC text: pre-process, analyze every
  /// sentence, generate one function per (message, role), auto-discover
  /// non-actionable sentences (one iterative pass, per §5.2).
  ProtocolRun process(const std::string& rfc_text, const std::string& protocol,
                      const SageOptions& options = {});

  /// The parallel twin of process(): fans sentence-level parse+winnow
  /// jobs across a thread pool, then assembles reports and functions in
  /// original document order. The determinism contract (documented in
  /// docs/PARALLELISM.md) is that the returned ProtocolRun is
  /// byte-identical to the serial path — only the `cache` counters may
  /// differ. Defined in core/batch.cpp.
  ProtocolRun run_protocol_parallel(const std::string& rfc_text,
                                    const std::string& protocol,
                                    const BatchOptions& options);
  ProtocolRun run_protocol_parallel(const std::string& rfc_text,
                                    const std::string& protocol);

  /// The parse memoization cache. Enabled by default; share one across
  /// Sage instances (BatchRunner does) to reuse parses between
  /// documents, or set nullptr to disable memoization entirely.
  const std::shared_ptr<ccg::ParseCache>& parse_cache() const {
    return parse_cache_;
  }
  void set_parse_cache(std::shared_ptr<ccg::ParseCache> cache) {
    parse_cache_ = std::move(cache);
  }

  // -- component access for benches and examples ---------------------------
  const ccg::Lexicon& lexicon() const { return lexicon_; }
  const nlp::TermDictionary& dictionary() const { return dictionary_; }
  const disambig::Winnower& winnower() const { return winnower_; }
  const codegen::HandlerRegistry& handlers() const { return handlers_; }
  const codegen::StaticContext& static_context() const { return statics_; }

  /// Roles a message section generates functions for. Echo/timestamp/
  /// information messages have sender and receiver behaviour; error
  /// messages only a sender.
  static std::vector<std::string> roles_for_message(const std::string& message);

  /// Which roles a sentence applies to ("to form an X reply" sentences
  /// describe the receiver; §5.2's role encoding).
  static std::vector<std::string> roles_for_sentence(const std::string& text,
                                                     const std::string& message);

 private:
  friend class BatchRunner;  // drives process_impl with its shared pool

  /// Parse (+ structural-context retry) for one sentence, memoized when
  /// the parse cache is enabled.
  ccg::CachedParse parse_with_context(const std::vector<nlp::Token>& tokens,
                                      const std::string& field,
                                      const ccg::ParserOptions& options) const;

  /// Shared pipeline body: stage 1+2 (parse + winnow per sentence)
  /// through `pool` when given, serially otherwise; stage 3 (codegen +
  /// iterative discovery) always in document order on the calling
  /// thread.
  ProtocolRun process_impl(const std::string& rfc_text,
                           const std::string& protocol,
                           const SageOptions& options, util::ThreadPool* pool);

  ccg::Lexicon lexicon_;
  nlp::TermDictionary dictionary_;
  nlp::TermDictionary empty_dictionary_;
  std::unordered_set<std::string> closed_class_;  // the lexicon's words
  disambig::Winnower winnower_;
  codegen::HandlerRegistry handlers_;
  codegen::StaticContext statics_;
  std::set<std::string> non_actionable_;
  std::shared_ptr<ccg::ParseCache> parse_cache_;
};

}  // namespace sage::core

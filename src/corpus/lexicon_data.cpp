#include "corpus/lexicon_data.hpp"

namespace sage::corpus {

ccg::Lexicon make_lexicon() {
  ccg::Lexicon lex;
  const auto icmp = [&lex](const char* w, const char* cat, const char* sem) {
    lex.add(w, cat, sem, "icmp");
  };
  const auto igmp = [&lex](const char* w, const char* cat, const char* sem) {
    lex.add(w, cat, sem, "igmp");
  };
  const auto ntp = [&lex](const char* w, const char* cat, const char* sem) {
    lex.add(w, cat, sem, "ntp");
  };
  const auto bfd = [&lex](const char* w, const char* cat, const char* sem) {
    lex.add(w, cat, sem, "bfd");
  };

  // ===== ICMP: the 71 base entries (§6.1) ==================================
  // -- determiners (semantically vacuous) ----------------------------------- 4
  icmp("the", "NP/N", "\\x.x");
  icmp("a", "NP/N", "\\x.x");
  icmp("an", "NP/N", "\\x.x");
  // -- copulas and auxiliaries ---------------------------------------------- 8
  icmp("is", "(S\\NP)/NP", "\\x.\\y.@Is(y, x)");    // assignment (paper ex. 2)
  icmp("is", "(S\\NP)/(S\\NP)", "\\f.f");            // passive auxiliary
  icmp("are", "(S\\NP)/NP", "\\x.\\y.@Is(y, x)");
  icmp("are", "(S\\NP)/(S\\NP)", "\\f.f");
  icmp("be", "(S\\NP)/NP", "\\x.\\y.@Is(y, x)");
  icmp("be", "(S\\NP)/(S\\NP)", "\\f.f");
  icmp("will", "(S\\NP)/(S\\NP)", "\\f.f");
  icmp("should", "(S\\NP)/(S\\NP)", "\\f.f");
  // -- modals with semantics -------------------------------------------------- 2
  icmp("may", "(S\\NP)/(S\\NP)", "\\f.\\x.@May(f(x))");
  icmp("must", "(S\\NP)/(S\\NP)", "\\f.\\x.@Must(f(x))");
  // -- '=': assignment and the value-list idiom "0 = net unreachable" -------- 2
  icmp("=", "(S\\NP)/NP", "\\x.\\y.@Is(y, x)");
  icmp("=", "(S\\NP)/NP", "\\x.\\y.@Case(y, x)");
  // -- conditionals: CCG over-generates both argument orders (§4.1) ---------- 2
  icmp("if", "(S/S)/S", "\\c.\\b.@If(c, b)");
  icmp("if", "(S/S)/S", "\\c.\\b.@If(b, c)");
  // -- comma: conjunction vs separator (the §4.1 distributivity source) ------ 3
  icmp(",", "CONJ", "@And");
  icmp(",", "(S/S)\\(S/S)", "\\f.f");   // after a fronted adjunct
  icmp(",", "(S\\S)/(S\\S)", "\\f.f");  // the ", and" list idiom
  icmp(",", "NP\\NP", "\\x.x");            // parenthetical comma
  // -- conjunctions ------------------------------------------------------------ 2
  icmp("and", "CONJ", "@And");
  icmp("or", "CONJ", "@Or");
  // -- noun-phrase relators ----------------------------------------------------- 4
  icmp("of", "(NP\\NP)/NP", "\\x.\\y.@Of(y, x)");
  icmp("from", "(NP\\NP)/NP", "\\x.\\y.@Of(y, x)");
  icmp("in", "(NP\\NP)/NP", "\\x.\\y.@In(y, x)");
  icmp("plus", "(NP\\NP)/NP", "\\x.\\y.@And(y, x)");
  // -- prepositions -------------------------------------------------------------- 7
  icmp("to", "PP/NP", "\\x.x");
  icmp("with", "PP/NP", "\\x.x");
  icmp("for", "PP/NP", "\\x.x");
  icmp("in", "PP/NP", "\\x.x");
  icmp("in", "PP/Sg", "\\g.g");
  icmp("by", "PP/NP", "\\x.x");
  // -- fronted adjuncts and purpose clauses ---------------------------------------- 5
  icmp("for", "(S/S)/Sg", "\\g.\\s.@AdvBefore(g, s)");  // Figure 2's advice
  icmp("to", "(S/S)/Sg", "\\g.\\s.s");     // "To form X, ..." (absorbed)
  icmp("to", "(S/S)/Sg", "\\g.\\s.@AdvBefore(g, s)");  // over-generation
  icmp("to", "(NP\\NP)/Sg", "\\g.\\x.x");  // "an identifier to aid in ..."
  icmp("in", "(S/S)/NP", "\\x.\\s.@When(x, s)");  // "In the X message, ..."
  // -- number words ------------------------------------------------------------------ 2
  icmp("zero", "NP", "0");
  // -- gerunds --------------------------------------------------------------------- 5
  icmp("computing", "Sg/NP", "\\x.@Action(\"compute\", x)");
  icmp("matching", "Sg/NP", "\\x.@Action(\"match\", x)");
  icmp("sending", "Sg/NP", "\\x.@Action(\"send\", x)");
  icmp("form", "Sg/NP", "\\x.@Action(\"form\", x)");
  icmp("aid", "Sg/PP", "\\p.@Action(\"aid\")");
  // -- participles and verbs ---------------------------------------------------------- 17
  icmp("reversed", "S\\NP", "\\x.@Action(\"reverse\", x)");
  icmp("recomputed", "S\\NP", "\\x.@Action(\"recompute\", x)");
  icmp("computed", "S\\NP", "\\x.@Action(\"compute\", x)");
  icmp("returned", "S\\NP", "\\x.@Action(\"copy\", x)");
  icmp("returned", "(S\\NP)/PP", "\\p.\\x.@Action(\"copy\", x)");
  icmp("changed", "(S\\NP)/PP", "\\p.\\x.@Is(x, p)");
  icmp("set", "(S\\NP)/PP", "\\p.\\x.@Is(x, p)");
  icmp("set", "((S\\NP)/PP)/NP", "\\o.\\p.\\x.@Is(o, p)");
  icmp("sent", "S\\NP", "\\x.@Action(\"send\", x)");
  icmp("sent", "(S\\NP)/PP", "\\p.\\x.@Action(\"send\", x)");
  icmp("discarded", "S\\NP", "\\x.@Discard(x)");
  icmp("identifies", "(S\\NP)/NP", "\\x.\\y.@Is(y, x)");
  icmp("uses", "(S\\NP)/NP", "\\x.\\y.@Action(\"use\", y, x)");
  icmp("used", "(S\\NP)/PP", "\\p.\\x.@Action(\"use\", x)");
  icmp("assumed", "(S\\NP)/PP", "\\p.\\x.@Action(\"assume\", x)");
  icmp("means", "(S\\NP)/NP", "\\x.\\y.@Case(y, x)");
  // -- the "8 for echo message" value-list idiom ----------------------------------- 1
  icmp("for", "(S\\NP)/NP", "\\x.\\y.@Case(y, x)");
  // -- reduced-relative modifiers (absorbed restrictions) ----------------------------- 4
  icmp("received", "(NP\\NP)/PP", "\\p.\\x.x");
  icmp("starting", "(NP\\NP)/PP", "\\p.\\x.x");
  icmp("ending", "(NP\\NP)/PP", "\\p.\\x.x");
  icmp("specified", "(NP\\NP)/PP", "\\p.\\x.x");
  // -- adverbs and minor words ------------------------------------------------------------ 3
  icmp("simply", "(S\\NP)/(S\\NP)", "\\f.f");
  icmp("not", "(S\\NP)/(S\\NP)", "\\f.\\x.@Not(f(x))");
  icmp("first", "N/N", "\\x.x");
  // -- relative clauses ("the octet where an error was detected") ------------- 3
  icmp("where", "(NP\\NP)/S", "\\s.\\x.x");
  icmp("was", "(S\\NP)/(S\\NP)", "\\f.f");
  icmp("detected", "S\\NP", "\\x.@Action(\"detect\", x)");

  // ===== IGMP: +8 entries (§6.3) =============================================
  igmp("every", "NP/N", "\\x.x");
  igmp("sends", "(S\\NP)/NP", "\\x.\\y.@Send(x, y)");
  igmp("send", "(S\\NP)/NP", "\\x.\\y.@Send(x, y)");
  igmp("addressed", "(S\\NP)/PP", "\\p.\\x.@Action(\"send\", x)");
  igmp("joins", "(S\\NP)/NP", "\\x.\\y.@Action(\"use\", y, x)");
  igmp("reports", "(S\\NP)/NP", "\\x.\\y.@Send(x, y)");
  igmp("ignored", "S\\NP", "\\x.@Discard(x)");
  igmp("periodically", "(S\\NP)/(S\\NP)", "\\f.f");

  // ===== NTP: +5 entries (§6.3) ===============================================
  ntp("encapsulated", "(S\\NP)/PP", "\\p.\\x.@Action(\"send\", x)");
  ntp("calls", "(S\\NP)/NP", "\\x.\\y.@Action(\"timeout\", y, x)");
  ntp("called", "S\\NP", "\\x.@Action(\"timeout\", x)");
  ntp("expires", "S\\NP", "\\x.@Is(x, 0)");  // timer counted down to zero
  ntp("when", "(S/S)/S", "\\c.\\b.@If(c, b)");

  // ===== BFD: +15 entries (§6.4) ================================================
  bfd("nonzero", "S\\NP", "\\x.@Nonzero(x)");
  bfd("select", "(S\\NP)/NP", "\\x.\\y.@Select(x, y)");
  bfd("selected", "S\\NP", "\\x.@Select(x)");
  bfd("found", "S\\NP", "\\x.@Select(x)");
  bfd("no", "NP/N", "\\x.@Not(x)");
  bfd("up", "NP", "\"Up\"");
  bfd("down", "NP", "\"Down\"");
  bfd("init", "NP", "\"Init\"");
  bfd("admindown", "NP", "\"AdminDown\"");
  bfd("cease", "(S\\NP)/NP", "\\x.\\y.@Cease(x)");
  bfd("cease", "S\\NP", "\\x.@Cease(x)");  // "transmission MUST cease"
  bfd("ceases", "(S\\NP)/NP", "\\x.\\y.@Cease(x)");
  bfd("receives", "(S\\NP)/NP", "\\x.\\y.@Action(\"use\", y, x)");
  bfd("active", "S\\NP", "\\x.@Nonzero(x)");
  bfd("it", "NP", "\"it\"");
  // copula negation: "the State field is not Down"
  bfd("not", "((S\\NP)/NP)\\((S\\NP)/NP)", "\\v.\\x.\\y.@Not(v(x, y))");

  // ===== TCP probe (§7): the marginal additions the reach experiment
  // needs — connection-state value names only. ===============================
  const auto tcp = [&lex](const char* w, const char* cat, const char* sem) {
    lex.add(w, cat, sem, "tcp");
  };
  tcp("listen", "NP", "\"Listen\"");
  tcp("syn-received", "NP", "\"Syn-Received\"");
  tcp("established", "NP", "\"Established\"");
  tcp("close-wait", "NP", "\"Close-Wait\"");
  tcp("closed", "NP", "\"Closed\"");

  // ===== BGP probe (§7): FSM state names. ====================================
  const auto bgp = [&lex](const char* w, const char* cat, const char* sem) {
    lex.add(w, cat, sem, "bgp");
  };
  bgp("idle", "NP", "\"Idle\"");
  bgp("connect", "NP", "\"Connect\"");
  bgp("openconfirm", "NP", "\"OpenConfirm\"");

  return lex;
}

}  // namespace sage::corpus

// The SAGE CCG lexicon (§3, §6.1).
//
// §6.1: "SAGE adds 71 lexical entries to an nltk-based CCG parser";
// §6.3: IGMP required 8 additional entries, NTP 5 more; §6.4: BFD's
// state-management sentences added 15. Entries are tagged with the
// protocol that required them so the implementation-stats bench can
// report the same incremental-cost table.
//
// Grammar conventions (primitive categories):
//   S    sentence          NP  noun phrase       N   noun
//   PP   prepositional     Sg  gerund/action clause
//   CONJ coordination marker (binarized coordination rule)
#pragma once

#include "ccg/lexicon.hpp"

namespace sage::corpus {

/// Build the full lexicon (ICMP + IGMP + NTP + BFD entries).
ccg::Lexicon make_lexicon();

}  // namespace sage::corpus

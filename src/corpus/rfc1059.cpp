#include "corpus/rfc1059.hpp"

namespace sage::corpus {

const std::string& rfc1059_appendices() {
  static const std::string kText = R"(NTP Data Format

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |  Source Port                  |  Destination Port             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |  Length                       |  Checksum                     |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   UDP Fields:

   Source Port

      123

   Destination Port

      123

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the message.  For computing the checksum, the
      checksum field should be zero.

   Description

      The NTP packet is encapsulated in a UDP datagram.  The UDP
      checksum covers a pseudo header containing the source address
      and the destination address.

NTP Header Format

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |LI | VN  |Mode |    Stratum    |     Poll      |   Precision   |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                      Synchronizing Distance                   |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                       Reference Timestamp (64)                |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                       Originate Timestamp (64)               |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                       Receive Timestamp (64)                  |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                       Transmit Timestamp (64)                 |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   NTP Fields:

   Leap Indicator

      0

   Version Number

      1

   Stratum

      2

   Poll

      6

   Precision

      0

   Transmit Timestamp

      The transmit timestamp is the current time.

   Description

      The leap indicator warns of an impending leap second to be
      inserted in the standard time broadcast.  The poll field is the
      maximum interval between successive messages.
)";
  return kText;
}

const std::string& ntp_timeout_sentence() {
  // Table 11: the peer-variable sentence SAGE parses into a timeout call.
  static const std::string kSentence =
      "When the peer timer expires, the timeout procedure is called.";
  return kSentence;
}

const std::vector<std::string>& ntp_non_actionable_annotations() {
  static const std::vector<std::string> kAnnotations = {
      "The NTP packet is encapsulated in a UDP datagram.",
      "The UDP checksum covers a pseudo header containing the source "
      "address and the destination address.",
      "The leap indicator warns of an impending leap second to be "
      "inserted in the standard time broadcast.",
      "The poll field is the maximum interval between successive "
      "messages.",
  };
  return kAnnotations;
}

}  // namespace sage::corpus

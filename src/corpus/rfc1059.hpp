// RFC 1059 (NTPv1) corpus — Appendices A and B (§6.3), which describe
// the UDP encapsulation and the NTP packet header, plus the peer-timer
// sentence of Table 11.
#pragma once

#include <string>
#include <vector>

namespace sage::corpus {

/// Appendix A (UDP header fields for NTP) + Appendix B (NTP header).
const std::string& rfc1059_appendices();

/// The Table 11 peer-variable sentence ("when the peer timer expires,
/// the timeout procedure is called").
const std::string& ntp_timeout_sentence();

/// Sentences annotated non-actionable for NTP.
const std::vector<std::string>& ntp_non_actionable_annotations();

}  // namespace sage::corpus

#include "corpus/rfc1112.hpp"

namespace sage::corpus {

const std::string& rfc1112_appendix_i() {
  static const std::string kText = R"(Internet Group Management Protocol

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |Version| Type  |    Unused     |           Checksum            |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                         Group Address                         |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   IGMP Fields:

   Version

      1

   Type

      1 = host membership query;  2 = host membership report.

   Unused

      The unused field is zero.  The unused field should be ignored
      when received.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the IGMP message.  For computing the checksum,
      the checksum field should be zero.

   Group Address

      In a host membership query message, the group address field is
      zero.  In a host membership report message, the group address
      field is the host group address of the group.

   Description

      The all-hosts group is used to address all the multicast hosts on
      the local network.  Every host joins the all-hosts group on each
      network interface at initialization time.
)";
  return kText;
}

const std::vector<std::string>& igmp_non_actionable_annotations() {
  static const std::vector<std::string> kAnnotations = {
      "The unused field should be ignored when received.",
      "The all-hosts group is used to address all the multicast hosts on "
      "the local network.",
      "Every host joins the all-hosts group on each network interface at "
      "initialization time.",
  };
  return kAnnotations;
}

}  // namespace sage::corpus

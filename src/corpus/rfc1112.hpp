// RFC 1112 Appendix I (IGMPv1) corpus — the §6.3 generality experiment.
#pragma once

#include <string>
#include <vector>

namespace sage::corpus {

/// The Appendix I packet-header description SAGE parses.
const std::string& rfc1112_appendix_i();

/// Sentences annotated non-actionable for IGMP.
const std::vector<std::string>& igmp_non_actionable_annotations();

}  // namespace sage::corpus

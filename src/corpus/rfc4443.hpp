// RFC 4443 (ICMPv6) corpus — the IPv6 counterpart of the RFC 792
// evaluation target.
//
// `rfc4443_original()` reconstructs the five message sections of RFC
// 4443 (Destination Unreachable, Packet Too Big, Time Exceeded,
// Parameter Problem, Echo/Echo Reply) in the same document shape the
// RFC 792 corpus uses, including the sentences a spec author had to
// clarify: the two multi-LF echo sentences RFC 4443 inherits verbatim
// from RFC 792, the zero-LF "as much of the invoking packet as
// possible" payload description and the Packet Too Big MTU fragment,
// and the two imprecise "may be zero" identifier/sequence variants.
//
// `rfc4443_rewrites()` holds the clarified replacements (same feedback
// loop as Table 6); `rfc4443_revised()` applies them, yielding the text
// the ICMPv6 end-to-end pipeline consumes.
#pragma once

#include <string>
#include <vector>

#include "corpus/rfc792.hpp"  // Rewrite / RewriteCategory

namespace sage::corpus {

/// The reconstructed original specification text.
const std::string& rfc4443_original();

/// The rewrite set (2 multi-LF + 2 zero-LF + 2 imprecise).
const std::vector<Rewrite>& rfc4443_rewrites();

/// Original text with all rewrites applied.
std::string rfc4443_revised();

/// Sentences annotated as non-actionable (advisory prose, path-MTU
/// discovery remarks, pseudo-header notes the schema already encodes).
const std::vector<std::string>& icmp6_non_actionable_annotations();

}  // namespace sage::corpus

#include "corpus/rfc5880.hpp"

namespace sage::corpus {

const std::string& rfc5880_header_section() {
  static const std::string kText = R"(BFD Control Packet Format

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |Vers |  Diag   |Sta|P|F|C|A|D|M|  Detect Mult  |    Length     |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                       My Discriminator                        |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                      Your Discriminator                       |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                    Desired Min TX Interval                    |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                   Required Min RX Interval                    |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                 Required Min Echo RX Interval                 |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
)";
  return kText;
}

const std::vector<std::string>& bfd_state_sentences() {
  // RFC 5880 §6.8.6 "Reception of BFD Control Packets", in the clarified
  // form that survives the SAGE feedback loop (the pre-rewrite forms of
  // the two hardest sentences are in bfd_challenges()). 22 sentences,
  // matching the count the paper analyzes.
  static const std::vector<std::string> kSentences = {
      // --- validation: packets that must be dropped -----------------------
      "If the Detect Mult field is zero, the packet MUST be discarded.",
      "If the Multipoint bit is nonzero, the packet MUST be discarded.",
      "If the My Discriminator field is zero, the packet MUST be discarded.",
      "If the Your Discriminator field is nonzero, the session is selected.",
      "If the Your Discriminator field is nonzero and the session is not "
      "found, the packet MUST be discarded.",
      "If the Your Discriminator field is zero and the State field is not "
      "Down, the packet MUST be discarded.",
      // --- state variable updates ------------------------------------------
      "The bfd.RemoteDiscr is the My Discriminator field.",
      "The bfd.RemoteSessionState is the State field.",
      "The bfd.RemoteDemandMode is the Demand bit.",
      "The bfd.RemoteMinRxInterval is the Required Min RX Interval field.",
      "If the Required Min Echo RX Interval field is zero, the periodic "
      "transmission of echo packets MUST cease.",
      // --- demand mode (Table 5's rephrasing sentence, rewritten) ----------
      "If bfd.RemoteDemandMode is 1, bfd.SessionState is Up, and "
      "bfd.RemoteSessionState is Up, the local system MUST cease the "
      "periodic transmission of BFD control packets.",
      "If the Poll bit is nonzero, the local system MUST send a bfd "
      "control packet.",
      // --- the three-way state machine --------------------------------------
      "If bfd.SessionState is AdminDown, the packet MUST be discarded.",
      "If the State field is AdminDown and bfd.SessionState is Up, the "
      "bfd.SessionState is Down.",
      "If the State field is AdminDown and bfd.SessionState is Init, the "
      "bfd.SessionState is Down.",
      "If the State field is Down and bfd.SessionState is Down, the "
      "bfd.SessionState is Init.",
      "If the State field is Init and bfd.SessionState is Down, the "
      "bfd.SessionState is Up.",
      "If the State field is Init and bfd.SessionState is Init, the "
      "bfd.SessionState is Up.",
      "If the State field is Up and bfd.SessionState is Init, the "
      "bfd.SessionState is Up.",
      "If the State field is Down and bfd.SessionState is Up, the "
      "bfd.SessionState is Down.",
      "If the State field is Down and bfd.SessionState is Init, the "
      "bfd.SessionState is Init.",
  };
  return kSentences;
}

std::string rfc5880_state_section() {
  std::string text = "Reception of BFD Control Packets\n\n   Description\n\n";
  for (const auto& sentence : bfd_state_sentences()) {
    text += "      " + sentence + "\n";
  }
  return text;
}

const std::vector<BfdChallenge>& bfd_challenges() {
  // Table 5: the two §6.8.6 sentences that defeat the underlying NLP
  // machinery. The originals exercise (a) cross-sentence co-reference
  // ("no session" refers to "the session" selected by the previous
  // sentence) and (b) a rephrased conditional embedded in prose; both
  // yield no usable logical form. The rewrites are what a spec author
  // produces in the feedback loop.
  static const std::vector<BfdChallenge> kChallenges = {
      {"Nested code",
       "If the Your Discriminator field is nonzero, it MUST be used to "
       "select the session with which this BFD packet is associated. If "
       "no session is found, the packet MUST be discarded.",
       "If the Your Discriminator field is nonzero, the session is "
       "selected. If the Your Discriminator field is nonzero and the "
       "session is not found, the packet MUST be discarded."},
      {"Rephrasing",
       "If bfd.RemoteDemandMode is 1, bfd.SessionState is Up, and "
       "bfd.RemoteSessionState is Up, Demand mode is active on the remote "
       "system and the local system MUST cease the periodic transmission "
       "of BFD Control packets.",
       "If bfd.RemoteDemandMode is 1, bfd.SessionState is Up, and "
       "bfd.RemoteSessionState is Up, the local system MUST cease the "
       "periodic transmission of BFD control packets."},
  };
  return kChallenges;
}

}  // namespace sage::corpus

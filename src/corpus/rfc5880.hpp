// RFC 5880 (BFD) corpus — §4.1 packet header and the §6.8.6 state
// management sentences of the §6.4 experiment, plus the Table 5
// challenging sentences (originals that defeat the parser, and the
// human rewrites that succeed).
#pragma once

#include <string>
#include <vector>

namespace sage::corpus {

/// The §4.1 Mandatory Section header diagram and field list.
const std::string& rfc5880_header_section();

/// The 22 state-management sentences of §6.8.6 (reception of BFD
/// control packets), in clarified (parseable) form.
const std::vector<std::string>& bfd_state_sentences();

/// The state-management sentences formatted as an RFC-style section the
/// pre-processor can consume (one Description block).
std::string rfc5880_state_section();

/// The Table 5 data: challenging originals and their rewrites.
struct BfdChallenge {
  std::string type;      // "Nested code" | "Rephrasing"
  std::string original;
  std::string rewritten;
};
const std::vector<BfdChallenge>& bfd_challenges();

}  // namespace sage::corpus

#include "corpus/rfc792.hpp"

#include "util/strings.hpp"

namespace sage::corpus {

std::string rewrite_category_name(RewriteCategory category) {
  switch (category) {
    case RewriteCategory::kMoreThanOneLf: return "More than 1 LF";
    case RewriteCategory::kZeroLf: return "0 LF";
    case RewriteCategory::kImprecise: return "Imprecise sentence";
  }
  return "?";
}

const std::string& rfc792_original() {
  // Reconstruction of RFC 792's eight message sections. Field layout,
  // wording, and the problematic sentences follow the original; prose
  // paragraphs the paper's 35 non-actionable annotations cover are
  // included under "Description".
  static const std::string kText = R"(Destination Unreachable Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                             unused                            |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |      Internet Header + 64 bits of Original Data Datagram      |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   IP Fields:

   Destination Address

      The source network and address from the original datagram's data.

   ICMP Fields:

   Type

      3

   Code

      0 = net unreachable;  1 = host unreachable;  2 = protocol
      unreachable;  3 = port unreachable;  4 = fragmentation needed and
      DF set;  5 = source route failed.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the ICMP message starting with the ICMP type.
      For computing the checksum, the checksum field should be zero.
      This checksum may be replaced in the future.

   Internet Header + 64 bits of Data Datagram

      The internet header plus the first 64 bits of the original
      datagram's data.  This data is used by the host to match the
      message to the appropriate process.  If a higher level protocol
      uses port numbers, they are assumed to be in the first 64 data
      bits of the original datagram's data.

   Description

      If the gateway cannot deliver the datagram because the network
      specified in the destination field is unreachable, the gateway
      may send a destination unreachable message to the source host.
      In some networks the gateway may also be able to determine if the
      destination host is unreachable.

Time Exceeded Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                             unused                            |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |      Internet Header + 64 bits of Original Data Datagram      |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   IP Fields:

   Destination Address

      The source network and address from the original datagram's data.

   ICMP Fields:

   Type

      11

   Code

      0 = time to live exceeded in transit;  1 = fragment reassembly
      time exceeded.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the ICMP message starting with the ICMP type.
      For computing the checksum, the checksum field should be zero.

   Internet Header + 64 bits of Data Datagram

      The internet header plus the first 64 bits of the original
      datagram's data.  This data is used by the host to match the
      message to the appropriate process.

   Description

      If the gateway processing a datagram finds the time to live field
      is zero it must discard the datagram.  The gateway may also
      notify the source host via the time exceeded message.

Parameter Problem Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |    Pointer    |                   unused                      |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |      Internet Header + 64 bits of Original Data Datagram      |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   IP Fields:

   Destination Address

      The source network and address from the original datagram's data.

   ICMP Fields:

   Type

      12

   Code

      0 = pointer indicates the error.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the ICMP message starting with the ICMP type.
      For computing the checksum, the checksum field should be zero.

   Pointer

      If code = 0, identifies the octet where an error was detected.

   Internet Header + 64 bits of Data Datagram

      The internet header plus the first 64 bits of the original
      datagram's data.  This data is used by the host to match the
      message to the appropriate process.

   Description

      If the gateway or host processing a datagram finds a problem with
      the header parameters such that it cannot complete processing the
      datagram it must discard the datagram.  One potential source of
      such a problem is with incorrect arguments in an option.

Source Quench Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                             unused                            |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |      Internet Header + 64 bits of Original Data Datagram      |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   IP Fields:

   Destination Address

      The source network and address from the original datagram's data.

   ICMP Fields:

   Type

      4

   Code

      0 = source quench.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the ICMP message starting with the ICMP type.
      For computing the checksum, the checksum field should be zero.

   Internet Header + 64 bits of Data Datagram

      The internet header plus the first 64 bits of the original
      datagram's data.  This data is used by the host to match the
      message to the appropriate process.

   Description

      A gateway may discard internet datagrams if it does not have the
      buffer space needed to queue the datagrams for output to the next
      network on the route to the destination network.  The gateway may
      send a source quench message for every message that it discards.

Redirect Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |                 Gateway Internet Address                      |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |      Internet Header + 64 bits of Original Data Datagram      |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   IP Fields:

   Destination Address

      The source network and address from the original datagram's data.

   ICMP Fields:

   Type

      5

   Code

      0 = redirect datagrams for the network;  1 = redirect datagrams
      for the host;  2 = redirect datagrams for the type of service and
      network;  3 = redirect datagrams for the type of service and
      host.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the ICMP message starting with the ICMP type.
      For computing the checksum, the checksum field should be zero.

   Gateway Internet Address

      Address of the gateway to which traffic for the network specified
      in the internet destination network field of the original
      datagram's data should be sent.

   Internet Header + 64 bits of Data Datagram

      The internet header plus the first 64 bits of the original
      datagram's data.  This data is used by the host to match the
      message to the appropriate process.

   Description

      The gateway sends a redirect message to a host in the following
      situation.  The redirect message advises the host to send its
      traffic for the network directly to the gateway as a shorter path
      to the destination.

Echo or Echo Reply Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |           Identifier          |        Sequence Number        |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Data ...
   +-+-+-+-+-

   IP Fields:

   Addresses

      The address of the source in an echo message will be the
      destination of the echo reply message.

   ICMP Fields:

   Type

      8 for echo message;  0 for echo reply message.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the ICMP message starting with the ICMP type.
      For computing the checksum, the checksum field should be zero.

   Identifier

      If code = 0, an identifier to aid in matching echos and replies,
      may be zero.

   Sequence Number

      If code = 0, a sequence number to aid in matching echos and
      replies, may be zero.

   Data

      The data received in the echo message must be returned in the
      echo reply message.

   Description

      To form an echo reply message, the source and destination
      addresses are simply reversed, the type code changed to 0, and
      the checksum recomputed.  The identifier and sequence number may
      be used by the echo sender to aid in matching the replies.

Timestamp or Timestamp Reply Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |           Identifier          |        Sequence Number        |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Originate Timestamp                                       |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Receive Timestamp                                         |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Transmit Timestamp                                        |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   ICMP Fields:

   Type

      13 for timestamp message;  14 for timestamp reply message.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the ICMP message starting with the ICMP type.
      For computing the checksum, the checksum field should be zero.

   Identifier

      If code = 0, an identifier to aid in matching timestamp and
      replies, may be zero.

   Sequence Number

      If code = 0, a sequence number to aid in matching timestamp and
      replies, may be zero.

   Originate Timestamp

      The originate timestamp is the time the sender last touched the
      message.

   Receive Timestamp

      The receive timestamp is the time the echoer first touched the
      message.

   Transmit Timestamp

      The transmit timestamp is the time the echoer last touched the
      message.

   Description

      To form a timestamp reply message, the source and destination
      addresses are simply reversed, the type code changed to 14, and
      the checksum recomputed.  The timestamp is the number of
      milliseconds since midnight.

Information Request or Information Reply Message

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |           Identifier          |        Sequence Number        |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

   ICMP Fields:

   Type

      15 for information request message;  16 for information reply
      message.

   Checksum

      The checksum is the 16-bit one's complement of the one's
      complement sum of the ICMP message starting with the ICMP type.
      For computing the checksum, the checksum field should be zero.

   Identifier

      If code = 0, an identifier to aid in matching request and
      replies, may be zero.

   Sequence Number

      If code = 0, a sequence number to aid in matching request and
      replies, may be zero.

   Description

      To form a information reply message, the source and destination
      addresses are simply reversed, the type code changed to 16, and
      the checksum recomputed.  This message may be used by a host to
      find out the number of the network it is on.
)";
  return kText;
}

const std::vector<Rewrite>& rfc792_rewrites() {
  // Table 6: the sentences a human rewrote in SAGE's feedback loop.
  // 4 instances with more than one logical form (3 "To form ..." variants
  // plus the echo "Addresses" sentence), 1 with zero logical forms (the
  // Redirect gateway description, §4.1 example D), and 6 imprecise
  // "may be zero" variants discovered through unit testing.
  static const std::vector<Rewrite> kRewrites = {
      // ---- more than one logical form -----------------------------------
      {"The address of the source in an echo message will be the "
       "destination of the echo reply message.",
       "The destination address of the echo reply message is the source "
       "address of the echo message.",
       RewriteCategory::kMoreThanOneLf},
      {"To form an echo reply message, the source and destination "
       "addresses are simply reversed, the type code changed to 0, and "
       "the checksum recomputed.",
       "In the echo reply message, the source and destination addresses "
       "are simply reversed and the type is changed to 0 and the checksum "
       "is recomputed.",
       RewriteCategory::kMoreThanOneLf},
      {"To form a timestamp reply message, the source and destination "
       "addresses are simply reversed, the type code changed to 14, and "
       "the checksum recomputed.",
       "In the timestamp reply message, the source and destination "
       "addresses are simply reversed and the type is changed to 14 and "
       "the checksum is recomputed.",
       RewriteCategory::kMoreThanOneLf},
      {"To form a information reply message, the source and destination "
       "addresses are simply reversed, the type code changed to 16, and "
       "the checksum recomputed.",
       "In the information reply message, the source and destination "
       "addresses are simply reversed and the type is changed to 16 and "
       "the checksum is recomputed.",
       RewriteCategory::kMoreThanOneLf},
      // ---- zero logical forms --------------------------------------------
      {"Address of the gateway to which traffic for the network specified "
       "in the internet destination network field of the original "
       "datagram's data should be sent.",
       "The gateway internet address is the better gateway.",
       RewriteCategory::kZeroLf},
      // ---- imprecise sentences (under-specified sender/receiver) ---------
      {"If code = 0, an identifier to aid in matching echos and replies, "
       "may be zero.",
       "If code = 0, the sender may set the identifier to zero.",
       RewriteCategory::kImprecise},
      {"If code = 0, a sequence number to aid in matching echos and "
       "replies, may be zero.",
       "If code = 0, the sender may set the sequence number to zero.",
       RewriteCategory::kImprecise},
      {"If code = 0, an identifier to aid in matching timestamp and "
       "replies, may be zero.",
       "If code = 0, the sender may set the identifier to zero.",
       RewriteCategory::kImprecise},
      {"If code = 0, a sequence number to aid in matching timestamp and "
       "replies, may be zero.",
       "If code = 0, the sender may set the sequence number to zero.",
       RewriteCategory::kImprecise},
      {"If code = 0, an identifier to aid in matching request and "
       "replies, may be zero.",
       "If code = 0, the sender may set the identifier to zero.",
       RewriteCategory::kImprecise},
      {"If code = 0, a sequence number to aid in matching request and "
       "replies, may be zero.",
       "If code = 0, the sender may set the sequence number to zero.",
       RewriteCategory::kImprecise},
  };
  return kRewrites;
}

std::string rfc792_revised() {
  // Apply each rewrite to the raw text. Originals in the text are
  // hard-wrapped, so matching happens on whitespace-normalized copies of
  // each description block; to keep this simple and robust we normalize
  // the entire document to single spaces within paragraphs first... but
  // the pre-processor re-joins wrapped lines anyway, so it is sufficient
  // to do sentence-level replacement on the joined form: re-wrap is not
  // needed. We therefore splice on the raw text using a whitespace-
  // insensitive search.
  std::string text = rfc792_original();
  for (const auto& rewrite : rfc792_rewrites()) {
    // Build a whitespace-flexible needle: match the original sentence
    // with any run of whitespace where it has spaces.
    const auto words = util::split(rewrite.original, " ");
    // Scan the text for the word sequence.
    std::size_t search_from = 0;
    while (true) {
      const std::size_t start = text.find(words.front(), search_from);
      if (start == std::string::npos) break;
      std::size_t pos = start + words.front().size();
      bool matched = true;
      for (std::size_t w = 1; w < words.size(); ++w) {
        // Skip whitespace (including newlines + indentation).
        std::size_t ws = pos;
        while (ws < text.size() &&
               (text[ws] == ' ' || text[ws] == '\n' || text[ws] == '\t')) {
          ++ws;
        }
        if (ws == pos || text.compare(ws, words[w].size(), words[w]) != 0) {
          matched = false;
          break;
        }
        pos = ws + words[w].size();
      }
      if (matched) {
        text = text.substr(0, start) + rewrite.replacement + text.substr(pos);
        search_from = start + rewrite.replacement.size();
      } else {
        search_from = start + 1;
      }
    }
  }
  return text;
}

const std::vector<std::string>& icmp_non_actionable_annotations() {
  // Human annotations accumulated over earlier SAGE iterations (§5.2):
  // advisory prose, cross-protocol remarks, and future intent. These are
  // matched against the pre-processor's joined sentences.
  static const std::vector<std::string> kAnnotations = {
      "This checksum may be replaced in the future.",
      "If a higher level protocol uses port numbers, they are assumed to "
      "be in the first 64 data bits of the original datagram's data.",
      "This data is used by the host to match the message to the "
      "appropriate process.",
      "If the gateway cannot deliver the datagram because the network "
      "specified in the destination field is unreachable, the gateway may "
      "send a destination unreachable message to the source host.",
      "In some networks the gateway may also be able to determine if the "
      "destination host is unreachable.",
      "If the gateway processing a datagram finds the time to live field "
      "is zero it must discard the datagram.",
      "The gateway may also notify the source host via the time exceeded "
      "message.",
      "If the gateway or host processing a datagram finds a problem with "
      "the header parameters such that it cannot complete processing the "
      "datagram it must discard the datagram.",
      "One potential source of such a problem is with incorrect arguments "
      "in an option.",
      "A gateway may discard internet datagrams if it does not have the "
      "buffer space needed to queue the datagrams for output to the next "
      "network on the route to the destination network.",
      "The gateway may send a source quench message for every message "
      "that it discards.",
      "The gateway sends a redirect message to a host in the following "
      "situation.",
      "The redirect message advises the host to send its traffic for the "
      "network directly to the gateway as a shorter path to the "
      "destination.",
      "The timestamp is the number of milliseconds since midnight.",
      "This message may be used by a host to find out the number of the "
      "network it is on.",
  };
  return kAnnotations;
}

}  // namespace sage::corpus

// RFC 792 (ICMP) corpus — the paper's primary evaluation target.
//
// `rfc792_original()` reconstructs the eight message sections of RFC 792
// (public domain), including the sentences the paper found problematic:
// the 4 multi-LF instances (the "Addresses" sentence of Table 7 and the
// three "To form a ... reply message" variants), the 1 zero-LF sentence
// (the Redirect gateway-address description, example D of §4.1), and the
// 6 imprecise "may be zero" variants discovered by unit testing.
//
// `rfc792_rewrites()` is the Table 6 data: each problematic sentence with
// its category and the clarified replacement a spec author produced in
// SAGE's feedback loop. `rfc792_revised()` applies them, yielding the
// text used for the end-to-end experiments (§6.2).
#pragma once

#include <string>
#include <vector>

namespace sage::corpus {

/// Category labels of Table 6.
enum class RewriteCategory {
  kMoreThanOneLf,  // "More than 1 LF"
  kZeroLf,         // "0 LF"
  kImprecise,      // "Imprecise sentence" (found by unit testing)
};

std::string rewrite_category_name(RewriteCategory category);

struct Rewrite {
  std::string original;     // exact sentence text in rfc792_original()
  std::string replacement;  // clarified text
  RewriteCategory category;
};

/// The reconstructed original specification text.
const std::string& rfc792_original();

/// The Table 6 rewrite set (4 multi-LF + 1 zero-LF + 6 imprecise).
const std::vector<Rewrite>& rfc792_rewrites();

/// Original text with all rewrites applied.
std::string rfc792_revised();

/// Sentences a human annotated as non-actionable in earlier iterations
/// (§5.2: advisory prose, cross-protocol remarks, future intent).
const std::vector<std::string>& icmp_non_actionable_annotations();

}  // namespace sage::corpus

#include "corpus/rfc793.hpp"

namespace sage::corpus {

const std::vector<TcpProbeSentence>& tcp_probe_sentences() {
  static const std::vector<TcpProbeSentence> kSentences = {
      // --- state management in the BFD §6.8.6 idiom: expected to parse
      // with only lexicon/static-context additions (the §7 claim).
      {"If the SYN bit is nonzero and the connection state is Listen, the "
       "connection state is Syn-Received.",
       "state management", true},
      {"If the ACK bit is zero, the segment MUST be discarded.",
       "state management", true},
      {"If the RST bit is nonzero, the connection state is Closed.",
       "state management", true},
      {"If the FIN bit is nonzero and the connection state is Established, "
       "the connection state is Close-Wait.",
       "state management", true},
      {"If the connection state is Closed, the segment MUST be discarded.",
       "state management", true},
      {"The checksum is the 16-bit one's complement of the one's "
       "complement sum of the segment.",
       "packet format", true},
      // --- future-work components: NOT expected to parse today.
      {"The state diagram in figure 6 illustrates only state changes.",
       "state machine diagram", false},
      {"If the connection was initiated with a passive OPEN, then return "
       "this connection to the LISTEN state.",
       "cross-reference", false},
      {"The procedure of establishing a connection utilizes the "
       "synchronize flag and involves an exchange of three messages.",
       "communication pattern", false},
      {"The activity of the TCP can be characterized as responding to "
       "events from two directions.",
       "architecture", false},
  };
  return kSentences;
}

const std::vector<TcpProbeSentence>& bgp_probe_sentences() {
  static const std::vector<TcpProbeSentence> kSentences = {
      // --- BGP FSM sentences in the state-management idiom: in reach.
      {"If the Hold Timer expires, the connection state is Idle.",
       "state management", true},
      {"If the connection state is Established and the Hold Timer expires, "
       "the connection state is Idle.",
       "state management", true},
      {"If the Version field is zero, the packet MUST be discarded.",
       "state management", true},
      {"If the Marker field is zero and the connection state is "
       "Established, the packet MUST be discarded.",
       "state management", true},
      // --- out of reach today.
      {"A BGP speaker advertises to its peers only those routes that it "
       "uses itself.",
       "communication pattern", false},
      {"The information exchanged by BGP supports only the destination "
       "based forwarding paradigm.",
       "architecture", false},
      {"This document uses the term Adj-RIB-In to describe the routes "
       "learned from inbound UPDATE messages.",
       "cross-reference", false},
  };
  return kSentences;
}

}  // namespace sage::corpus

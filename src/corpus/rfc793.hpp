// RFC 793 (TCP) probe corpus — the §7 extension experiment.
//
// The paper closes with: "two significant protocols may be within reach
// with the addition of complex state management and state machine
// diagrams: TCP and BGP". This probe quantifies that claim against the
// present implementation: a sample of TCP state-management sentences
// (phrased in RFC 793's idiom) is pushed through the unchanged pipeline,
// and the bench reports which parse with zero additional machinery,
// which need only lexicon/context additions, and which require the
// future-work components (state machine diagrams, cross-references).
#pragma once

#include <string>
#include <vector>

namespace sage::corpus {

/// One probe sentence with the component it exercises and whether the
/// current pipeline is expected to handle it.
struct TcpProbeSentence {
  std::string text;
  std::string component;   // "state management", "comm. pattern", ...
  bool expected_to_parse;  // with the tcp context extensions applied
};

const std::vector<TcpProbeSentence>& tcp_probe_sentences();

/// The matching BGP (RFC 4271) probe: FSM/state sentences in the same
/// idiom, plus the communication-pattern and architecture prose that
/// remains out of reach.
const std::vector<TcpProbeSentence>& bgp_probe_sentences();

}  // namespace sage::corpus

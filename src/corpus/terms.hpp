// The domain term dictionary (§3).
//
// The paper: "SAGE creates a term dictionary of domain-specific nouns and
// noun-phrases using the index of a standard networking textbook ... a
// dictionary of about 400 terms." The textbook index is reproduced here
// as an embedded list covering the same ground (protocol names, header
// fields, network elements, operations) plus the corpus-specific noun
// phrases the evaluated RFC sections use.
#pragma once

#include <string>
#include <vector>

#include "nlp/term_dictionary.hpp"

namespace sage::corpus {

/// All dictionary terms (~400).
const std::vector<std::string>& dictionary_terms();

/// A ready-to-use TermDictionary.
nlp::TermDictionary make_term_dictionary();

}  // namespace sage::corpus

#include "disambig/checks.hpp"

#include <algorithm>

namespace sage::disambig {

namespace {

using lf::LfNode;

// ---------------------------------------------------------------------------
// Small tree-query helpers shared by the check definitions.
// ---------------------------------------------------------------------------

/// Apply `fn` to every node; true if any node satisfies it.
bool any_node(const LfNode& root, const std::function<bool(const LfNode&)>& fn) {
  if (fn(root)) return true;
  for (const auto& a : root.args) {
    if (any_node(a, fn)) return true;
  }
  return false;
}

bool has_label(const LfNode& n, std::string_view label) {
  return n.kind == LfNode::Kind::kPredicate && n.label == label;
}

bool label_in(const LfNode& n, std::initializer_list<std::string_view> labels) {
  if (n.kind != LfNode::Kind::kPredicate) return false;
  return std::any_of(labels.begin(), labels.end(),
                     [&n](std::string_view l) { return n.label == l; });
}

/// Nominal: something that denotes a value or field — a string leaf, a
/// number, or an @Of/@In/@And/@Compute combination of nominals.
bool is_nominal(const LfNode& n) {
  switch (n.kind) {
    case LfNode::Kind::kString:
    case LfNode::Kind::kNumber:
      return true;
    case LfNode::Kind::kPredicate:
      if (n.label == lf::pred::kOf || n.label == lf::pred::kIn ||
          n.label == lf::pred::kAnd || n.label == lf::pred::kOr) {
        return std::all_of(n.args.begin(), n.args.end(), is_nominal);
      }
      if (n.label == lf::pred::kCompute || n.label == lf::pred::kAction) {
        // "the one's complement sum of the message" denotes a value.
        return true;
      }
      return false;
  }
  return false;
}

/// Test: a boolean condition — @Is/@Nonzero/@Greater/@Less over values,
/// or boolean combinations thereof.
bool is_test(const LfNode& n) {
  // @Select appears in tests via "the session is (not) found".
  if (label_in(n, {lf::pred::kIs, lf::pred::kNonzero, lf::pred::kGreater,
                   lf::pred::kLess, lf::pred::kSelect})) {
    return true;
  }
  if (label_in(n, {lf::pred::kAnd, lf::pred::kOr, lf::pred::kNot})) {
    return std::all_of(n.args.begin(), n.args.end(), is_test);
  }
  return false;
}

/// Action: something executable — assignment, computation, message
/// operation, possibly under a modal.
bool is_actionish(const LfNode& n) {
  if (label_in(n, {lf::pred::kIs, lf::pred::kAction, lf::pred::kCompute,
                   lf::pred::kSend, lf::pred::kDiscard, lf::pred::kSelect,
                   lf::pred::kCease, lf::pred::kMay, lf::pred::kMust,
                   lf::pred::kIf, lf::pred::kAdvBefore, lf::pred::kCase,
                   lf::pred::kAdvComment, lf::pred::kWhen})) {
    return true;
  }
  if (label_in(n, {lf::pred::kAnd, lf::pred::kOr})) {
    return std::all_of(n.args.begin(), n.args.end(), is_actionish);
  }
  return false;
}

/// Clause: a sentence-level meaning (test or action).
bool is_clause(const LfNode& n) { return is_test(n) || is_actionish(n); }

Check make(CheckFamily family, std::string name, std::string description,
           std::string source, std::function<bool(const LfNode&)> violates) {
  Check c;
  c.family = family;
  c.name = std::move(name);
  c.description = std::move(description);
  c.source = std::move(source);
  c.violates = std::move(violates);
  return c;
}

/// Shorthand builders for the three per-LF families.
Check type_check(std::string name, std::string description,
                 std::function<bool(const LfNode&)> violates,
                 std::string source = "icmp") {
  return make(CheckFamily::kType, "type:" + name, std::move(description),
              std::move(source), std::move(violates));
}
Check arg_check(std::string name, std::string description,
                std::function<bool(const LfNode&)> violates,
                std::string source = "icmp") {
  return make(CheckFamily::kArgumentOrdering, "argorder:" + name,
              std::move(description), std::move(source), std::move(violates));
}
Check pred_check(std::string name, std::string description,
                 std::function<bool(const LfNode&)> violates,
                 std::string source = "icmp") {
  return make(CheckFamily::kPredicateOrdering, "predorder:" + name,
              std::move(description), std::move(source), std::move(violates));
}

}  // namespace

std::string check_family_name(CheckFamily family) {
  switch (family) {
    case CheckFamily::kType: return "Type";
    case CheckFamily::kArgumentOrdering: return "ArgOrder";
    case CheckFamily::kPredicateOrdering: return "PredOrder";
    case CheckFamily::kDistributivity: return "Distrib";
    case CheckFamily::kAssociativity: return "Assoc";
  }
  return "?";
}

const std::vector<std::string>& known_function_names() {
  // Functions the static framework (src/runtime) provides; the paper's
  // example LF1 (Figure 2) is rejected precisely because the second
  // argument of a compute action must be a function name.
  static const std::vector<std::string> kNames = {
      "compute",
      "compute_checksum",
      "ones_complement",
      "ones_complement_sum",
      "16-bit-ones-complement",
      "reverse",
      "reverse_addresses",
      "recompute",
      "recompute_checksum",
      "send",
      "discard",
      "select_session",
      "cease_transmission",
      "timeout",
      "transmit",
      "copy",
      "match",
      "reply",
      // Verbs that parse cleanly but have no framework implementation;
      // sentences built on them are exactly the ones the iterative
      // non-actionable discovery loop tags @AdvComment (§5.2).
      "form",
      "detect",
      "aid",
      "use",
      "assume",
  };
  return kNames;
}

std::vector<Check> icmp_checks() {
  std::vector<Check> checks;

  // ---- 32 type checks (allowlist) ---------------------------------------
  checks.push_back(type_check(
      "is-arity", "@Is takes exactly two arguments",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIs) && n.args.size() != 2;
        });
      }));
  checks.push_back(type_check(
      "is-lhs-not-constant",
      "assignments cannot have numeric constants on the left-hand side",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIs) && !n.args.empty() &&
                 n.args[0].is_number();
        });
      }));
  checks.push_back(type_check(
      "is-lhs-not-clause", "the target of an assignment is a field, not a clause",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIs) && !n.args.empty() &&
                 label_in(n.args[0],
                          {lf::pred::kIf, lf::pred::kMay, lf::pred::kMust,
                           lf::pred::kSend, lf::pred::kDiscard});
        });
      }));
  checks.push_back(type_check(
      "is-rhs-not-conditional", "the value assigned cannot be a conditional",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIs) && n.args.size() == 2 &&
                 has_label(n.args[1], lf::pred::kIf);
        });
      }));
  checks.push_back(type_check(
      "action-name-is-string", "an action's first argument names a function",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kAction) &&
                 (n.args.empty() || !n.args[0].is_string());
        });
      }));
  checks.push_back(type_check(
      "action-name-not-number",
      "an action's function argument must not be a numeric constant",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kAction) && !n.args.empty() &&
                 n.args[0].is_number();
        });
      }));
  checks.push_back(type_check(
      "action-known-function",
      "an action's function name must be provided by the static framework",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kAction) || n.args.empty() ||
              !n.args[0].is_string()) {
            return false;  // covered by the two checks above
          }
          const auto& names = known_function_names();
          return std::find(names.begin(), names.end(), n.args[0].label) ==
                 names.end();
        });
      }));
  checks.push_back(type_check(
      "compute-arity", "@Compute takes exactly one argument",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kCompute) && n.args.size() != 1;
        });
      }));
  checks.push_back(type_check(
      "compute-target-not-number",
      "the target of a computation is a field or expression, not a constant",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kCompute) && !n.args.empty() &&
                 n.args[0].is_number();
        });
      }));
  checks.push_back(type_check(
      "if-arity", "conditionals must be well-formed: @If takes two arguments",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIf) && n.args.size() != 2;
        });
      }));
  checks.push_back(type_check(
      "if-condition-not-bare-noun", "a condition cannot be a bare noun",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIf) && !n.args.empty() &&
                 (n.args[0].is_string() || n.args[0].is_number());
        });
      }));
  checks.push_back(type_check(
      "if-condition-boolean", "a condition must be a boolean test",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIf) && n.args.size() == 2 &&
                 !is_test(n.args[0]) && !is_actionish(n.args[0]);
        });
      }));
  checks.push_back(type_check(
      "if-body-actionable",
      "the body of a conditional must be actionable (an assignment or an "
      "action), not a bare test — that's the swapped parse",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIf) && n.args.size() == 2 &&
                 !is_actionish(n.args[1]);
        });
      }));
  checks.push_back(type_check(
      "of-arity", "@Of takes exactly two arguments",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kOf) && n.args.size() != 2;
        });
      }));
  checks.push_back(type_check(
      "of-args-nominal", "@Of relates nominals (fields, values, messages)",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kOf)) return false;
          return std::any_of(n.args.begin(), n.args.end(),
                             [](const LfNode& a) {
                               return label_in(a, {lf::pred::kIf, lf::pred::kMay,
                                                   lf::pred::kMust});
                             });
        });
      }));
  checks.push_back(type_check(
      "and-arity", "@And takes exactly two arguments",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kAnd) && n.args.size() != 2;
        });
      }));
  checks.push_back(type_check(
      "and-homogeneous",
      "conjunction cannot mix a bare noun with a full clause",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kAnd) || n.args.size() != 2) return false;
          const bool l_nominal = is_nominal(n.args[0]);
          const bool r_nominal = is_nominal(n.args[1]);
          const bool l_clause = is_clause(n.args[0]);
          const bool r_clause = is_clause(n.args[1]);
          if ((l_nominal && !r_nominal && r_clause && !l_clause) ||
              (r_nominal && !l_nominal && l_clause && !r_clause)) {
            return true;
          }
          // A bare numeric literal conjoined with a field name is a
          // comma mis-parse ("..., 0, an identifier ..."), not a value.
          if ((n.args[0].is_number() && n.args[1].is_string()) ||
              (n.args[0].is_string() && n.args[1].is_number())) {
            return true;
          }
          // Modality must distribute uniformly over a coordination:
          // @And(@Action(...), @May(...)) is a mis-scoped parse.
          const auto modal_root = [](const LfNode& m) {
            return label_in(m, {lf::pred::kMay, lf::pred::kMust});
          };
          return l_clause && r_clause &&
                 modal_root(n.args[0]) != modal_root(n.args[1]);
        });
      }));
  checks.push_back(type_check(
      "case-value-numeric",
      "the value-list idiom \"0 = name\" pairs a numeric value with a "
      "name; any other shape is a mis-parse of '='",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kCase) &&
                 (n.args.size() != 2 || !n.args[0].is_number() ||
                  n.args[1].is_number());
        });
      }));
  checks.push_back(type_check(
      "may-scope", "@May scopes a clause, not a literal",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kMay) &&
                 (n.args.size() != 1 || !is_clause(n.args[0]));
        });
      }));
  checks.push_back(type_check(
      "must-scope", "@Must scopes a clause, not a literal",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kMust) &&
                 (n.args.size() != 1 || !is_clause(n.args[0]));
        });
      }));
  checks.push_back(type_check(
      "not-scope", "@Not negates a boolean test",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kNot) &&
                 (n.args.size() != 1 ||
                  (!is_test(n.args[0]) && !is_nominal(n.args[0])));
        });
      }));
  checks.push_back(type_check(
      "send-arg-nominal", "@Send transmits a message, not a clause",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kSend) && !n.args.empty() &&
                 !is_nominal(n.args[0]);
        });
      }));
  checks.push_back(type_check(
      "discard-arg-nominal", "@Discard drops a packet/message",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kDiscard) && !n.args.empty() &&
                 !is_nominal(n.args[0]);
        });
      }));
  checks.push_back(type_check(
      "select-arg-nominal", "@Select picks a session/entity",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kSelect) && !n.args.empty() &&
                 !is_nominal(n.args[0]);
        });
      }));
  checks.push_back(type_check(
      "cease-arg-nominal", "@Cease stops a named activity",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kCease) && !n.args.empty() &&
                 !is_nominal(n.args[0]);
        });
      }));
  checks.push_back(type_check(
      "greater-args-values", "@Greater compares values",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kGreater) &&
                 (n.args.size() != 2 || !is_nominal(n.args[0]) ||
                  !is_nominal(n.args[1]));
        });
      }));
  checks.push_back(type_check(
      "less-args-values", "@Less compares values",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kLess) &&
                 (n.args.size() != 2 || !is_nominal(n.args[0]) ||
                  !is_nominal(n.args[1]));
        });
      }));
  checks.push_back(type_check(
      "nonzero-arg-field", "@Nonzero tests a field, not a constant",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kNonzero) &&
                 (n.args.size() != 1 || n.args[0].is_number());
        });
      }));
  checks.push_back(type_check(
      "advbefore-arity", "@AdvBefore pairs advice with a main clause",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kAdvBefore) && n.args.size() != 2;
        });
      }));
  checks.push_back(type_check(
      "advbefore-advice-action",
      "the advice of @AdvBefore is an action or computation context",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kAdvBefore) && !n.args.empty() &&
                 (n.args[0].is_number() || n.args[0].is_string());
        });
      }));
  checks.push_back(type_check(
      "in-args-nominal", "@In relates nominals",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kIn)) return false;
          return std::any_of(
              n.args.begin(), n.args.end(), [](const LfNode& a) {
                return label_in(a, {lf::pred::kIf, lf::pred::kMay,
                                    lf::pred::kMust, lf::pred::kSend});
              });
        });
      }));
  checks.push_back(type_check(
      "root-is-clause", "a sentence's logical form must be a clause",
      [](const LfNode& root) { return !is_clause(root); }));

  // ---- 7 argument-ordering checks (blocklist) ----------------------------
  checks.push_back(arg_check(
      "if-condition-first-not-modal",
      "in \"If A, B\" the condition comes first; a modal clause in "
      "condition position is the swapped parse",
      [](const LfNode& root) {
        // Modal at the top of the condition, possibly inside a
        // conjunction ("If (X may be zero and Y may be zero), code = 0").
        const std::function<bool(const LfNode&)> modalish =
            [&modalish](const LfNode& n) {
              if (label_in(n, {lf::pred::kMay, lf::pred::kMust})) return true;
              if (label_in(n, {lf::pred::kAnd, lf::pred::kOr})) {
                return std::any_of(n.args.begin(), n.args.end(), modalish);
              }
              return false;
            };
        return any_node(root, [&modalish](const LfNode& n) {
          return has_label(n, lf::pred::kIf) && n.args.size() == 2 &&
                 modalish(n.args[0]) && is_test(n.args[1]);
        });
      }));
  checks.push_back(arg_check(
      "if-condition-first-not-action",
      "an imperative action in condition position is the swapped parse",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kIf) && n.args.size() == 2 &&
                 label_in(n.args[0],
                          {lf::pred::kAction, lf::pred::kSend,
                           lf::pred::kDiscard, lf::pred::kCease,
                           lf::pred::kSelect, lf::pred::kCompute}) &&
                 is_test(n.args[1]);
        });
      }));
  checks.push_back(arg_check(
      "of-head-not-constant", "\"A of B\": the head A is a field, not a number",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kOf) && !n.args.empty() &&
                 n.args[0].is_number();
        });
      }));
  checks.push_back(arg_check(
      "greater-field-first", "\"A is greater than N\": the field comes first",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kGreater) && n.args.size() == 2 &&
                 n.args[0].is_number() && !n.args[1].is_number();
        });
      }));
  checks.push_back(arg_check(
      "less-field-first", "\"A is less than N\": the field comes first",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kLess) && n.args.size() == 2 &&
                 n.args[0].is_number() && !n.args[1].is_number();
        });
      }));
  checks.push_back(arg_check(
      "advbefore-advice-first",
      "@AdvBefore(advice, main): the computation context is the advice",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kAdvBefore) && n.args.size() == 2 &&
                 has_label(n.args[1], lf::pred::kAction) &&
                 !has_label(n.args[0], lf::pred::kAction) &&
                 is_clause(n.args[0]);
        });
      }));
  checks.push_back(arg_check(
      "send-message-first", "@Send(message, destination)",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          return has_label(n, lf::pred::kSend) && n.args.size() == 2 &&
                 n.args[0].is_number();
        });
      }));

  // ---- 4 predicate-ordering checks (blocklist) ----------------------------
  checks.push_back(pred_check(
      "no-is-under-of",
      "\"A of (B is C)\" is the wrong grouping of \"A of B is C\"",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kOf)) return false;
          return std::any_of(n.args.begin(), n.args.end(),
                             [](const LfNode& a) {
                               return has_label(a, lf::pred::kIs);
                             });
        });
      }));
  checks.push_back(pred_check(
      "no-if-under-is", "a conditional cannot be nested inside an assignment",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kIs)) return false;
          return std::any_of(n.args.begin(), n.args.end(),
                             [](const LfNode& a) {
                               return has_label(a, lf::pred::kIf);
                             });
        });
      }));
  checks.push_back(pred_check(
      "no-modal-under-is",
      "modality scopes the clause: @May/@Must cannot sit under @Is",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kIs)) return false;
          return std::any_of(n.args.begin(), n.args.end(),
                             [](const LfNode& a) {
                               return label_in(a, {lf::pred::kMay,
                                                   lf::pred::kMust});
                             });
        });
      }));
  checks.push_back(pred_check(
      "when-scopes-sentence",
      "a fronted \"In the X message,\" adjunct scopes the whole sentence: "
      "@When cannot be nested under a conjunction or conditional",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!label_in(n, {lf::pred::kAnd, lf::pred::kOr, lf::pred::kIf})) {
            return false;
          }
          return std::any_of(n.args.begin(), n.args.end(),
                             [](const LfNode& a) {
                               return has_label(a, lf::pred::kWhen);
                             });
        });
      }));

  return checks;
}

std::vector<Check> igmp_additional_checks() {
  std::vector<Check> checks;
  // §6.3: parsing IGMP's Appendix I required one more predicate-ordering
  // check beyond the ICMP set.
  checks.push_back(pred_check(
      "no-send-under-is", "a transmission cannot be the value of an assignment",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kIs)) return false;
          return std::any_of(n.args.begin(), n.args.end(),
                             [](const LfNode& a) {
                               return has_label(a, lf::pred::kSend);
                             });
        });
      },
      "igmp"));
  return checks;
}

std::vector<Check> ntp_additional_checks() {
  std::vector<Check> checks;
  // §6.3: NTP's appendices required one further predicate-ordering check.
  checks.push_back(pred_check(
      "no-if-under-action", "a conditional cannot be an action's parameter",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!label_in(n, {lf::pred::kAction, lf::pred::kCompute})) {
            return false;
          }
          return std::any_of(n.args.begin(), n.args.end(),
                             [](const LfNode& a) {
                               return has_label(a, lf::pred::kIf);
                             });
        });
      },
      "ntp"));
  return checks;
}

namespace {

/// Is this string a packet-borne field name (read-only at the receiver)?
bool is_packet_field_name(const LfNode& n) {
  if (!n.is_string()) return false;
  const std::string& s = n.label;
  const auto ends = [&s](std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  // Timers behave like packet fields here: text tests their expiry, the
  // system owns their value.
  return ends(" field") || ends(" bit") || ends(" timer");
}

/// Collect the subject leaves of @Is nodes in a subtree.
void collect_is_subjects(const LfNode& n, std::vector<std::string>& out) {
  if (n.is_predicate(lf::pred::kIs) && !n.args.empty()) {
    const std::function<void(const LfNode&)> leaves = [&](const LfNode& m) {
      if (m.is_string()) out.push_back(m.label);
      for (const auto& a : m.args) leaves(a);
    };
    leaves(n.args[0]);
  }
  for (const auto& a : n.args) collect_is_subjects(a, out);
}

}  // namespace

std::vector<Check> bfd_additional_checks() {
  std::vector<Check> checks;
  // §6.4: BFD's state-management sentences mix read-only packet fields
  // ("the State field") with writable state variables (bfd.*); these
  // checks encode that distinction, which is what disambiguates the
  // state-machine sentences ("If the State field is Down and
  // bfd.SessionState is Down, the bfd.SessionState is Init").
  checks.push_back(type_check(
      "packet-fields-read-only",
      "a conditional's body cannot assign to a packet-borne field "
      "(\"... field\" / \"... bit\" names are read-only at the receiver)",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!has_label(n, lf::pred::kIf) || n.args.size() != 2) return false;
          return any_node(n.args[1], [](const LfNode& b) {
            return has_label(b, lf::pred::kIs) && !b.args.empty() &&
                   is_packet_field_name(b.args[0]);
          });
        });
      },
      "bfd"));
  checks.push_back(pred_check(
      "no-duplicated-subject-conjunct",
      "a coordination cannot test or set the same variable in two "
      "conjuncts (duplicated-material mis-parse)",
      [](const LfNode& root) {
        return any_node(root, [](const LfNode& n) {
          if (!label_in(n, {lf::pred::kAnd, lf::pred::kOr})) return false;
          if (n.args.size() != 2) return false;
          std::vector<std::string> left, right;
          collect_is_subjects(n.args[0], left);
          collect_is_subjects(n.args[1], right);
          for (const auto& s : left) {
            if (std::find(right.begin(), right.end(), s) != right.end()) {
              return true;
            }
          }
          return false;
        });
      },
      "bfd"));
  return checks;
}

std::vector<Check> all_checks() {
  std::vector<Check> checks = icmp_checks();
  for (auto& c : igmp_additional_checks()) checks.push_back(std::move(c));
  for (auto& c : ntp_additional_checks()) checks.push_back(std::move(c));
  for (auto& c : bfd_additional_checks()) checks.push_back(std::move(c));
  return checks;
}

}  // namespace sage::disambig

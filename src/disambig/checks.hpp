// The disambiguation checks of §4.2.
//
// SAGE winnows ambiguous logical forms with five check families, applied
// in this order (the order of Figure 5):
//   1. Type checks (allowlist; 32 for ICMP) — badly-typed predicates,
//      e.g. an @Action whose function-name argument is a numeric constant.
//   2. Argument-ordering checks (blocklist; 7) — e.g. @If with the action
//      in condition position.
//   3. Predicate-ordering checks (blocklist; 4 for ICMP, +1 IGMP, +1 NTP)
//      — predicate X may not be nested within predicate Y.
//   4. Distributivity (1 implicit rule) — prefer "(A and B) is C" over
//      "(A is C) and (B is C)" when both parses exist.
//   5. Associativity — collapse logical forms that are isomorphic modulo
//      associative predicates (graph-isomorphism check).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lf/logical_form.hpp"

namespace sage::disambig {

enum class CheckFamily {
  kType,
  kArgumentOrdering,
  kPredicateOrdering,
  kDistributivity,
  kAssociativity,
};

std::string check_family_name(CheckFamily family);

/// One per-LF check. `violates` returns true when the logical form should
/// be REMOVED. Type checks are allowlists (violation = argument outside
/// the allowed kinds); ordering checks are blocklists (violation =
/// matches a forbidden pattern).
struct Check {
  CheckFamily family = CheckFamily::kType;
  std::string name;         // e.g. "type:action-name-is-function"
  std::string description;  // human-readable rule statement
  std::string source;       // protocol that required it: "icmp", "igmp", ...
  std::function<bool(const lf::LfNode&)> violates;
};

/// The ICMP check set (§6.1: 32 type checks, 7 argument-ordering checks,
/// 4 predicate-ordering checks).
std::vector<Check> icmp_checks();

/// Incremental additions for the generality experiments (§6.3):
/// IGMP adds one predicate-ordering check; NTP adds one more.
std::vector<Check> igmp_additional_checks();
std::vector<Check> ntp_additional_checks();

/// BFD state-management additions (§6.4).
std::vector<Check> bfd_additional_checks();

/// Everything: ICMP + IGMP + NTP + BFD.
std::vector<Check> all_checks();

/// Names of functions the static framework provides; the
/// "action names a known function" type check consults this.
const std::vector<std::string>& known_function_names();

}  // namespace sage::disambig

#include "disambig/winnower.hpp"

#include <algorithm>
#include <set>

namespace sage::disambig {

using lf::LfNode;

bool is_distributed_version(const LfNode& distributed, const LfNode& grouped) {
  // distributed: @Conj(P(a1..an), P(b1..bn)) with exactly one differing slot
  // grouped:     P(c1..cn) with the differing slot ck = @Conj(ak, bk).
  if (distributed.kind != LfNode::Kind::kPredicate ||
      grouped.kind != LfNode::Kind::kPredicate) {
    return false;
  }
  const bool conj = distributed.label == lf::pred::kAnd ||
                    distributed.label == lf::pred::kOr;
  if (!conj || distributed.args.size() != 2) return false;
  const LfNode& left = distributed.args[0];
  const LfNode& right = distributed.args[1];
  if (left.kind != LfNode::Kind::kPredicate ||
      right.kind != LfNode::Kind::kPredicate) {
    return false;
  }
  if (left.label != right.label || left.label != grouped.label) return false;
  if (left.args.size() != right.args.size() ||
      left.args.size() != grouped.args.size()) {
    return false;
  }

  // Find the single differing argument slot.
  int differing = -1;
  for (std::size_t i = 0; i < left.args.size(); ++i) {
    if (!(left.args[i] == right.args[i])) {
      if (differing != -1) return false;  // more than one slot differs
      differing = static_cast<int>(i);
    }
  }
  if (differing == -1) return false;  // identical conjuncts

  for (std::size_t i = 0; i < grouped.args.size(); ++i) {
    if (static_cast<int>(i) == differing) {
      const LfNode expected = LfNode::predicate(
          distributed.label,
          {left.args[i], right.args[i]});
      if (!(grouped.args[i] == expected)) return false;
    } else {
      if (!(grouped.args[i] == left.args[i])) return false;
    }
  }
  return true;
}

LfNode undistribute(const LfNode& node) {
  if (node.kind != LfNode::Kind::kPredicate) return node;
  // Normalize children first.
  LfNode out = node;
  for (auto& a : out.args) a = undistribute(a);

  // Fixpoint at this node: repeatedly fold @Conj(P(..a..), P(..b..)).
  bool changed = true;
  while (changed) {
    changed = false;
    const bool conj = out.label == lf::pred::kAnd || out.label == lf::pred::kOr;
    if (!conj || out.args.size() != 2) break;
    const LfNode& left = out.args[0];
    const LfNode& right = out.args[1];
    if (left.kind != LfNode::Kind::kPredicate ||
        right.kind != LfNode::Kind::kPredicate ||
        left.label != right.label || left.args.size() != right.args.size()) {
      break;
    }
    int differing = -1;
    bool foldable = true;
    for (std::size_t i = 0; i < left.args.size(); ++i) {
      if (!(left.args[i] == right.args[i])) {
        if (differing != -1) {
          foldable = false;
          break;
        }
        differing = static_cast<int>(i);
      }
    }
    if (!foldable || differing == -1) break;
    LfNode folded = left;
    folded.args[static_cast<std::size_t>(differing)] =
        undistribute(LfNode::predicate(
            out.label, {left.args[static_cast<std::size_t>(differing)],
                        right.args[static_cast<std::size_t>(differing)]}));
    out = std::move(folded);
    changed = true;
  }
  return out;
}

Winnower::Winnower(std::vector<Check> checks, lf::AlgebraicProperties properties)
    : checks_(std::move(checks)), properties_(std::move(properties)) {}

std::size_t Winnower::count_in_family(CheckFamily family) const {
  return static_cast<std::size_t>(
      std::count_if(checks_.begin(), checks_.end(),
                    [family](const Check& c) { return c.family == family; }));
}

std::vector<LfNode> Winnower::apply_per_lf_family(
    CheckFamily family, std::vector<LfNode> forms,
    std::map<std::string, std::size_t>* removed_by_check) const {
  std::vector<LfNode> out;
  out.reserve(forms.size());
  for (auto& form : forms) {
    bool removed = false;
    for (const Check& check : checks_) {
      if (check.family != family) continue;
      if (check.violates(form)) {
        if (removed_by_check != nullptr) ++(*removed_by_check)[check.name];
        removed = true;
        break;
      }
    }
    if (!removed) out.push_back(std::move(form));
  }
  return out;
}

std::vector<LfNode> Winnower::apply_distributivity(
    std::vector<LfNode> forms,
    std::map<std::string, std::size_t>* removed_by_check) const {
  // "SAGE always selects the non-distributive logical form version":
  // among forms sharing an undistributed normal form, keep the least
  // distributed one (fewest conjunction nodes); drop the others.
  const auto conj_count = [](const LfNode& root) {
    // Explicit-stack walk: logical forms can get deep, and this runs
    // per candidate pair — no allocation-per-level std::function.
    std::size_t n = 0;
    std::vector<const LfNode*> stack = {&root};
    while (!stack.empty()) {
      const LfNode* m = stack.back();
      stack.pop_back();
      if (m->is_predicate(lf::pred::kAnd) || m->is_predicate(lf::pred::kOr)) {
        ++n;
      }
      for (const auto& a : m->args) stack.push_back(&a);
    }
    return n;
  };

  std::map<std::string, std::size_t> best;  // normal form -> index of keeper
  for (std::size_t i = 0; i < forms.size(); ++i) {
    const LfNode normal = undistribute(forms[i]);
    const std::string key = normal.to_string();
    const auto it = best.find(key);
    if (it == best.end()) {
      best[key] = i;
      continue;
    }
    // Prefer the form that *is* the grouped normal form; then the one
    // with fewer conjunction nodes.
    const bool this_normal = normal == forms[i];
    const bool kept_normal = undistribute(forms[it->second]) == forms[it->second];
    if ((this_normal && !kept_normal) ||
        (this_normal == kept_normal &&
         conj_count(forms[i]) < conj_count(forms[it->second]))) {
      best[key] = i;
    }
  }
  std::vector<bool> keep(forms.size(), false);
  for (const auto& [key, idx] : best) keep[idx] = true;

  std::vector<LfNode> out;
  for (std::size_t i = 0; i < forms.size(); ++i) {
    if (keep[i]) {
      out.push_back(std::move(forms[i]));
    } else if (removed_by_check != nullptr) {
      ++(*removed_by_check)["distrib:prefer-grouped"];
    }
  }
  return out;
}

std::vector<LfNode> Winnower::apply_associativity(
    std::vector<LfNode> forms,
    std::map<std::string, std::size_t>* removed_by_check) const {
  // Keep the first representative of every isomorphism class.
  std::set<std::string> seen;
  std::vector<LfNode> out;
  for (auto& form : forms) {
    const std::string key = lf::canonical_encoding(form, properties_);
    if (seen.insert(key).second) {
      out.push_back(std::move(form));
    } else if (removed_by_check != nullptr) {
      ++(*removed_by_check)["assoc:isomorphic"];
    }
  }
  return out;
}

WinnowResult Winnower::winnow(const std::vector<LfNode>& input) const {
  WinnowResult result;
  std::vector<LfNode> forms = input;
  result.stages.push_back({"Base", forms.size()});

  forms = apply_per_lf_family(CheckFamily::kType, std::move(forms),
                              &result.removed_by_check);
  result.stages.push_back({"Type", forms.size()});

  forms = apply_per_lf_family(CheckFamily::kArgumentOrdering, std::move(forms),
                              &result.removed_by_check);
  result.stages.push_back({"ArgOrder", forms.size()});

  forms = apply_per_lf_family(CheckFamily::kPredicateOrdering, std::move(forms),
                              &result.removed_by_check);
  result.stages.push_back({"PredOrder", forms.size()});

  forms = apply_distributivity(std::move(forms), &result.removed_by_check);
  result.stages.push_back({"Distrib", forms.size()});

  forms = apply_associativity(std::move(forms), &result.removed_by_check);
  result.stages.push_back({"Assoc", forms.size()});

  result.survivors = std::move(forms);
  return result;
}

std::vector<LfNode> Winnower::apply_family(CheckFamily family,
                                           std::vector<LfNode> forms) const {
  switch (family) {
    case CheckFamily::kType:
    case CheckFamily::kArgumentOrdering:
    case CheckFamily::kPredicateOrdering:
      return apply_per_lf_family(family, std::move(forms), nullptr);
    case CheckFamily::kDistributivity:
      return apply_distributivity(std::move(forms), nullptr);
    case CheckFamily::kAssociativity:
      return apply_associativity(std::move(forms), nullptr);
  }
  return forms;
}

std::size_t Winnower::removed_by_family_alone(
    CheckFamily family, const std::vector<LfNode>& input) const {
  return input.size() - apply_family(family, input).size();
}

}  // namespace sage::disambig

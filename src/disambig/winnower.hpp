// The winnowing pipeline (§4.2, evaluated in §6.5 / Figures 5 and 6).
//
// Checks run in the paper's order — Type, ArgOrder, PredOrder, Distrib,
// Assoc — recording how many logical forms survive each stage (the Figure
// 5 series) and how many each individual check removes (Figure 6). A
// sentence still carrying more than one logical form after the full
// pipeline is *fundamentally ambiguous*: SAGE keeps all surviving forms
// and asks the author to rewrite the sentence.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "disambig/checks.hpp"
#include "lf/isomorphism.hpp"
#include "lf/logical_form.hpp"

namespace sage::disambig {

/// Survivor count after each pipeline stage, starting with "Base".
struct StageCount {
  std::string stage;
  std::size_t remaining = 0;
};

struct WinnowResult {
  std::vector<lf::LogicalForm> survivors;
  std::vector<StageCount> stages;  // Base, Type, ArgOrder, PredOrder, Distrib, Assoc
  /// check name -> number of logical forms it removed in the full pipeline.
  std::map<std::string, std::size_t> removed_by_check;

  bool unambiguous() const { return survivors.size() == 1; }
  bool ambiguous() const { return survivors.size() > 1; }
};

class Winnower {
 public:
  /// Build with a specific check set (usually icmp_checks() or
  /// all_checks()) and the algebraic properties for the associativity
  /// stage.
  explicit Winnower(std::vector<Check> checks,
                    lf::AlgebraicProperties properties = {});

  /// Run the full ordered pipeline.
  WinnowResult winnow(const std::vector<lf::LogicalForm>& input) const;

  /// Apply only one family to the base set — the Figure 6 experiment
  /// ("for each sentence, we apply only one check on the base set of
  /// logical forms and measure how many LFs the check can reduce").
  std::size_t removed_by_family_alone(CheckFamily family,
                                      const std::vector<lf::LogicalForm>& input) const;

  /// Apply one family and return the survivors (building block for the
  /// check-order ablation bench: any family sequence can be composed).
  std::vector<lf::LogicalForm> apply_family(
      CheckFamily family, std::vector<lf::LogicalForm> forms) const;

  const std::vector<Check>& checks() const { return checks_; }
  std::size_t count_in_family(CheckFamily family) const;

 private:
  std::vector<lf::LogicalForm> apply_per_lf_family(
      CheckFamily family, std::vector<lf::LogicalForm> forms,
      std::map<std::string, std::size_t>* removed_by_check) const;
  std::vector<lf::LogicalForm> apply_distributivity(
      std::vector<lf::LogicalForm> forms,
      std::map<std::string, std::size_t>* removed_by_check) const;
  std::vector<lf::LogicalForm> apply_associativity(
      std::vector<lf::LogicalForm> forms,
      std::map<std::string, std::size_t>* removed_by_check) const;

  std::vector<Check> checks_;
  lf::AlgebraicProperties properties_;
};

/// True if `distributed` is the distributed version of `grouped`:
///   distributed = @Conj(P(..a..), P(..b..))  — differing in one slot —
///   grouped     = P(.. @Conj(a, b) ..).
/// Exposed for tests.
bool is_distributed_version(const lf::LfNode& distributed,
                            const lf::LfNode& grouped);

/// Bottom-up undistribution to a fixpoint: every @Conj(P(..a..), P(..b..))
/// differing in exactly one slot becomes P(.. @Conj(a, b) ..). Two
/// readings of a coordination denote the same statement iff their
/// normal forms are equal; the distributivity check keeps the least
/// distributed representative. Exposed for tests.
lf::LfNode undistribute(const lf::LfNode& node);

}  // namespace sage::disambig

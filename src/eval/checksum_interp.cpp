#include "eval/checksum_interp.hpp"

#include <algorithm>

#include "net/checksum.hpp"
#include "util/bytes.hpp"

namespace sage::eval {

std::string interpretation_description(ChecksumInterpretation interp) {
  switch (interp) {
    case ChecksumInterpretation::kSpecificHeaderSize:
      return "Size of a specific type of ICMP header.";
    case ChecksumInterpretation::kPartialHeader:
      return "Size of a partial ICMP header.";
    case ChecksumInterpretation::kHeaderAndPayload:
      return "Size of the ICMP header and payload.";
    case ChecksumInterpretation::kIpHeaderSize:
      return "Size of the IP header.";
    case ChecksumInterpretation::kHeaderPayloadOptions:
      return "Size of the ICMP header and payload, and any IP options.";
    case ChecksumInterpretation::kIncrementalUpdate:
      return "Incremental update of the checksum field using whichever "
             "checksum range the sender packet chose.";
    case ChecksumInterpretation::kMagicConstant:
      return "Magic constants (e.g. 2 or 8 or 36).";
  }
  return "?";
}

const std::vector<ChecksumInterpretation>& all_interpretations() {
  static const std::vector<ChecksumInterpretation> kAll = {
      ChecksumInterpretation::kSpecificHeaderSize,
      ChecksumInterpretation::kPartialHeader,
      ChecksumInterpretation::kHeaderAndPayload,
      ChecksumInterpretation::kIpHeaderSize,
      ChecksumInterpretation::kHeaderPayloadOptions,
      ChecksumInterpretation::kIncrementalUpdate,
      ChecksumInterpretation::kMagicConstant,
  };
  return kAll;
}

std::uint16_t checksum_with_interpretation(
    ChecksumInterpretation interp, std::span<const std::uint8_t> icmp_bytes,
    std::uint16_t request_checksum, std::uint8_t request_type,
    std::size_t ip_options_len) {
  const auto prefix = [&icmp_bytes](std::size_t n) {
    return icmp_bytes.subspan(0, std::min(n, icmp_bytes.size()));
  };
  switch (interp) {
    case ChecksumInterpretation::kSpecificHeaderSize:
      return net::internet_checksum(prefix(8));
    case ChecksumInterpretation::kPartialHeader:
      return net::internet_checksum(prefix(4));
    case ChecksumInterpretation::kHeaderAndPayload:
      return net::internet_checksum(icmp_bytes);
    case ChecksumInterpretation::kIpHeaderSize:
      return net::internet_checksum(prefix(20));
    case ChecksumInterpretation::kHeaderPayloadOptions: {
      // The student summed past the message into (zero-filled copies of)
      // the IP options area; an odd option length shifts byte parity and
      // corrupts the sum even though the padding is zero.
      std::vector<std::uint8_t> extended(icmp_bytes.begin(), icmp_bytes.end());
      extended.resize(extended.size() + ip_options_len, 0);
      if (ip_options_len % 2 == 1) {
        // Odd-length option area: the student's loop also pulled in one
        // stray length byte, modelled as the option count.
        extended.push_back(static_cast<std::uint8_t>(ip_options_len));
      }
      return net::internet_checksum(extended);
    }
    case ChecksumInterpretation::kIncrementalUpdate: {
      // Only the type byte changed relative to the request; RFC 1624
      // incremental update of the request's checksum. Arithmetically
      // correct whenever the *sender's* checksum covered the right range.
      const std::uint16_t old_word =
          static_cast<std::uint16_t>((request_type << 8) |
                                     (icmp_bytes.size() > 1 ? icmp_bytes[1] : 0));
      const std::uint16_t new_word = util::get_be16(icmp_bytes.subspan(0, 2));
      return net::incremental_checksum_update(request_checksum, old_word,
                                              new_word);
    }
    case ChecksumInterpretation::kMagicConstant:
      return net::internet_checksum(prefix(36));
  }
  return 0;
}

bool interpretation_is_interoperable(ChecksumInterpretation interp) {
  return interp == ChecksumInterpretation::kHeaderAndPayload ||
         interp == ChecksumInterpretation::kIncrementalUpdate;
}

}  // namespace sage::eval

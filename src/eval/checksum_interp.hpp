// The seven student interpretations of the ICMP checksum range (Table 3).
//
// The RFC 792 sentence "The checksum is the 16-bit one's complement of
// the one's complement sum of the ICMP message starting with the ICMP
// Type" never says where the sum *ends* (§2.1); the paper's students
// produced seven distinct readings. Each is implemented here exactly as
// a student would have coded it, so the Table 3 bench can measure which
// interpretations interoperate with the Linux ping model.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sage::eval {

enum class ChecksumInterpretation {
  kSpecificHeaderSize = 1,   // sum over one fixed "typed header" size
  kPartialHeader = 2,        // sum over part of the ICMP header
  kHeaderAndPayload = 3,     // the RFC-correct reading
  kIpHeaderSize = 4,         // sum over an IP-header-sized range
  kHeaderPayloadOptions = 5, // header + payload + (phantom) IP options
  kIncrementalUpdate = 6,    // update the request's checksum incrementally
  kMagicConstant = 7,        // sum over a hard-coded byte count
};

/// Table 3's description for the interpretation.
std::string interpretation_description(ChecksumInterpretation interp);

/// All seven, in table order.
const std::vector<ChecksumInterpretation>& all_interpretations();

/// Compute the reply checksum under `interp`.
///   `icmp_bytes`        the serialized reply with the checksum field zero
///   `request_checksum`  the checksum of the triggering request (for the
///                       incremental-update interpretation)
///   `request_type`      the request's ICMP type (likewise)
///   `ip_options_len`    phantom option bytes interpretation 5 includes
std::uint16_t checksum_with_interpretation(
    ChecksumInterpretation interp, std::span<const std::uint8_t> icmp_bytes,
    std::uint16_t request_checksum, std::uint8_t request_type,
    std::size_t ip_options_len = 0);

/// Does this interpretation yield the RFC-correct checksum for a
/// standard (56-byte payload) echo reply? Only #3 and — by arithmetic
/// accident of the incremental method — #6 do.
bool interpretation_is_interoperable(ChecksumInterpretation interp);

}  // namespace sage::eval

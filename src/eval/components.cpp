#include "eval/components.hpp"

namespace sage::eval {

std::string support_marker(Support support) {
  switch (support) {
    case Support::kFull: return "*";
    case Support::kPartial: return "+";
    case Support::kNone: return " ";
  }
  return " ";
}

const std::vector<std::string>& surveyed_rfcs() {
  // Column order: the protocols the paper evaluates first, then the
  // larger protocols §7 targets as future work.
  static const std::vector<std::string> kRfcs = {
      "ICMP", "IGMP", "UDP", "NTP", "BFD", "TCP", "BGP", "OSPF", "RTP",
  };
  return kRfcs;
}

const std::vector<ComponentRow>& conceptual_components() {
  // Presence flags follow a manual reading of each RFC, as in the paper.
  //                         ICMP  IGMP  UDP   NTP   BFD   TCP   BGP   OSPF  RTP
  static const std::vector<ComponentRow> kRows = {
      {"Packet Format", Support::kFull,
       {true, true, true, true, true, true, true, true, true}},
      {"Interoperation", Support::kFull,
       {true, true, true, true, true, true, true, true, false}},
      {"Pseudo Code", Support::kFull,
       {true, true, true, true, true, true, true, true, true}},
      {"State/Session Mngmt.", Support::kPartial,
       {false, true, false, true, true, true, true, true, true}},
      {"Comm. Patterns", Support::kNone,
       {true, true, false, true, true, true, true, true, true}},
      {"Architecture", Support::kNone,
       {false, false, false, true, true, false, true, true, false}},
  };
  return kRows;
}

const std::vector<ComponentRow>& syntactic_components() {
  //                         ICMP  IGMP  UDP   NTP   BFD   TCP   BGP   OSPF  RTP
  static const std::vector<ComponentRow> kRows = {
      {"Header Diagram", Support::kFull,
       {true, true, true, true, true, true, true, true, true}},
      {"Listing", Support::kFull,
       {true, true, true, true, true, true, true, true, true}},
      {"Table", Support::kNone,
       {true, true, false, false, true, true, true, true, true}},
      {"Algorithm Description", Support::kNone,
       {true, true, false, false, true, true, false, true, true}},
      {"Other Figures", Support::kNone,
       {true, false, false, false, true, true, true, true, false}},
      {"Seq./Comm. Diagram", Support::kNone,
       {true, true, false, false, true, true, false, true, false}},
      {"State Machine Diagram", Support::kNone,
       {false, true, false, false, false, false, false, false, true}},
  };
  return kRows;
}

}  // namespace sage::eval

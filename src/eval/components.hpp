// Protocol-specification component inventory (§7, Tables 9 and 10).
//
// The paper manually inspected nine protocol specifications and
// categorized their conceptual components (what the spec describes) and
// syntactic components (the forms it uses). The inventory is reproduced
// here as data, together with SAGE's support level for each component,
// so the Table 9/10 bench can print the same matrices and the coverage
// summary ("SAGE supports parsing of 3 of the 6 elements").
#pragma once

#include <string>
#include <vector>

namespace sage::eval {

enum class Support { kFull, kPartial, kNone };

std::string support_marker(Support support);  // "*", "+", or " "

/// One component row: name, SAGE support, and which RFCs contain it.
struct ComponentRow {
  std::string name;
  Support sage_support = Support::kNone;
  std::vector<bool> present;  // aligned with surveyed_rfcs()
};

/// The nine surveyed protocol specs, in table column order.
const std::vector<std::string>& surveyed_rfcs();

/// Table 9: conceptual components.
const std::vector<ComponentRow>& conceptual_components();

/// Table 10: syntactic components.
const std::vector<ComponentRow>& syntactic_components();

}  // namespace sage::eval

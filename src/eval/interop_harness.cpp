#include "eval/interop_harness.hpp"

#include "sim/inspector.hpp"
#include "sim/network.hpp"

namespace sage::eval {

sim::PingResult ping_against(sim::IcmpResponder* responder) {
  sim::Network net = sim::make_appendix_a_network();
  net.router()->set_responder(responder);
  sim::PingClient ping;
  return ping.ping(net, "client", net::IpAddr(10, 0, 1, 1));
}

std::vector<std::string> decode_packet(std::span<const std::uint8_t> packet) {
  return sim::PacketInspector().decode(packet);
}

std::vector<std::string> decode_reply(sim::IcmpResponder* responder) {
  const auto result = ping_against(responder);
  if (result.reply.empty()) return {};
  return decode_packet(result.reply);
}

CohortReport run_student_experiment(const std::vector<Student>& cohort) {
  CohortReport report;
  report.total = cohort.size();

  std::map<sim::InteropError, std::size_t> counts;
  for (const auto& student : cohort) {
    StudentResult result;
    result.name = student.name;
    if (!student.responder) {
      result.compiled = false;
      ++report.failed_compile;
      report.results.push_back(std::move(result));
      continue;
    }
    const auto ping = ping_against(student.responder.get());
    result.passed = ping.success;
    result.errors = ping.errors;
    if (ping.success) {
      ++report.passed;
    } else {
      ++report.faulty;
      for (const auto e : ping.errors) ++counts[e];
    }
    report.results.push_back(std::move(result));
  }

  static const sim::InteropError kOrder[] = {
      sim::InteropError::kIpHeader,       sim::InteropError::kIcmpHeader,
      sim::InteropError::kByteOrder,      sim::InteropError::kPayloadContent,
      sim::InteropError::kReplyLength,    sim::InteropError::kChecksumOrDropped,
  };
  for (const auto category : kOrder) {
    Table2Row row;
    row.category = category;
    row.count = counts.count(category) != 0 ? counts[category] : 0;
    row.frequency =
        report.faulty == 0
            ? 0.0
            : static_cast<double>(row.count) / static_cast<double>(report.faulty);
    report.table2.push_back(row);
  }
  return report;
}

}  // namespace sage::eval

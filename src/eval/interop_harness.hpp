// Interop harness (§2.1's methodology): "we used the Linux ping tool to
// send an echo message to their router". Runs the ping model against
// each cohort member's router and aggregates Table 2.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "eval/students.hpp"
#include "sim/ping.hpp"

namespace sage::eval {

/// Result for one implementation.
struct StudentResult {
  std::string name;
  bool compiled = true;
  bool passed = false;
  std::set<sim::InteropError> errors;
};

/// One Table 2 row.
struct Table2Row {
  sim::InteropError category;
  std::size_t count = 0;       // among faulty implementations
  double frequency = 0.0;      // count / faulty
};

struct CohortReport {
  std::vector<StudentResult> results;
  std::size_t total = 0;
  std::size_t passed = 0;       // paper: 24 (61.5%)
  std::size_t failed_compile = 0;  // paper: 1
  std::size_t faulty = 0;          // paper: 14
  std::vector<Table2Row> table2;
};

/// Run the §2.1 experiment: install each implementation in the Appendix A
/// router, ping it from the client, classify failures.
CohortReport run_student_experiment(const std::vector<Student>& cohort);

/// Run the ping interop test against a single responder (used by the
/// Table 3 bench and the under-specification demonstration).
sim::PingResult ping_against(sim::IcmpResponder* responder);

/// Schema-driven decode of a raw captured packet: "layer.field = value"
/// lines through the packet-schema registry (net/schema.hpp). Shared by
/// decode_reply and the fuzz harness's semantic-equality oracle, so a
/// divergence report and an interop diagnosis read identically.
std::vector<std::string> decode_packet(std::span<const std::uint8_t> packet);

/// Decode a responder's ping reply via decode_packet. Empty when no reply
/// arrived. Lets interop failures be diagnosed field-by-field against the
/// same table the generated code executed.
std::vector<std::string> decode_reply(sim::IcmpResponder* responder);

}  // namespace sage::eval

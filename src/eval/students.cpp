#include "eval/students.hpp"

#include "net/checksum.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "util/bytes.hpp"

namespace sage::eval {

std::string fault_name(Fault fault) {
  switch (fault) {
    case Fault::kIpHeaderChecksumStale: return "stale IP header checksum";
    case Fault::kIcmpWrongCode: return "wrong ICMP code in reply";
    case Fault::kByteSwappedIdentifier: return "byte-swapped identifier/sequence";
    case Fault::kCorruptedPayload: return "corrupted echoed payload";
    case Fault::kTruncatedReply: return "truncated reply payload";
    case Fault::kWrongChecksumRange: return "wrong checksum range";
    case Fault::kReceiverZeroesIdentifier:
      return "receiver zeroes identifier (under-specified reading)";
  }
  return "?";
}

FaultyIcmpResponder::FaultyIcmpResponder(std::set<Fault> faults,
                                         ChecksumInterpretation interp)
    : faults_(std::move(faults)), checksum_interp_(interp) {}

std::optional<std::vector<std::uint8_t>> FaultyIcmpResponder::mutate(
    std::optional<std::vector<std::uint8_t>> reply,
    const sim::ResponderContext& ctx) const {
  if (!reply) return reply;
  auto ip = net::Ipv4Header::parse(*reply);
  if (!ip) return reply;
  auto icmp = net::IcmpMessage::parse(
      std::span<const std::uint8_t>(*reply).subspan(ip->header_length()));
  if (!icmp) return reply;

  // Details of the triggering request (for the incremental-checksum and
  // byte-order faults).
  std::uint16_t request_checksum = 0;
  std::uint8_t request_type = 8;
  if (const auto req_ip = net::Ipv4Header::parse(ctx.triggering_packet)) {
    if (const auto req_icmp = net::IcmpMessage::parse(
            ctx.triggering_packet.subspan(req_ip->header_length()))) {
      request_checksum = req_icmp->checksum;
      request_type = static_cast<std::uint8_t>(req_icmp->type);
    }
  }

  if (faults_.count(Fault::kIcmpWrongCode) != 0) {
    icmp->code = 1;
  }
  if (faults_.count(Fault::kByteSwappedIdentifier) != 0) {
    const auto swap16 = [](std::uint16_t v) {
      return static_cast<std::uint16_t>((v >> 8) | (v << 8));
    };
    icmp->set_identifier(swap16(icmp->identifier()));
    icmp->set_sequence_number(swap16(icmp->sequence_number()));
  }
  if (faults_.count(Fault::kReceiverZeroesIdentifier) != 0) {
    icmp->set_identifier(0);
    icmp->set_sequence_number(0);
  }
  if (faults_.count(Fault::kCorruptedPayload) != 0 && !icmp->payload.empty()) {
    // Corrupt an early byte so the bug stays observable even when the
    // same implementation also truncates the reply.
    icmp->payload[icmp->payload.size() > 8 ? 8 : 0] ^= 0xff;
  }
  if (faults_.count(Fault::kTruncatedReply) != 0 && icmp->payload.size() >= 4) {
    icmp->payload.resize(icmp->payload.size() - 4);
  }

  // Serialize the (possibly mutated) message with a correct checksum,
  // then optionally overwrite it with the student's interpretation.
  auto icmp_bytes = icmp->serialize();
  if (faults_.count(Fault::kWrongChecksumRange) != 0) {
    std::vector<std::uint8_t> zeroed = icmp_bytes;
    zeroed[2] = 0;
    zeroed[3] = 0;
    const std::uint16_t ck = checksum_with_interpretation(
        checksum_interp_, zeroed, request_checksum, request_type);
    util::put_be16({icmp_bytes.data() + 2, 2}, ck);
  }

  auto packet = net::build_ipv4_packet(*ip, icmp_bytes);
  if (faults_.count(Fault::kIpHeaderChecksumStale) != 0) {
    packet[10] = 0;  // the student forgot to fill the IP header checksum
    packet[11] = 0;
  }
  return packet;
}

std::optional<std::vector<std::uint8_t>> FaultyIcmpResponder::on_echo_request(
    const sim::ResponderContext& ctx) {
  return mutate(reference_.on_echo_request(ctx), ctx);
}
std::optional<std::vector<std::uint8_t>>
FaultyIcmpResponder::on_timestamp_request(const sim::ResponderContext& ctx) {
  return mutate(reference_.on_timestamp_request(ctx), ctx);
}
std::optional<std::vector<std::uint8_t>>
FaultyIcmpResponder::on_information_request(const sim::ResponderContext& ctx) {
  return mutate(reference_.on_information_request(ctx), ctx);
}
std::optional<std::vector<std::uint8_t>>
FaultyIcmpResponder::on_destination_unreachable(
    const sim::ResponderContext& ctx, std::uint8_t code) {
  return mutate(reference_.on_destination_unreachable(ctx, code), ctx);
}
std::optional<std::vector<std::uint8_t>> FaultyIcmpResponder::on_time_exceeded(
    const sim::ResponderContext& ctx) {
  return mutate(reference_.on_time_exceeded(ctx), ctx);
}
std::optional<std::vector<std::uint8_t>>
FaultyIcmpResponder::on_parameter_problem(const sim::ResponderContext& ctx,
                                          std::uint8_t pointer) {
  return mutate(reference_.on_parameter_problem(ctx, pointer), ctx);
}
std::optional<std::vector<std::uint8_t>> FaultyIcmpResponder::on_source_quench(
    const sim::ResponderContext& ctx) {
  return mutate(reference_.on_source_quench(ctx), ctx);
}
std::optional<std::vector<std::uint8_t>> FaultyIcmpResponder::on_redirect(
    const sim::ResponderContext& ctx, net::IpAddr gateway) {
  return mutate(reference_.on_redirect(ctx, gateway), ctx);
}

std::vector<Student> make_student_cohort() {
  std::vector<Student> cohort;

  // 24 correct implementations (the paper: 24 of 39 passed).
  for (int i = 1; i <= 24; ++i) {
    Student s;
    s.name = "student-ok-" + std::to_string(i);
    s.responder = std::make_unique<sim::ReferenceIcmpResponder>();
    cohort.push_back(std::move(s));
  }

  // One implementation that failed to compile: no responder at all.
  {
    Student s;
    s.name = "student-nocompile";
    cohort.push_back(std::move(s));
  }

  // 14 faulty implementations. Fault combinations chosen so the
  // per-category counts match Table 2: IP header 8, ICMP header 8,
  // byte order 4, payload 6, reply length 4, checksum 5 (of 14).
  using F = Fault;
  const std::vector<std::set<F>> fault_sets = {
      {F::kIpHeaderChecksumStale, F::kIcmpWrongCode},
      {F::kIpHeaderChecksumStale, F::kIcmpWrongCode, F::kWrongChecksumRange},
      {F::kIpHeaderChecksumStale, F::kCorruptedPayload},
      {F::kIpHeaderChecksumStale, F::kByteSwappedIdentifier},
      {F::kIpHeaderChecksumStale, F::kIcmpWrongCode, F::kCorruptedPayload},
      {F::kIpHeaderChecksumStale, F::kTruncatedReply},
      {F::kIpHeaderChecksumStale, F::kWrongChecksumRange},
      {F::kIpHeaderChecksumStale, F::kIcmpWrongCode, F::kByteSwappedIdentifier},
      {F::kIcmpWrongCode, F::kCorruptedPayload},
      {F::kIcmpWrongCode, F::kTruncatedReply},
      {F::kIcmpWrongCode, F::kByteSwappedIdentifier, F::kCorruptedPayload},
      {F::kIcmpWrongCode, F::kWrongChecksumRange, F::kTruncatedReply},
      {F::kCorruptedPayload, F::kWrongChecksumRange, F::kByteSwappedIdentifier},
      {F::kCorruptedPayload, F::kTruncatedReply, F::kWrongChecksumRange},
  };
  // Spread the Table 3 checksum interpretations over the checksum-faulty
  // students (the wrong ones).
  const std::vector<ChecksumInterpretation> interps = {
      ChecksumInterpretation::kSpecificHeaderSize,
      ChecksumInterpretation::kPartialHeader,
      ChecksumInterpretation::kIpHeaderSize,
      ChecksumInterpretation::kMagicConstant,
      ChecksumInterpretation::kSpecificHeaderSize,
  };
  std::size_t interp_index = 0;
  for (std::size_t i = 0; i < fault_sets.size(); ++i) {
    Student s;
    s.name = "student-bug-" + std::to_string(i + 1);
    ChecksumInterpretation interp = ChecksumInterpretation::kSpecificHeaderSize;
    if (fault_sets[i].count(F::kWrongChecksumRange) != 0) {
      interp = interps[interp_index++ % interps.size()];
    }
    s.injected = fault_sets[i];
    s.responder = std::make_unique<FaultyIcmpResponder>(fault_sets[i], interp);
    cohort.push_back(std::move(s));
  }
  return cohort;
}

std::unique_ptr<sim::IcmpResponder> make_underspecified_receiver() {
  return std::make_unique<FaultyIcmpResponder>(
      std::set<Fault>{Fault::kReceiverZeroesIdentifier});
}

}  // namespace sage::eval

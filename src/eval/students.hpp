// The simulated student cohort (§2.1, Tables 2 and 3).
//
// The paper examined ICMP implementations by 39 students: 24 passed the
// Linux-ping interop test, one did not compile, and 14 exhibited six
// (overlapping) categories of bugs. The observational data cannot be
// re-collected, so the cohort is reconstructed: each faulty
// implementation is the reference responder with one or more concrete
// fault injections drawn from the error classes the paper reports, with
// the per-category frequencies of Table 2 preserved by construction.
// Re-running the paper's interop test over this cohort re-derives the
// table — the harness measures, it does not copy, the frequencies.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "eval/checksum_interp.hpp"
#include "sim/ping.hpp"
#include "sim/reference_responder.hpp"
#include "sim/responder.hpp"

namespace sage::eval {

/// Concrete fault injections, one per Table 2 error class.
enum class Fault {
  kIpHeaderChecksumStale,    // IP header related
  kIcmpWrongCode,            // ICMP header related
  kByteSwappedIdentifier,    // network/host byte order conversion
  kCorruptedPayload,         // incorrect ICMP payload content
  kTruncatedReply,           // incorrect echo reply packet length
  kWrongChecksumRange,       // incorrect checksum (Table 3 interpretation)
  kReceiverZeroesIdentifier, // the §6.5 under-specified reading of
                             // "If code = 0, an identifier ... may be zero"
};

std::string fault_name(Fault fault);

/// A responder that produces the reference reply, then applies fault
/// mutations to it.
class FaultyIcmpResponder : public sim::IcmpResponder {
 public:
  explicit FaultyIcmpResponder(
      std::set<Fault> faults,
      ChecksumInterpretation interp = ChecksumInterpretation::kSpecificHeaderSize);

  std::optional<std::vector<std::uint8_t>> on_echo_request(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_timestamp_request(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_information_request(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_destination_unreachable(
      const sim::ResponderContext& ctx, std::uint8_t code) override;
  std::optional<std::vector<std::uint8_t>> on_time_exceeded(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_parameter_problem(
      const sim::ResponderContext& ctx, std::uint8_t pointer) override;
  std::optional<std::vector<std::uint8_t>> on_source_quench(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_redirect(
      const sim::ResponderContext& ctx, net::IpAddr gateway) override;

  const std::set<Fault>& faults() const { return faults_; }

 private:
  std::optional<std::vector<std::uint8_t>> mutate(
      std::optional<std::vector<std::uint8_t>> reply,
      const sim::ResponderContext& ctx) const;

  sim::ReferenceIcmpResponder reference_;
  std::set<Fault> faults_;
  ChecksumInterpretation checksum_interp_;
};

/// One cohort member. `responder` is null for the implementation that
/// failed to compile.
struct Student {
  std::string name;
  std::unique_ptr<sim::IcmpResponder> responder;
  std::set<Fault> injected;  // empty for correct implementations
};

/// The 39-member cohort: 24 correct, 1 non-compiling, 14 faulty with
/// fault combinations that reproduce Table 2's per-category counts
/// (IP header 8, ICMP header 8, byte order 4, payload 6, length 4,
/// checksum 5 — of 14).
std::vector<Student> make_student_cohort();

/// The §6.5 "under-specified behavior" responder: a reasonable but wrong
/// reading of the identifier sentence makes the *receiver* zero the
/// identifier/sequence fields in the reply, breaking Linux ping.
std::unique_ptr<sim::IcmpResponder> make_underspecified_receiver();

}  // namespace sage::eval

#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sage::fuzz {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::optional<CorpusCase> parse_corpus_case(const std::string& name,
                                            const std::string& text,
                                            std::string* error) {
  CorpusCase c;
  c.name = name;
  c.packet.mutation = MutationKind::kHandWritten;
  c.packet.scenario = name;

  std::istringstream in(text);
  std::string line;
  bool in_bytes = false;
  std::string hex;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (in_bytes) {
      hex += " " + t;
      continue;
    }
    if (t[0] == '#') {
      const std::string note = trim(t.substr(1));
      if (!note.empty()) {
        if (!c.note.empty()) c.note += " ";
        c.note += note;
      }
      continue;
    }
    const auto colon = t.find(':');
    if (colon == std::string::npos) {
      fail(error, name + ": expected 'key: value', got '" + t + "'");
      return std::nullopt;
    }
    const std::string key = trim(t.substr(0, colon));
    const std::string value = trim(t.substr(colon + 1));
    if (key == "bytes") {
      in_bytes = true;
      hex = value;
    } else if (key == "protocol") {
      c.packet.protocol = value;
    } else if (key == "via-router") {
      c.packet.via_router = value == "1";
    } else if (key == "tos-zero-required") {
      c.packet.require_tos_zero = value == "1";
    } else if (key == "full-outbound") {
      c.packet.full_outbound = std::strtoul(value.c_str(), nullptr, 10);
    } else {
      fail(error, name + ": unknown key '" + key + "'");
      return std::nullopt;
    }
  }

  if (c.packet.protocol.empty()) {
    fail(error, name + ": missing 'protocol:'");
    return std::nullopt;
  }
  const auto& known = PacketGenerator::known_protocols();
  if (std::find(known.begin(), known.end(), c.packet.protocol) == known.end()) {
    fail(error, name + ": unknown protocol '" + c.packet.protocol + "'");
    return std::nullopt;
  }

  std::istringstream hexin(hex);
  std::string tok;
  while (hexin >> tok) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 16);
    if (end == tok.c_str() || *end != '\0' || v > 0xff) {
      fail(error, name + ": bad hex byte '" + tok + "'");
      return std::nullopt;
    }
    c.packet.bytes.push_back(static_cast<std::uint8_t>(v));
  }
  if (c.packet.bytes.empty()) {
    fail(error, name + ": no bytes");
    return std::nullopt;
  }
  return c;
}

std::string render_corpus_case(const CorpusCase& c) {
  std::ostringstream out;
  if (!c.note.empty()) out << "# " << c.note << "\n";
  out << "protocol: " << c.packet.protocol << "\n";
  if (c.packet.via_router) out << "via-router: 1\n";
  if (c.packet.require_tos_zero) out << "tos-zero-required: 1\n";
  if (c.packet.full_outbound) out << "full-outbound: " << *c.packet.full_outbound << "\n";
  out << "bytes:\n";
  static const char* kHex = "0123456789abcdef";
  for (std::size_t i = 0; i < c.packet.bytes.size(); ++i) {
    out << kHex[c.packet.bytes[i] >> 4] << kHex[c.packet.bytes[i] & 0xf];
    out << ((i + 1) % 16 == 0 || i + 1 == c.packet.bytes.size() ? '\n' : ' ');
  }
  return out.str();
}

std::vector<CorpusCase> load_corpus_dir(const std::string& dir,
                                        std::vector<std::string>* errors) {
  std::vector<CorpusCase> cases;
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".case") files.push_back(entry.path());
  }
  if (ec && errors != nullptr) {
    errors->push_back(dir + ": " + ec.message());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    auto c = parse_corpus_case(path.stem().string(), buffer.str(), &error);
    if (!c) {
      if (errors != nullptr) errors->push_back(error);
      continue;
    }
    cases.push_back(std::move(*c));
  }
  return cases;
}

}  // namespace sage::fuzz

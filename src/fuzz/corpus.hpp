// Regression corpus: minimized failing (or once-failing) inputs stored as
// small text files under tests/corpus/regressions/ and replayed by
// test_fuzz_regressions. The format is deliberately hand-editable:
//
//   # free-form note lines (kept as the case's note)
//   protocol: icmp
//   via-router: 1          (optional, default 0)
//   tos-zero-required: 1   (optional, default 0)
//   full-outbound: 1       (optional, absent = none)
//   bytes:
//   45 00 00 1c 00 01 ...  (hex bytes, any whitespace/line breaks)
#pragma once

#include <string>
#include <vector>

#include "fuzz/generator.hpp"

namespace sage::fuzz {

struct CorpusCase {
  std::string name;  // file stem; load order is sorted by this
  std::string note;  // leading '#' comment lines, joined
  FuzzPacket packet;  // mutation is always kHandWritten
};

/// Parse one corpus file's text; nullopt (and *error) on malformed input.
std::optional<CorpusCase> parse_corpus_case(const std::string& name,
                                            const std::string& text,
                                            std::string* error = nullptr);

/// Render a case back to the file format (used when the fuzzer saves a
/// newly minimized failure).
std::string render_corpus_case(const CorpusCase& c);

/// Load every "*.case" file in `dir`, sorted by filename so replay order
/// is stable. Files that fail to parse are reported in *errors (the
/// replay test fails on any).
std::vector<CorpusCase> load_corpus_dir(const std::string& dir,
                                        std::vector<std::string>* errors = nullptr);

}  // namespace sage::fuzz

#include "fuzz/differential.hpp"

#include <algorithm>
#include <exception>
#include <iomanip>
#include <sstream>
#include <string_view>

#include "core/generated_icmp.hpp"
#include "eval/interop_harness.hpp"
#include "net/bfd.hpp"
#include "net/icmp.hpp"
#include "net/igmp.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/ntp.hpp"
#include "net/udp.hpp"
#include "runtime/generated_responder.hpp"
#include "runtime/generated_responder6.hpp"
#include "runtime/schema_env.hpp"
#include "sim/network.hpp"
#include "sim/reference_responder.hpp"
#include "sim/reference_responder6.hpp"
#include "util/bytes.hpp"
#include "util/thread_pool.hpp"

namespace sage::fuzz {

namespace {

using net::schema::FieldKind;
using net::schema::FieldSpec;
using net::schema::LayerSpec;
using net::schema::SchemaRegistry;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kFaultSalt = 0x9e3779b97f4a7c15ULL;

std::uint64_t fnv_bytes(std::uint64_t h, std::span<const std::uint8_t> data) {
  for (const auto b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_text(std::uint64_t h, std::string_view text) {
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  // Separator so {"ab","c"} and {"a","bc"} hash apart.
  h ^= 0xff;
  h *= kFnvPrime;
  return h;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << v;
  return out.str();
}

std::string fmt_value(const std::optional<long>& v) {
  return v ? std::to_string(*v) : std::string("<none>");
}

std::optional<long> be32_at(std::span<const std::uint8_t> data,
                            std::size_t offset) {
  if (data.size() < offset + 4) return std::nullopt;
  return static_cast<long>((std::uint32_t{data[offset]} << 24) |
                           (std::uint32_t{data[offset + 1]} << 16) |
                           (std::uint32_t{data[offset + 2]} << 8) |
                           std::uint32_t{data[offset + 3]});
}

/// Canonicalize a struct-derived value the way read_scalar encodes the
/// field: mask to bit_width, then sign-extend when the spec is signed.
long canonical_value(long value, const FieldSpec& spec) {
  if (spec.bit_width >= 64) return value;
  const auto mask = (std::uint64_t{1} << spec.bit_width) - 1;
  auto v = static_cast<std::uint64_t>(value) & mask;
  if (spec.is_signed && (v & (std::uint64_t{1} << (spec.bit_width - 1))) != 0) {
    v |= ~mask;
  }
  return static_cast<long>(v);
}

/// Where each schema layer of `protocol` starts inside the raw packet.
/// Mirrors the generator's framing: everything rides IPv4 except BFD
/// (whose control frame the corpus treats standalone).
struct LayerSlice {
  const LayerSpec* spec = nullptr;
  std::size_t offset = 0;
};

std::vector<LayerSlice> layer_slices(const std::string& protocol,
                                     std::span<const std::uint8_t> bytes) {
  const auto& reg = SchemaRegistry::instance();
  std::vector<LayerSlice> out;
  if (protocol == "bfd") {
    out.push_back({reg.layer("bfd"), 0});
    return out;
  }
  if (protocol == "dhcp") {
    out.push_back({reg.layer("dhcp"), 0});
    return out;
  }
  if (protocol == "icmp6") {
    out.push_back({reg.layer("ip6"), 0});
    const auto ip6 = net::Ipv6Header::parse(bytes);
    if (ip6 && ip6->next_header == net::kIpProtoIcmp6) {
      out.push_back({reg.layer("icmp6"), net::Ipv6Header::kHeaderBytes});
    }
    return out;
  }
  out.push_back({reg.layer("ip"), 0});
  const auto ip = net::Ipv4Header::parse(bytes);
  if (!ip) return out;
  const std::size_t hl = ip->header_length();
  if (protocol == "icmp") {
    out.push_back({reg.layer("icmp"), hl});
  } else if (protocol == "igmp") {
    out.push_back({reg.layer("igmp"), hl});
  } else if (protocol == "udp") {
    out.push_back({reg.layer("udp"), hl});
  } else if (protocol == "ntp") {
    out.push_back({reg.layer("udp"), hl});
    out.push_back({reg.layer("ntp"), hl + 8});
  }
  return out;
}

std::span<const std::uint8_t> slice_image(std::span<const std::uint8_t> bytes,
                                          const LayerSlice& slice) {
  if (slice.spec == nullptr || slice.offset >= bytes.size()) return {};
  auto rest = bytes.subspan(slice.offset);
  return rest.first(std::min(rest.size(), slice.spec->header_bytes));
}

/// Universal oracle 1: read→write→read stability for every full-length
/// layer image, plus inspector determinism. Holds for arbitrary bytes —
/// a violation means the schema reader and writer disagree about where a
/// field lives.
std::string structural_mismatch(const FuzzPacket& pkt) {
  for (const auto& slice : layer_slices(pkt.protocol, pkt.bytes)) {
    const auto image = slice_image(pkt.bytes, slice);
    if (slice.spec == nullptr || image.size() < slice.spec->header_bytes) {
      continue;  // truncated layer: field reads are nullopt by design
    }
    const auto rebuilt = reserialize_layer(*slice.spec, image);
    for (const auto& f : slice.spec->fields) {
      if (f.kind != FieldKind::kScalar) continue;
      const auto before = SchemaRegistry::read_scalar(f, image);
      const auto after = SchemaRegistry::read_scalar(f, rebuilt);
      if (before != after) {
        return "round-trip " + slice.spec->name + "." + f.name + " before=" +
               fmt_value(before) + " after=" + fmt_value(after);
      }
    }
  }
  const auto first = eval::decode_packet(pkt.bytes);
  const auto second = eval::decode_packet(pkt.bytes);
  if (first != second) return "inspector decode is not deterministic";
  return "";
}

/// ICMP oracle: the table-driven exec env (what generated code reads)
/// must agree with raw schema wire reads on the incoming message. This
/// is what pins the short-read semantics — a truncated header must read
/// as <none> on both sides, never as a fabricated zero.
std::string icmp_env_wire_mismatch(const FuzzPacket& pkt) {
  const auto ip = net::Ipv4Header::parse(pkt.bytes);
  if (!ip || ip->protocol != static_cast<std::uint8_t>(net::IpProto::kIcmp)) {
    return "";
  }
  // Receiver view (reply-by-mutation): the strict short-read semantics
  // apply. Error-sender envs deliberately blank unparseable payloads.
  auto env = runtime::SchemaExecEnv::icmp(pkt.bytes, net::IpAddr(10, 0, 1, 1),
                                          /*start_from_incoming=*/true);
  if (!env.valid()) return "";

  const std::span<const std::uint8_t> icmp_wire =
      std::span<const std::uint8_t>(pkt.bytes).subspan(ip->header_length());
  const auto* layer = SchemaRegistry::instance().layer("icmp");
  const auto image = icmp_wire.first(
      std::min<std::size_t>(icmp_wire.size(), layer->header_bytes));
  const std::span<const std::uint8_t> payload =
      icmp_wire.size() > layer->header_bytes
          ? icmp_wire.subspan(layer->header_bytes)
          : std::span<const std::uint8_t>{};

  for (const auto& f : layer->fields) {
    if (!f.readable) continue;
    std::optional<long> expected;
    if (f.kind == FieldKind::kScalar) {
      expected = SchemaRegistry::read_scalar(f, image);
    } else if (f.kind == FieldKind::kPayloadScalar) {
      if (icmp_wire.size() < layer->header_bytes) continue;  // no payload view
      expected = be32_at(payload, f.payload_offset);
    } else {
      continue;
    }
    codegen::FieldRef ref{"icmp", f.name, f.id};
    const auto got = env.read_field(ref, codegen::PacketSel::kIncoming);
    if (got != expected) {
      return "env-vs-wire icmp." + f.name + " env=" + fmt_value(got) +
             " wire=" + fmt_value(expected);
    }
  }
  return "";
}

/// One (field name, expected value) row of the struct-parser oracle.
struct ExpectedField {
  const char* name;
  long value;
};

std::string compare_expected(const LayerSpec& layer,
                             std::span<const std::uint8_t> image,
                             const std::vector<ExpectedField>& expected) {
  const auto& reg = SchemaRegistry::instance();
  for (const auto& e : expected) {
    const auto* spec = reg.field(layer.name, e.name);
    if (spec == nullptr) continue;
    const auto read = reg.read_wire(layer.name, e.name, image);
    if (!read.ok() || read.value != canonical_value(e.value, *spec)) {
      return "parser-vs-schema " + layer.name + "." + e.name + " struct=" +
             std::to_string(canonical_value(e.value, *spec)) +
             " schema=" +
             (read.ok() ? std::to_string(read.value)
                        : net::schema::read_status_name(read.status));
    }
  }
  return "";
}

/// Compare exec-env reads of `layer`'s readable wire scalars against raw
/// schema reads of `image` (the env's own canonical serialization).
std::string compare_env_wire(runtime::SchemaExecEnv& env, const LayerSpec& layer,
                             std::span<const std::uint8_t> image) {
  for (const auto& f : layer.fields) {
    if (f.kind != FieldKind::kScalar || !f.readable) continue;
    codegen::FieldRef ref{layer.name, f.name, f.id};
    const auto got = env.read_field(ref, codegen::PacketSel::kIncoming);
    const auto expected = SchemaRegistry::read_scalar(f, image);
    if (got != expected) {
      return "env-vs-wire " + layer.name + "." + f.name + " env=" +
             fmt_value(got) + " wire=" + fmt_value(expected);
    }
  }
  return "";
}

/// Protocol-specific oracles for the sender protocols (no reference
/// responder to diff against): the net/ struct parser, the schema
/// registry, and the exec env must tell one story about the same bytes.
/// `parsed` reports whether the primary parser accepted the input at all
/// (drives the agree-bytes vs agree-silent verdict).
std::string parser_mismatch(const FuzzPacket& pkt, bool* parsed) {
  *parsed = false;
  const auto& reg = SchemaRegistry::instance();
  const std::span<const std::uint8_t> bytes(pkt.bytes);

  if (pkt.protocol == "bfd") {
    const auto p = net::BfdControlPacket::parse(bytes);
    if (!p) return "";
    *parsed = true;
    const auto canonical = p->serialize();
    const std::vector<ExpectedField> expected = {
        {"version", p->version},
        {"diag", static_cast<long>(p->diag)},
        {"state", static_cast<long>(p->state)},
        {"poll_bit", p->poll ? 1 : 0},
        {"final_bit", p->final ? 1 : 0},
        {"demand_bit", p->demand ? 1 : 0},
        {"multipoint_bit", p->multipoint ? 1 : 0},
        {"detect_mult_field", p->detect_mult},
        {"my_discriminator", static_cast<long>(p->my_discriminator)},
        {"your_discriminator", static_cast<long>(p->your_discriminator)},
        {"required_min_rx_interval_field",
         static_cast<long>(p->required_min_rx_interval)},
    };
    const auto* layer = reg.layer("bfd");
    if (auto d = compare_expected(*layer, canonical, expected); !d.empty()) {
      return d;
    }
    net::BfdSessionState state;
    auto env = runtime::SchemaExecEnv::bfd(&state, &*p);
    return compare_env_wire(env, *layer, canonical);
  }

  if (pkt.protocol == "icmp6") {
    const auto ip6 = net::Ipv6Header::parse(bytes);
    if (!ip6) return "";
    *parsed = true;
    const std::vector<ExpectedField> expected = {
        {"version", ip6->version},
        {"traffic_class", ip6->traffic_class},
        {"flow_label", static_cast<long>(ip6->flow_label)},
        {"payload_length", ip6->payload_length},
        {"next_header", ip6->next_header},
        {"hop_limit", ip6->hop_limit},
    };
    return compare_expected(*reg.layer("ip6"),
                            bytes.first(net::Ipv6Header::kHeaderBytes),
                            expected);
  }

  if (pkt.protocol == "dhcp") {
    const auto* layer = reg.layer("dhcp");
    if (bytes.size() < layer->header_bytes) return "";
    if (util::get_be32(bytes.subspan(236, 4)) != 0x63825363u) return "";
    // TLV round-trip oracle: re-encoding the well-formed prefix of the
    // options region through OptionsView::append must yield a region the
    // view walks to the identical option sequence. A violation means the
    // TLV decoder and encoder disagree about the grammar.
    const net::schema::OptionsView view(*layer, bytes);
    std::vector<std::uint8_t> rebuilt(bytes.begin(),
                                      bytes.begin() + layer->options_offset);
    for (const auto& opt : view) {
      net::schema::OptionsView::append(rebuilt, opt.type, opt.value);
    }
    net::schema::OptionsView::append_end(rebuilt, layer->option_end);
    const net::schema::OptionsView reread(*layer, rebuilt);
    auto a = view.begin();
    auto b = reread.begin();
    for (; a != view.end() && b != reread.end(); ++a, ++b) {
      if (a->type != b->type ||
          !std::equal(a->value.begin(), a->value.end(), b->value.begin(),
                      b->value.end())) {
        return "dhcp TLV round-trip mismatch at option type " +
               std::to_string(a->type);
      }
    }
    if ((a != view.end()) || (b != reread.end())) {
      return "dhcp TLV round-trip option count mismatch";
    }
    if (!reread.ok()) {
      return "dhcp TLV re-encoded region malformed: " +
             net::schema::tlv_status_name(reread.status());
    }
    *parsed = view.ok();
    return "";
  }

  const auto ip = net::Ipv4Header::parse(bytes);
  if (!ip) return "";
  const auto payload = bytes.subspan(ip->header_length());

  if (pkt.protocol == "icmp") {
    const auto icmp = net::IcmpMessage::parse(payload);
    if (!icmp) return "";
    *parsed = true;
    const std::vector<ExpectedField> expected = {
        {"type", static_cast<long>(icmp->type)},
        {"code", icmp->code},
        {"checksum", icmp->checksum},
        {"identifier", icmp->identifier()},
        {"sequence_number", icmp->sequence_number()},
        {"gateway_internet_address",
         static_cast<long>(icmp->gateway_address().value())},
        {"pointer", icmp->pointer()},
    };
    return compare_expected(*reg.layer("icmp"), payload, expected);
  }

  if (pkt.protocol == "igmp") {
    const auto igmp = net::IgmpMessage::parse(payload);
    if (!igmp) return "";
    *parsed = true;
    const std::vector<ExpectedField> expected = {
        {"version", igmp->version},
        {"type", static_cast<long>(igmp->type)},
        {"unused", igmp->unused},
        {"checksum", igmp->checksum},
        {"group_address", static_cast<long>(igmp->group_address.value())},
    };
    return compare_expected(*reg.layer("igmp"), payload, expected);
  }

  if (pkt.protocol == "udp" || pkt.protocol == "ntp") {
    const auto udp = net::UdpHeader::parse(payload);
    if (!udp) return "";
    const std::vector<ExpectedField> udp_expected = {
        {"src_port", udp->src_port},
        {"dst_port", udp->dst_port},
        {"length", udp->length},
        {"checksum", udp->checksum},
    };
    if (auto d = compare_expected(*reg.layer("udp"), payload, udp_expected);
        !d.empty()) {
      return d;
    }
    if (pkt.protocol == "udp") {
      *parsed = true;
      return "";
    }
    const auto ntp_bytes = payload.size() > 8 ? payload.subspan(8)
                                              : std::span<const std::uint8_t>{};
    const auto ntp = net::NtpPacket::parse(ntp_bytes);
    if (!ntp) return "";
    *parsed = true;
    const std::vector<ExpectedField> expected = {
        {"leap_indicator", ntp->leap_indicator},
        {"version", ntp->version},
        {"mode", static_cast<long>(ntp->mode)},
        {"stratum", ntp->stratum},
        {"poll", ntp->poll},
        {"precision", ntp->precision},
        {"root_delay", static_cast<long>(ntp->root_delay)},
        {"root_dispersion", static_cast<long>(ntp->root_dispersion)},
        {"reference_clock_id", static_cast<long>(ntp->reference_clock_id)},
        {"reference_timestamp",
         static_cast<long>(ntp->reference_timestamp.seconds)},
        {"originate_timestamp",
         static_cast<long>(ntp->originate_timestamp.seconds)},
        {"receive_timestamp", static_cast<long>(ntp->receive_timestamp.seconds)},
        {"transmit_timestamp",
         static_cast<long>(ntp->transmit_timestamp.seconds)},
    };
    const auto canonical = ntp->serialize();
    const auto* layer = reg.layer("ntp");
    if (auto d = compare_expected(*layer, canonical, expected); !d.empty()) {
      return d;
    }
    auto env = runtime::SchemaExecEnv::ntp(net::IpAddr(10, 0, 1, 100),
                                           /*clock_seconds=*/1000, *ntp);
    return compare_env_wire(env, *layer, canonical);
  }

  return "";
}

/// Run one side of the ICMP differential: a fresh Appendix-A network with
/// `responder` on the router and both servers, the scenario knobs from the
/// packet, and a fault wrapper seeded with `fault_rng`. Both sides get
/// the same rng by value, so the injected weather is byte-identical.
std::vector<sim::OwnedCaptureEntry> run_icmp_side(
    sim::IcmpResponder* responder, const FuzzPacket& pkt,
    const FaultPlan& faults, Rng fault_rng, sim::DeliveryMode delivery) {
  sim::Network net = sim::make_appendix_a_network(delivery);
  net.router()->set_responder(responder);
  net.find_host("server1")->set_responder(responder);
  net.find_host("server2")->set_responder(responder);
  if (pkt.require_tos_zero) net.router()->behavior().require_tos_zero = true;
  if (pkt.full_outbound) {
    net.router()->behavior().full_outbound_interface = *pkt.full_outbound;
  }
  FaultyNetwork wire(net, faults, fault_rng);
  wire.send("client", pkt.bytes, pkt.via_router);
  wire.flush();
  // The capture views alias `net`'s arena, which dies with this frame —
  // deep-copy them out before the network goes away.
  return sim::own_capture(net.capture());
}

std::uint64_t hash_captures(const std::vector<sim::OwnedCaptureEntry>& a,
                            const std::vector<sim::OwnedCaptureEntry>& b) {
  std::uint64_t h = kFnvOffset;
  for (const auto* side : {&a, &b}) {
    for (const auto& entry : *side) {
      h = fnv_text(h, entry.node);
      h = fnv_bytes(h, entry.packet);
    }
    h = fnv_text(h, "|");
  }
  return h;
}

std::string describe_capture_diff(
    const std::vector<sim::OwnedCaptureEntry>& gen,
    const std::vector<sim::OwnedCaptureEntry>& ref) {
  if (gen.size() != ref.size()) {
    return "capture length generated=" + std::to_string(gen.size()) +
           " reference=" + std::to_string(ref.size());
  }
  for (std::size_t i = 0; i < gen.size(); ++i) {
    if (gen[i].node != ref[i].node) {
      return "entry " + std::to_string(i) + " node generated=" + gen[i].node +
             " reference=" + ref[i].node;
    }
    if (gen[i].packet != ref[i].packet) {
      const auto& a = gen[i].packet;
      const auto& b = ref[i].packet;
      std::size_t pos = 0;
      while (pos < std::min(a.size(), b.size()) && a[pos] == b[pos]) ++pos;
      return "entry " + std::to_string(i) + " bytes differ at offset " +
             std::to_string(pos) + " (generated len " + std::to_string(a.size()) +
             ", reference len " + std::to_string(b.size()) + ")";
    }
  }
  return "";
}

/// The minimizer's target shape: the smallest well-formed packet of each
/// protocol. Failing inputs are greedily rewritten toward this donor one
/// schema field at a time, keeping only rewrites that still fail.
std::vector<std::uint8_t> donor_bytes(const std::string& protocol) {
  if (protocol == "bfd") return net::BfdControlPacket{}.serialize();

  if (protocol == "icmp6") {
    // The smallest well-formed echo request.
    net::Ipv6Header ip6;
    ip6.next_header = net::kIpProtoIcmp6;
    ip6.src = net::Ip6Addr::from_groups(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1);
    ip6.dst = net::Ip6Addr::from_groups(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2);
    std::vector<std::uint8_t> msg(8, 0);
    msg[0] = 128;
    const std::uint16_t ck = net::icmp6_checksum(ip6.src, ip6.dst, msg);
    util::put_be16({msg.data() + 2, 2}, ck);
    return net::build_ipv6_packet(ip6, msg);
  }

  if (protocol == "dhcp") {
    // The smallest plausible BOOTP message: fixed header, magic cookie,
    // a message-type option, and the end marker.
    const auto* layer = SchemaRegistry::instance().layer("dhcp");
    std::vector<std::uint8_t> bytes(layer->options_offset, 0);
    bytes[0] = 2;  // op: BOOTREPLY
    bytes[1] = 1;  // htype: ethernet
    bytes[2] = 6;  // hlen
    util::put_be32({bytes.data() + 236, 4}, 0x63825363u);
    net::schema::OptionsView::append_scalar(bytes, 53, 2, 1);  // DHCPOFFER
    net::schema::OptionsView::append_end(bytes, layer->option_end);
    return bytes;
  }

  net::Ipv4Header ip;
  ip.src = net::IpAddr(10, 0, 1, 100);
  ip.dst = net::IpAddr(10, 0, 1, 1);
  if (protocol == "icmp") {
    net::IcmpMessage msg;
    msg.type = net::IcmpType::kEcho;
    msg.set_identifier(0x1234);
    msg.set_sequence_number(1);
    ip.protocol = static_cast<std::uint8_t>(net::IpProto::kIcmp);
    return net::build_ipv4_packet(ip, msg.serialize());
  }
  if (protocol == "igmp") {
    net::IgmpMessage msg;
    msg.type = net::IgmpType::kHostMembershipReport;
    msg.group_address = net::IpAddr(224, 0, 0, 1);
    ip.protocol = static_cast<std::uint8_t>(net::IpProto::kIgmp);
    ip.ttl = 1;
    return net::build_ipv4_packet(ip, msg.serialize());
  }
  ip.protocol = static_cast<std::uint8_t>(net::IpProto::kUdp);
  if (protocol == "ntp") {
    const auto ntp = net::NtpPacket{}.serialize();
    net::UdpHeader udp;
    udp.src_port = net::kNtpPort;
    udp.dst_port = net::kNtpPort;
    return net::build_ipv4_packet(ip, udp.serialize(ip.src, ip.dst, ntp));
  }
  net::UdpHeader udp;
  udp.src_port = 40000;
  udp.dst_port = 33434;
  const std::vector<std::uint8_t> payload = {'p', 'r', 'o', 'b', 'e'};
  return net::build_ipv4_packet(ip, udp.serialize(ip.src, ip.dst, payload));
}

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAgreeBytes: return "agree-bytes";
    case Verdict::kAgreeSemantic: return "agree-semantic";
    case Verdict::kAgreeSilent: return "agree-silent";
    case Verdict::kDivergent: return "divergent";
    case Verdict::kCrash: return "crash";
  }
  return "?";
}

DifferentialFuzzer::DifferentialFuzzer(FuzzOptions options)
    : options_(std::move(options)) {}

CaseResult DifferentialFuzzer::run_case(const FuzzPacket& packet,
                                        Rng fault_rng) const {
  if (packet.protocol == "icmp") return run_icmp_case(packet, fault_rng);
  if (packet.protocol == "icmp6") return run_icmp6_case(packet);
  return run_layer_case(packet);
}

CaseResult DifferentialFuzzer::run_icmp_case(const FuzzPacket& packet,
                                             Rng fault_rng) const {
  CaseResult result;
  result.packet = packet;

  std::string crash_detail;
  std::optional<std::vector<sim::OwnedCaptureEntry>> cap_gen;
  std::optional<std::vector<sim::OwnedCaptureEntry>> cap_ref;
  try {
    runtime::GeneratedIcmpResponder generated(options_.backend);
    for (const auto& fn : core::canonical_icmp_run().functions) {
      generated.add_function(fn);
    }
    cap_gen = run_icmp_side(&generated, packet, options_.faults, fault_rng,
                            options_.delivery);
  } catch (const std::exception& e) {
    crash_detail = std::string("generated responder threw: ") + e.what();
  }
  try {
    sim::ReferenceIcmpResponder reference;
    cap_ref = run_icmp_side(&reference, packet, options_.faults, fault_rng,
                            options_.delivery);
  } catch (const std::exception& e) {
    if (!crash_detail.empty()) crash_detail += "; ";
    crash_detail += std::string("reference responder threw: ") + e.what();
  }
  if (!cap_gen || !cap_ref) {
    result.verdict = Verdict::kCrash;
    result.detail = crash_detail;
    return result;
  }
  result.capture_hash = hash_captures(*cap_gen, *cap_ref);

  // Structural oracles run even when the networks agree: the exec env
  // misreading a field is a divergence whether or not it changed traffic.
  if (auto d = icmp_env_wire_mismatch(packet); !d.empty()) {
    result.verdict = Verdict::kDivergent;
    result.detail = d;
    return result;
  }
  if (auto d = structural_mismatch(packet); !d.empty()) {
    result.verdict = Verdict::kDivergent;
    result.detail = d;
    return result;
  }
  bool parsed = false;
  if (auto d = parser_mismatch(packet, &parsed); !d.empty()) {
    result.verdict = Verdict::kDivergent;
    result.detail = d;
    return result;
  }

  const auto diff = describe_capture_diff(*cap_gen, *cap_ref);
  if (diff.empty()) {
    const bool replied = std::any_of(
        cap_gen->begin(), cap_gen->end(),
        [](const sim::OwnedCaptureEntry& e) { return e.node != "client"; });
    result.verdict = replied ? Verdict::kAgreeBytes : Verdict::kAgreeSilent;
    return result;
  }

  // Bytes differ. Accept semantic equality: same traffic shape and every
  // packet decodes identically through the shared inspector.
  if (cap_gen->size() == cap_ref->size()) {
    bool semantic = true;
    for (std::size_t i = 0; i < cap_gen->size() && semantic; ++i) {
      semantic = (*cap_gen)[i].node == (*cap_ref)[i].node &&
                 eval::decode_packet((*cap_gen)[i].packet) ==
                     eval::decode_packet((*cap_ref)[i].packet);
    }
    if (semantic) {
      result.verdict = Verdict::kAgreeSemantic;
      result.detail = diff;
      return result;
    }
  }

  result.verdict = Verdict::kDivergent;
  result.detail = diff;
  return result;
}

CaseResult DifferentialFuzzer::run_icmp6_case(const FuzzPacket& packet) const {
  CaseResult result;
  result.packet = packet;

  // There is no Appendix-A IPv6 network, so the twin responders are
  // driven directly: every RFC 4443 event fires at both implementations
  // with the fuzzed packet as the trigger. Event codes derive from the
  // packet bytes, keeping the whole case a pure function of the input.
  const net::Ip6Addr own =
      net::Ip6Addr::from_groups(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2);
  const std::uint8_t tail = packet.bytes.empty() ? 0 : packet.bytes.back();
  const std::uint8_t unreachable_code = tail % 5;
  const std::uint8_t exceeded_code = tail % 2;
  const std::uint8_t problem_code = tail % 3;
  const std::uint8_t pointer = static_cast<std::uint8_t>(tail ^ 0x5a);

  // The echo event only fires for a request a host's dispatch would hand
  // to the echo path: ICMPv6 next header with at least a full message
  // header. (A truncated request must draw silence from the reference;
  // the generated side would start from a partial image — the gate keeps
  // the comparison on inputs both sides define behavior for.)
  bool echo_event = false;
  if (const auto ip6 = net::Ipv6Header::parse(packet.bytes);
      ip6 && ip6->next_header == net::kIpProtoIcmp6) {
    echo_event = packet.bytes.size() >= net::Ipv6Header::kHeaderBytes + 8;
  }

  const sim::Responder6Context ctx{own, packet.bytes};
  using Reply = std::optional<std::vector<std::uint8_t>>;
  std::vector<std::pair<const char*, Reply>> gen_replies;
  std::vector<std::pair<const char*, Reply>> ref_replies;
  const auto drive = [&](sim::Icmp6Responder& r,
                         std::vector<std::pair<const char*, Reply>>& out) {
    if (echo_event) out.emplace_back("echo", r.on_echo_request(ctx));
    out.emplace_back("dest-unreachable",
                     r.on_destination_unreachable(ctx, unreachable_code));
    out.emplace_back("packet-too-big", r.on_packet_too_big(ctx));
    out.emplace_back("time-exceeded", r.on_time_exceeded(ctx, exceeded_code));
    out.emplace_back("parameter-problem",
                     r.on_parameter_problem(ctx, problem_code, pointer));
  };

  std::string crash_detail;
  try {
    runtime::GeneratedIcmp6Responder generated(options_.backend);
    for (const auto& fn : core::canonical_icmp6_run().functions) {
      generated.add_function(fn);
    }
    drive(generated, gen_replies);
  } catch (const std::exception& e) {
    crash_detail = std::string("generated responder threw: ") + e.what();
  }
  try {
    sim::ReferenceIcmp6Responder reference;
    drive(reference, ref_replies);
  } catch (const std::exception& e) {
    if (!crash_detail.empty()) crash_detail += "; ";
    crash_detail += std::string("reference responder threw: ") + e.what();
  }
  if (!crash_detail.empty()) {
    result.verdict = Verdict::kCrash;
    result.detail = crash_detail;
    return result;
  }

  std::uint64_t h = kFnvOffset;
  for (const auto* side : {&gen_replies, &ref_replies}) {
    for (const auto& [name, reply] : *side) {
      h = fnv_text(h, name);
      if (reply) h = fnv_bytes(h, *reply);
      h = fnv_text(h, reply ? "+" : "-");
    }
    h = fnv_text(h, "|");
  }
  result.capture_hash = h;

  if (auto d = structural_mismatch(packet); !d.empty()) {
    result.verdict = Verdict::kDivergent;
    result.detail = d;
    return result;
  }
  bool parsed = false;
  if (auto d = parser_mismatch(packet, &parsed); !d.empty()) {
    result.verdict = Verdict::kDivergent;
    result.detail = d;
    return result;
  }

  for (std::size_t i = 0; i < gen_replies.size(); ++i) {
    const auto& [name, a] = gen_replies[i];
    const auto& b = ref_replies[i].second;
    if (a.has_value() != b.has_value()) {
      result.verdict = Verdict::kDivergent;
      result.detail = std::string(name) + " generated=" +
                      (a ? "reply" : "silent") + " reference=" +
                      (b ? "reply" : "silent");
      return result;
    }
    if (a && *a != *b) {
      std::size_t pos = 0;
      while (pos < std::min(a->size(), b->size()) && (*a)[pos] == (*b)[pos]) {
        ++pos;
      }
      result.verdict = Verdict::kDivergent;
      result.detail = std::string(name) + " bytes differ at offset " +
                      std::to_string(pos) + " (generated len " +
                      std::to_string(a->size()) + ", reference len " +
                      std::to_string(b->size()) + ")";
      return result;
    }
  }

  const bool replied =
      std::any_of(gen_replies.begin(), gen_replies.end(),
                  [](const auto& e) { return e.second.has_value(); });
  result.verdict = replied ? Verdict::kAgreeBytes : Verdict::kAgreeSilent;
  return result;
}

CaseResult DifferentialFuzzer::run_layer_case(const FuzzPacket& packet) const {
  CaseResult result;
  result.packet = packet;
  try {
    const auto lines = eval::decode_packet(packet.bytes);
    std::uint64_t h = kFnvOffset;
    for (const auto& line : lines) h = fnv_text(h, line);
    h = fnv_bytes(h, packet.bytes);
    result.capture_hash = h;

    if (auto d = structural_mismatch(packet); !d.empty()) {
      result.verdict = Verdict::kDivergent;
      result.detail = d;
      return result;
    }
    bool parsed = false;
    if (auto d = parser_mismatch(packet, &parsed); !d.empty()) {
      result.verdict = Verdict::kDivergent;
      result.detail = d;
      return result;
    }
    result.verdict = parsed ? Verdict::kAgreeBytes : Verdict::kAgreeSilent;
  } catch (const std::exception& e) {
    result.verdict = Verdict::kCrash;
    result.detail = std::string("threw: ") + e.what();
  }
  return result;
}

void DifferentialFuzzer::minimize_case(CaseResult& result,
                                       Rng fault_rng) const {
  const auto fails = [&](std::vector<std::uint8_t> candidate) {
    FuzzPacket probe = result.packet;
    probe.bytes = std::move(candidate);
    const CaseResult r = run_case(probe, fault_rng);
    return r.verdict == Verdict::kDivergent || r.verdict == Verdict::kCrash;
  };

  std::vector<std::uint8_t> best = result.packet.bytes;

  // Phase 1: drop as much of the tail as possible (largest cut first).
  bool shrunk = true;
  while (shrunk && best.size() > 1) {
    shrunk = false;
    for (std::size_t cut = best.size() - 1; cut >= 1; cut /= 2) {
      std::vector<std::uint8_t> candidate(best.begin(),
                                          best.end() - static_cast<long>(cut));
      if (fails(candidate)) {
        best = std::move(candidate);
        shrunk = true;
        break;
      }
      if (cut == 1) break;
    }
  }

  // Phase 2: rewrite schema fields toward the canonical donor packet, one
  // at a time, keeping only rewrites that preserve the failure. Two
  // passes, because fixing one field can unlock another.
  const auto donor = donor_bytes(result.packet.protocol);
  for (int pass = 0; pass < 2; ++pass) {
    const auto donor_slices = layer_slices(result.packet.protocol, donor);
    for (const auto& slice : layer_slices(result.packet.protocol, best)) {
      if (slice.spec == nullptr) continue;
      const LayerSlice* donor_slice = nullptr;
      for (const auto& d : donor_slices) {
        if (d.spec == slice.spec) donor_slice = &d;
      }
      if (donor_slice == nullptr) continue;
      for (const auto& f : slice.spec->fields) {
        if (f.kind != FieldKind::kScalar) continue;
        const auto target =
            SchemaRegistry::read_scalar(f, slice_image(donor, *donor_slice));
        const auto current =
            SchemaRegistry::read_scalar(f, slice_image(best, slice));
        if (!target || !current || *target == *current) continue;
        std::vector<std::uint8_t> candidate = best;
        const auto image = std::span<std::uint8_t>(candidate)
                               .subspan(slice.offset)
                               .first(std::min(candidate.size() - slice.offset,
                                               slice.spec->header_bytes));
        if (!SchemaRegistry::write_scalar(f, image, *target)) continue;
        if (fails(candidate)) best = std::move(candidate);
      }
    }
  }
  result.minimized = std::move(best);
}

std::string DifferentialFuzzer::log_line(std::size_t index,
                                         const CaseResult& result) {
  std::ostringstream out;
  out << "[" << std::setw(4) << std::setfill('0') << index << "] proto="
      << result.packet.protocol << " scenario=" << result.packet.scenario
      << " mutation=" << mutation_kind_name(result.packet.mutation)
      << " len=" << result.packet.bytes.size()
      << " verdict=" << verdict_name(result.verdict)
      << " hash=" << hex64(result.capture_hash);
  if (!result.detail.empty()) out << " detail=" << result.detail;
  return out.str();
}

FuzzReport DifferentialFuzzer::run() const {
  FuzzReport report;
  report.options = options_;

  const PacketGenerator generator(options_.protocol);
  const std::size_t n = options_.iterations;
  std::vector<CaseResult> results(n);

  const auto one = [&](std::size_t i) {
    Rng packet_rng = Rng(options_.seed).fork(i);
    const FuzzPacket packet = generator.generate(packet_rng);
    const Rng fault_rng = Rng(options_.seed ^ kFaultSalt).fork(i);
    results[i] = run_case(packet, fault_rng);
    if (options_.minimize && (results[i].verdict == Verdict::kDivergent ||
                              results[i].verdict == Verdict::kCrash)) {
      minimize_case(results[i], fault_rng);
    }
  };

  if (options_.jobs > 1 && n > 1) {
    // canonical_icmp_run() memoizes under a static guard; touching it
    // before the fan-out keeps the expensive pipeline pass out of the
    // measured/parallel region.
    if (options_.protocol == "icmp") core::canonical_icmp_run();
    if (options_.protocol == "icmp6") core::canonical_icmp6_run();
    util::ThreadPool pool(options_.jobs);
    pool.parallel_for(n, one);
  } else {
    for (std::size_t i = 0; i < n; ++i) one(i);
  }

  // Serial assembly: the log is index-ordered regardless of which worker
  // ran which iteration.
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = results[i];
    switch (r.verdict) {
      case Verdict::kAgreeBytes: ++report.agree_bytes; break;
      case Verdict::kAgreeSemantic: ++report.agree_semantic; break;
      case Verdict::kAgreeSilent: ++report.agree_silent; break;
      case Verdict::kDivergent: ++report.divergent; break;
      case Verdict::kCrash: ++report.crashes; break;
    }
    report.log.push_back(log_line(i, r));
    h = fnv_text(h, report.log.back());
    if (r.verdict == Verdict::kDivergent || r.verdict == Verdict::kCrash) {
      report.failures.push_back(r);
    }
  }
  report.log_hash = h;
  return report;
}

std::string FuzzReport::summary() const {
  std::ostringstream out;
  out << options.protocol << " seed=" << options.seed
      << " iters=" << options.iterations << " faults=" << options.faults.to_string()
      << ": " << agree_bytes << " byte-equal, " << agree_semantic
      << " semantic, " << agree_silent << " silent, " << divergent
      << " divergent, " << crashes << " crashes (log hash 0x" << hex64(log_hash)
      << ")";
  return out.str();
}

}  // namespace sage::fuzz

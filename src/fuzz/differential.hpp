// Differential conformance checking: generated code vs reference.
//
// For ICMP the oracle is the paper's own evaluation setup doubled: two
// Appendix-A networks, one whose router/hosts run the generated
// interpreter responder and one running sim::ReferenceIcmpResponder, fed
// byte-identical (fault-processed) traffic. The capture logs must then
// agree byte-for-byte, or at least decode identically through the
// tcpdump model (PacketInspector) — anything else is a divergence worth
// a regression-corpus entry. A second oracle compares SchemaExecEnv
// field reads against raw schema wire reads, which is what pins the
// short-read fix (truncated packets must not read as zeros).
//
// ICMPv6 gets the same twin-responder treatment without the network in
// between: every event RFC 4443 defines is fired at both the generated
// and the hand-written responder with the fuzzed packet as trigger, and
// every reply must agree byte-for-byte.
//
// For the other protocols (igmp/ntp/bfd/udp/dhcp) there is no second
// responder to diff against, so the oracles are structural: the net/
// struct parsers vs schema wire reads, read→write→read round trips, the
// exec envs vs the wire, inspector stability, and — for layers with an
// options region — TLV round-trip identity on the well-formed prefix.
//
// Everything is deterministic in (seed, protocol, iterations, faults):
// the verdict log is byte-identical across 1/2/8 worker threads, which
// tests/test_fuzz.cpp pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fault_injector.hpp"
#include "fuzz/generator.hpp"
#include "runtime/vm/exec.hpp"

namespace sage::fuzz {

enum class Verdict : std::uint8_t {
  kAgreeBytes,     // captures byte-identical (replies present)
  kAgreeSemantic,  // bytes differ, PacketInspector decodes identically
  kAgreeSilent,    // both sides silent / input unparseable everywhere
  kDivergent,      // observable disagreement
  kCrash,          // an implementation threw
};

const char* verdict_name(Verdict verdict);

struct CaseResult {
  Verdict verdict = Verdict::kAgreeSilent;
  FuzzPacket packet;
  std::uint64_t capture_hash = 0;  // FNV-1a over both sides' observations
  std::string detail;              // first mismatch, deterministic text
  std::vector<std::uint8_t> minimized;  // failures only, when enabled
};

struct FuzzOptions {
  std::string protocol = "icmp";  // lowercase generator name
  std::uint64_t seed = 1;
  std::size_t iterations = 100;
  std::size_t jobs = 1;  // >1 fans iterations over a util::ThreadPool
  FaultPlan faults;      // applied identically to both networks
  bool minimize = true;  // greedily reduce failing inputs
  /// Which simulator kernel both Appendix-A networks run on. Verdict
  /// logs are pinned byte-identical across the two kernels
  /// (tests/test_fuzz_regressions.cpp), so this is a pure execution
  /// knob, mirroring the parser's reference_mode.
  sim::DeliveryMode delivery = sim::DeliveryMode::kEvent;
  /// Which backend the generated responder executes on. Another pure
  /// execution knob: verdict logs are pinned byte-identical across
  /// kThreaded and kTree (tests/test_fuzz_regressions.cpp).
  runtime::vm::ExecBackend backend = runtime::vm::ExecBackend::kThreaded;
};

struct FuzzReport {
  FuzzOptions options;
  std::size_t agree_bytes = 0;
  std::size_t agree_semantic = 0;
  std::size_t agree_silent = 0;
  std::size_t divergent = 0;
  std::size_t crashes = 0;
  /// One line per iteration, index-ordered; identical for identical
  /// options regardless of jobs.
  std::vector<std::string> log;
  std::uint64_t log_hash = 0;  // FNV-1a over the log lines
  std::vector<CaseResult> failures;  // divergent + crash cases

  bool clean() const { return divergent == 0 && crashes == 0; }
  std::string summary() const;
};

class DifferentialFuzzer {
 public:
  explicit DifferentialFuzzer(FuzzOptions options);

  const FuzzOptions& options() const { return options_; }

  /// Generate + check options().iterations packets. Thread-count
  /// independent output.
  FuzzReport run() const;

  /// Check a single packet (corpus replay, minimization probes).
  /// `fault_rng` seeds the fault decisions for both networks.
  CaseResult run_case(const FuzzPacket& packet, Rng fault_rng) const;

  /// Format the deterministic verdict-log line for one case.
  static std::string log_line(std::size_t index, const CaseResult& result);

 private:
  CaseResult run_icmp_case(const FuzzPacket& packet, Rng fault_rng) const;
  CaseResult run_icmp6_case(const FuzzPacket& packet) const;
  CaseResult run_layer_case(const FuzzPacket& packet) const;
  void minimize_case(CaseResult& result, Rng fault_rng) const;

  FuzzOptions options_;
};

}  // namespace sage::fuzz

#include "fuzz/fault_injector.hpp"

#include <cstdlib>

namespace sage::fuzz {

std::string FaultPlan::to_string() const {
  std::string out;
  const auto add = [&out](const char* name, unsigned pct) {
    if (pct == 0) return;
    if (!out.empty()) out += ",";
    out += name;
    out += "=";
    out += std::to_string(pct);
  };
  add("loss", loss);
  add("dup", dup);
  add("reorder", reorder);
  add("delay", delay);
  add("corrupt", corrupt);
  return out.empty() ? "none" : out;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") return plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) *error = "expected knob=pct, got '" + part + "'";
      return std::nullopt;
    }
    const std::string knob = part.substr(0, eq);
    char* end = nullptr;
    const unsigned long pct = std::strtoul(part.c_str() + eq + 1, &end, 10);
    if (end == part.c_str() + eq + 1 || *end != '\0' || pct > 100) {
      if (error != nullptr) *error = "bad percentage in '" + part + "'";
      return std::nullopt;
    }
    if (knob == "loss") plan.loss = static_cast<unsigned>(pct);
    else if (knob == "dup") plan.dup = static_cast<unsigned>(pct);
    else if (knob == "reorder") plan.reorder = static_cast<unsigned>(pct);
    else if (knob == "delay") plan.delay = static_cast<unsigned>(pct);
    else if (knob == "corrupt") plan.corrupt = static_cast<unsigned>(pct);
    else {
      if (error != nullptr) *error = "unknown fault knob '" + knob + "'";
      return std::nullopt;
    }
    pos = comma + 1;
  }
  return plan;
}

void FaultyNetwork::put_on_wire(const std::string& host,
                                std::span<const std::uint8_t> packet,
                                bool via_router) {
  if (via_router) {
    net_.send_from_host_via_router(host, packet);
  } else {
    net_.send_from_host(host, packet);
  }
  if (swap_hold_) {
    Held held = std::move(*swap_hold_);
    swap_hold_.reset();
    // The held packet follows the one that overtook it.
    put_on_wire(held.host, held.packet, held.via_router);
  }
}

void FaultyNetwork::send(const std::string& host,
                         std::span<const std::uint8_t> packet,
                         bool via_router) {
  // Knobs are drawn in a fixed order; identical plans and seeds on two
  // wrappers therefore transform identical traffic identically.
  if (plan_.loss > 0 && rng_.chance(plan_.loss)) return;
  if (plan_.corrupt > 0 && !packet.empty() && rng_.chance(plan_.corrupt)) {
    // Corrupt in the reused scratch slab; the caller's bytes stay intact.
    scratch_.assign(packet.begin(), packet.end());
    const std::size_t pos = rng_.below(scratch_.size());
    scratch_[pos] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
    packet = scratch_;
  }
  const bool duplicate = plan_.dup > 0 && rng_.chance(plan_.dup);
  if (plan_.delay > 0 && rng_.chance(plan_.delay)) {
    delayed_.push_back({host, {packet.begin(), packet.end()}, via_router});
    return;
  }
  if (plan_.reorder > 0 && rng_.chance(plan_.reorder)) {
    // Hold until the next transmission passes it (or flush).
    if (swap_hold_) {
      Held previous = std::move(*swap_hold_);
      swap_hold_ = Held{host, {packet.begin(), packet.end()}, via_router};
      put_on_wire(previous.host, previous.packet, previous.via_router);
    } else {
      swap_hold_ = Held{host, {packet.begin(), packet.end()}, via_router};
    }
    return;
  }
  // Duplication re-sends the same span — the network interns each copy
  // into its arena; no temporary vector is built here.
  put_on_wire(host, packet, via_router);
  if (duplicate) put_on_wire(host, packet, via_router);
}

void FaultyNetwork::flush() {
  if (swap_hold_) {
    Held held = std::move(*swap_hold_);
    swap_hold_.reset();
    put_on_wire(held.host, held.packet, held.via_router);
  }
  std::vector<Held> pending = std::move(delayed_);
  delayed_.clear();
  if (pending.empty()) return;
  if (net_.delivery_mode() == sim::DeliveryMode::kEvent) {
    // Delay faults are genuine future-time events on the event kernel,
    // not a post-hoc replay: the packet sits in the queue until the
    // simulated clock reaches its release time. Strictly increasing
    // release times keep each cascade whole (see header).
    std::uint64_t at = kDelayNs;
    for (const auto& held : pending) {
      net_.schedule_from_host(held.host, held.packet, at, held.via_router);
      at += kDelaySpacingNs;
    }
    net_.run();
    return;
  }
  for (const auto& held : pending) {
    put_on_wire(held.host, held.packet, held.via_router);
  }
}

}  // namespace sage::fuzz

// Seeded fault injection in front of sim::Network.
//
// FaultyNetwork wraps a Network and applies loss, duplication,
// reordering, delay, and byte corruption to packets before they reach the
// wire. Every decision is drawn from a fuzz::Rng the caller supplies, so
// two wrappers constructed with the same plan and the same-seeded rng
// make byte-identical decisions — that is how the differential harness
// subjects the generated-code network and the reference network to the
// exact same weather.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fuzz/rng.hpp"
#include "sim/network.hpp"

namespace sage::fuzz {

/// Per-knob probabilities in percent (0 = knob off). Parsed from the CLI
/// spec "loss=5,dup=10,reorder=20,delay=10,corrupt=5".
struct FaultPlan {
  unsigned loss = 0;     // drop the packet outright
  unsigned dup = 0;      // send it twice
  unsigned reorder = 0;  // hold it until after the next packet
  unsigned delay = 0;    // hold it until flush()
  unsigned corrupt = 0;  // xor one byte

  bool any() const { return loss + dup + reorder + delay + corrupt > 0; }
  std::string to_string() const;

  /// Parse a "knob=pct,knob=pct" spec; nullopt (and *error) on unknown
  /// knobs, missing '=', or pct > 100.
  static std::optional<FaultPlan> parse(const std::string& spec,
                                        std::string* error = nullptr);
};

class FaultyNetwork {
 public:
  FaultyNetwork(sim::Network& net, const FaultPlan& plan, Rng rng)
      : net_(net), plan_(plan), rng_(rng) {}

  /// Send from `host`, subject to the plan. `via_router` forces the first
  /// hop through the router (the Appendix A redirect setup). The caller
  /// keeps ownership of `packet`; corruption happens in a reused scratch
  /// slab, never by materializing a fresh vector per send.
  void send(const std::string& host, std::span<const std::uint8_t> packet,
            bool via_router = false);

  /// Release every held (reordered/delayed) packet, oldest first. Under
  /// the event kernel, delayed packets are released as real future-time
  /// events: each is scheduled kDelayNs into the simulated future, spaced
  /// kDelaySpacingNs apart so each release's cascade quiesces before the
  /// next begins — which is exactly the reference kernel's sequential
  /// release order, keeping verdict logs byte-stable across kernels.
  void flush();

  /// Simulated-time penalty of a delay fault (event kernel).
  static constexpr std::uint64_t kDelayNs = 1000000;  // 1ms
  /// Spacing between consecutive delayed releases (event kernel).
  static constexpr std::uint64_t kDelaySpacingNs = 1000;

 private:
  /// Held packets own their bytes — they must survive until the packet
  /// that overtakes them (reorder) or flush() (delay).
  struct Held {
    std::string host;
    std::vector<std::uint8_t> packet;
    bool via_router = false;
  };

  void put_on_wire(const std::string& host,
                   std::span<const std::uint8_t> packet, bool via_router);

  sim::Network& net_;
  FaultPlan plan_;
  Rng rng_;
  std::optional<Held> swap_hold_;  // reorder: goes out after the next send
  std::vector<Held> delayed_;      // delay: goes out at flush()
  /// Corruption scratch slab: assign() reuses its capacity, so a long
  /// fuzzing campaign corrupts thousands of packets with ~one allocation.
  std::vector<std::uint8_t> scratch_;
};

}  // namespace sage::fuzz

#include "fuzz/generator.hpp"

#include <algorithm>
#include <cstdlib>

#include "net/bfd.hpp"
#include "net/icmp.hpp"
#include "net/igmp.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/ntp.hpp"
#include "net/udp.hpp"
#include "util/bytes.hpp"

namespace sage::fuzz {

namespace schema = net::schema;

namespace {

/// Where one schema layer's header image sits inside a generated packet.
struct LayerAt {
  const schema::LayerSpec* spec = nullptr;
  std::size_t offset = 0;
};

/// Resolve the packet's layer layout from its bytes (ip at 0, the
/// protocol layer after the IP header; BFD frames are the layer itself).
std::vector<LayerAt> layout(const FuzzPacket& pkt) {
  const auto& reg = schema::SchemaRegistry::instance();
  std::vector<LayerAt> out;
  if (pkt.protocol == "bfd") {
    out.push_back({reg.layer("bfd"), 0});
    return out;
  }
  if (pkt.protocol == "dhcp") {
    out.push_back({reg.layer("dhcp"), 0});
    return out;
  }
  if (pkt.protocol == "icmp6") {
    out.push_back({reg.layer("ip6"), 0});
    const auto ip6 = net::Ipv6Header::parse(pkt.bytes);
    if (ip6 && ip6->next_header == net::kIpProtoIcmp6) {
      out.push_back({reg.layer("icmp6"), net::Ipv6Header::kHeaderBytes});
    }
    return out;
  }
  out.push_back({reg.layer("ip"), 0});
  const auto ip = net::Ipv4Header::parse(pkt.bytes);
  if (!ip) return out;
  const std::size_t hl = ip->header_length();
  if (pkt.protocol == "icmp") {
    out.push_back({reg.layer("icmp"), hl});
  } else if (pkt.protocol == "igmp") {
    out.push_back({reg.layer("igmp"), hl});
  } else if (pkt.protocol == "udp") {
    out.push_back({reg.layer("udp"), hl});
  } else if (pkt.protocol == "ntp") {
    out.push_back({reg.layer("udp"), hl});
    out.push_back({reg.layer("ntp"), hl + 8});
  }
  return out;
}

/// Mutable view of one layer's header image inside the packet; empty when
/// the packet ends before the layer starts.
std::span<std::uint8_t> layer_span(std::vector<std::uint8_t>& bytes,
                                   const LayerAt& at) {
  if (at.spec == nullptr || at.offset >= bytes.size()) return {};
  const std::size_t avail =
      std::min(bytes.size() - at.offset, at.spec->header_bytes);
  return {bytes.data() + at.offset, avail};
}

const schema::FieldSpec* find_field(const schema::LayerSpec& layer,
                                    std::string_view name) {
  for (const auto& f : layer.fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

/// All kScalar fields of a layer (mutation targets).
std::vector<const schema::FieldSpec*> scalar_fields(
    const schema::LayerSpec& layer) {
  std::vector<const schema::FieldSpec*> out;
  for (const auto& f : layer.fields) {
    if (f.kind == schema::FieldKind::kScalar) out.push_back(&f);
  }
  return out;
}

net::IpAddr client_addr() { return net::IpAddr(10, 0, 1, 100); }
net::IpAddr router_addr() { return net::IpAddr(10, 0, 1, 1); }
net::IpAddr server1_addr() { return net::IpAddr(192, 168, 2, 100); }
net::Ip6Addr client6_addr() {
  return net::Ip6Addr::from_groups(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1);
}
net::Ip6Addr server6_addr() {
  return net::Ip6Addr::from_groups(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2);
}

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::vector<std::uint8_t> wrap_ip(std::uint8_t protocol, net::IpAddr src,
                                  net::IpAddr dst, std::uint8_t ttl,
                                  std::uint8_t tos,
                                  std::span<const std::uint8_t> payload) {
  net::Ipv4Header ip;
  ip.protocol = protocol;
  ip.ttl = ttl;
  ip.tos = tos;
  ip.src = src;
  ip.dst = dst;
  return net::build_ipv4_packet(ip, payload);
}

/// One TLV option's position inside a packet with an options region:
/// `pos` is the type byte, `len` the full span including type + length.
struct TlvAt {
  std::size_t pos = 0;
  std::size_t len = 0;
};

/// Walk the well-formed prefix of the options region (grammar per the
/// layer: pad skipped, end stops, truncation stops). Mutations splice at
/// these boundaries so they perturb the TLV *grammar*, not random bytes.
std::vector<TlvAt> tlv_positions(const std::vector<std::uint8_t>& bytes,
                                 std::size_t options_offset,
                                 std::uint8_t pad_code, std::uint8_t end_code) {
  std::vector<TlvAt> out;
  std::size_t i = options_offset;
  while (i < bytes.size()) {
    const std::uint8_t type = bytes[i];
    if (type == pad_code) {
      ++i;
      continue;
    }
    if (type == end_code || i + 1 >= bytes.size()) break;
    const std::size_t value_len = bytes[i + 1];
    if (i + 2 + value_len > bytes.size()) break;
    out.push_back({i, 2 + value_len});
    i += 2 + value_len;
  }
  return out;
}

}  // namespace

const char* mutation_kind_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kValid: return "valid";
    case MutationKind::kBoundary: return "boundary";
    case MutationKind::kBitFlip: return "bitflip";
    case MutationKind::kFieldSwap: return "field-swap";
    case MutationKind::kTruncate: return "truncate";
    case MutationKind::kOversizePayload: return "oversize";
    case MutationKind::kBadChecksum: return "bad-checksum";
    case MutationKind::kBadVersion: return "bad-version";
    case MutationKind::kTlvInsert: return "tlv-insert";
    case MutationKind::kTlvDelete: return "tlv-delete";
    case MutationKind::kTlvDuplicate: return "tlv-duplicate";
    case MutationKind::kTlvLengthLie: return "tlv-length-lie";
    case MutationKind::kHandWritten: return "hand-written";
  }
  return "?";
}

PacketGenerator::PacketGenerator(std::string protocol)
    : protocol_(std::move(protocol)) {}

const std::vector<std::string>& PacketGenerator::known_protocols() {
  static const std::vector<std::string> kProtocols = {
      "icmp", "icmp6", "igmp", "ntp", "bfd", "udp", "dhcp"};
  return kProtocols;
}

FuzzPacket PacketGenerator::base_packet(Rng& rng) const {
  FuzzPacket pkt;
  pkt.protocol = protocol_;

  if (protocol_ == "icmp") {
    net::IcmpMessage icmp;
    icmp.type = net::IcmpType::kEcho;
    icmp.code = 0;
    icmp.set_identifier(static_cast<std::uint16_t>(rng.below(0x10000)));
    icmp.set_sequence_number(static_cast<std::uint16_t>(rng.below(0x10000)));
    net::IpAddr dst = router_addr();
    std::uint8_t ttl = 64;
    std::uint8_t tos = 0;
    switch (rng.below(11)) {
      case 0:
      case 1:
        pkt.scenario = "echo-router";
        icmp.payload = random_bytes(rng, rng.below(48));
        break;
      case 2:
        pkt.scenario = "echo-forward";
        dst = server1_addr();
        icmp.payload = random_bytes(rng, rng.below(48));
        break;
      case 3:
        pkt.scenario = "timestamp";
        icmp.type = net::IcmpType::kTimestamp;
        icmp.set_timestamps(
            static_cast<std::uint32_t>(rng.below(86400000)), 0, 0);
        break;
      case 4:
        pkt.scenario = "info";
        icmp.type = net::IcmpType::kInformationRequest;
        break;
      case 5:
        pkt.scenario = "unknown-subnet";
        dst = net::IpAddr(203, 0, 113,
                          static_cast<std::uint8_t>(1 + rng.below(250)));
        icmp.payload = random_bytes(rng, rng.below(16));
        break;
      case 6:
        pkt.scenario = "ttl-exceeded";
        dst = server1_addr();
        ttl = 1;
        icmp.payload = random_bytes(rng, rng.below(16));
        break;
      case 7:
        pkt.scenario = "tos-param-problem";
        dst = server1_addr();
        tos = static_cast<std::uint8_t>(1 + rng.below(255));
        pkt.require_tos_zero = true;
        break;
      case 8:
        pkt.scenario = "source-quench";
        dst = server1_addr();
        pkt.full_outbound = 1;
        break;
      case 9:
        pkt.scenario = "redirect";
        dst = net::IpAddr(10, 0, 1,
                          static_cast<std::uint8_t>(2 + rng.below(90)));
        pkt.via_router = true;
        break;
      default: {
        pkt.scenario = "udp-closed-port";
        net::UdpHeader udp;
        udp.src_port = static_cast<std::uint16_t>(33000 + rng.below(1000));
        udp.dst_port = 33434;
        const auto payload = random_bytes(rng, rng.below(16));
        pkt.bytes = wrap_ip(17, client_addr(), server1_addr(), 64, 0,
                            udp.serialize(client_addr(), server1_addr(),
                                          payload));
        return pkt;
      }
    }
    pkt.bytes = wrap_ip(1, client_addr(), dst, ttl, tos, icmp.serialize());
    return pkt;
  }

  if (protocol_ == "icmp6") {
    net::Ipv6Header ip;
    ip.src = client6_addr();
    ip.dst = server6_addr();
    switch (rng.below(8)) {
      case 0:
      case 1:
      case 2: {
        // A valid echo request: the receiver path (reply-by-mutation).
        pkt.scenario = "echo";
        ip.next_header = net::kIpProtoIcmp6;
        std::vector<std::uint8_t> msg(8, 0);
        msg[0] = 128;
        util::put_be16({msg.data() + 4, 2},
                       static_cast<std::uint16_t>(rng.below(0x10000)));
        util::put_be16({msg.data() + 6, 2},
                       static_cast<std::uint16_t>(rng.below(0x10000)));
        const auto data = random_bytes(rng, rng.below(48));
        msg.insert(msg.end(), data.begin(), data.end());
        const std::uint16_t ck = net::icmp6_checksum(ip.src, ip.dst, msg);
        util::put_be16({msg.data() + 2, 2}, ck);
        pkt.bytes = net::build_ipv6_packet(ip, msg);
        return pkt;
      }
      case 3:
        pkt.scenario = "hop-limit";
        ip.hop_limit = 1;
        break;
      case 4:
        // Oversized datagram: the Packet Too Big trigger, and the case
        // that exercises the error-excerpt cap at the minimum IPv6 MTU.
        pkt.scenario = "too-big";
        break;
      case 5:
        pkt.scenario = "param-problem";
        break;
      case 6:
        pkt.scenario = "addr-unreachable";
        ip.dst = net::Ip6Addr::from_groups(0x2001, 0xdb8, 0xdead, 0, 0, 0, 0,
                                           static_cast<std::uint16_t>(
                                               1 + rng.below(250)));
        break;
      default:
        pkt.scenario = "udp-closed-port";
        break;
    }
    // The error-sender triggers are all UDP-in-IPv6 datagrams; only size
    // and header knobs differ per scenario.
    ip.next_header = 17;
    const std::size_t payload_bytes = pkt.scenario == "too-big"
                                          ? 1400 + rng.below(600)
                                          : rng.below(64);
    std::vector<std::uint8_t> udp(8, 0);
    util::put_be16({udp.data() + 0, 2},
                   static_cast<std::uint16_t>(33000 + rng.below(1000)));
    util::put_be16({udp.data() + 2, 2}, 33434);
    const auto payload = random_bytes(rng, payload_bytes);
    udp.insert(udp.end(), payload.begin(), payload.end());
    util::put_be16({udp.data() + 4, 2},
                   static_cast<std::uint16_t>(udp.size()));
    pkt.bytes = net::build_ipv6_packet(ip, udp);
    return pkt;
  }

  if (protocol_ == "dhcp") {
    // A DHCPOFFER-shaped message: 240-byte fixed image (incl. the RFC
    // 2132 magic cookie) followed by a TLV options region.
    pkt.scenario = "offer";
    std::vector<std::uint8_t> msg(240, 0);
    msg[0] = 2;  // op = BOOTREPLY
    msg[1] = 1;  // htype = ethernet
    msg[2] = 6;  // hlen
    util::put_be32({msg.data() + 4, 4}, static_cast<std::uint32_t>(rng.next()));
    util::put_be32({msg.data() + 16, 4}, 0x0a000164);  // yiaddr
    util::put_be32({msg.data() + 236, 4}, 0x63825363);
    using schema::OptionsView;
    OptionsView::append_scalar(msg, 53, 2, 1);  // message type = offer
    if (rng.below(2) != 0) OptionsView::append_scalar(msg, 1, 0xffffff00, 4);
    if (rng.below(2) != 0) {
      OptionsView::append_scalar(msg, 51,
                                 static_cast<long>(rng.below(1u << 24)), 4);
    }
    if (rng.below(2) != 0) OptionsView::append_scalar(msg, 54, 0x0a000101, 4);
    if (rng.below(2) != 0) {
      OptionsView::append(msg, 55, random_bytes(rng, 1 + rng.below(6)));
    }
    OptionsView::append_end(msg);
    pkt.bytes = std::move(msg);
    return pkt;
  }

  if (protocol_ == "igmp") {
    pkt.scenario = "membership-report";
    net::IgmpMessage igmp;
    igmp.version = 1;
    igmp.type = net::IgmpType::kHostMembershipReport;
    igmp.group_address = net::IpAddr(
        224, 0, 0, static_cast<std::uint8_t>(1 + rng.below(250)));
    pkt.bytes = wrap_ip(2, client_addr(), igmp.group_address, 1, 0,
                        igmp.serialize());
    return pkt;
  }

  if (protocol_ == "ntp" || protocol_ == "udp") {
    net::UdpHeader udp;
    udp.src_port = static_cast<std::uint16_t>(49152 + rng.below(1000));
    std::vector<std::uint8_t> payload;
    if (protocol_ == "ntp") {
      pkt.scenario = "client-request";
      udp.dst_port = net::kNtpPort;
      net::NtpPacket ntp;
      ntp.version = 1;
      ntp.mode = net::NtpMode::kClient;
      ntp.stratum = static_cast<std::uint8_t>(rng.below(16));
      ntp.poll = 6;
      ntp.precision = -6;
      ntp.root_delay = static_cast<std::uint32_t>(rng.next());
      ntp.root_dispersion = static_cast<std::uint32_t>(rng.next());
      ntp.reference_clock_id = static_cast<std::uint32_t>(rng.next());
      ntp.reference_timestamp.seconds = static_cast<std::uint32_t>(rng.next());
      ntp.originate_timestamp.seconds = static_cast<std::uint32_t>(rng.next());
      ntp.receive_timestamp.seconds = static_cast<std::uint32_t>(rng.next());
      ntp.transmit_timestamp.seconds = static_cast<std::uint32_t>(rng.next());
      payload = ntp.serialize();
    } else {
      static const std::uint16_t kPorts[] = {33434, 123, 7};
      pkt.scenario = "datagram";
      udp.dst_port = kPorts[rng.below(3)];
      payload = random_bytes(rng, rng.below(32));
    }
    pkt.bytes = wrap_ip(17, client_addr(), server1_addr(), 64, 0,
                        udp.serialize(client_addr(), server1_addr(), payload));
    return pkt;
  }

  if (protocol_ == "bfd") {
    pkt.scenario = "control";
    net::BfdControlPacket bfd;
    bfd.version = 1;
    bfd.state = static_cast<net::BfdState>(rng.below(4));
    bfd.diag = static_cast<net::BfdDiag>(rng.below(8));
    bfd.detect_mult = static_cast<std::uint8_t>(1 + rng.below(5));
    bfd.my_discriminator = static_cast<std::uint32_t>(rng.next());
    bfd.your_discriminator = static_cast<std::uint32_t>(rng.next());
    bfd.desired_min_tx_interval = static_cast<std::uint32_t>(rng.below(1u << 24));
    bfd.required_min_rx_interval = static_cast<std::uint32_t>(rng.below(1u << 24));
    pkt.bytes = bfd.serialize();
    return pkt;
  }

  pkt.scenario = "unknown-protocol";
  return pkt;
}

void PacketGenerator::mutate(FuzzPacket& pkt, Rng& rng) const {
  if (pkt.bytes.empty()) return;
  const auto layers = layout(pkt);
  // ~35% of inputs stay valid so agreeing-reply coverage never starves.
  if (rng.below(100) < 35) return;
  // Layers with a TLV options region draw from the widened taxonomy; the
  // fixed-header protocols keep the original 7-kind stream so their
  // pinned digests are unchanged.
  const auto* tlv_layer =
      pkt.protocol == "dhcp" ? schema::SchemaRegistry::instance().layer("dhcp")
                             : nullptr;
  const bool has_tlv_region =
      tlv_layer != nullptr && tlv_layer->has_options &&
      pkt.bytes.size() > tlv_layer->options_offset;
  pkt.mutation =
      static_cast<MutationKind>(1 + rng.below(has_tlv_region ? 11 : 7));

  switch (pkt.mutation) {
    case MutationKind::kBoundary: {
      const auto& at = layers[rng.below(layers.size())];
      auto img = layer_span(pkt.bytes, at);
      if (at.spec == nullptr) return;
      const auto fields = scalar_fields(*at.spec);
      if (fields.empty()) return;
      const auto* f = fields[rng.below(fields.size())];
      const std::uint64_t max =
          f->bit_width >= 64 ? ~0ULL : (1ULL << f->bit_width) - 1;
      const std::uint64_t kBoundaries[] = {0, 1, max, max - 1,
                                           1ULL << (f->bit_width - 1)};
      schema::SchemaRegistry::write_scalar(
          *f, img, static_cast<long>(kBoundaries[rng.below(5)]));
      return;
    }
    case MutationKind::kBitFlip: {
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t bit = rng.below(pkt.bytes.size() * 8);
        pkt.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      return;
    }
    case MutationKind::kFieldSwap: {
      const auto& at = layers[rng.below(layers.size())];
      auto img = layer_span(pkt.bytes, at);
      if (at.spec == nullptr) return;
      const auto fields = scalar_fields(*at.spec);
      if (fields.size() < 2) return;
      const auto* a = fields[rng.below(fields.size())];
      const auto* b = fields[rng.below(fields.size())];
      const auto va = schema::SchemaRegistry::read_scalar(*a, img);
      const auto vb = schema::SchemaRegistry::read_scalar(*b, img);
      if (!va || !vb) return;
      schema::SchemaRegistry::write_scalar(*a, img, *vb);
      schema::SchemaRegistry::write_scalar(*b, img, *va);
      return;
    }
    case MutationKind::kTruncate: {
      if (pkt.bytes.size() <= 1) return;
      pkt.bytes.resize(1 + rng.below(pkt.bytes.size() - 1));
      return;
    }
    case MutationKind::kOversizePayload: {
      const auto extra = random_bytes(rng, 1 + rng.below(600));
      pkt.bytes.insert(pkt.bytes.end(), extra.begin(), extra.end());
      return;
    }
    case MutationKind::kBadChecksum: {
      // Corrupt the innermost declared checksum field; fall back to the
      // IP header checksum (BFD declares none -> flip a byte instead).
      for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
        if (it->spec == nullptr) continue;
        const auto* f = find_field(*it->spec, "checksum");
        if (f == nullptr) continue;
        auto img = layer_span(pkt.bytes, *it);
        const auto v = schema::SchemaRegistry::read_scalar(*f, img);
        if (!v) return;
        schema::SchemaRegistry::write_scalar(*f, img, *v ^ 0x5a5a);
        return;
      }
      pkt.bytes[rng.below(pkt.bytes.size())] ^= 0xa5;
      return;
    }
    case MutationKind::kBadVersion: {
      // Innermost declared version field first (ntp/igmp/bfd), falling
      // back to ip.version.
      for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
        if (it->spec == nullptr) continue;
        const auto* f = find_field(*it->spec, "version");
        if (f == nullptr) continue;
        auto img = layer_span(pkt.bytes, *it);
        schema::SchemaRegistry::write_scalar(
            *f, img, static_cast<long>(rng.below(1ULL << f->bit_width)));
        return;
      }
      return;
    }
    case MutationKind::kTlvInsert:
    case MutationKind::kTlvDelete:
    case MutationKind::kTlvDuplicate:
    case MutationKind::kTlvLengthLie: {
      if (!has_tlv_region) return;
      const auto options = tlv_positions(pkt.bytes, tlv_layer->options_offset,
                                         tlv_layer->option_pad,
                                         tlv_layer->option_end);
      if (pkt.mutation == MutationKind::kTlvInsert) {
        // Splice a fresh option at a random option boundary (including
        // the region start and the end of the well-formed prefix).
        std::size_t at = tlv_layer->options_offset;
        if (!options.empty()) {
          const std::size_t slot = rng.below(options.size() + 1);
          at = slot == options.size()
                   ? options.back().pos + options.back().len
                   : options[slot].pos;
        }
        const auto value = random_bytes(rng, rng.below(9));
        std::vector<std::uint8_t> option;
        option.push_back(static_cast<std::uint8_t>(1 + rng.below(254)));
        option.push_back(static_cast<std::uint8_t>(value.size()));
        option.insert(option.end(), value.begin(), value.end());
        pkt.bytes.insert(pkt.bytes.begin() + static_cast<long>(at),
                         option.begin(), option.end());
        return;
      }
      if (options.empty()) return;
      const auto& target = options[rng.below(options.size())];
      if (pkt.mutation == MutationKind::kTlvDelete) {
        pkt.bytes.erase(
            pkt.bytes.begin() + static_cast<long>(target.pos),
            pkt.bytes.begin() + static_cast<long>(target.pos + target.len));
        return;
      }
      if (pkt.mutation == MutationKind::kTlvDuplicate) {
        const std::vector<std::uint8_t> copy(
            pkt.bytes.begin() + static_cast<long>(target.pos),
            pkt.bytes.begin() + static_cast<long>(target.pos + target.len));
        pkt.bytes.insert(
            pkt.bytes.begin() + static_cast<long>(target.pos + target.len),
            copy.begin(), copy.end());
        return;
      }
      // kTlvLengthLie: the length byte claims more bytes than remain
      // after it — the malformation OptionsView must flag, never read
      // through.
      const std::size_t remaining = pkt.bytes.size() - target.pos - 2;
      pkt.bytes[target.pos + 1] = static_cast<std::uint8_t>(
          std::min<std::size_t>(255, remaining + 1 + rng.below(100)));
      return;
    }
    default:
      return;
  }
}

FuzzPacket PacketGenerator::generate(Rng& rng) const {
  FuzzPacket pkt = base_packet(rng);
  mutate(pkt, rng);
  return pkt;
}

// ---- round-trip helpers ---------------------------------------------------

std::vector<std::uint8_t> random_layer_image(const schema::LayerSpec& layer,
                                             Rng& rng) {
  std::vector<std::uint8_t> image(layer.header_bytes, 0);
  for (const auto& f : layer.fields) {
    if (f.kind != schema::FieldKind::kScalar) continue;
    schema::SchemaRegistry::write_scalar(f, image,
                                         static_cast<long>(rng.next()));
  }
  return image;
}

std::vector<std::uint8_t> reserialize_layer(
    const schema::LayerSpec& layer, std::span<const std::uint8_t> image) {
  std::vector<std::uint8_t> out(layer.header_bytes, 0);
  for (const auto& f : layer.fields) {
    if (f.kind != schema::FieldKind::kScalar) continue;
    const auto v = schema::SchemaRegistry::read_scalar(f, image);
    if (v) schema::SchemaRegistry::write_scalar(f, out, *v);
  }
  return out;
}

RebuiltImages images_from_decode(const std::vector<std::string>& lines) {
  const auto& reg = schema::SchemaRegistry::instance();
  RebuiltImages out;
  for (const auto& line : lines) {
    const auto dot = line.find('.');
    const auto eq = line.find(" = ");
    if (dot == std::string::npos || eq == std::string::npos || dot > eq) {
      out.complete = false;
      continue;
    }
    const std::string layer_name = line.substr(0, dot);
    const std::string field_name = line.substr(dot + 1, eq - dot - 1);
    const std::string value_text = line.substr(eq + 3);
    const auto* layer = reg.layer(layer_name);
    const auto* field = reg.field(layer_name, field_name);
    if (layer == nullptr || field == nullptr) {
      out.complete = false;
      continue;
    }
    char* end = nullptr;
    const long value = std::strtol(value_text.c_str(), &end, 10);
    if (end == value_text.c_str() || *end != '\0') {
      out.complete = false;  // "<short read>" and friends
      continue;
    }
    auto* entry = [&]() -> std::vector<std::uint8_t>* {
      for (auto& [name, image] : out.layers) {
        if (name == layer_name) return &image;
      }
      out.layers.emplace_back(layer_name,
                              std::vector<std::uint8_t>(layer->header_bytes, 0));
      return &out.layers.back().second;
    }();
    schema::SchemaRegistry::write_scalar(*field, *entry, value);
  }
  return out;
}

}  // namespace sage::fuzz

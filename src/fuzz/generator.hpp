// Structure-aware packet generation from the packet-schema registry.
//
// Instead of mutating opaque byte blobs, the generator builds valid
// packets for each protocol's Appendix-A scenarios and then mutates them
// *through the schema*: boundary values land exactly on a field's bit
// range, field swaps exchange two declared fields, checksum/version
// corruption targets the declared checksum/version fields. This is the
// grammar-based-fuzzing idea of Jero et al. applied to the registry that
// PR 3 already derives codegen and the simulator from — the fuzzer
// cannot drift from the formats the code under test speaks.
//
// Everything is driven by fuzz::Rng only: the same seed yields the same
// byte sequence on any thread count or platform.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/rng.hpp"
#include "net/schema.hpp"

namespace sage::fuzz {

/// Mutation taxonomy (docs/FUZZING.md describes each class).
enum class MutationKind : std::uint8_t {
  kValid,            // well-formed scenario packet, no mutation
  kBoundary,         // one schema field set to a boundary value
  kBitFlip,          // 1..8 random bit flips anywhere in the packet
  kFieldSwap,        // two schema fields of one layer exchange values
  kTruncate,         // packet cut short (possibly mid-header)
  kOversizePayload,  // random bytes appended past the declared end
  kBadChecksum,      // declared checksum field xor-corrupted
  kBadVersion,       // declared version field randomized
  // TLV-grammar mutations (layers with an options region, i.e. DHCP).
  // Appended after the fixed-header kinds so the legacy protocols' pinned
  // mutation streams (1 + below(7)) are unchanged.
  kTlvInsert,        // a fresh random option spliced at an option boundary
  kTlvDelete,        // one existing option removed
  kTlvDuplicate,     // one existing option repeated back-to-back
  kTlvLengthLie,     // an option's length byte claims bytes past the end
  kHandWritten,      // corpus regression case (not generator-produced)
};

const char* mutation_kind_name(MutationKind kind);

/// One generated input: raw bytes plus the injection context the
/// differential harness must reproduce on both networks.
struct FuzzPacket {
  std::string protocol;  // lowercase: icmp icmp6 igmp ntp bfd udp dhcp
  /// IP/IPv6 packet; bfd: raw control frame; dhcp: raw BOOTP message.
  std::vector<std::uint8_t> bytes;
  MutationKind mutation = MutationKind::kValid;
  std::string scenario = "base";
  bool via_router = false;          // send_from_host_via_router (redirect)
  bool require_tos_zero = false;    // Appendix A parameter-problem router
  std::optional<std::size_t> full_outbound;  // Appendix A source-quench
};

class PacketGenerator {
 public:
  /// `protocol` is a lowercase CLI name; known_protocols() lists them.
  explicit PacketGenerator(std::string protocol);

  const std::string& protocol() const { return protocol_; }

  /// Deterministic function of the rng state: scenario, base packet,
  /// mutation.
  FuzzPacket generate(Rng& rng) const;

  static const std::vector<std::string>& known_protocols();

 private:
  FuzzPacket base_packet(Rng& rng) const;
  void mutate(FuzzPacket& pkt, Rng& rng) const;

  std::string protocol_;
};

// ---- round-trip property helpers (tests/test_fuzz.cpp) --------------------

/// A header image with every kScalar field of `layer` set to a seeded
/// random value (written in spec order; bits no field covers stay zero).
std::vector<std::uint8_t> random_layer_image(const net::schema::LayerSpec& layer,
                                             Rng& rng);

/// Read every kScalar field of `layer` from `image` and write the values
/// into a fresh zero image in spec order. For an image produced by
/// random_layer_image (or any real header) the result is byte-identical.
std::vector<std::uint8_t> reserialize_layer(const net::schema::LayerSpec& layer,
                                            std::span<const std::uint8_t> image);

/// Parse "layer.field = value" decode lines (PacketInspector::decode /
/// SchemaRegistry::decode_layer output) back into per-layer header
/// images, writing fields in line order. Lines that are not parseable
/// numeric field lines (e.g. "<short read>") are skipped and reported via
/// the bool.
struct RebuiltImages {
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> layers;
  bool complete = true;  // false if any line could not be re-encoded
};
RebuiltImages images_from_decode(const std::vector<std::string>& lines);

}  // namespace sage::fuzz

// Deterministic PRNG for the fuzzing subsystem.
//
// SplitMix64: 64-bit state, one multiply-xorshift round per draw. Chosen
// over <random> engines because the standard distributions are
// implementation-defined — the same seed must produce the same packet
// bytes on every toolchain, and across 1/2/8 worker threads. fork() makes
// that thread-independence structural: every iteration derives its own
// stream from (seed, index), so work stealing cannot reorder draws.
#pragma once

#include <cstdint>

namespace sage::fuzz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 random bits (SplitMix64 step).
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-ish value in [0, bound). bound must be > 0. The modulo bias
  /// is irrelevant here — determinism is the contract, not uniformity.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// True with probability pct/100.
  bool chance(unsigned pct) { return below(100) < pct; }

  /// Derive an independent stream for sub-task `stream` without
  /// disturbing this generator's state (used per fuzz iteration).
  Rng fork(std::uint64_t stream) const {
    Rng child(state_ ^ (stream * 0xd6e8feb86659fd93ULL) ^
              0xa5a5a5a55a5a5a5aULL);
    (void)child.next();  // decouple from the raw seed
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace sage::fuzz

// Deterministic PRNG for the fuzzing subsystem.
//
// The implementation (SplitMix64 with per-iteration fork for
// thread-independent streams) lives in util/rng.hpp so the simulator's
// topology and soak-traffic generators can share it; this alias keeps the
// fuzz-side spelling stable.
#pragma once

#include "util/rng.hpp"

namespace sage::fuzz {

using Rng = util::SplitMix64;

}  // namespace sage::fuzz

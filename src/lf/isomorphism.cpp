#include "lf/isomorphism.hpp"

#include <algorithm>

namespace sage::lf {

LfNode flatten_associative(const LfNode& root,
                           const AlgebraicProperties& props) {
  if (root.kind != LfNode::Kind::kPredicate) return root;

  LfNode out;
  out.kind = LfNode::Kind::kPredicate;
  out.label = root.label;
  const bool assoc = props.associative.count(root.label) != 0;
  for (const auto& arg : root.args) {
    LfNode flat = flatten_associative(arg, props);
    if (assoc && flat.is_predicate(root.label)) {
      // Splice the child's arguments into ours.
      for (auto& g : flat.args) out.args.push_back(std::move(g));
    } else {
      out.args.push_back(std::move(flat));
    }
  }
  return out;
}

namespace {

std::string encode(const LfNode& node, const AlgebraicProperties& props) {
  switch (node.kind) {
    case LfNode::Kind::kNumber:
      return "#" + std::to_string(node.number);
    case LfNode::Kind::kString:
      return "$" + node.label;
    case LfNode::Kind::kPredicate: {
      std::vector<std::string> parts;
      parts.reserve(node.args.size());
      for (const auto& a : node.args) parts.push_back(encode(a, props));
      if (props.commutative.count(node.label) != 0) {
        std::sort(parts.begin(), parts.end());
      }
      std::string out = "(" + node.label;
      for (const auto& p : parts) {
        out += ' ';
        out += p;
      }
      out += ')';
      return out;
    }
  }
  return "?";
}

}  // namespace

std::string canonical_encoding(const LfNode& root,
                               const AlgebraicProperties& props) {
  return encode(flatten_associative(root, props), props);
}

bool isomorphic(const LfNode& a, const LfNode& b,
                const AlgebraicProperties& props) {
  return canonical_encoding(a, props) == canonical_encoding(b, props);
}

}  // namespace sage::lf

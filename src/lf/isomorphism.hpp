// Tree isomorphism modulo associativity — the substrate of SAGE's
// associativity check (§4.2).
//
// The paper: "If predicates are associative, their logical form trees
// will be isomorphic. SAGE detects associativity using a standard graph
// isomorphism algorithm." For sentence H ("A of B of C") the parser emits
// two groupings, (A of B) of C and A of (B of C); since @Of is
// associative the two trees denote the same form, and only one is kept.
//
// We implement the check as canonicalization (an AHU-style canonical
// encoding): associative predicates are flattened into n-ary nodes, and
// predicates declared commutative additionally have their children
// sorted. Two trees are isomorphic modulo the declared properties iff
// their canonical encodings are equal — equivalent to running pairwise
// isomorphism but O(n log n) per tree.
#pragma once

#include <set>
#include <string>

#include "lf/logical_form.hpp"

namespace sage::lf {

/// Which predicates enjoy which algebraic properties. Defaults match the
/// corpus: @Of is associative; @And/@Or are associative and commutative.
struct AlgebraicProperties {
  std::set<std::string> associative = {std::string(pred::kOf),
                                       std::string(pred::kAnd),
                                       std::string(pred::kOr)};
  std::set<std::string> commutative = {std::string(pred::kAnd),
                                       std::string(pred::kOr)};
};

/// Flatten nested occurrences of associative predicates:
/// @Of(@Of(a,b),c) and @Of(a,@Of(b,c)) both become @Of(a,b,c).
LfNode flatten_associative(const LfNode& root, const AlgebraicProperties& props);

/// Canonical encoding: flattened, with commutative children sorted by
/// their own canonical encodings. Equal strings <=> isomorphic trees
/// (modulo the declared properties).
std::string canonical_encoding(const LfNode& root,
                               const AlgebraicProperties& props);

/// True if `a` and `b` are isomorphic modulo associativity/commutativity.
bool isomorphic(const LfNode& a, const LfNode& b,
                const AlgebraicProperties& props = {});

}  // namespace sage::lf

#include "lf/logical_form.hpp"

#include <functional>

#include "util/strings.hpp"

namespace sage::lf {

bool LfNode::operator==(const LfNode& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kNumber:
      return number == other.number;
    case Kind::kString:
      return label == other.label;
    case Kind::kPredicate:
      return label == other.label && args == other.args;
  }
  return false;
}

std::size_t LfNode::size() const {
  std::size_t n = 1;
  for (const auto& a : args) n += a.size();
  return n;
}

std::size_t LfNode::depth() const {
  std::size_t d = 0;
  for (const auto& a : args) d = std::max(d, a.depth());
  return d + 1;
}

namespace {

/// Append-style renderer: one output buffer for the whole tree instead
/// of a temporary string per node (to_string is on the pipeline's
/// dedup paths, where forms are rendered per candidate).
void append_node(const LfNode& node, std::string& out) {
  switch (node.kind) {
    case LfNode::Kind::kNumber:
      out += "@Num(";
      out += std::to_string(node.number);
      out += ')';
      return;
    case LfNode::Kind::kString:
      out += '"';
      out += node.label;
      out += '"';
      return;
    case LfNode::Kind::kPredicate:
      out += node.label;
      out += '(';
      for (std::size_t i = 0; i < node.args.size(); ++i) {
        if (i != 0) out += ", ";
        append_node(node.args[i], out);
      }
      out += ')';
      return;
  }
  out += '?';
}

}  // namespace

std::string LfNode::to_string() const {
  std::string out;
  out.reserve(32);
  append_node(*this, out);
  return out;
}

void LfNode::append_to(std::string& out) const { append_node(*this, out); }

namespace {

/// Tiny recursive-descent parser for the to_string grammar:
///   node  := '@Num' '(' [-]digits ')'
///          | '@Name' '(' [node (',' node)*] ')'
///          | '"' chars '"'
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<LfNode> parse() {
    auto node = parse_node();
    skip_ws();
    if (node && pos_ != text_.size()) return std::nullopt;  // trailing junk
    return node;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<LfNode> parse_node() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    if (text_[pos_] == '"') return parse_string();
    if (text_[pos_] == '@') return parse_predicate();
    return std::nullopt;
  }

  std::optional<LfNode> parse_string() {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      value += text_[pos_++];
    }
    if (pos_ >= text_.size()) return std::nullopt;  // unterminated
    ++pos_;                                         // closing quote
    return LfNode::str(std::move(value));
  }

  std::optional<LfNode> parse_predicate() {
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '@' || text_[pos_] == '_')) {
      name += text_[pos_++];
    }
    if (name.size() < 2) return std::nullopt;
    if (!eat('(')) return std::nullopt;

    if (name == "@Num") {
      skip_ws();
      std::string digits;
      if (pos_ < text_.size() && text_[pos_] == '-') digits += text_[pos_++];
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        digits += text_[pos_++];
      }
      if (digits.empty() || digits == "-") return std::nullopt;
      if (!eat(')')) return std::nullopt;
      return LfNode::num(std::stol(digits));
    }

    std::vector<LfNode> args;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ')') {
      ++pos_;
      return LfNode::predicate(std::move(name), std::move(args));
    }
    while (true) {
      auto arg = parse_node();
      if (!arg) return std::nullopt;
      args.push_back(std::move(*arg));
      if (eat(')')) break;
      if (!eat(',')) return std::nullopt;
    }
    return LfNode::predicate(std::move(name), std::move(args));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void collect_predicates_impl(const LfNode& node, std::vector<std::string>& out) {
  if (node.kind == LfNode::Kind::kPredicate) {
    if (std::find(out.begin(), out.end(), node.label) == out.end()) {
      out.push_back(node.label);
    }
    for (const auto& a : node.args) collect_predicates_impl(a, out);
  }
}

}  // namespace

std::optional<LogicalForm> parse_logical_form(std::string_view text) {
  return Parser(text).parse();
}

std::vector<std::string> collect_predicates(const LfNode& root) {
  std::vector<std::string> out;
  collect_predicates_impl(root, out);
  return out;
}

std::uint64_t structural_hash(const LfNode& root) {
  // FNV-1a over a canonical serialization.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
  };
  switch (root.kind) {
    case LfNode::Kind::kNumber:
      mix("#");
      mix(std::to_string(root.number));
      break;
    case LfNode::Kind::kString:
      mix("$");
      mix(root.label);
      break;
    case LfNode::Kind::kPredicate: {
      mix("(");
      mix(root.label);
      for (const auto& a : root.args) {
        h ^= structural_hash(a) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      mix(")");
      break;
    }
  }
  return h;
}

}  // namespace sage::lf

// Logical forms (LFs): SAGE's intermediate representation.
//
// §2.2/§4 of the paper: the semantic parser outputs zero or more logical
// forms per sentence; each LF is a tree of nested predicates whose
// internal nodes are predicates (@Is, @If, @And, @Of, @Action, ...) and
// whose leaves are scalar arguments (field names, numbers). Multiple LFs
// for one sentence represent ambiguity; the disambiguation stage winnows
// them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sage::lf {

/// Well-known predicate names. Kept as strings in the tree (the lexicon
/// can introduce new predicates, per §6.4 where BFD adds 10), but the
/// common ones get named constants so call sites don't typo them.
namespace pred {
inline constexpr std::string_view kIs = "@Is";
inline constexpr std::string_view kIf = "@If";
inline constexpr std::string_view kAnd = "@And";
inline constexpr std::string_view kOr = "@Or";
inline constexpr std::string_view kOf = "@Of";
inline constexpr std::string_view kIn = "@In";
inline constexpr std::string_view kAction = "@Action";
inline constexpr std::string_view kCompute = "@Compute";
inline constexpr std::string_view kNum = "@Num";
inline constexpr std::string_view kMay = "@May";
inline constexpr std::string_view kMust = "@Must";
inline constexpr std::string_view kNot = "@Not";
inline constexpr std::string_view kAdvBefore = "@AdvBefore";
inline constexpr std::string_view kAdvComment = "@AdvComment";
inline constexpr std::string_view kSelect = "@Select";
inline constexpr std::string_view kDiscard = "@Discard";
inline constexpr std::string_view kSend = "@Send";
inline constexpr std::string_view kCease = "@Cease";
inline constexpr std::string_view kNonzero = "@Nonzero";
inline constexpr std::string_view kCase = "@Case";
inline constexpr std::string_view kWhen = "@When";
inline constexpr std::string_view kGreater = "@Greater";
inline constexpr std::string_view kLess = "@Less";
}  // namespace pred

/// One node of a logical form.
struct LfNode {
  enum class Kind : std::uint8_t {
    kPredicate,  // label = predicate name, args = children
    kString,     // label = the string value (field name, function name, ...)
    kNumber,     // number = numeric literal
  };

  Kind kind = Kind::kString;
  std::string label;
  long number = 0;
  std::vector<LfNode> args;

  static LfNode predicate(std::string name, std::vector<LfNode> args = {}) {
    LfNode n;
    n.kind = Kind::kPredicate;
    n.label = std::move(name);
    n.args = std::move(args);
    return n;
  }
  static LfNode str(std::string value) {
    LfNode n;
    n.kind = Kind::kString;
    n.label = std::move(value);
    return n;
  }
  static LfNode num(long value) {
    LfNode n;
    n.kind = Kind::kNumber;
    n.number = value;
    return n;
  }

  bool is_predicate(std::string_view name) const {
    return kind == Kind::kPredicate && label == name;
  }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  bool operator==(const LfNode& other) const;

  /// Number of nodes in the subtree (for statistics/benches).
  std::size_t size() const;

  /// Maximum nesting depth.
  std::size_t depth() const;

  /// Render as "@Is("checksum", @Num(0))".
  std::string to_string() const;

  /// Append the to_string rendering to `out` — lets dedup loops reuse
  /// one buffer instead of materializing a string per candidate.
  void append_to(std::string& out) const;
};

/// A complete logical form for one sentence.
using LogicalForm = LfNode;

/// Parse the textual form produced by LfNode::to_string. Used by golden
/// tests and the corpus annotations. Returns nullopt on syntax errors.
std::optional<LogicalForm> parse_logical_form(std::string_view text);

/// Collect the distinct predicate names used in a tree.
std::vector<std::string> collect_predicates(const LfNode& root);

/// Deterministic structural hash (identical trees hash equal).
std::uint64_t structural_hash(const LfNode& root);

}  // namespace sage::lf

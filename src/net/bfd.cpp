#include "net/bfd.hpp"

#include "util/bytes.hpp"

namespace sage::net {

std::string bfd_state_name(BfdState s) {
  switch (s) {
    case BfdState::kAdminDown: return "AdminDown";
    case BfdState::kDown: return "Down";
    case BfdState::kInit: return "Init";
    case BfdState::kUp: return "Up";
  }
  return "?";
}

std::vector<std::uint8_t> BfdControlPacket::serialize() const {
  std::vector<std::uint8_t> out(24, 0);
  out[0] = static_cast<std::uint8_t>(((version & 0x7) << 5) |
                                     (static_cast<std::uint8_t>(diag) & 0x1f));
  out[1] = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(state) << 6) | (poll ? 0x20 : 0) |
      (final ? 0x10 : 0) | (control_plane_independent ? 0x08 : 0) |
      (authentication_present ? 0x04 : 0) | (demand ? 0x02 : 0) |
      (multipoint ? 0x01 : 0));
  out[2] = detect_mult;
  out[3] = 24;
  util::put_be32({out.data() + 4, 4}, my_discriminator);
  util::put_be32({out.data() + 8, 4}, your_discriminator);
  util::put_be32({out.data() + 12, 4}, desired_min_tx_interval);
  util::put_be32({out.data() + 16, 4}, required_min_rx_interval);
  util::put_be32({out.data() + 20, 4}, required_min_echo_rx_interval);
  return out;
}

std::optional<BfdControlPacket> BfdControlPacket::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < 24) return std::nullopt;
  BfdControlPacket p;
  p.version = data[0] >> 5;
  p.diag = static_cast<BfdDiag>(data[0] & 0x1f);
  p.state = static_cast<BfdState>(data[1] >> 6);
  p.poll = (data[1] & 0x20) != 0;
  p.final = (data[1] & 0x10) != 0;
  p.control_plane_independent = (data[1] & 0x08) != 0;
  p.authentication_present = (data[1] & 0x04) != 0;
  p.demand = (data[1] & 0x02) != 0;
  p.multipoint = (data[1] & 0x01) != 0;
  p.detect_mult = data[2];
  p.length = data[3];
  p.my_discriminator = util::get_be32(data.subspan(4, 4));
  p.your_discriminator = util::get_be32(data.subspan(8, 4));
  p.desired_min_tx_interval = util::get_be32(data.subspan(12, 4));
  p.required_min_rx_interval = util::get_be32(data.subspan(16, 4));
  p.required_min_echo_rx_interval = util::get_be32(data.subspan(20, 4));
  return p;
}

}  // namespace sage::net

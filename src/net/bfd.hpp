// BFD (RFC 5880) control packet (§4.1) and session state variables
// (§6.8 of the RFC). SAGE §6.4 parses the §6.8.6 state-management
// sentences; the generated logical forms update *these* variables when a
// control packet is received, and the interop test checks the resulting
// session behaviour (three-way state machine Down -> Init -> Up).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sage::net {

/// The well-known BFD single-hop control port (RFC 5881).
inline constexpr std::uint16_t kBfdControlPort = 3784;

/// BFD session states (RFC 5880 §4.1 "Sta").
enum class BfdState : std::uint8_t {
  kAdminDown = 0,
  kDown = 1,
  kInit = 2,
  kUp = 3,
};

std::string bfd_state_name(BfdState s);

/// BFD diagnostic codes (subset used by the corpus sentences).
enum class BfdDiag : std::uint8_t {
  kNone = 0,
  kControlDetectionTimeExpired = 1,
  kNeighborSignaledSessionDown = 3,
  kAdministrativelyDown = 7,
};

/// RFC 5880 §4.1 Mandatory Section of a BFD Control packet (24 bytes
/// without authentication).
struct BfdControlPacket {
  std::uint8_t version = 1;        // 3 bits
  BfdDiag diag = BfdDiag::kNone;   // 5 bits
  BfdState state = BfdState::kDown;  // 2 bits
  bool poll = false;               // P
  bool final = false;              // F
  bool control_plane_independent = false;  // C
  bool authentication_present = false;     // A
  bool demand = false;             // D
  bool multipoint = false;         // M (must be zero)
  std::uint8_t detect_mult = 3;
  std::uint8_t length = 24;        // filled by serialize()
  std::uint32_t my_discriminator = 0;
  std::uint32_t your_discriminator = 0;
  std::uint32_t desired_min_tx_interval = 1000000;   // microseconds
  std::uint32_t required_min_rx_interval = 1000000;  // microseconds
  std::uint32_t required_min_echo_rx_interval = 0;

  std::vector<std::uint8_t> serialize() const;
  static std::optional<BfdControlPacket> parse(std::span<const std::uint8_t> data);
};

/// RFC 5880 §6.8.1 state variables for one session. Names follow the
/// RFC's `bfd.*` convention so the state-management sentences in the
/// corpus resolve directly onto members (via the static context
/// dictionary in src/runtime).
struct BfdSessionState {
  BfdState session_state = BfdState::kDown;       // bfd.SessionState
  BfdState remote_session_state = BfdState::kDown;  // bfd.RemoteSessionState
  std::uint32_t local_discr = 0;                  // bfd.LocalDiscr
  std::uint32_t remote_discr = 0;                 // bfd.RemoteDiscr
  BfdDiag local_diag = BfdDiag::kNone;            // bfd.LocalDiag
  std::uint32_t desired_min_tx_interval = 1000000;   // bfd.DesiredMinTxInterval
  std::uint32_t required_min_rx_interval = 1000000;  // bfd.RequiredMinRxInterval
  std::uint32_t remote_min_rx_interval = 1;       // bfd.RemoteMinRxInterval
  bool demand_mode = false;                       // bfd.DemandMode
  bool remote_demand_mode = false;                // bfd.RemoteDemandMode
  std::uint8_t detect_mult = 3;                   // bfd.DetectMult
  std::uint8_t auth_type = 0;                     // bfd.AuthType
  // Derived/operational state used by the interop harness:
  bool periodic_transmission_enabled = true;
  bool packet_discarded = false;  // set when the spec says "MUST be discarded"
};

}  // namespace sage::net

#include "net/checksum.hpp"

namespace sage::net {

std::uint16_t ones_complement_sum(std::span<const std::uint8_t> data,
                                  std::uint16_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {  // odd trailing byte: pad with zero on the right
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {  // fold end-around carries
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint16_t initial) {
  return static_cast<std::uint16_t>(~ones_complement_sum(data, initial));
}

std::uint16_t incremental_checksum_update(std::uint16_t old_checksum,
                                          std::uint16_t old_value,
                                          std::uint16_t new_value) {
  // RFC 1624: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
  sum += static_cast<std::uint16_t>(~old_value);
  sum += new_value;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace sage::net

#include "net/checksum.hpp"

namespace sage::net {

std::uint16_t ones_complement_sum(std::span<const std::uint8_t> data,
                                  std::uint16_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {  // odd trailing byte: pad with zero on the right
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {  // fold end-around carries
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint16_t initial) {
  return static_cast<std::uint16_t>(~ones_complement_sum(data, initial));
}

std::uint16_t incremental_checksum_update(std::uint16_t old_checksum,
                                          std::uint16_t old_value,
                                          std::uint16_t new_value) {
  // RFC 1624: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
  sum += static_cast<std::uint16_t>(~old_value);
  sum += new_value;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t pseudo_header_sum_v4(std::uint32_t src, std::uint32_t dst,
                                   std::uint8_t protocol,
                                   std::uint16_t upper_length) {
  std::uint8_t pseudo[12];
  for (int i = 0; i < 4; ++i) {
    pseudo[i] = static_cast<std::uint8_t>(src >> (8 * (3 - i)));
    pseudo[4 + i] = static_cast<std::uint8_t>(dst >> (8 * (3 - i)));
  }
  pseudo[8] = 0;
  pseudo[9] = protocol;
  pseudo[10] = static_cast<std::uint8_t>(upper_length >> 8);
  pseudo[11] = static_cast<std::uint8_t>(upper_length);
  return ones_complement_sum(pseudo);
}

std::uint16_t pseudo_header_sum_v6(std::span<const std::uint8_t> src16,
                                   std::span<const std::uint8_t> dst16,
                                   std::uint32_t upper_length,
                                   std::uint8_t next_header) {
  std::uint16_t sum = ones_complement_sum(src16);
  sum = ones_complement_sum(dst16, sum);
  std::uint8_t tail[8];
  tail[0] = static_cast<std::uint8_t>(upper_length >> 24);
  tail[1] = static_cast<std::uint8_t>(upper_length >> 16);
  tail[2] = static_cast<std::uint8_t>(upper_length >> 8);
  tail[3] = static_cast<std::uint8_t>(upper_length);
  tail[4] = tail[5] = tail[6] = 0;
  tail[7] = next_header;
  return ones_complement_sum(tail, sum);
}

}  // namespace sage::net

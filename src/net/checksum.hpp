// RFC 1071 Internet checksum (16-bit one's complement of the one's
// complement sum).
//
// This is the "one's complement sum" function that the ICMP RFC references
// but never defines — in SAGE terms it lives in the *static framework*
// (§5.1 of the paper): protocol text says "the checksum is the 16-bit
// one's complement of the one's complement sum of the ICMP message", and
// generated code calls into these primitives.
#pragma once

#include <cstdint>
#include <span>

namespace sage::net {

/// One's-complement sum of `data`, with end-around carry folded in, as a
/// 16-bit partial. An odd trailing byte is padded with zero, per RFC 1071.
/// `initial` allows chaining over discontiguous regions (pseudo-headers).
std::uint16_t ones_complement_sum(std::span<const std::uint8_t> data,
                                  std::uint16_t initial = 0);

/// The Internet checksum: bitwise NOT of the one's-complement sum.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint16_t initial = 0);

/// Incrementally update `old_checksum` for a 16-bit field change from
/// `old_value` to `new_value` (RFC 1624 method). Used by the Table 3
/// "incremental update" student interpretation and by router forwarding
/// when decrementing TTL.
std::uint16_t incremental_checksum_update(std::uint16_t old_checksum,
                                          std::uint16_t old_value,
                                          std::uint16_t new_value);

}  // namespace sage::net

// RFC 1071 Internet checksum (16-bit one's complement of the one's
// complement sum).
//
// This is the "one's complement sum" function that the ICMP RFC references
// but never defines — in SAGE terms it lives in the *static framework*
// (§5.1 of the paper): protocol text says "the checksum is the 16-bit
// one's complement of the one's complement sum of the ICMP message", and
// generated code calls into these primitives.
#pragma once

#include <cstdint>
#include <span>

namespace sage::net {

/// One's-complement sum of `data`, with end-around carry folded in, as a
/// 16-bit partial. An odd trailing byte is padded with zero, per RFC 1071.
/// `initial` allows chaining over discontiguous regions (pseudo-headers).
std::uint16_t ones_complement_sum(std::span<const std::uint8_t> data,
                                  std::uint16_t initial = 0);

/// The Internet checksum: bitwise NOT of the one's-complement sum.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint16_t initial = 0);

/// Incrementally update `old_checksum` for a 16-bit field change from
/// `old_value` to `new_value` (RFC 1624 method). Used by the Table 3
/// "incremental update" student interpretation and by router forwarding
/// when decrementing TTL.
std::uint16_t incremental_checksum_update(std::uint16_t old_checksum,
                                          std::uint16_t old_value,
                                          std::uint16_t new_value);

/// Partial sum of the RFC 768/793 IPv4 pseudo-header (src, dst, zero,
/// protocol, upper-layer length), for chaining into internet_checksum as
/// its `initial`. Addresses are host-order 32-bit values so this header
/// stays free of net/ipv4.hpp.
std::uint16_t pseudo_header_sum_v4(std::uint32_t src, std::uint32_t dst,
                                   std::uint8_t protocol,
                                   std::uint16_t upper_length);

/// Partial sum of the RFC 8200 §8.1 IPv6 pseudo-header (src, dst,
/// 32-bit upper-layer length, zeros, next header). `src16`/`dst16` are
/// the 16-byte network-order addresses. This is the derivation rule a
/// schema field with FieldLoc::kPseudoDerived and pseudo_proto=58
/// (ICMPv6) or 17 (UDP) names.
std::uint16_t pseudo_header_sum_v6(std::span<const std::uint8_t> src16,
                                   std::span<const std::uint8_t> dst16,
                                   std::uint32_t upper_length,
                                   std::uint8_t next_header);

}  // namespace sage::net

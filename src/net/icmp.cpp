#include "net/icmp.hpp"

#include "net/checksum.hpp"
#include "util/bytes.hpp"

namespace sage::net {

std::string icmp_type_name(IcmpType type) {
  switch (type) {
    case IcmpType::kEchoReply: return "echo reply";
    case IcmpType::kDestinationUnreachable: return "destination unreachable";
    case IcmpType::kSourceQuench: return "source quench";
    case IcmpType::kRedirect: return "redirect";
    case IcmpType::kEcho: return "echo request";
    case IcmpType::kTimeExceeded: return "time exceeded";
    case IcmpType::kParameterProblem: return "parameter problem";
    case IcmpType::kTimestamp: return "timestamp request";
    case IcmpType::kTimestampReply: return "timestamp reply";
    case IcmpType::kInformationRequest: return "information request";
    case IcmpType::kInformationReply: return "information reply";
  }
  return "unknown (" + std::to_string(static_cast<int>(type)) + ")";
}

std::uint32_t IcmpMessage::originate_timestamp() const {
  return payload.size() >= 4 ? util::get_be32({payload.data(), 4}) : 0;
}
std::uint32_t IcmpMessage::receive_timestamp() const {
  return payload.size() >= 8 ? util::get_be32({payload.data() + 4, 4}) : 0;
}
std::uint32_t IcmpMessage::transmit_timestamp() const {
  return payload.size() >= 12 ? util::get_be32({payload.data() + 8, 4}) : 0;
}

void IcmpMessage::set_timestamps(std::uint32_t originate, std::uint32_t receive,
                                 std::uint32_t transmit) {
  payload.resize(12);
  util::put_be32({payload.data(), 4}, originate);
  util::put_be32({payload.data() + 4, 4}, receive);
  util::put_be32({payload.data() + 8, 4}, transmit);
}

std::vector<std::uint8_t> IcmpMessage::serialize() const {
  std::vector<std::uint8_t> out(8 + payload.size());
  out[0] = static_cast<std::uint8_t>(type);
  out[1] = code;
  // out[2..3] zero while checksumming
  util::put_be32({out.data() + 4, 4}, rest);
  std::copy(payload.begin(), payload.end(), out.begin() + 8);
  const std::uint16_t ck = internet_checksum(out);
  util::put_be16({out.data() + 2, 2}, ck);
  return out;
}

std::vector<std::uint8_t> IcmpMessage::serialize_with_checksum(
    std::uint16_t forced) const {
  std::vector<std::uint8_t> out = serialize();
  util::put_be16({out.data() + 2, 2}, forced);
  return out;
}

std::optional<IcmpMessage> IcmpMessage::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  IcmpMessage m;
  m.type = static_cast<IcmpType>(data[0]);
  m.code = data[1];
  m.checksum = util::get_be16(data.subspan(2, 2));
  m.rest = util::get_be32(data.subspan(4, 4));
  m.payload.assign(data.begin() + 8, data.end());
  return m;
}

bool IcmpMessage::verify_checksum(std::span<const std::uint8_t> icmp_bytes) {
  if (icmp_bytes.size() < 8) return false;
  // Summing the message including the transmitted checksum must yield
  // 0xffff (i.e., the complement sums to zero).
  return ones_complement_sum(icmp_bytes) == 0xffff;
}

std::vector<std::uint8_t> original_datagram_excerpt(
    std::span<const std::uint8_t> original_ip_packet) {
  const auto hdr = Ipv4Header::parse(original_ip_packet);
  if (!hdr) return {};
  const std::size_t want = hdr->header_length() + 8;  // header + 64 bits
  const std::size_t n = original_ip_packet.size() < want
                            ? original_ip_packet.size()
                            : want;
  return {original_ip_packet.begin(),
          original_ip_packet.begin() + static_cast<long>(n)};
}

}  // namespace sage::net

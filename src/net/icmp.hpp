// ICMP (RFC 792) message representation — the paper's primary evaluation
// protocol. All eight message types from the RFC are modelled:
// destination unreachable, time exceeded, parameter problem, source quench,
// redirect, echo/echo reply, timestamp/timestamp reply, information
// request/reply.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace sage::net {

/// ICMP message type values from RFC 792.
enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestinationUnreachable = 3,
  kSourceQuench = 4,
  kRedirect = 5,
  kEcho = 8,
  kTimeExceeded = 11,
  kParameterProblem = 12,
  kTimestamp = 13,
  kTimestampReply = 14,
  kInformationRequest = 15,
  kInformationReply = 16,
};

/// Human-readable name as tcpdump would print it.
std::string icmp_type_name(IcmpType type);

/// A decoded ICMP message. The 4 bytes following the checksum are
/// type-dependent; `rest` holds them raw and the typed accessors interpret
/// them. `payload` is everything after the 8-byte header (original
/// datagram excerpt, echo data, or the three 32-bit timestamps).
struct IcmpMessage {
  IcmpType type = IcmpType::kEchoReply;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;  // as parsed; serialize() recomputes
  std::uint32_t rest = 0;      // bytes 4..7 of the ICMP header
  std::vector<std::uint8_t> payload;

  // -- typed views of `rest` --------------------------------------------
  std::uint16_t identifier() const { return static_cast<std::uint16_t>(rest >> 16); }
  std::uint16_t sequence_number() const { return static_cast<std::uint16_t>(rest & 0xffff); }
  void set_identifier(std::uint16_t id) { rest = (std::uint32_t{id} << 16) | (rest & 0xffff); }
  void set_sequence_number(std::uint16_t seq) { rest = (rest & 0xffff0000U) | seq; }

  IpAddr gateway_address() const { return IpAddr(rest); }
  void set_gateway_address(IpAddr a) { rest = a.value(); }

  std::uint8_t pointer() const { return static_cast<std::uint8_t>(rest >> 24); }
  void set_pointer(std::uint8_t p) { rest = std::uint32_t{p} << 24; }

  // -- timestamp message payload accessors (3 x 32-bit, ms since midnight UT)
  std::uint32_t originate_timestamp() const;
  std::uint32_t receive_timestamp() const;
  std::uint32_t transmit_timestamp() const;
  void set_timestamps(std::uint32_t originate, std::uint32_t receive,
                      std::uint32_t transmit);

  /// Serialize with a freshly computed checksum over the whole ICMP
  /// message (header + payload), checksum field zeroed during the sum —
  /// the RFC-correct interpretation #3 of Table 3.
  std::vector<std::uint8_t> serialize() const;

  /// Serialize with the checksum field forced to `checksum` (fault
  /// injection for the Table 2/3 experiments).
  std::vector<std::uint8_t> serialize_with_checksum(std::uint16_t forced) const;

  /// Parse; nullopt if shorter than the 8-byte ICMP header.
  static std::optional<IcmpMessage> parse(std::span<const std::uint8_t> data);

  /// True if the message's checksum verifies over header + payload.
  static bool verify_checksum(std::span<const std::uint8_t> icmp_bytes);
};

/// Build the standard "internet header + first 64 bits of original
/// datagram's data" excerpt that error messages carry (RFC 792).
std::vector<std::uint8_t> original_datagram_excerpt(
    std::span<const std::uint8_t> original_ip_packet);

}  // namespace sage::net

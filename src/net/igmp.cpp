#include "net/igmp.hpp"

#include "net/checksum.hpp"
#include "util/bytes.hpp"

namespace sage::net {

std::vector<std::uint8_t> IgmpMessage::serialize() const {
  std::vector<std::uint8_t> out(8, 0);
  out[0] = static_cast<std::uint8_t>((version << 4) |
                                     static_cast<std::uint8_t>(type));
  out[1] = unused;
  util::put_be32({out.data() + 4, 4}, group_address.value());
  const std::uint16_t ck = internet_checksum(out);
  util::put_be16({out.data() + 2, 2}, ck);
  return out;
}

std::optional<IgmpMessage> IgmpMessage::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  IgmpMessage m;
  m.version = data[0] >> 4;
  m.type = static_cast<IgmpType>(data[0] & 0x0f);
  m.unused = data[1];
  m.checksum = util::get_be16(data.subspan(2, 2));
  m.group_address = IpAddr(util::get_be32(data.subspan(4, 4)));
  return m;
}

bool IgmpMessage::verify_checksum(std::span<const std::uint8_t> igmp_bytes) {
  if (igmp_bytes.size() < 8) return false;
  return ones_complement_sum(igmp_bytes.subspan(0, 8)) == 0xffff;
}

}  // namespace sage::net

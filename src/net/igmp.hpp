// IGMPv1 (RFC 1112, Appendix I) message format — SAGE's first generality
// protocol (§6.3). The paper parses the Appendix I packet-header
// description and generates host-membership-report and query senders.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace sage::net {

/// IGMPv1 message types (RFC 1112 Appendix I).
enum class IgmpType : std::uint8_t {
  kHostMembershipQuery = 1,
  kHostMembershipReport = 2,
};

/// IGMPv1 message: version(4) | type(4) | unused(8) | checksum(16) |
/// group address(32).
struct IgmpMessage {
  std::uint8_t version = 1;
  IgmpType type = IgmpType::kHostMembershipQuery;
  std::uint8_t unused = 0;
  std::uint16_t checksum = 0;  // recomputed by serialize()
  IpAddr group_address;

  /// Serialize with a fresh checksum over the 8-byte message.
  std::vector<std::uint8_t> serialize() const;

  static std::optional<IgmpMessage> parse(std::span<const std::uint8_t> data);

  static bool verify_checksum(std::span<const std::uint8_t> igmp_bytes);
};

}  // namespace sage::net

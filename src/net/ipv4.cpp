#include "net/ipv4.hpp"

#include <cstdio>

#include "net/checksum.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace sage::net {

std::optional<IpAddr> IpAddr::parse(std::string_view text) {
  const auto parts = util::split(text, ".");
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    if (!util::is_all_digits(p) || p.size() > 3) return std::nullopt;
    const int octet = std::stoi(p);
    if (octet > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(octet);
  }
  return IpAddr(v);
}

std::string IpAddr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::size_t Ipv4Header::serialize(std::vector<std::uint8_t>& out,
                                  std::size_t payload_length) const {
  const std::size_t off = out.size();
  const std::size_t opt_len = (options.size() + 3) / 4 * 4;
  const std::uint8_t eff_ihl = static_cast<std::uint8_t>(5 + opt_len / 4);
  const std::size_t hdr_len = std::size_t{eff_ihl} * 4;
  out.resize(off + hdr_len, 0);
  std::span<std::uint8_t> h(out.data() + off, hdr_len);

  h[0] = static_cast<std::uint8_t>((version << 4) | eff_ihl);
  h[1] = tos;
  util::put_be16(h.subspan(2, 2),
                 static_cast<std::uint16_t>(hdr_len + payload_length));
  util::put_be16(h.subspan(4, 2), identification);
  util::put_be16(h.subspan(6, 2),
                 static_cast<std::uint16_t>((std::uint16_t{flags} << 13) |
                                            (fragment_offset & 0x1fff)));
  h[8] = ttl;
  h[9] = protocol;
  // checksum (h[10..11]) stays zero while summing
  util::put_be32(h.subspan(12, 4), src.value());
  util::put_be32(h.subspan(16, 4), dst.value());
  std::copy(options.begin(), options.end(), h.begin() + 20);

  const std::uint16_t ck = internet_checksum({h.data(), hdr_len});
  util::put_be16(h.subspan(10, 2), ck);
  return off;
}

std::optional<Ipv4Header> Ipv4Header::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 20) return std::nullopt;
  Ipv4Header hdr;
  hdr.version = data[0] >> 4;
  hdr.ihl = data[0] & 0x0f;
  if (hdr.version != 4 || hdr.ihl < 5) return std::nullopt;
  if (data.size() < hdr.header_length()) return std::nullopt;
  hdr.tos = data[1];
  hdr.total_length = util::get_be16(data.subspan(2, 2));
  hdr.identification = util::get_be16(data.subspan(4, 2));
  const std::uint16_t ff = util::get_be16(data.subspan(6, 2));
  hdr.flags = static_cast<std::uint8_t>(ff >> 13);
  hdr.fragment_offset = ff & 0x1fff;
  hdr.ttl = data[8];
  hdr.protocol = data[9];
  hdr.checksum = util::get_be16(data.subspan(10, 2));
  hdr.src = IpAddr(util::get_be32(data.subspan(12, 4)));
  hdr.dst = IpAddr(util::get_be32(data.subspan(16, 4)));
  if (hdr.header_length() > 20) {
    hdr.options.assign(data.begin() + 20,
                       data.begin() + static_cast<long>(hdr.header_length()));
  }
  return hdr;
}

std::uint16_t Ipv4Header::compute_checksum(
    std::span<const std::uint8_t> header_bytes) {
  // Sum with the checksum field itself zeroed.
  std::vector<std::uint8_t> copy(header_bytes.begin(), header_bytes.end());
  if (copy.size() >= 12) {
    copy[10] = 0;
    copy[11] = 0;
  }
  return internet_checksum(copy);
}

std::vector<std::uint8_t> build_ipv4_packet(const Ipv4Header& hdr,
                                            std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  hdr.serialize(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace sage::net

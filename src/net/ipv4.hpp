// IPv4 header (RFC 791) — the layer below every protocol SAGE generates.
//
// ICMP text like "the source and destination addresses are simply reversed"
// refers to *these* fields; the static context dictionary (src/runtime) maps
// those phrases here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sage::net {

/// IPv4 address in host byte order. Wire encoding is handled by
/// Ipv4Header::serialize/parse.
class IpAddr {
 public:
  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t v) : value_(v) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parse dotted-quad text; returns nullopt for malformed input.
  static std::optional<IpAddr> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  constexpr bool operator==(const IpAddr&) const = default;
  constexpr auto operator<=>(const IpAddr&) const = default;

  /// True if `other` lies within this address's /prefix_len subnet.
  constexpr bool same_subnet(IpAddr other, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffU : ~((1U << (32 - prefix_len)) - 1);
    return (value_ & mask) == (other.value_ & mask);
  }

 private:
  std::uint32_t value_ = 0;
};

/// IP protocol numbers used by the corpus protocols.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kIgmp = 2,
  kTcp = 6,
  kUdp = 17,
};

/// Decoded IPv4 header. `header_length()` is derived from ihl; options are
/// carried verbatim.
struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // 32-bit words
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t flags = 0;           // 3 bits
  std::uint16_t fragment_offset = 0;  // 13 bits
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  IpAddr src;
  IpAddr dst;
  std::vector<std::uint8_t> options;  // padded to 32-bit boundary by caller

  std::size_t header_length() const { return std::size_t{ihl} * 4; }

  /// Serialize, computing ihl/checksum. `payload_length` fills total_length.
  /// Appends to `out` and returns the header's byte offset.
  std::size_t serialize(std::vector<std::uint8_t>& out,
                        std::size_t payload_length) const;

  /// Parse from raw bytes. Returns nullopt if truncated or not IPv4. Does
  /// NOT verify the checksum — the PacketInspector does that so it can warn.
  static std::optional<Ipv4Header> parse(std::span<const std::uint8_t> data);

  /// Header checksum over the given serialized header bytes.
  static std::uint16_t compute_checksum(std::span<const std::uint8_t> header_bytes);
};

/// Build a complete IP datagram: header followed by `payload`.
std::vector<std::uint8_t> build_ipv4_packet(const Ipv4Header& hdr,
                                            std::span<const std::uint8_t> payload);

}  // namespace sage::net

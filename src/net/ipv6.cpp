#include "net/ipv6.hpp"

#include <algorithm>

#include "net/checksum.hpp"
#include "util/bytes.hpp"

namespace sage::net {

Ip6Addr::Ip6Addr(std::span<const std::uint8_t> bytes16) {
  const std::size_t n = std::min<std::size_t>(bytes16.size(), 16);
  std::copy_n(bytes16.begin(), n, bytes_.begin());
}

Ip6Addr Ip6Addr::from_groups(std::uint16_t a, std::uint16_t b, std::uint16_t c,
                             std::uint16_t d, std::uint16_t e, std::uint16_t f,
                             std::uint16_t g, std::uint16_t h) {
  Ip6Addr addr;
  const std::uint16_t groups[8] = {a, b, c, d, e, f, g, h};
  for (int i = 0; i < 8; ++i) {
    addr.bytes_[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    addr.bytes_[2 * i + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return addr;
}

std::string Ip6Addr::to_string() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (int i = 0; i < 8; ++i) {
    if (i > 0) out += ':';
    out += kHex[bytes_[2 * i] >> 4];
    out += kHex[bytes_[2 * i] & 0xf];
    out += kHex[bytes_[2 * i + 1] >> 4];
    out += kHex[bytes_[2 * i + 1] & 0xf];
  }
  return out;
}

void Ipv6Header::serialize(std::vector<std::uint8_t>& out) const {
  const std::size_t base = out.size();
  out.resize(base + kHeaderBytes, 0);
  const std::uint32_t word =
      (std::uint32_t{6} << 28) | (std::uint32_t{traffic_class} << 20) |
      (flow_label & 0xfffff);
  util::put_be32({out.data() + base, 4}, word);
  util::put_be16({out.data() + base + 4, 2}, payload_length);
  out[base + 6] = next_header;
  out[base + 7] = hop_limit;
  std::copy(src.bytes().begin(), src.bytes().end(), out.begin() + base + 8);
  std::copy(dst.bytes().begin(), dst.bytes().end(), out.begin() + base + 24);
}

std::optional<Ipv6Header> Ipv6Header::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderBytes) return std::nullopt;
  if ((data[0] >> 4) != 6) return std::nullopt;
  Ipv6Header h;
  const std::uint32_t word = util::get_be32(data.subspan(0, 4));
  h.version = 6;
  h.traffic_class = static_cast<std::uint8_t>((word >> 20) & 0xff);
  h.flow_label = word & 0xfffff;
  h.payload_length = util::get_be16(data.subspan(4, 2));
  h.next_header = data[6];
  h.hop_limit = data[7];
  h.src = Ip6Addr(data.subspan(8, 16));
  h.dst = Ip6Addr(data.subspan(24, 16));
  return h;
}

std::vector<std::uint8_t> build_ipv6_packet(
    Ipv6Header hdr, std::span<const std::uint8_t> payload) {
  hdr.payload_length = static_cast<std::uint16_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(Ipv6Header::kHeaderBytes + payload.size());
  hdr.serialize(out);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint16_t icmp6_checksum(const Ip6Addr& src, const Ip6Addr& dst,
                             std::span<const std::uint8_t> message) {
  return internet_checksum(
      message,
      pseudo_header_sum_v6(src.bytes(), dst.bytes(),
                           static_cast<std::uint32_t>(message.size()),
                           kIpProtoIcmp6));
}

}  // namespace sage::net

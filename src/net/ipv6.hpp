// IPv6 header (RFC 8200) — the layer below ICMPv6 (RFC 4443).
//
// Deliberately minimal: the fixed 40-byte header, no extension-header
// chain (next_header is taken at face value), because the corpus
// protocols riding it — ICMPv6 today — never emit extension headers.
// The 128-bit addresses live here as value types; the schema registry
// declares ip6.src/ip6.dst codegen-only, and generated code touches
// them through the reverse_addresses effect exactly like IPv4.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sage::net {

/// ICMPv6's IP next-header number.
inline constexpr std::uint8_t kIpProtoIcmp6 = 58;

/// IPv6 address, stored in network byte order.
class Ip6Addr {
 public:
  constexpr Ip6Addr() = default;
  explicit Ip6Addr(std::span<const std::uint8_t> bytes16);
  /// Convenience for tests/topologies: eight 16-bit groups.
  static Ip6Addr from_groups(std::uint16_t a, std::uint16_t b, std::uint16_t c,
                             std::uint16_t d, std::uint16_t e, std::uint16_t f,
                             std::uint16_t g, std::uint16_t h);

  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::string to_string() const;  // full uncompressed hex groups

  bool operator==(const Ip6Addr&) const = default;
  auto operator<=>(const Ip6Addr&) const = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

/// Decoded fixed IPv6 header.
struct Ipv6Header {
  std::uint8_t version = 6;
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ip6Addr src;
  Ip6Addr dst;

  static constexpr std::size_t kHeaderBytes = 40;

  /// Serialize, filling payload_length from `payload_length_override`
  /// when nonnegative (callers building packets pass the payload size).
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Parse from raw bytes. Returns nullopt if truncated or not version 6.
  static std::optional<Ipv6Header> parse(std::span<const std::uint8_t> data);
};

/// Build a complete IPv6 packet: header (payload_length set from the
/// payload) followed by `payload`.
std::vector<std::uint8_t> build_ipv6_packet(Ipv6Header hdr,
                                            std::span<const std::uint8_t> payload);

/// ICMPv6 checksum (RFC 4443 §2.3): internet checksum of the ICMPv6
/// message chained with the IPv6 pseudo-header. `message` must have its
/// checksum field zeroed (or callers accept the RFC 1071 self-check).
std::uint16_t icmp6_checksum(const Ip6Addr& src, const Ip6Addr& dst,
                             std::span<const std::uint8_t> message);

}  // namespace sage::net

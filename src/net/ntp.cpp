#include "net/ntp.hpp"

#include "util/bytes.hpp"

namespace sage::net {

std::vector<std::uint8_t> NtpPacket::serialize() const {
  std::vector<std::uint8_t> out(48, 0);
  out[0] = static_cast<std::uint8_t>(((leap_indicator & 0x3) << 6) |
                                     ((version & 0x7) << 3) |
                                     (static_cast<std::uint8_t>(mode) & 0x7));
  out[1] = stratum;
  out[2] = static_cast<std::uint8_t>(poll);
  out[3] = static_cast<std::uint8_t>(precision);
  util::put_be32({out.data() + 4, 4}, root_delay);
  util::put_be32({out.data() + 8, 4}, root_dispersion);
  util::put_be32({out.data() + 12, 4}, reference_clock_id);
  util::put_be64({out.data() + 16, 8}, reference_timestamp.raw());
  util::put_be64({out.data() + 24, 8}, originate_timestamp.raw());
  util::put_be64({out.data() + 32, 8}, receive_timestamp.raw());
  util::put_be64({out.data() + 40, 8}, transmit_timestamp.raw());
  return out;
}

std::optional<NtpPacket> NtpPacket::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 48) return std::nullopt;
  NtpPacket p;
  p.leap_indicator = data[0] >> 6;
  p.version = (data[0] >> 3) & 0x7;
  p.mode = static_cast<NtpMode>(data[0] & 0x7);
  p.stratum = data[1];
  p.poll = static_cast<std::int8_t>(data[2]);
  p.precision = static_cast<std::int8_t>(data[3]);
  p.root_delay = util::get_be32(data.subspan(4, 4));
  p.root_dispersion = util::get_be32(data.subspan(8, 4));
  p.reference_clock_id = util::get_be32(data.subspan(12, 4));
  p.reference_timestamp = NtpTimestamp::from_raw(util::get_be64(data.subspan(16, 8)));
  p.originate_timestamp = NtpTimestamp::from_raw(util::get_be64(data.subspan(24, 8)));
  p.receive_timestamp = NtpTimestamp::from_raw(util::get_be64(data.subspan(32, 8)));
  p.transmit_timestamp = NtpTimestamp::from_raw(util::get_be64(data.subspan(40, 8)));
  return p;
}

}  // namespace sage::net

// NTPv1 (RFC 1059, Appendix B) packet header — used for the §6.3
// generality experiment: SAGE parses Appendices A and B of RFC 1059 and
// generates the timeout-procedure packet containing both NTP and UDP
// headers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace sage::net {

/// 64-bit NTP timestamp: seconds since 1900-01-01 in the upper 32 bits,
/// binary fraction of a second in the lower 32.
struct NtpTimestamp {
  std::uint32_t seconds = 0;
  std::uint32_t fraction = 0;

  std::uint64_t raw() const {
    return (std::uint64_t{seconds} << 32) | fraction;
  }
  static NtpTimestamp from_raw(std::uint64_t v) {
    return {static_cast<std::uint32_t>(v >> 32),
            static_cast<std::uint32_t>(v & 0xffffffffULL)};
  }
  bool operator==(const NtpTimestamp&) const = default;
};

/// NTP association modes (RFC 1059).
enum class NtpMode : std::uint8_t {
  kUnspecified = 0,
  kSymmetricActive = 1,
  kSymmetricPassive = 2,
  kClient = 3,
  kServer = 4,
  kBroadcast = 5,
};

/// RFC 1059 Appendix B packet format (48 bytes).
struct NtpPacket {
  std::uint8_t leap_indicator = 0;  // 2 bits
  std::uint8_t version = 1;         // 3 bits
  NtpMode mode = NtpMode::kClient;  // 3 bits (NTPv1 reuses the status byte)
  std::uint8_t stratum = 0;
  std::int8_t poll = 6;
  std::int8_t precision = -6;
  std::uint32_t root_delay = 0;        // signed fixed-point, raw encoding
  std::uint32_t root_dispersion = 0;   // fixed-point, raw encoding
  std::uint32_t reference_clock_id = 0;
  NtpTimestamp reference_timestamp;
  NtpTimestamp originate_timestamp;
  NtpTimestamp receive_timestamp;
  NtpTimestamp transmit_timestamp;

  std::vector<std::uint8_t> serialize() const;
  static std::optional<NtpPacket> parse(std::span<const std::uint8_t> data);
};

}  // namespace sage::net

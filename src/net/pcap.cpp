#include "net/pcap.hpp"

#include <cstdio>

namespace sage::net {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;
constexpr std::uint32_t kLinktypeRaw = 101;

// pcap headers are written in the *writer's* native byte order; the magic
// tells readers which one. We always write little-endian for determinism.
void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put_le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

std::uint32_t get_le32(std::span<const std::uint8_t> in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

void PcapWriter::add_packet(std::span<const std::uint8_t> data,
                            std::uint32_t ts_sec, std::uint32_t ts_usec) {
  records_.push_back(PcapRecord{
      ts_sec, ts_usec, std::vector<std::uint8_t>(data.begin(), data.end())});
}

std::vector<std::uint8_t> PcapWriter::to_bytes() const {
  std::vector<std::uint8_t> out;
  put_le32(out, kMagic);
  put_le16(out, 2);   // version major
  put_le16(out, 4);   // version minor
  put_le32(out, 0);   // thiszone
  put_le32(out, 0);   // sigfigs
  put_le32(out, 65535);  // snaplen
  put_le32(out, kLinktypeRaw);
  for (const auto& rec : records_) {
    put_le32(out, rec.ts_sec);
    put_le32(out, rec.ts_usec);
    put_le32(out, static_cast<std::uint32_t>(rec.data.size()));  // incl_len
    put_le32(out, static_cast<std::uint32_t>(rec.data.size()));  // orig_len
    out.insert(out.end(), rec.data.begin(), rec.data.end());
  }
  return out;
}

bool PcapWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const auto bytes = to_bytes();
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return n == bytes.size();
}

std::optional<std::vector<PcapRecord>> parse_pcap(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 24) return std::nullopt;
  if (get_le32(bytes.subspan(0, 4)) != kMagic) return std::nullopt;
  std::vector<PcapRecord> out;
  std::size_t off = 24;
  while (off + 16 <= bytes.size()) {
    PcapRecord rec;
    rec.ts_sec = get_le32(bytes.subspan(off, 4));
    rec.ts_usec = get_le32(bytes.subspan(off + 4, 4));
    const std::uint32_t incl = get_le32(bytes.subspan(off + 8, 4));
    off += 16;
    if (off + incl > bytes.size()) return std::nullopt;  // truncated capture
    rec.data.assign(bytes.begin() + static_cast<long>(off),
                    bytes.begin() + static_cast<long>(off + incl));
    off += incl;
    out.push_back(std::move(rec));
  }
  if (off != bytes.size()) return std::nullopt;
  return out;
}

}  // namespace sage::net

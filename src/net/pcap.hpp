// Minimal pcap (libpcap classic format) writer/reader.
//
// §6.2 of the paper: "for each message type ... we use the static
// framework in SAGE-generated code to generate and store the packet in a
// pcap file and verify it using tcpdump". PcapWriter stores raw-IP
// (LINKTYPE_RAW) captures; sim::PacketInspector plays the tcpdump role.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sage::net {

/// One captured packet: timestamp + raw bytes starting at the IP header.
struct PcapRecord {
  std::uint32_t ts_sec = 0;
  std::uint32_t ts_usec = 0;
  std::vector<std::uint8_t> data;
};

/// Accumulates packets and renders the classic pcap byte stream
/// (magic 0xa1b2c3d4, version 2.4, LINKTYPE_RAW = 101).
class PcapWriter {
 public:
  void add_packet(std::span<const std::uint8_t> data, std::uint32_t ts_sec = 0,
                  std::uint32_t ts_usec = 0);

  /// Serialize the whole capture to pcap bytes.
  std::vector<std::uint8_t> to_bytes() const;

  /// Write the capture to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  std::size_t packet_count() const { return records_.size(); }
  const std::vector<PcapRecord>& records() const { return records_; }

 private:
  std::vector<PcapRecord> records_;
};

/// Parse a pcap byte stream produced by PcapWriter (or any classic pcap
/// with LINKTYPE_RAW). Returns nullopt on malformed/truncated input.
std::optional<std::vector<PcapRecord>> parse_pcap(
    std::span<const std::uint8_t> bytes);

}  // namespace sage::net

#include "net/schema.hpp"

#include "util/bytes.hpp"

namespace sage::net::schema {

namespace {

/// Field builder shorthand for the catalog below.
FieldSpec scalar(std::string name, std::uint32_t bit_offset,
                 std::uint32_t bit_width, bool readable = true,
                 bool writable = true) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kScalar;
  f.bit_offset = bit_offset;
  f.bit_width = bit_width;
  f.readable = readable;
  f.writable = writable;
  return f;
}

FieldSpec state(std::string name, bool writable = true) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kState;
  f.writable = writable;
  return f;
}

FieldSpec payload_scalar(std::string name, std::uint32_t byte_offset) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kPayloadScalar;
  f.payload_offset = byte_offset;
  return f;
}

FieldSpec bytes(std::string name) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kBytes;
  return f;
}

FieldSpec token(std::string name) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kToken;
  f.writable = false;
  return f;
}

FieldSpec virt(std::string name, bool writable = false,
               bool write_is_noop = false) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kVirtual;
  f.readable = false;
  f.writable = writable;
  f.write_is_noop = write_is_noop;
  return f;
}

/// A scalar checksum at a fixed offset whose computation covers an IP
/// pseudo-header chaining `pseudo_proto` (udp.checksum, icmp6.checksum).
FieldSpec pseudo_checksum(std::string name, std::uint32_t bit_offset,
                          std::uint8_t pseudo_proto, bool readable = true,
                          bool writable = true) {
  FieldSpec f = scalar(std::move(name), bit_offset, 16, readable, writable);
  f.loc = FieldLoc::kPseudoDerived;
  f.pseudo_proto = pseudo_proto;
  return f;
}

/// A scalar stored inside a TLV option value (DHCP option scalars).
FieldSpec tlv_scalar(std::string name, std::uint8_t tlv_type,
                     std::uint32_t bit_width) {
  FieldSpec f = scalar(std::move(name), 0, bit_width);
  f.loc = FieldLoc::kTlvOption;
  f.tlv_type = tlv_type;
  return f;
}

/// A whole variable-length TLV option value (DHCP parameter request list).
FieldSpec tlv_bytes(std::string name, std::uint8_t tlv_type) {
  FieldSpec f = bytes(std::move(name));
  f.loc = FieldLoc::kLengthPrefixed;
  f.tlv_type = tlv_type;
  return f;
}

/// A 128-bit address served by the runtime env as an opaque handle
/// (ip6.src / ip6.dst): readable and writable, but storage-less here.
FieldSpec addr6(std::string name) {
  FieldSpec f = virt(std::move(name), /*writable=*/true);
  f.readable = true;
  return f;
}

}  // namespace

std::string field_kind_name(FieldKind kind) {
  switch (kind) {
    case FieldKind::kScalar: return "scalar";
    case FieldKind::kPayloadScalar: return "payload";
    case FieldKind::kBytes: return "bytes";
    case FieldKind::kState: return "state";
    case FieldKind::kToken: return "token";
    case FieldKind::kVirtual: return "virtual";
  }
  return "?";
}

std::string field_loc_name(FieldLoc loc) {
  switch (loc) {
    case FieldLoc::kFixed: return "fixed";
    case FieldLoc::kLengthPrefixed: return "length-prefixed";
    case FieldLoc::kTlvOption: return "tlv-option";
    case FieldLoc::kPseudoDerived: return "pseudo-derived";
  }
  return "?";
}

std::string read_status_name(ReadStatus status) {
  switch (status) {
    case ReadStatus::kOk: return "ok";
    case ReadStatus::kUnknownField: return "unknown-field";
    case ReadStatus::kShortRead: return "short-read";
    case ReadStatus::kMissingOption: return "missing-option";
  }
  return "?";
}

std::string tlv_status_name(TlvStatus status) {
  switch (status) {
    case TlvStatus::kOk: return "ok";
    case TlvStatus::kTruncated: return "truncated";
    case TlvStatus::kLengthLie: return "length-lie";
  }
  return "?";
}

// ---- OptionsView -----------------------------------------------------------

OptionsView::OptionsView(std::span<const std::uint8_t> region,
                         std::uint8_t pad_code, std::uint8_t end_code)
    : region_(region), pad_(pad_code), end_(end_code) {
  // One classification pass. Iteration re-walks lazily (no allocation);
  // both stop at the same first malformation, so what begin()/end()
  // yields is exactly the well-formed prefix status() vouches for.
  std::size_t pos = 0;
  while (pos < region_.size()) {
    const std::uint8_t code = region_[pos];
    if (code == end_) return;
    if (code == pad_) {
      ++pos;
      continue;
    }
    if (pos + 1 >= region_.size()) {
      status_ = TlvStatus::kTruncated;
      return;
    }
    const std::size_t len = region_[pos + 1];
    if (pos + 2 + len > region_.size()) {
      status_ = TlvStatus::kLengthLie;
      return;
    }
    pos += 2 + len;
  }
}

OptionsView::OptionsView(const LayerSpec& layer,
                         std::span<const std::uint8_t> image)
    : OptionsView(layer.has_options && image.size() > layer.options_offset
                      ? image.subspan(layer.options_offset)
                      : std::span<const std::uint8_t>{},
                  layer.option_pad, layer.option_end) {}

void OptionsView::iterator::advance_to(std::size_t pos) {
  if (view_ == nullptr) {
    pos_ = std::size_t(-1);
    return;
  }
  const auto region = view_->region_;
  while (pos < region.size()) {
    const std::uint8_t code = region[pos];
    if (code == view_->end_) break;
    if (code == view_->pad_) {
      ++pos;
      continue;
    }
    if (pos + 1 >= region.size()) break;  // truncated: stop cleanly
    const std::size_t len = region[pos + 1];
    if (pos + 2 + len > region.size()) break;  // length lie: stop cleanly
    pos_ = pos;
    next_ = pos + 2 + len;
    current_ = {code, region.subspan(pos + 2, len)};
    return;
  }
  pos_ = std::size_t(-1);
}

std::optional<TlvOption> OptionsView::find(std::uint8_t type) const {
  for (const auto& opt : *this) {
    if (opt.type == type) return opt;
  }
  return std::nullopt;
}

std::size_t OptionsView::count() const {
  std::size_t n = 0;
  for (const auto& opt : *this) {
    (void)opt;
    ++n;
  }
  return n;
}

void OptionsView::append(std::vector<std::uint8_t>& out, std::uint8_t type,
                         std::span<const std::uint8_t> value) {
  out.push_back(type);
  out.push_back(static_cast<std::uint8_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

void OptionsView::append_scalar(std::vector<std::uint8_t>& out,
                                std::uint8_t type, long value,
                                std::size_t length) {
  out.push_back(type);
  out.push_back(static_cast<std::uint8_t>(length));
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(value) >> (8 * (length - 1 - i))));
  }
}

void OptionsView::append_end(std::vector<std::uint8_t>& out,
                             std::uint8_t end_code) {
  out.push_back(end_code);
}

// ---- LayoutCursor ----------------------------------------------------------

LayoutCursor::LayoutCursor(const LayerSpec& layer,
                           std::span<const std::uint8_t> image)
    : layer_(&layer),
      image_(image),
      options_(layer.has_options && image.size() > layer.options_offset
                   ? image.subspan(layer.options_offset)
                   : std::span<const std::uint8_t>{}),
      view_(options_, layer.option_pad, layer.option_end) {}

// ---- registry catalog ------------------------------------------------------

SchemaRegistry::SchemaRegistry() {
  // ---- ip (RFC 791, 20-byte base header) ---------------------------------
  {
    LayerSpec ip;
    ip.name = "ip";
    ip.header_bytes = 20;
    ip.fields = {
        scalar("version", 0, 4, true, false),
        scalar("ihl", 4, 4, true, false),
        scalar("tos", 8, 8),
        scalar("total_length", 16, 16, true, false),
        scalar("identification", 32, 16, true, false),
        scalar("flags", 48, 3, true, false),
        scalar("fragment_offset", 51, 13, true, false),
        scalar("ttl", 64, 8),
        scalar("protocol", 72, 8, true, false),
        scalar("checksum", 80, 16, true, false),
        scalar("src", 96, 32),
        scalar("dst", 128, 32),
        // Codegen-only phrases: "source and destination addresses",
        // "internet header". Runtime access goes through effects
        // (reverse_addresses) and byte functions, never these refs.
        virt("addresses"),
        virt("header"),
    };
    add_layer(std::move(ip));
  }

  // ---- ip6 (RFC 8200, 40-byte header) ------------------------------------
  // The 128-bit addresses are not 32-bit schema scalars; generated code
  // touches them only through effects (reverse_addresses) and the env's
  // own Ip6Addr storage, so they are declared codegen-only.
  {
    LayerSpec ip6;
    ip6.name = "ip6";
    ip6.header_bytes = 40;
    ip6.fields = {
        scalar("version", 0, 4, true, false),
        scalar("traffic_class", 4, 8),
        scalar("flow_label", 12, 20, true, false),
        scalar("payload_length", 32, 16, true, false),
        scalar("next_header", 48, 8, true, false),
        scalar("hop_limit", 56, 8),
        // 128-bit addresses are not 32-bit wire scalars: the runtime env
        // serves them as opaque address handles (generated code only ever
        // moves them, e.g. "out->ip6.dst = in->ip6.src"), so they are
        // readable/writable virtuals with no bit placement.
        addr6("src"),
        addr6("dst"),
        virt("addresses"),
        virt("header"),
    };
    add_layer(std::move(ip6));
  }

  // ---- icmp (RFC 792, 8-byte header + payload) ---------------------------
  {
    LayerSpec icmp;
    icmp.name = "icmp";
    icmp.header_bytes = 8;
    icmp.has_payload = true;
    icmp.payload_patterns = {"internet_header", "datagram"};
    icmp.fields = {
        scalar("type", 0, 8),
        scalar("code", 8, 8),
        scalar("checksum", 16, 16),
        scalar("identifier", 32, 16),
        scalar("sequence_number", 48, 16),
        scalar("gateway_internet_address", 32, 32),
        // RFC 792 pointer: writes fill the whole rest-word (value << 24),
        // zeroing the unused octets — the ICMP hook handles the write.
        scalar("pointer", 32, 8),
        payload_scalar("originate_timestamp", 0),
        payload_scalar("receive_timestamp", 4),
        payload_scalar("transmit_timestamp", 8),
        // "unused" is explicitly writable prose ("unused ... set to zero")
        // but has no storage: writes are accepted and discarded, reads
        // are an error, exactly as the RFC field deserves.
        virt("unused", /*writable=*/true, /*write_is_noop=*/true),
        token("message"),
        bytes("data"),
    };
    add_layer(std::move(icmp));
  }

  // ---- icmp6 (RFC 4443, 8-byte header + payload) -------------------------
  // Mirrors the icmp layer; the checksum is pseudo-header-derived
  // (next header 58), and the parameter-problem pointer is a full
  // 32-bit field instead of RFC 792's high octet.
  {
    LayerSpec icmp6;
    icmp6.name = "icmp6";
    icmp6.header_bytes = 8;
    icmp6.has_payload = true;
    icmp6.payload_patterns = {"invoking_packet", "original_packet",
                              "datagram"};
    icmp6.fields = {
        scalar("type", 0, 8),
        scalar("code", 8, 8),
        pseudo_checksum("checksum", 16, /*pseudo_proto=*/58),
        scalar("identifier", 32, 16),
        scalar("sequence_number", 48, 16),
        scalar("pointer", 32, 32),
        scalar("mtu", 32, 32),
        virt("unused", /*writable=*/true, /*write_is_noop=*/true),
        token("message"),
        bytes("data"),
    };
    add_layer(std::move(icmp6));
  }

  // ---- igmp (RFC 1112 Appendix I, 8 bytes) -------------------------------
  {
    LayerSpec igmp;
    igmp.name = "igmp";
    igmp.header_bytes = 8;
    igmp.fields = {
        scalar("version", 0, 4),
        scalar("type", 4, 4),
        scalar("unused", 8, 8),
        scalar("checksum", 16, 16),
        scalar("group_address", 32, 32),
        // The framework's "which group am I joining" service.
        state("host_group_address", /*writable=*/false),
        token("message"),
    };
    add_layer(std::move(igmp));
  }

  // ---- udp (RFC 768, 8 bytes) --------------------------------------------
  {
    LayerSpec udp;
    udp.name = "udp";
    udp.header_bytes = 8;
    udp.fields = {
        scalar("src_port", 0, 16),
        scalar("dst_port", 16, 16),
        scalar("length", 32, 16, true, false),
        // "filled at serialization": writes accepted, value discarded.
        // The value covers the IPv4 pseudo-header (protocol 17) — the
        // same derivation rule icmp6.checksum declares for IPv6.
        pseudo_checksum("checksum", 48, /*pseudo_proto=*/17,
                        /*readable=*/false, /*writable=*/true),
    };
    udp.fields.back().write_is_noop = true;
    add_layer(std::move(udp));
  }

  // ---- ntp (RFC 1059 Appendix B, 48 bytes) -------------------------------
  {
    LayerSpec n;
    n.name = "ntp";
    n.header_bytes = 48;
    n.fields = {
        scalar("leap_indicator", 0, 2),
        scalar("version", 2, 3),
        scalar("mode", 5, 3),
        scalar("stratum", 8, 8),
        scalar("poll", 16, 8),
        scalar("precision", 24, 8),
        scalar("root_delay", 32, 32, false, false),
        scalar("root_dispersion", 64, 32, false, false),
        scalar("reference_clock_id", 96, 32, false, false),
        // The 64-bit timestamps' seconds words. Declared for codegen and
        // decode; only the transmit timestamp is runtime-accessible (the
        // generated timeout sender touches nothing else).
        scalar("reference_timestamp", 128, 32, false, false),
        scalar("originate_timestamp", 192, 32, false, false),
        scalar("receive_timestamp", 256, 32, false, false),
        scalar("transmit_timestamp", 320, 32),
        state("peer_timer", /*writable=*/false),
        token("message"),
    };
    n.fields[4].is_signed = true;  // poll
    n.fields[5].is_signed = true;  // precision
    add_layer(std::move(n));
  }

  // ---- bfd (RFC 5880: §4.1 wire format + §6.8.1 state variables) ---------
  {
    LayerSpec bfd;
    bfd.name = "bfd";
    bfd.header_bytes = 24;
    bfd.fields = {
        // Mandatory-section wire fields (read-only to generated code;
        // *_field names disambiguate from the session state variables).
        scalar("version", 0, 3, false, false),
        scalar("diag", 3, 5, false, false),
        scalar("state", 8, 2, true, false),
        scalar("poll_bit", 10, 1, true, false),
        scalar("final_bit", 11, 1, false, false),
        scalar("control_plane_independent_bit", 12, 1, false, false),
        scalar("authentication_present_bit", 13, 1, false, false),
        scalar("demand_bit", 14, 1, true, false),
        scalar("multipoint_bit", 15, 1, true, false),
        scalar("detect_mult_field", 16, 8, true, false),
        scalar("length_field", 24, 8, false, false),
        scalar("my_discriminator", 32, 32, true, false),
        scalar("your_discriminator", 64, 32, true, false),
        scalar("desired_min_tx_interval_field", 96, 32, false, false),
        scalar("required_min_rx_interval_field", 128, 32, true, false),
        scalar("required_min_echo_rx_interval_field", 160, 32, true, false),
        // §6.8.1 session state variables (bfd.* in the corpus).
        state("session_state"),
        state("remote_session_state"),
        state("local_discr"),
        state("remote_discr"),
        state("local_diag"),
        state("desired_min_tx_interval"),
        state("required_min_rx_interval"),
        state("remote_min_rx_interval"),
        state("demand_mode"),
        state("remote_demand_mode"),
        state("detect_mult"),
        state("auth_type"),
    };
    add_layer(std::move(bfd));
  }

  // ---- dhcp (RFC 2131 fixed header + RFC 2132 options TLVs) --------------
  // 236 BOOTP bytes + the 4-byte magic cookie = a 240-byte fixed image;
  // everything after is the options region (pad 0, end 255). The option
  // fields below are the first schema entries addressed by option code
  // instead of a fixed offset — the layout-program half of schema v2.
  {
    LayerSpec dhcp;
    dhcp.name = "dhcp";
    dhcp.header_bytes = 240;
    dhcp.has_options = true;
    dhcp.options_offset = 240;
    dhcp.option_pad = 0;
    dhcp.option_end = 255;
    dhcp.fields = {
        scalar("op", 0, 8),
        scalar("htype", 8, 8),
        scalar("hlen", 16, 8),
        scalar("hops", 24, 8),
        scalar("xid", 32, 32),
        scalar("secs", 64, 16),
        scalar("flags", 80, 16),
        scalar("ciaddr", 96, 32),
        scalar("yiaddr", 128, 32),
        scalar("siaddr", 160, 32),
        scalar("giaddr", 192, 32),
        // chaddr/sname/file are opaque blocks; the cookie pins RFC 2132.
        scalar("magic_cookie", 1888, 32, true, false),
        // Options (RFC 2132 codes). Scalars live inside their option
        // value; the two bytes fields are whole variable-length values.
        tlv_scalar("subnet_mask", 1, 32),
        tlv_scalar("requested_ip", 50, 32),
        tlv_scalar("lease_time", 51, 32),
        tlv_scalar("message_type", 53, 8),
        tlv_scalar("server_identifier", 54, 32),
        tlv_scalar("renewal_time", 58, 32),
        tlv_bytes("parameter_request_list", 55),
        tlv_bytes("client_identifier", 61),
        token("message"),
    };
    add_layer(std::move(dhcp));
  }

  // ---- tcp / bgp probe state (§7 reach experiment) -----------------------
  {
    LayerSpec tcp;
    tcp.name = "tcp";
    tcp.fields = {
        state("syn_bit"),  state("ack_bit"),          state("rst_bit"),
        state("fin_bit"),  state("connection_state"), state("segment"),
    };
    add_layer(std::move(tcp));

    LayerSpec bgp;
    bgp.name = "bgp";
    bgp.fields = {state("hold_timer"), state("marker"), state("version")};
    add_layer(std::move(bgp));
  }

  // ---- serve (sage_serve request/response framing) -----------------------
  // The service daemon's own wire protocol, registered here so the frame
  // codec (src/serve/frame.cpp) encodes and decodes through the same
  // read_wire/write_scalar/decode_layer machinery every other protocol
  // uses — the service boundary is differential-testable like any
  // protocol under test (docs/SERVICE.md).
  {
    LayerSpec serve;
    serve.name = "serve";
    serve.header_bytes = 20;
    serve.has_payload = true;
    serve.fields = {
        scalar("magic", 0, 16),           // 0x5347 "SG"
        scalar("version", 16, 8),         // wire version, currently 1
        scalar("kind", 24, 8),            // serve::FrameKind
        scalar("job_id", 32, 32),         // client-assigned, echoed back
        scalar("status", 64, 8),          // serve::JobStatus (responses)
        scalar("flags", 72, 8),           // bit 0: session-cache hit
        scalar("time_micros", 80, 32),    // server-side job wall time
        scalar("payload_length", 112, 32),
        scalar("reserved", 144, 16),      // must encode as zero
        bytes("payload"),
    };
    add_layer(std::move(serve));
  }

  // ---- protocol entries ---------------------------------------------------
  protocols_ = {
      {"ICMP",
       {"ip", "icmp"},
       {{"ip", "protocol", 1}, {"ip", "ttl", 64}},
       {},
       /*scenario_symbol=*/true},
      {"ICMP6",
       {"ip6", "icmp6"},
       {{"ip6", "version", 6},
        {"ip6", "next_header", 58},
        {"ip6", "hop_limit", 64}},
       {},
       /*scenario_symbol=*/true},
      {"IGMP",
       {"igmp"},
       {{"igmp", "version", 1},
        {"igmp", "type", 1},
        {"ip", "protocol", 2},
        {"ip", "ttl", 1}},
       {},
       /*scenario_symbol=*/true},
      {"NTP",
       {"udp", "ntp"},
       {{"ntp", "version", 1},
        {"ntp", "mode", 3},
        {"ntp", "poll", 6},
        {"ntp", "precision", -6},
        {"ip", "protocol", 17},
        {"ip", "ttl", 64}},
       {},
       /*scenario_symbol=*/false},
      {"BFD",
       {"bfd"},
       {},
       {{"up", 3}, {"down", 1}, {"init", 2}, {"admindown", 0}},
       /*scenario_symbol=*/false},
      {"DHCP",
       {"dhcp"},
       {{"dhcp", "op", 2},
        {"dhcp", "htype", 1},
        {"dhcp", "hlen", 6},
        {"ip", "protocol", 17},
        {"ip", "ttl", 64}},
       {{"discover", 1},
        {"offer", 2},
        {"request", 3},
        {"decline", 4},
        {"ack", 5},
        {"nak", 6},
        {"release", 7},
        {"inform", 8}},
       /*scenario_symbol=*/false},
      {"TCP", {"tcp"}, {}, {}, /*scenario_symbol=*/false},
      {"BGP", {"bgp"}, {}, {}, /*scenario_symbol=*/false},
      // The service daemon's framing. Symbols encode the FrameKind values
      // so a decoded `serve.kind` can be named straight from the table.
      {"SERVE",
       {"serve"},
       {{"serve", "magic", 0x5347}, {"serve", "version", 1}},
       {{"parse", 1},
        {"codegen", 2},
        {"interop", 3},
        {"fuzz", 4},
        {"stats", 5},
        {"goodbye", 6},
        {"result", 17},
        {"stats-result", 18},
        {"error", 19}},
       /*scenario_symbol=*/false},
  };
}

void SchemaRegistry::add_layer(LayerSpec layer) {
  layers_.push_back(std::move(layer));
}

const SchemaRegistry& SchemaRegistry::instance() {
  static const SchemaRegistry* registry = [] {
    auto* r = new SchemaRegistry();
    // Assign dense ids once all layers are in place (vector storage is
    // stable from here on; the registry is immutable afterwards).
    for (auto& l : r->layers_) {
      for (auto& f : l.fields) {
        f.id = static_cast<int>(r->by_id_.size());
        r->by_id_.push_back({&f, &l});
      }
    }
    return r;
  }();
  return *registry;
}

const LayerSpec* SchemaRegistry::layer(std::string_view name) const {
  for (const auto& l : layers_) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

const ProtocolSchema* SchemaRegistry::protocol(std::string_view name) const {
  for (const auto& p : protocols_) {
    if (p.protocol == name) return &p;
  }
  return nullptr;
}

const FieldSpec* SchemaRegistry::field(std::string_view layer_name,
                                       std::string_view field_name) const {
  const LayerSpec* l = layer(layer_name);
  if (l == nullptr) return nullptr;
  for (const auto& f : l->fields) {
    if (f.name == field_name) return &f;
  }
  // Payload-pattern fallback: dynamically-named excerpt fields resolve to
  // the layer's canonical bytes field.
  for (const auto& pattern : l->payload_patterns) {
    if (field_name.find(pattern) != std::string_view::npos) {
      for (const auto& f : l->fields) {
        if (f.kind == FieldKind::kBytes) return &f;
      }
    }
  }
  return nullptr;
}

const FieldSpec* SchemaRegistry::field_by_id(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= by_id_.size()) return nullptr;
  return by_id_[static_cast<std::size_t>(id)].spec;
}

const LayerSpec* SchemaRegistry::layer_by_id(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= by_id_.size()) return nullptr;
  return by_id_[static_cast<std::size_t>(id)].layer;
}

namespace {

/// The shared bit-extraction core: read `bit_offset`/`bit_width` out of
/// any byte image (a header image for kFixed, an option value for
/// kTlvOption).
std::optional<long> read_bits(const FieldSpec& spec,
                              std::span<const std::uint8_t> image) {
  const std::uint32_t end_bit = spec.bit_offset + spec.bit_width;
  if (image.size() * 8 < end_bit) return std::nullopt;

  std::uint64_t value = 0;
  if ((spec.bit_offset & 7) == 0 && (spec.bit_width & 7) == 0) {
    // Byte-aligned fast path (the overwhelmingly common case).
    const std::size_t off = spec.bit_offset / 8;
    switch (spec.bit_width) {
      case 8: value = image[off]; break;
      case 16: value = util::get_be16(image.subspan(off, 2)); break;
      case 32: value = util::get_be32(image.subspan(off, 4)); break;
      default:
        for (std::uint32_t i = 0; i < spec.bit_width / 8; ++i) {
          value = (value << 8) | image[off + i];
        }
        break;
    }
  } else {
    for (std::uint32_t bit = spec.bit_offset; bit < end_bit; ++bit) {
      value = (value << 1) | ((image[bit / 8] >> (7 - (bit & 7))) & 1);
    }
  }
  if (spec.is_signed && spec.bit_width < 64 &&
      (value & (1ULL << (spec.bit_width - 1))) != 0) {
    return static_cast<long>(value) -
           static_cast<long>(1ULL << spec.bit_width);
  }
  return static_cast<long>(value);
}

bool write_bits(const FieldSpec& spec, std::span<std::uint8_t> image,
                long value) {
  const std::uint32_t end_bit = spec.bit_offset + spec.bit_width;
  if (image.size() * 8 < end_bit) return false;

  const std::uint64_t raw =
      spec.bit_width >= 64
          ? static_cast<std::uint64_t>(value)
          : static_cast<std::uint64_t>(value) & ((1ULL << spec.bit_width) - 1);
  if ((spec.bit_offset & 7) == 0 && (spec.bit_width & 7) == 0) {
    const std::size_t off = spec.bit_offset / 8;
    switch (spec.bit_width) {
      case 8: image[off] = static_cast<std::uint8_t>(raw); return true;
      case 16:
        util::put_be16(image.subspan(off, 2), static_cast<std::uint16_t>(raw));
        return true;
      case 32:
        util::put_be32(image.subspan(off, 4), static_cast<std::uint32_t>(raw));
        return true;
      default: break;
    }
  }
  for (std::uint32_t i = 0; i < spec.bit_width; ++i) {
    const std::uint32_t bit = spec.bit_offset + i;
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1u << (7 - (bit & 7)));
    const bool set = (raw >> (spec.bit_width - 1 - i)) & 1;
    if (set) {
      image[bit / 8] |= mask;
    } else {
      image[bit / 8] &= static_cast<std::uint8_t>(~mask);
    }
  }
  return true;
}

bool loc_is_fixed(const FieldSpec& spec) {
  // kPseudoDerived changes how the value is *computed*, not where it
  // lives — reads and writes take the fixed-offset path unchanged.
  return spec.loc == FieldLoc::kFixed || spec.loc == FieldLoc::kPseudoDerived;
}

}  // namespace

std::optional<long> SchemaRegistry::read_scalar(
    const FieldSpec& spec, std::span<const std::uint8_t> image) {
  if (spec.kind != FieldKind::kScalar || !loc_is_fixed(spec)) {
    return std::nullopt;
  }
  return read_bits(spec, image);
}

bool SchemaRegistry::write_scalar(const FieldSpec& spec,
                                  std::span<std::uint8_t> image, long value) {
  if (spec.kind != FieldKind::kScalar || !loc_is_fixed(spec)) return false;
  return write_bits(spec, image, value);
}

WireRead SchemaRegistry::read_wire(const LayoutCursor& cursor,
                                   const FieldSpec& spec) {
  if (spec.kind != FieldKind::kScalar) return {ReadStatus::kUnknownField, 0};
  if (loc_is_fixed(spec)) {
    const auto value = read_bits(spec, cursor.image());
    if (!value) return {ReadStatus::kShortRead, 0};
    return {ReadStatus::kOk, *value};
  }
  if (spec.loc != FieldLoc::kTlvOption) return {ReadStatus::kUnknownField, 0};
  const auto& view = cursor.options();
  const auto opt = view.find(spec.tlv_type);
  if (!opt) {
    // A malformed region cannot prove absence: report it as short, the
    // same pinned status truncated fixed fields get.
    if (!view.ok()) return {ReadStatus::kShortRead, 0};
    return {ReadStatus::kMissingOption, 0};
  }
  const auto value = read_bits(spec, opt->value);
  if (!value) return {ReadStatus::kShortRead, 0};
  return {ReadStatus::kOk, *value};
}

WireRead SchemaRegistry::read_wire(std::string_view layer_name,
                                   std::string_view field_name,
                                   std::span<const std::uint8_t> image) const {
  const FieldSpec* spec = field(layer_name, field_name);
  if (spec == nullptr || spec->kind != FieldKind::kScalar) {
    return {ReadStatus::kUnknownField, 0};
  }
  if (loc_is_fixed(*spec)) {
    // Fixed-offset fast path: no cursor, no options scan.
    const auto value = read_bits(*spec, image);
    if (!value) return {ReadStatus::kShortRead, 0};
    return {ReadStatus::kOk, *value};
  }
  const LayoutCursor cursor(*layer(layer_name), image);
  return read_wire(cursor, *spec);
}

bool SchemaRegistry::write_wire(const LayerSpec& layer, const FieldSpec& spec,
                                std::span<std::uint8_t> image, long value) {
  if (spec.kind != FieldKind::kScalar) return false;
  if (loc_is_fixed(spec)) return write_bits(spec, image, value);
  if (spec.loc != FieldLoc::kTlvOption) return false;
  if (!layer.has_options || image.size() <= layer.options_offset) return false;
  // Walk the mutable region with the same grammar the OptionsView scans;
  // update the first matching option's value in place.
  auto region = image.subspan(layer.options_offset);
  std::size_t pos = 0;
  while (pos < region.size()) {
    const std::uint8_t code = region[pos];
    if (code == layer.option_end) return false;
    if (code == layer.option_pad) {
      ++pos;
      continue;
    }
    if (pos + 1 >= region.size()) return false;
    const std::size_t len = region[pos + 1];
    if (pos + 2 + len > region.size()) return false;
    if (code == spec.tlv_type) {
      return write_bits(spec, region.subspan(pos + 2, len), value);
    }
    pos += 2 + len;
  }
  return false;
}

std::string SchemaRegistry::dump() const {
  std::string out;
  for (const auto& l : layers_) {
    out += "layer " + l.name;
    if (l.header_bytes > 0) {
      out += " (" + std::to_string(l.header_bytes) + " bytes";
      if (l.has_payload) out += " + payload";
      if (l.has_options) {
        out += " + options@" + std::to_string(l.options_offset) + " pad=" +
               std::to_string(l.option_pad) + " end=" +
               std::to_string(l.option_end);
      }
      out += ")";
    } else {
      out += " (state-only)";
    }
    out += "\n";
    for (const auto& f : l.fields) {
      out += "  " + l.name + "." + f.name + "  " + field_kind_name(f.kind);
      if (f.kind == FieldKind::kScalar) {
        if (f.loc == FieldLoc::kTlvOption) {
          out += " tlv=" + std::to_string(f.tlv_type) + " +" +
                 std::to_string(f.bit_offset) + "+" +
                 std::to_string(f.bit_width);
        } else {
          out += " @" + std::to_string(f.bit_offset) + "+" +
                 std::to_string(f.bit_width);
          if (f.loc == FieldLoc::kPseudoDerived) {
            out += " pseudo(" + std::to_string(f.pseudo_proto) + ")";
          }
          if (f.is_signed) out += " signed";
        }
      } else if (f.kind == FieldKind::kPayloadScalar) {
        out += " payload+" + std::to_string(f.payload_offset);
      } else if (f.kind == FieldKind::kBytes &&
                 f.loc == FieldLoc::kLengthPrefixed) {
        out += " tlv=" + std::to_string(f.tlv_type) + " length-prefixed";
      }
      out += std::string(" ") + (f.readable ? "r" : "-") +
             (f.writable ? (f.write_is_noop ? "n" : "w") : "-");
      out += "  id=" + std::to_string(f.id);
      out += "\n";
    }
  }
  for (const auto& p : protocols_) {
    out += "protocol " + p.protocol + ": layers [";
    for (std::size_t i = 0; i < p.layers.size(); ++i) {
      if (i > 0) out += ", ";
      out += p.layers[i];
    }
    out += "]";
    if (!p.defaults.empty()) {
      out += " defaults {";
      for (std::size_t i = 0; i < p.defaults.size(); ++i) {
        if (i > 0) out += ", ";
        out += p.defaults[i].layer + "." + p.defaults[i].field + "=" +
               std::to_string(p.defaults[i].value);
      }
      out += "}";
    }
    if (!p.symbols.empty()) {
      out += " symbols {";
      for (std::size_t i = 0; i < p.symbols.size(); ++i) {
        if (i > 0) out += ", ";
        out += p.symbols[i].name + "=" + std::to_string(p.symbols[i].value);
      }
      out += "}";
    }
    out += "\n";
  }
  return out;
}

std::vector<std::string> SchemaRegistry::decode_layer(
    std::string_view layer_name, std::span<const std::uint8_t> image) const {
  std::vector<std::string> out;
  const LayerSpec* l = layer(layer_name);
  if (l == nullptr) return out;
  for (const auto& f : l->fields) {
    if (f.kind != FieldKind::kScalar || !loc_is_fixed(f)) continue;
    const auto v = read_scalar(f, image);
    out.push_back(l->name + "." + f.name + " = " +
                  (v ? std::to_string(*v) : std::string("<short read>")));
  }
  if (!l->has_options) return out;
  // One cursor for the whole options pass: the region bounds and the
  // well-formedness scan are resolved exactly once.
  const LayoutCursor cursor(*l, image);
  for (const auto& opt : cursor.options()) {
    const FieldSpec* known = nullptr;
    for (const auto& f : l->fields) {
      if (f.loc != FieldLoc::kFixed && f.tlv_type == opt.type &&
          f.kind == FieldKind::kScalar) {
        known = &f;
        break;
      }
    }
    if (known != nullptr) {
      const auto v = read_bits(*known, opt.value);
      out.push_back(l->name + "." + known->name + " = " +
                    (v ? std::to_string(*v) : std::string("<short read>")));
    } else {
      out.push_back(l->name + ".option_" + std::to_string(opt.type) + " = <" +
                    std::to_string(opt.value.size()) + " bytes>");
    }
  }
  if (!cursor.options().ok()) {
    out.push_back(l->name + ".options = <" +
                  (cursor.options().status() == TlvStatus::kTruncated
                       ? std::string("truncated option")
                       : std::string("option length lie")) +
                  ">");
  }
  return out;
}

}  // namespace sage::net::schema

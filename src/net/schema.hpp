// Declarative packet-schema registry — the single machine-readable
// description of every protocol the pipeline generates code for.
//
// The SAGE paper's static framework knows, per protocol, which header
// fields exist, where they live on the wire, which of them are session
// state rather than wire bits, and which symbolic names ("Up", "Down")
// the RFC text compares against. Before this registry existed that
// knowledge was duplicated four ways: the codegen static context, the
// per-protocol ExecEnv classes, the net/ serializers, and the simulator's
// inspector. The registry makes it one table:
//
//   * codegen resolves FieldRefs against it at generation time and
//     attaches dense field ids to the IR (unknown fields become
//     generation-time diagnostics),
//   * runtime::SchemaExecEnv executes generated code table-driven,
//     dispatching reads/writes on the field id instead of string
//     comparisons,
//   * the simulator and tools decode captured packets through the same
//     offsets/widths (sage_debug --dump-schema prints the table).
//
// Field kinds distinguish how a field is stored, not what it means:
// kScalar lives at bit_offset/bit_width inside the fixed header image;
// kPayloadScalar lives at a byte offset inside the variable-length
// payload (the ICMP timestamp-message rows); kBytes IS the payload;
// kState is a per-session variable with no wire encoding (bfd.*, TCP
// probe state); kToken reads as constant 0 ("the ICMP message");
// kVirtual is declared for code generation only and has no runtime
// storage (e.g. "internet header" as an IP-layer phrase).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sage::net::schema {

enum class FieldKind : std::uint8_t {
  kScalar,         // bit-addressed scalar inside the fixed header image
  kPayloadScalar,  // scalar at a byte offset inside the payload
  kBytes,          // the variable-length payload itself
  kState,          // session/state variable, no wire encoding
  kToken,          // symbolic stand-in, reads as 0
  kVirtual,        // codegen-only; no runtime storage
};

std::string field_kind_name(FieldKind kind);

/// Outcome of a wire read. kShortRead replaces the old silent behaviors
/// (zero-fill in the exec envs, silently missing decode lines) for
/// truncated packets: a field whose bit range extends past the image is
/// reported as short, never fabricated.
enum class ReadStatus : std::uint8_t {
  kOk,
  kUnknownField,  // no such layer/field, or not a wire scalar
  kShortRead,     // image ends before the field's last bit
};

std::string read_status_name(ReadStatus status);

/// read_wire result: an explicit status plus the value when kOk. The
/// pointer-ish accessors keep existing `*reg.read_wire(...)` call sites
/// working while making truncation observable.
struct WireRead {
  ReadStatus status = ReadStatus::kUnknownField;
  long value = 0;

  bool ok() const { return status == ReadStatus::kOk; }
  explicit operator bool() const { return ok(); }
  long operator*() const { return value; }
};

struct FieldSpec {
  std::string name;
  FieldKind kind = FieldKind::kScalar;
  std::uint32_t bit_offset = 0;      // kScalar: from bit 0 = MSB of byte 0
  std::uint32_t bit_width = 0;       // kScalar
  std::uint32_t payload_offset = 0;  // kPayloadScalar: byte offset
  bool is_signed = false;            // sign-extend on read (ntp.poll)
  bool readable = true;
  bool writable = true;
  /// Writes are accepted and discarded (icmp.unused, udp.checksum:
  /// "filled at serialization").
  bool write_is_noop = false;
  /// Dense process-wide id, assigned by the registry at construction.
  int id = -1;
};

/// One header layer: fixed-size image plus (optionally) a payload.
struct LayerSpec {
  std::string name;               // "icmp", "udp", "bfd", ...
  std::size_t header_bytes = 0;   // fixed header image size (0 for state-only)
  bool has_payload = false;       // a kBytes field / payload buffer exists
  std::vector<FieldSpec> fields;
  /// Substrings that mark a dynamically-named field as payload-backed
  /// bytes ("internet_header...", "...datagram..."): such names resolve
  /// to this layer's kBytes field.
  std::vector<std::string> payload_patterns;
};

/// A well-known symbolic name with an RFC-mandated encoding (BFD session
/// states). Names compare case-insensitively.
struct SymbolSpec {
  std::string name;  // lowercased
  long value = 0;
};

/// A default header value applied when an outgoing image is created
/// ("serialization order" defaults: NTP version 1 / mode 3 / poll 6 ...).
struct DefaultSpec {
  std::string layer;
  std::string field;
  long value = 0;
};

struct ProtocolSchema {
  std::string protocol;             // "ICMP" (pipeline protocol tag)
  std::vector<std::string> layers;  // bound layers, serialization order
  std::vector<DefaultSpec> defaults;
  std::vector<SymbolSpec> symbols;
  /// Does resolve_symbol("scenario") name the current event scenario?
  /// (ICMP/IGMP @Case dispatch; NTP and BFD never used the alias.)
  bool scenario_symbol = false;
};

class SchemaRegistry {
 public:
  /// The process-wide registry of all known protocols. Immutable after
  /// construction; safe to share across threads.
  static const SchemaRegistry& instance();

  const std::vector<LayerSpec>& layers() const { return layers_; }
  const std::vector<ProtocolSchema>& protocols() const { return protocols_; }

  const LayerSpec* layer(std::string_view name) const;
  const ProtocolSchema* protocol(std::string_view name) const;

  /// Field lookup by (layer, field). Falls back to the layer's
  /// payload_patterns: a dynamic name like
  /// "internet_header_64_bits_of_original_data_datagram" resolves to the
  /// layer's canonical kBytes field. nullptr when unknown.
  const FieldSpec* field(std::string_view layer, std::string_view field) const;

  /// Dense-id lookups. Ids are contiguous in [0, field_count()).
  const FieldSpec* field_by_id(int id) const;
  const LayerSpec* layer_by_id(int id) const;
  std::size_t field_count() const { return by_id_.size(); }

  /// Generic bit-level scalar access over a serialized header image.
  /// Reads sign-extend when the spec says so; writes mask to bit_width.
  /// nullopt / false when the image is too short or the field is not
  /// kScalar.
  static std::optional<long> read_scalar(const FieldSpec& spec,
                                         std::span<const std::uint8_t> image);
  static bool write_scalar(const FieldSpec& spec, std::span<std::uint8_t> image,
                           long value);

  /// Read a named wire field straight out of a serialized header image
  /// (schema-driven packet decode for the inspector and tools). A
  /// truncated image yields ReadStatus::kShortRead, not a zero.
  WireRead read_wire(std::string_view layer, std::string_view field,
                     std::span<const std::uint8_t> image) const;

  /// Human-readable table of every layer/field/protocol
  /// (sage_debug --dump-schema).
  std::string dump() const;

  /// Render "layer.field = value" lines for one layer of a captured
  /// packet (wire scalars only). Fields the image is too short to hold
  /// render as "layer.field = <short read>" so truncation is visible in
  /// decodes instead of silently dropping lines.
  std::vector<std::string> decode_layer(std::string_view layer,
                                        std::span<const std::uint8_t> image) const;

 private:
  SchemaRegistry();
  void add_layer(LayerSpec layer);

  std::vector<LayerSpec> layers_;
  std::vector<ProtocolSchema> protocols_;
  struct IdEntry {
    const FieldSpec* spec;
    const LayerSpec* layer;
  };
  std::vector<IdEntry> by_id_;
};

}  // namespace sage::net::schema

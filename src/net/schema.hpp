// Declarative packet-schema registry — the single machine-readable
// description of every protocol the pipeline generates code for.
//
// The SAGE paper's static framework knows, per protocol, which header
// fields exist, where they live on the wire, which of them are session
// state rather than wire bits, and which symbolic names ("Up", "Down")
// the RFC text compares against. Before this registry existed that
// knowledge was duplicated four ways: the codegen static context, the
// per-protocol ExecEnv classes, the net/ serializers, and the simulator's
// inspector. The registry makes it one table:
//
//   * codegen resolves FieldRefs against it at generation time and
//     attaches dense field ids to the IR (unknown fields become
//     generation-time diagnostics),
//   * runtime::SchemaExecEnv executes generated code table-driven,
//     dispatching reads/writes on the field id instead of string
//     comparisons,
//   * the simulator and tools decode captured packets through the same
//     offsets/widths (sage_debug --dump-schema prints the table).
//
// Field kinds distinguish how a field is stored, not what it means:
// kScalar lives at bit_offset/bit_width inside the fixed header image;
// kPayloadScalar lives at a byte offset inside the variable-length
// payload (the ICMP timestamp-message rows); kBytes IS the payload;
// kState is a per-session variable with no wire encoding (bfd.*, TCP
// probe state); kToken reads as constant 0 ("the ICMP message");
// kVirtual is declared for code generation only and has no runtime
// storage (e.g. "internet header" as an IP-layer phrase).
//
// Orthogonal to the kind, every field carries a *location* (FieldLoc):
// where its bytes live. kFixed is the classic bit_offset/bit_width
// placement and pays nothing for the v2 machinery. kTlvOption and
// kLengthPrefixed place the field inside the layer's TLV options region
// (DHCP options), addressed by option code instead of a fixed offset;
// kPseudoDerived marks a fixed-offset checksum whose value covers an
// IP pseudo-header (udp.checksum, icmp6.checksum) so serializers know
// which pseudo-header sum to chain in. LayoutCursor resolves a layer's
// region bounds once per image, and OptionsView iterates the TLVs as
// spans without copying (lifetime contract: docs/MEMORY.md).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sage::net::schema {

enum class FieldKind : std::uint8_t {
  kScalar,         // bit-addressed scalar inside the fixed header image
  kPayloadScalar,  // scalar at a byte offset inside the payload
  kBytes,          // the variable-length payload itself
  kState,          // session/state variable, no wire encoding
  kToken,          // symbolic stand-in, reads as 0
  kVirtual,        // codegen-only; no runtime storage
};

std::string field_kind_name(FieldKind kind);

/// Where a field's bytes live (orthogonal to FieldKind, which says how
/// they are typed). Everything before schema v2 is kFixed.
enum class FieldLoc : std::uint8_t {
  kFixed,           // bit_offset/bit_width inside the fixed header image
  kLengthPrefixed,  // a whole TLV option value (variable-length region)
  kTlvOption,       // scalar at bit_offset/bit_width INSIDE an option value
  kPseudoDerived,   // fixed-offset checksum computed over an IP pseudo-header
};

std::string field_loc_name(FieldLoc loc);

/// Outcome of a wire read. kShortRead replaces the old silent behaviors
/// (zero-fill in the exec envs, silently missing decode lines) for
/// truncated packets: a field whose bit range extends past the image is
/// reported as short, never fabricated. kMissingOption is the TLV
/// analogue: the options region is well-formed but does not carry the
/// field's option code.
enum class ReadStatus : std::uint8_t {
  kOk,
  kUnknownField,   // no such layer/field, or not a wire scalar
  kShortRead,      // image ends before the field's last bit
  kMissingOption,  // TLV field: option code absent from the region
};

std::string read_status_name(ReadStatus status);

/// read_wire result: an explicit status plus the value when kOk.
struct WireRead {
  ReadStatus status = ReadStatus::kUnknownField;
  long value = 0;

  bool ok() const { return status == ReadStatus::kOk; }
};

struct FieldSpec {
  std::string name;
  FieldKind kind = FieldKind::kScalar;
  FieldLoc loc = FieldLoc::kFixed;
  std::uint32_t bit_offset = 0;      // kFixed: from bit 0 = MSB of byte 0;
                                     // kTlvOption: from bit 0 of the value
  std::uint32_t bit_width = 0;       // kScalar
  std::uint32_t payload_offset = 0;  // kPayloadScalar: byte offset
  /// kTlvOption / kLengthPrefixed: the option code addressing the field.
  std::uint8_t tlv_type = 0;
  /// kPseudoDerived: IP protocol / next-header number summed into the
  /// pseudo-header (17 for UDP, 58 for ICMPv6).
  std::uint8_t pseudo_proto = 0;
  bool is_signed = false;            // sign-extend on read (ntp.poll)
  bool readable = true;
  bool writable = true;
  /// Writes are accepted and discarded (icmp.unused, udp.checksum:
  /// "filled at serialization").
  bool write_is_noop = false;
  /// Dense process-wide id, assigned by the registry at construction.
  int id = -1;
};

/// One header layer: fixed-size image plus (optionally) a payload
/// and/or a TLV options region that starts at options_offset.
struct LayerSpec {
  std::string name;               // "icmp", "udp", "bfd", ...
  std::size_t header_bytes = 0;   // fixed header image size (0 for state-only)
  bool has_payload = false;       // a kBytes field / payload buffer exists
  /// TLV options grammar (DHCP): when true, bytes from options_offset to
  /// the end of the image are a run of {code, length, value[length]}
  /// options, with option_pad as a 1-byte no-length padding code and
  /// option_end terminating the run.
  bool has_options = false;
  std::size_t options_offset = 0;
  std::uint8_t option_pad = 0;
  std::uint8_t option_end = 255;
  std::vector<FieldSpec> fields;
  /// Substrings that mark a dynamically-named field as payload-backed
  /// bytes ("internet_header...", "...datagram..."): such names resolve
  /// to this layer's kBytes field.
  std::vector<std::string> payload_patterns;
};

/// A well-known symbolic name with an RFC-mandated encoding (BFD session
/// states). Names compare case-insensitively.
struct SymbolSpec {
  std::string name;  // lowercased
  long value = 0;
};

/// A default header value applied when an outgoing image is created
/// ("serialization order" defaults: NTP version 1 / mode 3 / poll 6 ...).
struct DefaultSpec {
  std::string layer;
  std::string field;
  long value = 0;
};

struct ProtocolSchema {
  std::string protocol;             // "ICMP" (pipeline protocol tag)
  std::vector<std::string> layers;  // bound layers, serialization order
  std::vector<DefaultSpec> defaults;
  std::vector<SymbolSpec> symbols;
  /// Does resolve_symbol("scenario") name the current event scenario?
  /// (ICMP/IGMP @Case dispatch; NTP and BFD never used the alias.)
  bool scenario_symbol = false;
};

/// One TLV option as a view into the underlying image. The value span
/// aliases the image the view was built over — same lifetime contract as
/// every other decode span (docs/MEMORY.md): valid while the image is.
struct TlvOption {
  std::uint8_t type = 0;
  std::span<const std::uint8_t> value;
};

/// Well-formedness of a TLV options region after a full scan.
enum class TlvStatus : std::uint8_t {
  kOk,         // clean run (possibly empty), terminated or exhausted
  kTruncated,  // region ends mid-TLV: a code byte without its length byte
  kLengthLie,  // a length byte claims more bytes than the region holds
};

std::string tlv_status_name(TlvStatus status);

/// Zero-copy iteration over a TLV options region. Construction scans the
/// region once to classify it (status()); iteration yields the options
/// up to the first malformation or the end code. Works directly on
/// arena-backed capture spans — nothing is copied.
class OptionsView {
 public:
  OptionsView(std::span<const std::uint8_t> region, std::uint8_t pad_code,
              std::uint8_t end_code);
  /// Convenience: the options region of `image` per the layer's grammar.
  /// A layer without options (or an image shorter than options_offset)
  /// yields an empty, kOk view.
  OptionsView(const LayerSpec& layer, std::span<const std::uint8_t> image);

  TlvStatus status() const { return status_; }
  bool ok() const { return status_ == TlvStatus::kOk; }

  class iterator {
   public:
    iterator() = default;
    iterator(const OptionsView* view, std::size_t pos) : view_(view) {
      advance_to(pos);
    }
    const TlvOption& operator*() const { return current_; }
    const TlvOption* operator->() const { return &current_; }
    iterator& operator++() {
      advance_to(next_);
      return *this;
    }
    bool operator==(const iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const iterator& o) const { return pos_ != o.pos_; }

   private:
    void advance_to(std::size_t pos);

    const OptionsView* view_ = nullptr;
    std::size_t pos_ = std::size_t(-1);  // -1 = end
    std::size_t next_ = std::size_t(-1);
    TlvOption current_;
  };

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(); }

  /// First option with the given code; nullopt when absent or when the
  /// scan hits a malformation first.
  std::optional<TlvOption> find(std::uint8_t type) const;

  std::size_t count() const;  // well-formed options before any malformation

  // ---- encode helpers (the other half of the round-trip codec) ----------
  static void append(std::vector<std::uint8_t>& out, std::uint8_t type,
                     std::span<const std::uint8_t> value);
  /// Append a big-endian scalar option of `length` bytes (1, 2, or 4).
  static void append_scalar(std::vector<std::uint8_t>& out, std::uint8_t type,
                            long value, std::size_t length);
  static void append_end(std::vector<std::uint8_t>& out,
                         std::uint8_t end_code = 255);

 private:
  std::span<const std::uint8_t> region_;
  std::uint8_t pad_ = 0;
  std::uint8_t end_ = 255;
  TlvStatus status_ = TlvStatus::kOk;
};

/// Resolved layout of one layer image: the fixed-header prefix and the
/// TLV options region, computed once so repeated field reads (decode
/// loops, option-heavy handlers) don't re-derive bounds. Fixed-offset
/// reads never need a cursor — the plain read_wire path is unchanged.
class LayoutCursor {
 public:
  LayoutCursor(const LayerSpec& layer, std::span<const std::uint8_t> image);

  const LayerSpec& layer() const { return *layer_; }
  std::span<const std::uint8_t> image() const { return image_; }
  /// The options region (empty for layers without one or images that end
  /// before options_offset).
  std::span<const std::uint8_t> options_region() const { return options_; }
  const OptionsView& options() const { return view_; }

 private:
  const LayerSpec* layer_;
  std::span<const std::uint8_t> image_;
  std::span<const std::uint8_t> options_;
  OptionsView view_;
};

class SchemaRegistry {
 public:
  /// The process-wide registry of all known protocols. Immutable after
  /// construction; safe to share across threads.
  static const SchemaRegistry& instance();

  const std::vector<LayerSpec>& layers() const { return layers_; }
  const std::vector<ProtocolSchema>& protocols() const { return protocols_; }

  const LayerSpec* layer(std::string_view name) const;
  const ProtocolSchema* protocol(std::string_view name) const;

  /// Field lookup by (layer, field). Falls back to the layer's
  /// payload_patterns: a dynamic name like
  /// "internet_header_64_bits_of_original_data_datagram" resolves to the
  /// layer's canonical kBytes field. nullptr when unknown.
  const FieldSpec* field(std::string_view layer, std::string_view field) const;

  /// Dense-id lookups. Ids are contiguous in [0, field_count()).
  const FieldSpec* field_by_id(int id) const;
  const LayerSpec* layer_by_id(int id) const;
  std::size_t field_count() const { return by_id_.size(); }

  /// Generic bit-level scalar access over a serialized header image.
  /// Reads sign-extend when the spec says so; writes mask to bit_width.
  /// nullopt / false when the image is too short or the field is not a
  /// fixed-offset kScalar — TLV-located fields go through read_wire /
  /// write_wire, which resolve the options region.
  static std::optional<long> read_scalar(const FieldSpec& spec,
                                         std::span<const std::uint8_t> image);
  static bool write_scalar(const FieldSpec& spec, std::span<std::uint8_t> image,
                           long value);

  /// Read a named wire field straight out of a serialized header image
  /// (schema-driven packet decode for the inspector and tools). A
  /// truncated image yields ReadStatus::kShortRead, not a zero; a TLV
  /// field whose option code is absent yields kMissingOption.
  WireRead read_wire(std::string_view layer, std::string_view field,
                     std::span<const std::uint8_t> image) const;

  /// Same read against a pre-resolved layout — option-region bounds and
  /// the TLV scan are paid once per cursor, not once per field.
  static WireRead read_wire(const LayoutCursor& cursor, const FieldSpec& spec);

  /// Layout-aware write into a full layer image: fixed fields delegate
  /// to write_scalar; kTlvOption fields update the option value in place
  /// when the option exists with enough room (a span cannot grow —
  /// appending goes through OptionsView::append on the owning vector).
  static bool write_wire(const LayerSpec& layer, const FieldSpec& spec,
                         std::span<std::uint8_t> image, long value);

  /// Human-readable table of every layer/field/protocol
  /// (sage_debug --dump-schema).
  std::string dump() const;

  /// Render "layer.field = value" lines for one layer of a captured
  /// packet (wire scalars only). Fields the image is too short to hold
  /// render as "layer.field = <short read>" so truncation is visible in
  /// decodes instead of silently dropping lines. For layers with a TLV
  /// options region the declared option fields follow the fixed fields
  /// (missing options are omitted, malformed regions render a trailing
  /// "<truncated option>" / "<option length lie>" marker line).
  std::vector<std::string> decode_layer(std::string_view layer,
                                        std::span<const std::uint8_t> image) const;

 private:
  SchemaRegistry();
  void add_layer(LayerSpec layer);

  std::vector<LayerSpec> layers_;
  std::vector<ProtocolSchema> protocols_;
  struct IdEntry {
    const FieldSpec* spec;
    const LayerSpec* layer;
  };
  std::vector<IdEntry> by_id_;
};

}  // namespace sage::net::schema

#include "net/udp.hpp"

#include "net/checksum.hpp"
#include "util/bytes.hpp"

namespace sage::net {

namespace {

std::uint16_t pseudo_header_sum(IpAddr src_ip, IpAddr dst_ip,
                                std::size_t udp_length) {
  return pseudo_header_sum_v4(src_ip.value(), dst_ip.value(),
                              static_cast<std::uint8_t>(IpProto::kUdp),
                              static_cast<std::uint16_t>(udp_length));
}

}  // namespace

std::vector<std::uint8_t> UdpHeader::serialize(
    IpAddr src_ip, IpAddr dst_ip, std::span<const std::uint8_t> payload) const {
  const std::size_t total = 8 + payload.size();
  std::vector<std::uint8_t> out(total, 0);
  util::put_be16({out.data(), 2}, src_port);
  util::put_be16({out.data() + 2, 2}, dst_port);
  util::put_be16({out.data() + 4, 2}, static_cast<std::uint16_t>(total));
  std::copy(payload.begin(), payload.end(), out.begin() + 8);
  std::uint16_t ck =
      internet_checksum(out, pseudo_header_sum(src_ip, dst_ip, total));
  if (ck == 0) ck = 0xffff;  // RFC 768: transmitted all-zero means "no checksum"
  util::put_be16({out.data() + 6, 2}, ck);
  return out;
}

std::optional<UdpHeader> UdpHeader::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  UdpHeader h;
  h.src_port = util::get_be16(data.subspan(0, 2));
  h.dst_port = util::get_be16(data.subspan(2, 2));
  h.length = util::get_be16(data.subspan(4, 2));
  h.checksum = util::get_be16(data.subspan(6, 2));
  return h;
}

bool UdpHeader::verify_checksum(IpAddr src_ip, IpAddr dst_ip,
                                std::span<const std::uint8_t> udp_bytes) {
  if (udp_bytes.size() < 8) return false;
  const std::uint16_t transmitted = util::get_be16(udp_bytes.subspan(6, 2));
  if (transmitted == 0) return true;  // checksum disabled
  return ones_complement_sum(
             udp_bytes, pseudo_header_sum(src_ip, dst_ip, udp_bytes.size())) ==
         0xffff;
}

}  // namespace sage::net

// UDP (RFC 768) — substrate for the NTP encapsulation experiment (§6.3:
// "It generated packets for the timeout procedure containing both NTP and
// UDP headers") and for the traceroute probe model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace sage::net {

/// UDP header; checksum covers the RFC 768 pseudo-header when src/dst IPs
/// are supplied to serialize().
struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    // filled by serialize()
  std::uint16_t checksum = 0;  // filled by serialize()

  /// Serialize header + payload with pseudo-header checksum.
  std::vector<std::uint8_t> serialize(IpAddr src_ip, IpAddr dst_ip,
                                      std::span<const std::uint8_t> payload) const;

  static std::optional<UdpHeader> parse(std::span<const std::uint8_t> data);

  /// Verify the pseudo-header checksum of a full UDP datagram.
  static bool verify_checksum(IpAddr src_ip, IpAddr dst_ip,
                              std::span<const std::uint8_t> udp_bytes);
};

/// The well-known NTP port (RFC 1059 Appendix A: "port 123").
inline constexpr std::uint16_t kNtpPort = 123;

}  // namespace sage::net

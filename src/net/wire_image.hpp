// WireImage: a non-owning view of a serialized packet (wire format,
// starting at whatever layer the context implies — usually the IP
// header).
//
// The zero-copy packet path (docs/MEMORY.md) moves these instead of
// std::vector<uint8_t>: the bytes live in a util::Arena owned by the
// run (a sim::Network, a fuzzing case), every hop/capture/inbox entry
// aliases the same immutable image, and the arena's reset() is the one
// point where views die. A WireImage is two words — copy it freely.
//
// Ownership rule: whoever holds the arena decides the lifetime. Code
// that needs bytes to outlive the run copies them out explicitly with
// to_vector() (see sim::own_capture).
#pragma once

#include <cstdint>
#include <cstring>
#include <ostream>
#include <span>
#include <vector>

namespace sage::net {

class WireImage {
 public:
  constexpr WireImage() = default;
  constexpr WireImage(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  constexpr WireImage(std::span<const std::uint8_t> bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  WireImage(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  // A view of a temporary would dangle before the next expression.
  WireImage(std::vector<std::uint8_t>&&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* begin() const { return data_; }
  const std::uint8_t* end() const { return data_ + size_; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  std::span<const std::uint8_t> span() const { return {data_, size_}; }
  operator std::span<const std::uint8_t>() const { return {data_, size_}; }

  WireImage subview(std::size_t offset) const {
    return {data_ + offset, size_ - offset};
  }

  /// Explicit copy out of the arena (lifetime escape hatch).
  std::vector<std::uint8_t> to_vector() const {
    return std::vector<std::uint8_t>(data_, data_ + size_);
  }

  friend bool operator==(const WireImage& a, const WireImage& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator==(const WireImage& a,
                         const std::vector<std::uint8_t>& b) {
    return a == WireImage(b);
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Hex dump for test failure messages.
inline std::ostream& operator<<(std::ostream& os, const WireImage& img) {
  static constexpr char kHex[] = "0123456789abcdef";
  os << "WireImage[" << img.size() << "]{";
  for (std::size_t i = 0; i < img.size(); ++i) {
    if (i != 0) os << ' ';
    os << kHex[img[i] >> 4] << kHex[img[i] & 0xf];
  }
  return os << '}';
}

}  // namespace sage::net

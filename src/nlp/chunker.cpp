#include "nlp/chunker.hpp"

#include "util/strings.hpp"

namespace sage::nlp {

const std::unordered_set<std::string>& default_generic_nouns() {
  // The generic-English noun vocabulary of the evaluated RFC sections.
  // SpaCy would tag these as NOUN; keeping the list explicit makes the
  // kNoDictionary ablation deterministic.
  static const std::unordered_set<std::string> kNouns = {
      "address",      "addresses",   "gateway",     "network",
      "datagram",     "datagrams",   "data",        "header",
      "headers",      "message",     "messages",    "packet",
      "packets",      "checksum",    "code",        "type",
      "field",        "fields",      "value",       "values",
      "identifier",   "sequence",    "number",      "numbers",
      "octet",        "octets",      "bit",         "bits",
      "byte",         "bytes",       "error",       "errors",
      "source",       "destination", "sender",      "receiver",
      "reply",        "replies",     "request",     "requests",
      "echo",         "echos",       "echoes",      "timestamp",
      "timestamps",   "time",        "host",        "hosts",
      "router",       "internet",    "protocol",    "port",
      "ports",        "pointer",     "parameter",   "problem",
      "quench",       "redirect",    "information", "session",
      "sessions",     "system",      "systems",     "state",
      "variable",     "variables",   "mode",        "interval",
      "transmission", "detection",   "procedure",   "timer",
      "timeout",      "peer",        "server",      "client",
      "clock",        "stratum",     "version",     "report",
      "query",        "group",       "membership",  "traffic",
      "options",      "option",      "length",      "buffer",
      "space",        "level",       "complement",  "sum",
      "fragment",     "discriminator",
  };
  return kNouns;
}

std::vector<Token> NounPhraseChunker::chunk(const std::vector<Token>& tokens,
                                            ChunkingMode mode) const {
  if (mode == ChunkingMode::kNoLabeling) return tokens;

  const auto& generic = default_generic_nouns();
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < tokens.size()) {
    const Token& tok = tokens[i];
    if (tok.kind != TokenKind::kWord) {
      out.push_back(tok);
      ++i;
      continue;
    }

    // Longest dictionary phrase starting here (kFull only).
    if (mode == ChunkingMode::kFull && dictionary_ != nullptr) {
      const std::size_t max_span =
          std::min(dictionary_->max_words(), tokens.size() - i);
      std::size_t best = 0;
      std::string best_text;
      std::string candidate;
      std::string candidate_text;
      for (std::size_t span = 1; span <= max_span; ++span) {
        const Token& part = tokens[i + span - 1];
        if (part.kind != TokenKind::kWord &&
            part.kind != TokenKind::kNumber &&
            part.kind != TokenKind::kNounPhrase) {
          break;  // phrases never cross punctuation
        }
        if (span > 1) {
          candidate += ' ';
          candidate_text += ' ';
        }
        candidate += part.lower;
        candidate_text += part.text;
        if (dictionary_->contains(candidate)) {
          best = span;
          best_text = candidate_text;
        }
      }
      if (best > 0) {
        out.push_back(make_noun_phrase(best_text));
        i += best;
        continue;
      }
    }

    // Generic single-word noun (the SpaCy role).
    if (generic.count(tok.lower) != 0) {
      out.push_back(make_noun_phrase(tok.text));
      ++i;
      continue;
    }

    // Without the domain dictionary, open-class words default to nouns
    // (SpaCy tags unknown content words as NOUN/PROPN); closed-class
    // words — those the grammar has entries for — keep their identity.
    if (mode == ChunkingMode::kNoDictionary && closed_class_ != nullptr &&
        closed_class_->count(tok.lower) == 0) {
      out.push_back(make_noun_phrase(tok.text));
      ++i;
      continue;
    }

    out.push_back(tok);
    ++i;
  }
  return out;
}

}  // namespace sage::nlp

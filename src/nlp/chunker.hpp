// Noun-phrase labeling (§3, "Importance of Noun Phrase Labeling" §6.5).
//
// Before CCG parsing, SAGE labels noun phrases two ways:
//   1. domain phrases from the term dictionary (longest match wins), and
//   2. generic English nouns, for which the paper uses SpaCy — here a
//      built-in noun list plays that role.
//
// Labeling quality drives ambiguity: "echo reply message" labeled as ONE
// noun phrase yields far fewer logical forms than three separate nouns
// (Table 7: 6 vs 16), and removing labeling entirely leaves most words
// without lexical entries, producing zero logical forms (Table 8: 54 of
// 87 sentences). ChunkingMode reproduces those ablations.
#pragma once

#include <unordered_set>
#include <vector>

#include "nlp/term_dictionary.hpp"
#include "nlp/tokenizer.hpp"

namespace sage::nlp {

/// Ablation switch for the Table 8 experiment.
enum class ChunkingMode {
  kFull,          // dictionary phrases + generic nouns (normal SAGE)
  kNoDictionary,  // generic single-word nouns only
  kNoLabeling,    // chunker disabled: tokens pass through untouched
};

/// The built-in generic-English noun list standing in for SpaCy's noun
/// recognition. Covers the vocabulary of the evaluated RFC sections.
const std::unordered_set<std::string>& default_generic_nouns();

class NounPhraseChunker {
 public:
  /// `dictionary` must outlive the chunker. `closed_class` (optional,
  /// non-owning) lists the words the grammar itself knows — determiners,
  /// verbs, prepositions; in kNoDictionary mode any word *not* in it is
  /// labeled as a noun, which is how SpaCy-style open-class tagging
  /// behaves when the domain dictionary is removed (Table 8).
  explicit NounPhraseChunker(
      const TermDictionary* dictionary,
      const std::unordered_set<std::string>* closed_class = nullptr)
      : dictionary_(dictionary), closed_class_(closed_class) {}

  /// Label noun phrases in `tokens` according to `mode`. kNounPhrase
  /// tokens already present (pre-labeled via quotes) are preserved.
  std::vector<Token> chunk(const std::vector<Token>& tokens,
                           ChunkingMode mode = ChunkingMode::kFull) const;

 private:
  const TermDictionary* dictionary_;
  const std::unordered_set<std::string>* closed_class_;
};

}  // namespace sage::nlp

#include "nlp/sentence_splitter.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace sage::nlp {

namespace {

/// Is the '.' at `pos` a sentence terminator (rather than part of an
/// abbreviation, identifier, or dotted quad)?
bool is_sentence_end(std::string_view text, std::size_t pos) {
  // Must be followed by end-of-text, or whitespace + uppercase/new clause.
  if (pos + 1 < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[pos + 1])) == 0) {
      return false;  // "bfd.SessionState", "10.0.1.1"
    }
    // Look at the next non-space character: sentence boundaries are
    // followed by an uppercase letter, a digit, or an opening quote.
    std::size_t j = pos + 1;
    while (j < text.size() &&
           std::isspace(static_cast<unsigned char>(text[j])) != 0) {
      ++j;
    }
    if (j < text.size()) {
      const auto c = static_cast<unsigned char>(text[j]);
      if (std::isupper(c) == 0 && std::isdigit(c) == 0 && c != '"' &&
          c != '\'') {
        return false;
      }
    }
  }
  // Reject common abbreviations preceding the dot.
  static const std::vector<std::string> kAbbrev = {"e.g", "i.e", "etc", "vs",
                                                   "cf"};
  for (const auto& a : kAbbrev) {
    if (pos >= a.size() &&
        util::to_lower(std::string(text.substr(pos - a.size(), a.size()))) ==
            a) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<std::string> split_sentences(std::string_view paragraph) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < paragraph.size(); ++i) {
    const char c = paragraph[i];
    if ((c == '.' && is_sentence_end(paragraph, i)) || c == '!' || c == '?') {
      const std::string_view piece =
          util::trim(paragraph.substr(start, i + 1 - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  const std::string_view tail = util::trim(paragraph.substr(start));
  if (!tail.empty()) out.emplace_back(tail);
  return out;
}

}  // namespace sage::nlp

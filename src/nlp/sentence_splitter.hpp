// Sentence splitting for RFC paragraphs.
//
// RFC prose is plain ASCII with hard-wrapped lines; the pre-processor
// (src/rfc) joins a paragraph's lines, and this splitter cuts the result
// into sentences, taking care of the idioms that break naive splitting:
// "e.g.", "i.e.", dotted identifiers (bfd.SessionState), numbered values
// ("0 = Echo Reply"), and dotted quads (10.0.1.1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sage::nlp {

/// Split a paragraph (single line of joined text) into sentences.
std::vector<std::string> split_sentences(std::string_view paragraph);

}  // namespace sage::nlp

#include "nlp/term_dictionary.hpp"

#include "util/strings.hpp"

namespace sage::nlp {

void TermDictionary::add(std::string_view term) {
  const std::string key = util::to_lower(util::trim(term));
  if (key.empty()) return;
  const std::size_t words = util::split(key, " ").size();
  max_words_ = std::max(max_words_, words);
  terms_.insert(key);
}

void TermDictionary::add_all(const std::vector<std::string>& terms) {
  for (const auto& t : terms) add(t);
}

bool TermDictionary::contains(std::string_view term) const {
  return terms_.count(util::to_lower(util::trim(term))) != 0;
}

std::vector<std::string> TermDictionary::terms() const {
  return {terms_.begin(), terms_.end()};
}

}  // namespace sage::nlp

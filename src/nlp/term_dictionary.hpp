// Domain term dictionary (§3 "Specifying domain-specific syntax").
//
// The paper builds a ~400-term dictionary of networking nouns and noun
// phrases from the index of a standard networking textbook so that a
// human doesn't have to write syntactic lexical entries by hand. Our
// dictionary (seeded in src/corpus/terms.cpp) plays the same role: any
// dictionary phrase found in a sentence is collapsed into a single
// noun-phrase token before CCG parsing.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace sage::nlp {

class TermDictionary {
 public:
  TermDictionary() = default;

  /// Add a term (case-insensitive); multi-word terms allowed.
  void add(std::string_view term);

  /// Add many terms at once.
  void add_all(const std::vector<std::string>& terms);

  /// Case-insensitive exact lookup.
  bool contains(std::string_view term) const;

  /// Longest number of words in any stored term (bounds chunker lookahead).
  std::size_t max_words() const { return max_words_; }

  std::size_t size() const { return terms_.size(); }

  /// All stored terms (lowercased), for introspection benches.
  std::vector<std::string> terms() const;

 private:
  std::unordered_set<std::string> terms_;
  std::size_t max_words_ = 0;
};

}  // namespace sage::nlp

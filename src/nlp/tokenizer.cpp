#include "nlp/tokenizer.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace sage::nlp {

Token make_word(std::string_view text) {
  Token t;
  t.kind = TokenKind::kWord;
  t.text = std::string(text);
  t.lower = util::to_lower(text);
  return t;
}

Token make_number(long value, std::string_view spelling) {
  Token t;
  t.kind = TokenKind::kNumber;
  t.text = std::string(spelling);
  t.lower = util::to_lower(spelling);
  t.number = value;
  return t;
}

Token make_punct(char c) {
  Token t;
  t.kind = TokenKind::kPunct;
  t.text = std::string(1, c);
  t.lower = t.text;
  return t;
}

Token make_noun_phrase(std::string_view phrase) {
  Token t;
  t.kind = TokenKind::kNounPhrase;
  t.text = std::string(phrase);
  t.lower = util::to_lower(phrase);
  return t;
}

namespace {

bool is_word_char(char c) {
  const auto uc = static_cast<unsigned char>(c);
  // Hyphens, apostrophes, slashes and dots inside identifiers keep
  // "one's", "16-bit", "echo/reply" and "bfd.SessionState" whole.
  return std::isalnum(uc) != 0 || c == '-' || c == '\'' || c == '/' || c == '.' ||
         c == '_';
}

}  // namespace

std::vector<Token> tokenize(std::string_view sentence) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sentence.size();
  while (i < n) {
    const char c = sentence[i];
    const auto uc = static_cast<unsigned char>(c);
    if (std::isspace(uc) != 0) {
      ++i;
      continue;
    }
    if (c == ',' || c == ';' || c == ':' || c == '=' || c == '(' || c == ')') {
      out.push_back(make_punct(c));
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      // Quoted phrase: becomes a pre-labeled noun phrase (this is how the
      // Table 7 "label" notation reaches the parser).
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && sentence[j] != quote) ++j;
      if (j < n) {
        out.push_back(make_noun_phrase(sentence.substr(i + 1, j - i - 1)));
        i = j + 1;
        continue;
      }
      // Unterminated quote: treat as a word character below.
    }
    if (is_word_char(c)) {
      std::size_t j = i;
      while (j < n && is_word_char(sentence[j])) ++j;
      std::string_view piece = sentence.substr(i, j - i);
      // Strip trailing sentence dots ("data." -> "data"), but keep dots
      // that are interior (bfd.SessionState, 10.0.1.1).
      while (piece.size() > 1 && piece.back() == '.') {
        piece.remove_suffix(1);
      }
      if (util::is_all_digits(piece)) {
        out.push_back(make_number(std::stol(std::string(piece)), piece));
      } else if (!piece.empty() && piece != ".") {
        out.push_back(make_word(piece));
      }
      i = j;
      continue;
    }
    ++i;  // any other symbol (e.g. stray '.') is skipped
  }
  return out;
}

std::string tokens_to_string(const std::vector<Token>& tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) out += ' ';
    if (tokens[i].kind == TokenKind::kNounPhrase) {
      out += "'" + tokens[i].text + "'";
    } else {
      out += tokens[i].text;
    }
  }
  return out;
}

}  // namespace sage::nlp

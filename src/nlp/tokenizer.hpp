// Tokenizer for RFC sentences.
//
// RFC prose mixes ordinary English with idioms: "code = 0", field names
// with embedded digits ("64 bits"), quoted values, and list markers. The
// tokenizer splits a sentence into word/number/punctuation tokens that the
// noun-phrase chunker then groups before CCG parsing (§3 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sage::nlp {

enum class TokenKind : std::uint8_t {
  kWord,
  kNumber,
  kPunct,       // , ; : = ( )
  kNounPhrase,  // produced by the chunker, never by the tokenizer
};

struct Token {
  TokenKind kind = TokenKind::kWord;
  std::string text;   // original spelling (chunker: full phrase)
  std::string lower;  // lowercase key for lexicon lookup
  long number = 0;    // value when kind == kNumber

  bool operator==(const Token&) const = default;
};

Token make_word(std::string_view text);
Token make_number(long value, std::string_view spelling);
Token make_punct(char c);
Token make_noun_phrase(std::string_view phrase);

/// Tokenize one sentence. Trailing sentence punctuation (.) is dropped;
/// internal punctuation (commas, '=', parentheses) become kPunct tokens.
/// Hyphenated words stay single tokens ("one's", "16-bit", "type/code").
std::vector<Token> tokenize(std::string_view sentence);

/// Render tokens back to text (for diagnostics and Table 7 output).
std::string tokens_to_string(const std::vector<Token>& tokens);

}  // namespace sage::nlp

#include "rfc/ascii_art.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace sage::rfc {

int HeaderDiagram::fixed_bits() const {
  int total = 0;
  for (const auto& f : fields) {
    if (!f.variable_length) total += f.bits;
  }
  return total;
}

bool is_diagram_border(std::string_view line) {
  const auto t = util::trim(line);
  if (t.size() < 3 || t[0] != '+') return false;
  return std::all_of(t.begin(), t.end(),
                     [](char c) { return c == '+' || c == '-'; });
}

bool is_diagram_row(std::string_view line) {
  // Closed rows end with '|'; open-ended variable-length rows ("| Data ...")
  // do not.
  const auto t = util::trim(line);
  return t.size() >= 2 && t.front() == '|';
}

std::optional<HeaderDiagram> parse_header_diagram(
    const std::vector<std::string>& lines) {
  HeaderDiagram diagram;
  int bit_offset = 0;

  for (const auto& raw : lines) {
    const std::string_view line = util::trim(raw);
    if (!is_diagram_row(line)) continue;  // borders, rulers, blank lines

    if (line.back() != '|') {
      // Open-ended row: everything after the pipe is a variable-length
      // tail field ("Data ...", "Internet Header + 64 bits ...").
      std::string name(util::trim(line.substr(1)));
      while (!name.empty() && (name.back() == '.' || name.back() == ' ')) {
        name.pop_back();
      }
      if (!name.empty()) {
        HeaderField field;
        field.name = name;
        field.bits = 0;
        field.bit_offset = bit_offset;
        field.variable_length = true;
        diagram.fields.push_back(std::move(field));
      }
      continue;
    }

    // Split the row at pipe positions. Positions are relative to the
    // first pipe; each bit is two characters wide.
    std::vector<std::size_t> pipes;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '|') pipes.push_back(i);
    }
    if (pipes.size() < 2) continue;

    const int row_bits_total =
        static_cast<int>((pipes.back() - pipes.front()) / 2);
    int row_bits_seen = 0;

    for (std::size_t k = 0; k + 1 < pipes.size(); ++k) {
      const std::size_t begin = pipes[k] + 1;
      const std::size_t len = pipes[k + 1] - begin;
      const std::string name(util::trim(line.substr(begin, len)));
      int bits = static_cast<int>((len + 1) / 2);
      // The final segment absorbs any rounding slack so rows add up to
      // their drawn width (normally 32).
      if (k + 2 == pipes.size()) bits = row_bits_total - row_bits_seen;
      row_bits_seen += bits;
      if (name.empty()) continue;  // spacer cells

      HeaderField field;
      field.name = name;
      field.bits = bits;
      field.bit_offset = bit_offset + (row_bits_seen - bits);
      // Rows describing payload content are variable length.
      const std::string lower = util::to_lower(name);
      field.variable_length =
          lower.find("data") != std::string::npos ||
          lower.find("...") != std::string::npos ||
          lower.find("internet header") != std::string::npos;
      diagram.fields.push_back(std::move(field));
    }
    bit_offset += row_bits_total;
  }

  if (diagram.fields.empty()) return std::nullopt;
  return diagram;
}

}  // namespace sage::rfc

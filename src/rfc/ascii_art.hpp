// ASCII-art header diagram parser (§3 "Extracting structural and
// non-textual elements").
//
// RFCs draw packet headers like:
//
//     0                   1                   2                   3
//     0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//    |     Type      |     Code      |          Checksum             |
//    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//
// Every bit occupies two characters ("+-"); the parser recovers each
// field's name and bit width from the pipe positions, which is exactly
// the information SAGE needs to emit C structs (src/rfc/struct_gen).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sage::rfc {

/// One field recovered from a header diagram.
struct HeaderField {
  std::string name;   // as written, e.g. "Type" or "Sequence Number"
  int bits = 0;       // width in bits
  int bit_offset = 0; // offset from the start of the header
  /// True for trailing variable-length rows ("Internet Header + 64 bits
  /// of Original Data Datagram", "data ...").
  bool variable_length = false;
};

/// A parsed diagram: ordered fields.
struct HeaderDiagram {
  std::vector<HeaderField> fields;

  /// Total fixed size in bits (variable-length tail excluded).
  int fixed_bits() const;
};

/// True if `line` looks like a diagram border ("+-+-+-...").
bool is_diagram_border(std::string_view line);

/// True if `line` looks like a diagram content row ("|  Type  | ... |").
bool is_diagram_row(std::string_view line);

/// Parse consecutive diagram lines (borders + rows, rulers allowed) into
/// fields. Returns nullopt if no parsable row exists.
std::optional<HeaderDiagram> parse_header_diagram(
    const std::vector<std::string>& lines);

}  // namespace sage::rfc

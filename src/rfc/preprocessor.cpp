#include "rfc/preprocessor.hpp"

#include <algorithm>

#include "nlp/sentence_splitter.hpp"
#include "util/strings.hpp"

namespace sage::rfc {

namespace {

/// Is this a bit-ruler line ("0                   1 ..." or
/// "0 1 2 3 4 5 ...") that precedes a diagram?
bool is_ruler(std::string_view trimmed) {
  if (trimmed.empty()) return false;
  return std::all_of(trimmed.begin(), trimmed.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0 || c == ' ';
  });
}

/// Split a field description paragraph into sentences. Value-list idioms
/// ("0 = net unreachable;  1 = host unreachable.") are split on
/// semicolons first, each piece becoming its own instance — this is the
/// "0 = Echo Reply" idiom of §3.
std::vector<std::string> split_description(const std::string& paragraph) {
  std::vector<std::string> out;
  for (const auto& piece : util::split(paragraph, ";")) {
    const auto trimmed = util::trim(piece);
    if (trimmed.empty()) continue;
    for (auto& sentence : nlp::split_sentences(trimmed)) {
      out.push_back(std::move(sentence));
    }
  }
  return out;
}

class Builder {
 public:
  explicit Builder(std::string title) { doc_.title = std::move(title); }

  void line(const std::string& raw) {
    const std::string_view trimmed = util::trim(raw);
    const std::size_t indent = util::indent_of(raw);

    if (is_diagram_border(trimmed) || is_diagram_row(trimmed) ||
        (in_diagram_ && is_ruler(trimmed))) {
      diagram_lines_.emplace_back(trimmed);
      in_diagram_ = true;
      return;
    }
    if (trimmed.empty()) {
      flush_paragraph();
      return;  // paragraph boundary; diagram stays open across gaps
    }
    // A ruler can also *start* a diagram block.
    if (is_ruler(trimmed) && trimmed.size() > 10) {
      in_diagram_ = true;
      return;
    }
    if (in_diagram_) flush_diagram();

    if (indent == 0) {
      // New message section.
      flush_paragraph();
      flush_field();
      doc_.sections.push_back(MessageSection{});
      doc_.sections.back().title = std::string(trimmed);
      group_.clear();
      return;
    }

    ensure_section();

    if (indent <= 4) {
      flush_paragraph();
      flush_field();
      if (trimmed.back() == ':') {
        // Group marker: "IP Fields:", "ICMP Fields:".
        group_ = std::string(trimmed.substr(0, trimmed.size() - 1));
      } else {
        // Field name line.
        field_ = FieldDescription{};
        field_->group = group_;
        field_->name = std::string(trimmed);
      }
      return;
    }

    // Deeper indentation: description text for the current field.
    if (!paragraph_.empty()) paragraph_ += ' ';
    paragraph_ += std::string(trimmed);
  }

  RfcDocument finish() {
    flush_paragraph();
    flush_field();
    flush_diagram();
    return std::move(doc_);
  }

 private:
  void ensure_section() {
    if (doc_.sections.empty()) {
      doc_.sections.push_back(MessageSection{});
      doc_.sections.back().title = doc_.title;
    }
  }

  void flush_paragraph() {
    if (paragraph_.empty()) return;
    ensure_section();
    if (!field_) {
      // Prose with no field heading: attach as an unnamed description.
      field_ = FieldDescription{};
      field_->group = group_;
      field_->name = "Description";
    }
    for (auto& s : split_description(paragraph_)) {
      field_->sentences.push_back(std::move(s));
    }
    paragraph_.clear();
  }

  void flush_field() {
    if (!field_) return;
    ensure_section();
    doc_.sections.back().fields.push_back(std::move(*field_));
    field_.reset();
  }

  void flush_diagram() {
    in_diagram_ = false;
    if (diagram_lines_.empty()) return;
    ensure_section();
    if (auto diagram = parse_header_diagram(diagram_lines_)) {
      doc_.sections.back().diagram = std::move(*diagram);
    }
    diagram_lines_.clear();
  }

  RfcDocument doc_;
  std::vector<std::string> diagram_lines_;
  bool in_diagram_ = false;
  std::string group_;
  std::optional<FieldDescription> field_;
  std::string paragraph_;
};

}  // namespace

const MessageSection* RfcDocument::find_section(const std::string& title) const {
  for (const auto& s : sections) {
    if (s.title == title) return &s;
  }
  return nullptr;
}

RfcDocument preprocess(const std::string& text, const std::string& title) {
  Builder builder(title);
  for (const auto& line : util::split_keep_empty(text, "\n")) {
    builder.line(line);
  }
  return builder.finish();
}

std::vector<SpecSentence> extract_sentences(const RfcDocument& doc,
                                            const std::string& protocol) {
  std::vector<SpecSentence> out;
  for (const auto& section : doc.sections) {
    for (const auto& field : section.fields) {
      for (const auto& sentence : field.sentences) {
        SpecSentence s;
        s.text = sentence;
        s.context["protocol"] = protocol;
        s.context["message"] = section.title;
        s.context["field"] = field.name == "Description" ? "" : field.name;
        s.context["group"] = field.group;
        s.context["role"] = "";
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

}  // namespace sage::rfc

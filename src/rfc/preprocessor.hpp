// RFC document pre-processor (§3 "Extracting structural and non-textual
// elements").
//
// RFCs use indentation to encode content hierarchy and descriptive lists.
// The pre-processor walks the raw text and recovers:
//   * message sections (top-level headings, e.g. "Echo or Echo Reply
//     Message"),
//   * the ASCII-art header diagram of each section (-> HeaderDiagram),
//   * grouped field descriptions ("IP Fields:" / "ICMP Fields:" lists,
//     field name followed by indented description sentences),
//   * free prose ("Description" paragraphs),
// and attaches to every sentence the *dynamic context dictionary* the
// code generator consumes (Table 4: protocol, message, field, role).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rfc/ascii_art.hpp"

namespace sage::rfc {

/// One described field: its group ("ICMP Fields"), name ("Checksum"),
/// and description sentences.
struct FieldDescription {
  std::string group;
  std::string name;
  std::vector<std::string> sentences;
};

/// One message section of an RFC (RFC 792 has eight).
struct MessageSection {
  std::string title;
  std::optional<HeaderDiagram> diagram;
  std::vector<FieldDescription> fields;
};

/// A pre-processed document.
struct RfcDocument {
  std::string title;
  std::vector<MessageSection> sections;

  const MessageSection* find_section(const std::string& title) const;
};

/// A sentence plus its dynamic context dictionary (§5.2, Table 4).
struct SpecSentence {
  std::string text;
  /// Keys: "protocol", "message", "field", "group", "role".
  /// "role" is filled by the core pipeline (sender/receiver inference).
  std::map<std::string, std::string> context;
};

/// Parse raw RFC-style text into the document model.
RfcDocument preprocess(const std::string& text, const std::string& title);

/// Flatten a document into per-sentence instances with dynamic context.
/// This is the unit the paper counts (RFC 792 yields 87 instances).
std::vector<SpecSentence> extract_sentences(const RfcDocument& doc,
                                            const std::string& protocol);

}  // namespace sage::rfc

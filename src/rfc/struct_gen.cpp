#include "rfc/struct_gen.hpp"

#include "util/strings.hpp"

namespace sage::rfc {

namespace {

std::string member_name(const std::string& field_name) {
  std::string n = util::to_snake_case(field_name);
  if (n.empty()) n = "field";
  // Identifiers cannot start with a digit ("64 bits of data").
  if (std::isdigit(static_cast<unsigned char>(n[0])) != 0) n = "f_" + n;
  return n;
}

}  // namespace

std::string generate_c_struct(const HeaderDiagram& diagram,
                              const std::string& struct_name) {
  std::string out = "struct " + util::to_snake_case(struct_name) + " {\n";
  for (const auto& field : diagram.fields) {
    const std::string name = member_name(field.name);
    if (field.variable_length) {
      out += "    uint8_t " + name + "[];  /* variable length */\n";
      continue;
    }
    switch (field.bits) {
      case 8:
        out += "    uint8_t " + name + ";\n";
        break;
      case 16:
        out += "    uint16_t " + name + ";\n";
        break;
      case 32:
        out += "    uint32_t " + name + ";\n";
        break;
      case 64:
        out += "    uint64_t " + name + ";\n";
        break;
      default:
        if (field.bits < 8) {
          out += "    uint8_t " + name + " : " + std::to_string(field.bits) +
                 ";\n";
        } else if (field.bits < 16) {
          out += "    uint16_t " + name + " : " + std::to_string(field.bits) +
                 ";\n";
        } else if (field.bits < 32) {
          out += "    uint32_t " + name + " : " + std::to_string(field.bits) +
                 ";\n";
        } else {
          out += "    uint8_t " + name + "[" +
                 std::to_string((field.bits + 7) / 8) + "];\n";
        }
        break;
    }
  }
  out += "};\n";
  return out;
}

}  // namespace sage::rfc

// C struct generation from parsed header diagrams (§3: "we extract field
// names and widths and directly generate data structures (specifically,
// structs in C) to represent headers").
#pragma once

#include <string>

#include "rfc/ascii_art.hpp"

namespace sage::rfc {

/// Render a C struct for `diagram` named `struct_name` (snake_cased).
/// Width mapping: 8/16/32/64-bit fields become uintN_t; sub-byte fields
/// become bitfields on the enclosing byte's type; variable-length tails
/// become flexible array members. Multi-word names are snake_cased.
std::string generate_c_struct(const HeaderDiagram& diagram,
                              const std::string& struct_name);

}  // namespace sage::rfc

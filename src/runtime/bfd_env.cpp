#include "runtime/bfd_env.hpp"

#include "util/strings.hpp"

namespace sage::runtime {

namespace {

long symbol_value(const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : util::to_lower(name)) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<long>(h & 0x7fffffff);
}

}  // namespace

std::optional<long> BfdExecEnv::read_field(const codegen::FieldRef& ref,
                                           codegen::PacketSel sel) {
  (void)sel;  // state variables are per-session, not per-packet
  if (ref.layer != "bfd") return std::nullopt;
  const auto& s = *state_;
  if (ref.field == "session_state") return static_cast<long>(s.session_state);
  if (ref.field == "remote_session_state") {
    return static_cast<long>(s.remote_session_state);
  }
  if (ref.field == "local_discr") return static_cast<long>(s.local_discr);
  if (ref.field == "remote_discr") return static_cast<long>(s.remote_discr);
  if (ref.field == "local_diag") return static_cast<long>(s.local_diag);
  if (ref.field == "desired_min_tx_interval") {
    return static_cast<long>(s.desired_min_tx_interval);
  }
  if (ref.field == "required_min_rx_interval") {
    return static_cast<long>(s.required_min_rx_interval);
  }
  if (ref.field == "remote_min_rx_interval") {
    return static_cast<long>(s.remote_min_rx_interval);
  }
  if (ref.field == "demand_mode") return s.demand_mode ? 1 : 0;
  if (ref.field == "remote_demand_mode") return s.remote_demand_mode ? 1 : 0;
  if (ref.field == "detect_mult") return s.detect_mult;
  if (ref.field == "auth_type") return s.auth_type;
  // Packet-borne fields.
  if (packet_ != nullptr) {
    if (ref.field == "your_discriminator") {
      return static_cast<long>(packet_->your_discriminator);
    }
    if (ref.field == "my_discriminator") {
      return static_cast<long>(packet_->my_discriminator);
    }
    if (ref.field == "state") return static_cast<long>(packet_->state);
    if (ref.field == "detect_mult_field") return packet_->detect_mult;
    if (ref.field == "demand_bit") return packet_->demand ? 1 : 0;
    if (ref.field == "poll_bit") return packet_->poll ? 1 : 0;
    if (ref.field == "multipoint_bit") return packet_->multipoint ? 1 : 0;
    if (ref.field == "required_min_rx_interval_field") {
      return static_cast<long>(packet_->required_min_rx_interval);
    }
    if (ref.field == "required_min_echo_rx_interval_field") {
      return static_cast<long>(packet_->required_min_echo_rx_interval);
    }
  }
  return std::nullopt;
}

bool BfdExecEnv::write_field(const codegen::FieldRef& ref, long value) {
  if (ref.layer != "bfd") return false;
  auto& s = *state_;
  if (ref.field == "session_state") {
    s.session_state = static_cast<net::BfdState>(value);
    return true;
  }
  if (ref.field == "remote_session_state") {
    s.remote_session_state = static_cast<net::BfdState>(value);
    return true;
  }
  if (ref.field == "local_discr") {
    s.local_discr = static_cast<std::uint32_t>(value);
    return true;
  }
  if (ref.field == "remote_discr") {
    s.remote_discr = static_cast<std::uint32_t>(value);
    return true;
  }
  if (ref.field == "local_diag") {
    s.local_diag = static_cast<net::BfdDiag>(value);
    return true;
  }
  if (ref.field == "desired_min_tx_interval") {
    s.desired_min_tx_interval = static_cast<std::uint32_t>(value);
    return true;
  }
  if (ref.field == "required_min_rx_interval") {
    s.required_min_rx_interval = static_cast<std::uint32_t>(value);
    return true;
  }
  if (ref.field == "remote_min_rx_interval") {
    s.remote_min_rx_interval = static_cast<std::uint32_t>(value);
    return true;
  }
  if (ref.field == "demand_mode") {
    s.demand_mode = value != 0;
    return true;
  }
  if (ref.field == "remote_demand_mode") {
    s.remote_demand_mode = value != 0;
    return true;
  }
  if (ref.field == "detect_mult") {
    s.detect_mult = static_cast<std::uint8_t>(value);
    return true;
  }
  if (ref.field == "auth_type") {
    s.auth_type = static_cast<std::uint8_t>(value);
    return true;
  }
  return false;
}

bool BfdExecEnv::is_bytes_field(const codegen::FieldRef& ref) const {
  (void)ref;
  return false;
}

std::optional<std::vector<std::uint8_t>> BfdExecEnv::read_bytes(
    const codegen::FieldRef& ref, codegen::PacketSel sel) {
  (void)ref;
  (void)sel;
  return std::nullopt;
}

bool BfdExecEnv::write_bytes(const codegen::FieldRef& ref,
                             std::vector<std::uint8_t> value) {
  (void)ref;
  (void)value;
  return false;
}

bool BfdExecEnv::is_bytes_function(const std::string& fn) const {
  (void)fn;
  return false;
}

std::optional<long> BfdExecEnv::call_scalar(const std::string& fn,
                                            const std::vector<long>& args) {
  (void)args;
  if (fn == "session_lookup") {
    // 1 when the Your Discriminator lookup found a session.
    return session_lookup_fails_ ? 0 : 1;
  }
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> BfdExecEnv::call_bytes(
    const std::string& fn) {
  (void)fn;
  return std::nullopt;
}

bool BfdExecEnv::call_effect(const std::string& fn,
                             const std::vector<long>& args) {
  (void)args;
  if (fn == "select_session") {
    session_selected_ = !session_lookup_fails_;
    return true;
  }
  if (fn == "discard_packet") {
    // "If no session is found, the packet MUST be discarded" — but only
    // when the lookup actually failed; generated code guards this with
    // the rewritten condition (Table 5).
    state_->packet_discarded = true;
    return true;
  }
  if (fn == "cease_transmission") {
    state_->periodic_transmission_enabled = false;
    return true;
  }
  if (fn == "call_timeout") {
    timeout_called_ = true;
    return true;
  }
  if (fn == "transmit_packet") {
    packet_transmitted_ = true;
    return true;
  }
  if (fn == "send_message") {
    packet_transmitted_ = true;
    return true;
  }
  return false;
}

long BfdExecEnv::resolve_symbol(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "up") return static_cast<long>(net::BfdState::kUp);
  if (lower == "down") return static_cast<long>(net::BfdState::kDown);
  if (lower == "init") return static_cast<long>(net::BfdState::kInit);
  if (lower == "admindown") return static_cast<long>(net::BfdState::kAdminDown);
  return symbol_value(name);
}

}  // namespace sage::runtime

// BFD execution environment (§6.4).
//
// Generated state-management code ("If the Your Discriminator field is
// nonzero, it MUST be used to select the session ...") runs against a
// BfdSessionState plus the incoming control packet. Field reads address
// either the RFC 5880 §6.8.1 state variables (bfd.*) or the packet's
// mandatory-section fields; symbolic state names (Up/Down/Init/AdminDown)
// resolve to their RFC encodings so conditions like
// "bfd.SessionState is Up" compare correctly.
#pragma once

#include <string>

#include "net/bfd.hpp"
#include "runtime/interpreter.hpp"

namespace sage::runtime {

class BfdExecEnv : public ExecEnv {
 public:
  BfdExecEnv(net::BfdSessionState* state, const net::BfdControlPacket* packet)
      : state_(state), packet_(packet) {}

  bool session_selected() const { return session_selected_; }
  bool timeout_called() const { return timeout_called_; }
  bool packet_transmitted() const { return packet_transmitted_; }

  /// Pretend no session matched the Your Discriminator lookup (drives the
  /// "If no session is found, the packet MUST be discarded" path).
  void set_session_lookup_fails(bool fails) { session_lookup_fails_ = fails; }

  // -- ExecEnv ---------------------------------------------------------------
  std::optional<long> read_field(const codegen::FieldRef& ref,
                                 codegen::PacketSel sel) override;
  bool write_field(const codegen::FieldRef& ref, long value) override;
  bool is_bytes_field(const codegen::FieldRef& ref) const override;
  std::optional<std::vector<std::uint8_t>> read_bytes(
      const codegen::FieldRef& ref, codegen::PacketSel sel) override;
  bool write_bytes(const codegen::FieldRef& ref,
                   std::vector<std::uint8_t> value) override;
  bool is_bytes_function(const std::string& fn) const override;
  std::optional<long> call_scalar(const std::string& fn,
                                  const std::vector<long>& args) override;
  std::optional<std::vector<std::uint8_t>> call_bytes(
      const std::string& fn) override;
  bool call_effect(const std::string& fn,
                   const std::vector<long>& args) override;
  long resolve_symbol(const std::string& name) override;

 private:
  net::BfdSessionState* state_;
  const net::BfdControlPacket* packet_;
  bool session_selected_ = false;
  bool session_lookup_fails_ = false;
  bool timeout_called_ = false;
  bool packet_transmitted_ = false;
};

}  // namespace sage::runtime

#include "runtime/bfd_session.hpp"

namespace sage::runtime {

BfdSession::BfdSession(net::IpAddr address, std::uint32_t discriminator,
                       const codegen::GeneratedFunction* reception,
                       vm::ExecBackend backend)
    : address_(address), reception_(reception) {
  state_.local_discr = discriminator;
  if (backend == vm::ExecBackend::kThreaded && reception_ != nullptr) {
    program_ = vm::compile(*reception_);
  }
}

std::vector<std::uint8_t> BfdSession::make_control_packet(
    net::IpAddr peer) const {
  net::BfdControlPacket packet;
  packet.state = state_.session_state;
  packet.my_discriminator = state_.local_discr;
  packet.your_discriminator = state_.remote_discr;
  packet.desired_min_tx_interval = state_.desired_min_tx_interval;
  packet.required_min_rx_interval = state_.required_min_rx_interval;
  packet.demand = state_.demand_mode;
  packet.detect_mult = state_.detect_mult;

  net::UdpHeader udp;
  udp.src_port = 49152;  // RFC 5881: source port from the ephemeral range
  udp.dst_port = net::kBfdControlPort;
  const auto udp_bytes = udp.serialize(address_, peer, packet.serialize());

  net::Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(net::IpProto::kUdp);
  ip.ttl = 255;  // RFC 5881 GTSM
  ip.src = address_;
  ip.dst = peer;
  return net::build_ipv4_packet(ip, udp_bytes);
}

bool BfdSession::receive(std::span<const std::uint8_t> raw_packet) {
  const auto ip = net::Ipv4Header::parse(raw_packet);
  if (!ip || ip->dst != address_ ||
      ip->protocol != static_cast<std::uint8_t>(net::IpProto::kUdp)) {
    return false;
  }
  const auto udp_bytes = raw_packet.subspan(ip->header_length());
  const auto udp = net::UdpHeader::parse(udp_bytes);
  if (!udp || udp->dst_port != net::kBfdControlPort) return false;
  if (!net::UdpHeader::verify_checksum(ip->src, ip->dst, udp_bytes)) {
    return false;
  }
  const auto packet = net::BfdControlPacket::parse(udp_bytes.subspan(8));
  if (!packet) return false;

  auto env = SchemaExecEnv::bfd(&state_, &*packet);
  const ExecResult result = program_.has_value()
                                ? vm::execute(*program_, env)
                                : interpreter_.run(reception_->body, env);
  return result.ok;
}

}  // namespace sage::runtime

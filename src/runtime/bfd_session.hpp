// BfdSession: a network-attached BFD endpoint driven entirely by
// generated code (§6.4 end to end).
//
// Wraps a BfdSessionState plus the generated reception function. The
// endpoint serializes its own control packets (UDP port 3784 inside IP)
// and processes received ones through the static-framework interpreter —
// the session state machine that emerges is the one SAGE generated from
// RFC 5880 §6.8.6 text.
#pragma once

#include <optional>
#include <span>

#include "codegen/ir.hpp"
#include "net/bfd.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"
#include "runtime/schema_env.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/vm/exec.hpp"
#include "runtime/vm/program.hpp"

namespace sage::runtime {

class BfdSession {
 public:
  /// `reception` is the generated §6.8.6 function; it must outlive the
  /// session. On the threaded backend (the default) the function is
  /// compiled to flat code once, here.
  BfdSession(net::IpAddr address, std::uint32_t discriminator,
             const codegen::GeneratedFunction* reception,
             vm::ExecBackend backend = vm::ExecBackend::kThreaded);

  net::IpAddr address() const { return address_; }
  const net::BfdSessionState& state() const { return state_; }

  /// Build this endpoint's next control packet (UDP/IP, port 3784).
  std::vector<std::uint8_t> make_control_packet(net::IpAddr peer) const;

  /// Process a raw IP packet: if it is a BFD control packet addressed to
  /// us, run the generated reception code. Returns true if consumed.
  bool receive(std::span<const std::uint8_t> raw_packet);

 private:
  net::IpAddr address_;
  net::BfdSessionState state_;
  const codegen::GeneratedFunction* reception_;
  std::optional<vm::Program> program_;  // compiled form (threaded backend)
  Interpreter interpreter_;
};

}  // namespace sage::runtime

#include "runtime/generated_responder.hpp"

#include "codegen/generator.hpp"

namespace sage::runtime {

namespace {

/// Function names for the eight RFC 792 messages, derived the same way
/// the generator derives them.
std::string fn_name(const std::string& message, const std::string& role) {
  return codegen::CodeGenerator::function_name("ICMP", message, role);
}

}  // namespace

void GeneratedIcmpResponder::add_function(codegen::GeneratedFunction fn) {
  Entry entry;
  if (backend_ == vm::ExecBackend::kThreaded) {
    entry.program = vm::compile(fn);
  }
  entry.fn = std::move(fn);
  functions_[entry.fn.name] = std::move(entry);
}

std::optional<std::vector<std::uint8_t>> GeneratedIcmpResponder::run(
    const std::string& function_name, const sim::ResponderContext& ctx,
    bool start_from_incoming, const std::string& scenario,
    const std::function<void(SchemaExecEnv&)>& setup) {
  last_errors_.clear();
  const auto it = functions_.find(function_name);
  if (it == functions_.end()) {
    last_errors_.push_back("no generated function named " + function_name);
    return std::nullopt;
  }
  auto env = SchemaExecEnv::icmp(ctx.triggering_packet, ctx.own_address,
                                 start_from_incoming);
  if (!env.valid()) {
    last_errors_.push_back("triggering packet is not decodable IPv4");
    return std::nullopt;
  }
  env.set_scenario(scenario);
  if (setup) setup(env);

  const Entry& entry = it->second;
  const ExecResult result =
      entry.program.has_value()
          ? vm::execute(*entry.program, env)
          : interpreter_.run(entry.fn.body, env);
  if (!result.ok) {
    last_errors_ = result.errors;
    return std::nullopt;
  }
  return env.finish_reply();
}

std::optional<std::vector<std::uint8_t>> GeneratedIcmpResponder::on_echo_request(
    const sim::ResponderContext& ctx) {
  return run(fn_name("Echo or Echo Reply Message", "receiver"), ctx,
             /*start_from_incoming=*/true, "echo reply message");
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmpResponder::on_timestamp_request(const sim::ResponderContext& ctx) {
  return run(fn_name("Timestamp or Timestamp Reply Message", "receiver"), ctx,
             /*start_from_incoming=*/true, "timestamp reply message");
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmpResponder::on_information_request(
    const sim::ResponderContext& ctx) {
  return run(fn_name("Information Request or Information Reply Message",
                     "receiver"),
             ctx, /*start_from_incoming=*/true, "information reply message");
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmpResponder::on_destination_unreachable(
    const sim::ResponderContext& ctx, std::uint8_t code) {
  static const std::map<std::uint8_t, std::string> kScenario = {
      {0, "net unreachable"},      {1, "host unreachable"},
      {2, "protocol unreachable"}, {3, "port unreachable"},
      {4, "fragmentation needed and df set"},
      {5, "source route failed"},
  };
  const auto it = kScenario.find(code);
  return run(fn_name("Destination Unreachable Message", "sender"), ctx,
             /*start_from_incoming=*/false,
             it == kScenario.end() ? "net unreachable" : it->second);
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmpResponder::on_time_exceeded(const sim::ResponderContext& ctx) {
  return run(fn_name("Time Exceeded Message", "sender"), ctx,
             /*start_from_incoming=*/false, "time to live exceeded in transit");
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmpResponder::on_parameter_problem(const sim::ResponderContext& ctx,
                                             std::uint8_t pointer) {
  return run(fn_name("Parameter Problem Message", "sender"), ctx,
             /*start_from_incoming=*/false, "pointer indicates the error",
             [pointer](SchemaExecEnv& env) { env.set_error_pointer(pointer); });
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmpResponder::on_source_quench(const sim::ResponderContext& ctx) {
  return run(fn_name("Source Quench Message", "sender"), ctx,
             /*start_from_incoming=*/false, "source quench");
}

std::optional<std::vector<std::uint8_t>> GeneratedIcmpResponder::on_redirect(
    const sim::ResponderContext& ctx, net::IpAddr gateway) {
  return run(fn_name("Redirect Message", "sender"), ctx,
             /*start_from_incoming=*/false, "redirect datagrams for the host",
             [gateway](SchemaExecEnv& env) { env.set_better_gateway(gateway); });
}

}  // namespace sage::runtime

// GeneratedIcmpResponder: runs SAGE-generated ICMP code inside the
// simulator (§6.2's end-to-end evaluation).
//
// The Mininet-equivalent router/host calls the sim::IcmpResponder
// interface; this implementation dispatches each event to the generated
// packet-handling function for the corresponding RFC 792 message and
// role, and returns the reply packet the generated code constructed.
// Nothing here hard-codes protocol behaviour — if the generated code is
// wrong or a function is missing, the interop tests fail.
//
// Each registered function executes on one of two backends
// (vm::ExecBackend): the threaded-code VM (default — the function is
// compiled once at registration, runtime/vm) or the tree-walking
// reference interpreter. Both produce byte-identical replies and
// identical diagnostics; tests/test_vm_differential.cpp enforces it.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "codegen/ir.hpp"
#include "runtime/schema_env.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/vm/exec.hpp"
#include "runtime/vm/program.hpp"
#include "sim/responder.hpp"

namespace sage::runtime {

class GeneratedIcmpResponder : public sim::IcmpResponder {
 public:
  explicit GeneratedIcmpResponder(
      vm::ExecBackend backend = vm::ExecBackend::kThreaded)
      : backend_(backend) {}

  /// Register a generated function (keyed by its context-derived name).
  /// On the threaded backend this is where the one-time compilation to
  /// flat code happens.
  void add_function(codegen::GeneratedFunction fn);

  vm::ExecBackend backend() const { return backend_; }

  bool has_function(const std::string& name) const {
    return functions_.count(name) != 0;
  }
  std::size_t function_count() const { return functions_.size(); }

  /// Execution diagnostics from the most recent event (for tests).
  const std::vector<std::string>& last_errors() const { return last_errors_; }

  // -- sim::IcmpResponder ----------------------------------------------------
  std::optional<std::vector<std::uint8_t>> on_echo_request(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_timestamp_request(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_information_request(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_destination_unreachable(
      const sim::ResponderContext& ctx, std::uint8_t code) override;
  std::optional<std::vector<std::uint8_t>> on_time_exceeded(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_parameter_problem(
      const sim::ResponderContext& ctx, std::uint8_t pointer) override;
  std::optional<std::vector<std::uint8_t>> on_source_quench(
      const sim::ResponderContext& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_redirect(
      const sim::ResponderContext& ctx, net::IpAddr gateway) override;

 private:
  /// One registered handler: the IR tree (reference backend, and the
  /// fallback when a program exceeds VM limits) plus its compiled form.
  struct Entry {
    codegen::GeneratedFunction fn;
    std::optional<vm::Program> program;
  };

  /// Run `function_name` in an env configured by `setup`; nullopt if the
  /// function is missing or execution failed.
  std::optional<std::vector<std::uint8_t>> run(
      const std::string& function_name, const sim::ResponderContext& ctx,
      bool start_from_incoming, const std::string& scenario,
      const std::function<void(SchemaExecEnv&)>& setup = nullptr);

  vm::ExecBackend backend_;
  std::map<std::string, Entry> functions_;
  Interpreter interpreter_;
  std::vector<std::string> last_errors_;
};

}  // namespace sage::runtime

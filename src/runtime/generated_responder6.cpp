#include "runtime/generated_responder6.hpp"

#include "codegen/generator.hpp"

namespace sage::runtime {

namespace {

/// Function names for the five RFC 4443 messages, derived the same way
/// the generator derives them.
std::string fn_name(const std::string& message, const std::string& role) {
  return codegen::CodeGenerator::function_name("ICMP6", message, role);
}

}  // namespace

void GeneratedIcmp6Responder::add_function(codegen::GeneratedFunction fn) {
  Entry entry;
  if (backend_ == vm::ExecBackend::kThreaded) {
    entry.program = vm::compile(fn);
  }
  entry.fn = std::move(fn);
  functions_[entry.fn.name] = std::move(entry);
}

std::optional<std::vector<std::uint8_t>> GeneratedIcmp6Responder::run(
    const std::string& function_name, const sim::Responder6Context& ctx,
    bool start_from_incoming, const std::string& scenario,
    const std::function<void(SchemaExecEnv&)>& setup) {
  last_errors_.clear();
  const auto it = functions_.find(function_name);
  if (it == functions_.end()) {
    last_errors_.push_back("no generated function named " + function_name);
    return std::nullopt;
  }
  auto env = SchemaExecEnv::icmp6(ctx.triggering_packet, ctx.own_address,
                                  start_from_incoming);
  if (!env.valid()) {
    last_errors_.push_back("triggering packet is not decodable IPv6");
    return std::nullopt;
  }
  env.set_scenario(scenario);
  if (setup) setup(env);

  const Entry& entry = it->second;
  const ExecResult result =
      entry.program.has_value()
          ? vm::execute(*entry.program, env)
          : interpreter_.run(entry.fn.body, env);
  if (!result.ok) {
    last_errors_ = result.errors;
    return std::nullopt;
  }
  return env.finish_reply();
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmp6Responder::on_echo_request(const sim::Responder6Context& ctx) {
  return run(fn_name("Echo or Echo Reply Message", "receiver"), ctx,
             /*start_from_incoming=*/true, "echo reply message");
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmp6Responder::on_destination_unreachable(
    const sim::Responder6Context& ctx, std::uint8_t code) {
  static const std::map<std::uint8_t, std::string> kScenario = {
      {0, "no route to destination"},
      {1, "communication with destination administratively prohibited"},
      {2, "beyond scope of source address"},
      {3, "address unreachable"},
      {4, "port unreachable"},
  };
  const auto it = kScenario.find(code);
  return run(fn_name("Destination Unreachable Message", "sender"), ctx,
             /*start_from_incoming=*/false,
             it == kScenario.end() ? "no route to destination" : it->second);
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmp6Responder::on_packet_too_big(const sim::Responder6Context& ctx) {
  return run(fn_name("Packet Too Big Message", "sender"), ctx,
             /*start_from_incoming=*/false, "packet too big");
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmp6Responder::on_time_exceeded(const sim::Responder6Context& ctx,
                                          std::uint8_t code) {
  return run(fn_name("Time Exceeded Message", "sender"), ctx,
             /*start_from_incoming=*/false,
             code == 1 ? "fragment reassembly time exceeded"
                       : "hop limit exceeded in transit");
}

std::optional<std::vector<std::uint8_t>>
GeneratedIcmp6Responder::on_parameter_problem(const sim::Responder6Context& ctx,
                                              std::uint8_t code,
                                              std::uint8_t pointer) {
  static const std::map<std::uint8_t, std::string> kScenario = {
      {0, "erroneous header field encountered"},
      {1, "unrecognized next header type encountered"},
      {2, "unrecognized ipv6 option encountered"},
  };
  const auto it = kScenario.find(code);
  return run(fn_name("Parameter Problem Message", "sender"), ctx,
             /*start_from_incoming=*/false,
             it == kScenario.end() ? "erroneous header field encountered"
                                   : it->second,
             [pointer](SchemaExecEnv& env) { env.set_error_pointer(pointer); });
}

}  // namespace sage::runtime

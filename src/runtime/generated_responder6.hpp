// GeneratedIcmp6Responder: runs SAGE-generated ICMPv6 code (from the
// revised RFC 4443 corpus) behind the sim::Icmp6Responder boundary.
//
// Structurally identical to GeneratedIcmpResponder: each event
// dispatches to the generated packet-handling function for the
// corresponding RFC 4443 message and role, on either execution backend
// (threaded-code VM or tree-walking interpreter). Nothing here
// hard-codes protocol behaviour — if the generated code is wrong or a
// function is missing, the differential fuzzer diverges.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "codegen/ir.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/schema_env.hpp"
#include "runtime/vm/exec.hpp"
#include "runtime/vm/program.hpp"
#include "sim/responder6.hpp"

namespace sage::runtime {

class GeneratedIcmp6Responder : public sim::Icmp6Responder {
 public:
  explicit GeneratedIcmp6Responder(
      vm::ExecBackend backend = vm::ExecBackend::kThreaded)
      : backend_(backend) {}

  /// Register a generated function (keyed by its context-derived name).
  /// On the threaded backend this is where the one-time compilation to
  /// flat code happens.
  void add_function(codegen::GeneratedFunction fn);

  vm::ExecBackend backend() const { return backend_; }

  bool has_function(const std::string& name) const {
    return functions_.count(name) != 0;
  }
  std::size_t function_count() const { return functions_.size(); }

  /// Execution diagnostics from the most recent event (for tests).
  const std::vector<std::string>& last_errors() const { return last_errors_; }

  // -- sim::Icmp6Responder ---------------------------------------------------
  std::optional<std::vector<std::uint8_t>> on_echo_request(
      const sim::Responder6Context& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_destination_unreachable(
      const sim::Responder6Context& ctx, std::uint8_t code) override;
  std::optional<std::vector<std::uint8_t>> on_packet_too_big(
      const sim::Responder6Context& ctx) override;
  std::optional<std::vector<std::uint8_t>> on_time_exceeded(
      const sim::Responder6Context& ctx, std::uint8_t code) override;
  std::optional<std::vector<std::uint8_t>> on_parameter_problem(
      const sim::Responder6Context& ctx, std::uint8_t code,
      std::uint8_t pointer) override;

 private:
  /// One registered handler: the IR tree (reference backend, and the
  /// fallback when a program exceeds VM limits) plus its compiled form.
  struct Entry {
    codegen::GeneratedFunction fn;
    std::optional<vm::Program> program;
  };

  /// Run `function_name` in an env configured by `setup`; nullopt if the
  /// function is missing or execution failed.
  std::optional<std::vector<std::uint8_t>> run(
      const std::string& function_name, const sim::Responder6Context& ctx,
      bool start_from_incoming, const std::string& scenario,
      const std::function<void(SchemaExecEnv&)>& setup = nullptr);

  vm::ExecBackend backend_;
  std::map<std::string, Entry> functions_;
  Interpreter interpreter_;
  std::vector<std::string> last_errors_;
};

}  // namespace sage::runtime

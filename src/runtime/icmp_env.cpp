#include "runtime/icmp_env.hpp"

#include <functional>

#include "net/checksum.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace sage::runtime {

namespace {

/// Stable symbol value: FNV-1a over the lowercased name.
long symbol_value(const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : util::to_lower(name)) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<long>(h & 0x7fffffff);
}

/// Payload-backed fields ("data", the quoted original datagram rows).
bool is_payload_field(const std::string& field) {
  return field == "data" || field.find("internet_header") != std::string::npos ||
         field.find("datagram") != std::string::npos;
}

}  // namespace

IcmpExecEnv::IcmpExecEnv(std::span<const std::uint8_t> raw_incoming,
                         net::IpAddr own_address, bool start_from_incoming)
    : raw_incoming_(raw_incoming), own_address_(own_address) {
  const auto ip = net::Ipv4Header::parse(raw_incoming);
  if (!ip) return;
  in_ip_ = *ip;
  valid_ = true;
  if (ip->protocol == static_cast<std::uint8_t>(net::IpProto::kIcmp) &&
      raw_incoming.size() >= ip->header_length() + 8) {
    const auto icmp =
        net::IcmpMessage::parse(raw_incoming.subspan(ip->header_length()));
    if (icmp) {
      in_icmp_ = *icmp;
      in_has_icmp_ = true;
    }
  }
  out_ip_.protocol = static_cast<std::uint8_t>(net::IpProto::kIcmp);
  out_ip_.ttl = 64;
  out_ip_.src = own_address_;
  if (start_from_incoming && in_has_icmp_) {
    out_icmp_ = in_icmp_;  // keeps the request's checksum: stale on purpose
  } else {
    out_icmp_.checksum = 0;
  }
}

std::optional<long> IcmpExecEnv::read_field(const codegen::FieldRef& ref,
                                            codegen::PacketSel sel) {
  const bool in = sel == codegen::PacketSel::kIncoming;
  const net::Ipv4Header& ip = in ? in_ip_ : out_ip_;
  const net::IcmpMessage& icmp = in ? in_icmp_ : out_icmp_;

  if (ref.layer == "ip") {
    if (ref.field == "src") return static_cast<long>(ip.src.value());
    if (ref.field == "dst") return static_cast<long>(ip.dst.value());
    if (ref.field == "ttl") return ip.ttl;
    if (ref.field == "tos") return ip.tos;
    if (ref.field == "total_length") return ip.total_length;
    return std::nullopt;
  }
  if (ref.layer == "icmp") {
    if (ref.field == "type") return static_cast<long>(icmp.type);
    if (ref.field == "code") return icmp.code;
    if (ref.field == "checksum") return icmp.checksum;
    if (ref.field == "identifier") return icmp.identifier();
    if (ref.field == "sequence_number") return icmp.sequence_number();
    if (ref.field == "gateway_internet_address") {
      return static_cast<long>(icmp.gateway_address().value());
    }
    if (ref.field == "pointer") return icmp.pointer();
    if (ref.field == "originate_timestamp") {
      return static_cast<long>(icmp.originate_timestamp());
    }
    if (ref.field == "receive_timestamp") {
      return static_cast<long>(icmp.receive_timestamp());
    }
    if (ref.field == "transmit_timestamp") {
      return static_cast<long>(icmp.transmit_timestamp());
    }
    if (ref.field == "message") return 0;  // token for "the ICMP message"
    return std::nullopt;
  }
  return std::nullopt;
}

bool IcmpExecEnv::write_field(const codegen::FieldRef& ref, long value) {
  if (ref.layer == "ip") {
    if (ref.field == "src") {
      out_ip_.src = net::IpAddr(static_cast<std::uint32_t>(value));
      return true;
    }
    if (ref.field == "dst") {
      out_ip_.dst = net::IpAddr(static_cast<std::uint32_t>(value));
      return true;
    }
    if (ref.field == "ttl") {
      out_ip_.ttl = static_cast<std::uint8_t>(value);
      return true;
    }
    if (ref.field == "tos") {
      out_ip_.tos = static_cast<std::uint8_t>(value);
      return true;
    }
    return false;
  }
  if (ref.layer == "icmp") {
    if (ref.field == "type") {
      out_icmp_.type = static_cast<net::IcmpType>(value);
      return true;
    }
    if (ref.field == "code") {
      out_icmp_.code = static_cast<std::uint8_t>(value);
      return true;
    }
    if (ref.field == "checksum") {
      out_icmp_.checksum = static_cast<std::uint16_t>(value);
      return true;
    }
    if (ref.field == "identifier") {
      out_icmp_.set_identifier(static_cast<std::uint16_t>(value));
      return true;
    }
    if (ref.field == "sequence_number") {
      out_icmp_.set_sequence_number(static_cast<std::uint16_t>(value));
      return true;
    }
    if (ref.field == "gateway_internet_address") {
      out_icmp_.set_gateway_address(net::IpAddr(static_cast<std::uint32_t>(value)));
      return true;
    }
    if (ref.field == "pointer") {
      out_icmp_.set_pointer(static_cast<std::uint8_t>(value));
      return true;
    }
    if (ref.field == "originate_timestamp" ||
        ref.field == "receive_timestamp" ||
        ref.field == "transmit_timestamp") {
      if (out_icmp_.payload.size() < 12) out_icmp_.payload.resize(12, 0);
      const std::size_t off = ref.field == "originate_timestamp" ? 0
                              : ref.field == "receive_timestamp" ? 4
                                                                  : 8;
      util::put_be32({out_icmp_.payload.data() + off, 4},
                     static_cast<std::uint32_t>(value));
      return true;
    }
    if (ref.field == "unused") return true;  // explicitly writable no-op
    return false;
  }
  return false;
}

bool IcmpExecEnv::is_bytes_field(const codegen::FieldRef& ref) const {
  return ref.layer == "icmp" && is_payload_field(ref.field);
}

std::optional<std::vector<std::uint8_t>> IcmpExecEnv::read_bytes(
    const codegen::FieldRef& ref, codegen::PacketSel sel) {
  if (!is_bytes_field(ref)) return std::nullopt;
  return sel == codegen::PacketSel::kIncoming ? in_icmp_.payload
                                              : out_icmp_.payload;
}

bool IcmpExecEnv::write_bytes(const codegen::FieldRef& ref,
                              std::vector<std::uint8_t> value) {
  if (!is_bytes_field(ref)) return false;
  out_icmp_.payload = std::move(value);
  return true;
}

bool IcmpExecEnv::is_bytes_function(const std::string& fn) const {
  return fn == "original_datagram_excerpt" || fn == "copy_field";
}

std::optional<long> IcmpExecEnv::call_scalar(const std::string& fn,
                                             const std::vector<long>& args) {
  if (fn == "ones_complement_sum") {
    // Sum over the outgoing ICMP message as currently constructed,
    // including whatever sits in the checksum field (stale-value
    // semantics; see finish_reply).
    const auto bytes = out_icmp_.serialize_with_checksum(out_icmp_.checksum);
    return net::ones_complement_sum(bytes);
  }
  if (fn == "ones_complement") {
    if (args.size() == 1) return (~args[0]) & 0xffff;
    const auto bytes = out_icmp_.serialize_with_checksum(out_icmp_.checksum);
    return net::internet_checksum(bytes);
  }
  if (fn == "current_time") return static_cast<long>(clock_ms_);
  if (fn == "receive_time") return static_cast<long>(clock_ms_);
  if (fn == "transmit_time") return static_cast<long>(clock_ms_) + 1;
  if (fn == "error_octet") return error_pointer_;
  if (fn == "better_gateway") {
    return static_cast<long>(better_gateway_.value());
  }
  if (fn == "own_address") return static_cast<long>(own_address_.value());
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> IcmpExecEnv::call_bytes(
    const std::string& fn) {
  if (fn == "original_datagram_excerpt") {
    return net::original_datagram_excerpt(raw_incoming_);
  }
  if (fn == "copy_field") {
    return in_icmp_.payload;  // bare copy: the echoed data
  }
  return std::nullopt;
}

bool IcmpExecEnv::call_effect(const std::string& fn,
                              const std::vector<long>& args) {
  (void)args;
  if (fn == "reverse_addresses") {
    out_ip_.src = in_ip_.dst;
    out_ip_.dst = in_ip_.src;
    return true;
  }
  if (fn == "recompute_checksum" || fn == "compute_checksum") {
    // Deferred: the framework computes the checksum when the message is
    // finalized (after every field, including the variable-length data,
    // is in place). See finish_reply for the stale-value semantics.
    checksum_explicitly_computed_ = true;
    return true;
  }
  if (fn == "send_message" || fn == "discard_packet") {
    return true;  // transmission is the simulator's job
  }
  return false;
}

long IcmpExecEnv::resolve_symbol(const std::string& name) {
  if (util::to_lower(name) == "scenario") return symbol_value(scenario_);
  return symbol_value(name);
}

std::vector<std::uint8_t> IcmpExecEnv::finish_reply() {
  // Serialize the ICMP message with the checksum field exactly as the
  // generated code left it...
  auto icmp_bytes = out_icmp_.serialize_with_checksum(out_icmp_.checksum);
  if (checksum_explicitly_computed_) {
    // ...then run the framework checksum over the message *including*
    // that field value. Generated code that followed the @AdvBefore
    // advice zeroed the field first, yielding the RFC-correct checksum;
    // code that skipped the advice bakes a stale value into the sum.
    const std::uint16_t ck = net::internet_checksum(icmp_bytes);
    util::put_be16({icmp_bytes.data() + 2, 2}, ck);
  }
  if (out_ip_.src == net::IpAddr()) out_ip_.src = own_address_;
  return net::build_ipv4_packet(out_ip_, icmp_bytes);
}

}  // namespace sage::runtime

// ICMP execution environment: the static framework instance generated
// ICMP code runs against.
//
// Holds the incoming packet (decoded) and the outgoing reply under
// construction, and provides the framework services RFC 792 text assumes
// but never defines (§5.1): one's complement arithmetic, address
// reversal, the original-datagram excerpt, the OS clock and interface
// address, and the event parameters (which unreachable code, which
// header octet was bad, which gateway is better).
#pragma once

#include <map>
#include <string>

#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "runtime/interpreter.hpp"

namespace sage::runtime {

class IcmpExecEnv : public ExecEnv {
 public:
  /// `raw_incoming` must start at the IP header and outlive the env.
  /// `start_from_incoming` models the reply-by-mutation idiom of RFC 792
  /// ("the source and destination addresses are simply reversed, the
  /// type code changed to 0, and the checksum recomputed"): the outgoing
  /// message starts as a copy of the incoming one — including its stale
  /// checksum, which is what makes the zero-before-compute advice
  /// (@AdvBefore) observable in tests.
  IcmpExecEnv(std::span<const std::uint8_t> raw_incoming,
              net::IpAddr own_address, bool start_from_incoming = false);

  /// Whether the triggering packet decoded as IP (+ ICMP when present).
  bool valid() const { return valid_; }

  /// The event scenario name ("echo reply message", "net unreachable",
  /// ...) that @Case-generated code matches against.
  void set_scenario(const std::string& name) { scenario_ = name; }

  /// Event parameters surfaced as framework functions.
  void set_error_pointer(std::uint8_t pointer) { error_pointer_ = pointer; }
  void set_better_gateway(net::IpAddr gateway) { better_gateway_ = gateway; }

  /// Deterministic OS clock (milliseconds since midnight UT).
  void set_clock(std::uint32_t now_ms) { clock_ms_ = now_ms; }

  /// Finish: serialize the reply packet. The checksum field is emitted
  /// exactly as generated code left it *summed over the message*: if the
  /// code zeroed the checksum before computing (the @AdvBefore advice),
  /// the result is RFC-correct; if not, the stale value corrupts the sum
  /// — which is precisely how the advice's absence becomes a test
  /// failure.
  std::vector<std::uint8_t> finish_reply();

  const net::Ipv4Header& out_ip() const { return out_ip_; }
  const net::IcmpMessage& out_icmp() const { return out_icmp_; }

  // -- ExecEnv -------------------------------------------------------------
  std::optional<long> read_field(const codegen::FieldRef& ref,
                                 codegen::PacketSel sel) override;
  bool write_field(const codegen::FieldRef& ref, long value) override;
  bool is_bytes_field(const codegen::FieldRef& ref) const override;
  std::optional<std::vector<std::uint8_t>> read_bytes(
      const codegen::FieldRef& ref, codegen::PacketSel sel) override;
  bool write_bytes(const codegen::FieldRef& ref,
                   std::vector<std::uint8_t> value) override;
  bool is_bytes_function(const std::string& fn) const override;
  std::optional<long> call_scalar(const std::string& fn,
                                  const std::vector<long>& args) override;
  std::optional<std::vector<std::uint8_t>> call_bytes(
      const std::string& fn) override;
  bool call_effect(const std::string& fn,
                   const std::vector<long>& args) override;
  long resolve_symbol(const std::string& name) override;

 private:
  bool checksum_explicitly_computed_ = false;

  std::span<const std::uint8_t> raw_incoming_;
  bool valid_ = false;
  net::Ipv4Header in_ip_;
  net::IcmpMessage in_icmp_;
  bool in_has_icmp_ = false;

  net::Ipv4Header out_ip_;
  net::IcmpMessage out_icmp_;

  net::IpAddr own_address_;
  std::string scenario_;
  std::uint8_t error_pointer_ = 0;
  net::IpAddr better_gateway_;
  std::uint32_t clock_ms_ = 36000000;
};

}  // namespace sage::runtime

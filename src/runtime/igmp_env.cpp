#include "runtime/igmp_env.hpp"

#include "util/strings.hpp"

namespace sage::runtime {

namespace {
long symbol_value(const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : util::to_lower(name)) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<long>(h & 0x7fffffff);
}
}  // namespace

std::vector<std::uint8_t> IgmpExecEnv::finish(net::IpAddr destination) const {
  net::Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(net::IpProto::kIgmp);
  ip.ttl = 1;  // IGMP never leaves the local network
  ip.src = own_address_;
  ip.dst = destination;
  return net::build_ipv4_packet(ip, message_.serialize());
}

std::optional<long> IgmpExecEnv::read_field(const codegen::FieldRef& ref,
                                            codegen::PacketSel sel) {
  (void)sel;
  if (ref.layer != "igmp") return std::nullopt;
  if (ref.field == "version") return message_.version;
  if (ref.field == "type") return static_cast<long>(message_.type);
  if (ref.field == "unused") return message_.unused;
  if (ref.field == "checksum") return message_.checksum;
  if (ref.field == "group_address") {
    return static_cast<long>(message_.group_address.value());
  }
  if (ref.field == "host_group_address") {
    return static_cast<long>(host_group_.value());
  }
  if (ref.field == "message") return 0;
  return std::nullopt;
}

bool IgmpExecEnv::write_field(const codegen::FieldRef& ref, long value) {
  if (ref.layer != "igmp") return false;
  if (ref.field == "version") {
    message_.version = static_cast<std::uint8_t>(value);
    return true;
  }
  if (ref.field == "type") {
    message_.type = static_cast<net::IgmpType>(value);
    return true;
  }
  if (ref.field == "unused") {
    message_.unused = static_cast<std::uint8_t>(value);
    return true;
  }
  if (ref.field == "checksum") {
    message_.checksum = static_cast<std::uint16_t>(value);
    return true;
  }
  if (ref.field == "group_address") {
    message_.group_address = net::IpAddr(static_cast<std::uint32_t>(value));
    return true;
  }
  return false;
}

bool IgmpExecEnv::is_bytes_field(const codegen::FieldRef& ref) const {
  (void)ref;
  return false;
}
std::optional<std::vector<std::uint8_t>> IgmpExecEnv::read_bytes(
    const codegen::FieldRef& ref, codegen::PacketSel sel) {
  (void)ref;
  (void)sel;
  return std::nullopt;
}
bool IgmpExecEnv::write_bytes(const codegen::FieldRef& ref,
                              std::vector<std::uint8_t> value) {
  (void)ref;
  (void)value;
  return false;
}
bool IgmpExecEnv::is_bytes_function(const std::string& fn) const {
  (void)fn;
  return false;
}

std::optional<long> IgmpExecEnv::call_scalar(const std::string& fn,
                                             const std::vector<long>& args) {
  (void)args;
  if (fn == "ones_complement_sum" || fn == "ones_complement") {
    // Deferred like ICMP: serialize() computes the real checksum.
    return 0;
  }
  return std::nullopt;
}
std::optional<std::vector<std::uint8_t>> IgmpExecEnv::call_bytes(
    const std::string& fn) {
  (void)fn;
  return std::nullopt;
}

bool IgmpExecEnv::call_effect(const std::string& fn,
                              const std::vector<long>& args) {
  (void)args;
  if (fn == "compute_checksum" || fn == "recompute_checksum") {
    checksum_computed_ = true;  // IgmpMessage::serialize fills it
    return true;
  }
  if (fn == "send_message" || fn == "discard_packet") return true;
  return false;
}

long IgmpExecEnv::resolve_symbol(const std::string& name) {
  if (util::to_lower(name) == "scenario") return symbol_value(scenario_);
  return symbol_value(name);
}

}  // namespace sage::runtime

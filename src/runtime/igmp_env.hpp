// IGMP execution environment (§6.3): runs the generated IGMP sender
// ("SAGE generates the sending of host membership and query message")
// and finalizes an IGMP message wrapped in IP.
#pragma once

#include <string>

#include "net/igmp.hpp"
#include "net/ipv4.hpp"
#include "runtime/interpreter.hpp"

namespace sage::runtime {

class IgmpExecEnv : public ExecEnv {
 public:
  /// `host_group` is the group a report announces (the framework's
  /// "which group am I joining" service).
  IgmpExecEnv(net::IpAddr own_address, net::IpAddr host_group)
      : own_address_(own_address), host_group_(host_group) {}

  /// "host membership query message" or "host membership report message".
  void set_scenario(const std::string& name) { scenario_ = name; }

  const net::IgmpMessage& message() const { return message_; }

  /// Finalize: IGMP message inside an IP datagram to `destination`.
  std::vector<std::uint8_t> finish(net::IpAddr destination) const;

  // -- ExecEnv ---------------------------------------------------------------
  std::optional<long> read_field(const codegen::FieldRef& ref,
                                 codegen::PacketSel sel) override;
  bool write_field(const codegen::FieldRef& ref, long value) override;
  bool is_bytes_field(const codegen::FieldRef& ref) const override;
  std::optional<std::vector<std::uint8_t>> read_bytes(
      const codegen::FieldRef& ref, codegen::PacketSel sel) override;
  bool write_bytes(const codegen::FieldRef& ref,
                   std::vector<std::uint8_t> value) override;
  bool is_bytes_function(const std::string& fn) const override;
  std::optional<long> call_scalar(const std::string& fn,
                                  const std::vector<long>& args) override;
  std::optional<std::vector<std::uint8_t>> call_bytes(
      const std::string& fn) override;
  bool call_effect(const std::string& fn,
                   const std::vector<long>& args) override;
  long resolve_symbol(const std::string& name) override;

 private:
  net::IpAddr own_address_;
  net::IpAddr host_group_;
  net::IgmpMessage message_;
  std::string scenario_;
  bool checksum_computed_ = false;
};

}  // namespace sage::runtime

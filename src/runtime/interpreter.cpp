#include "runtime/interpreter.hpp"

#include <functional>

#include "codegen/lowering.hpp"

namespace sage::runtime {

using codegen::Cond;
using codegen::Expr;
using codegen::Stmt;

namespace {

/// Is this expression byte-array-valued in `env`?
bool is_bytes_expr(const Expr& expr, const ExecEnv& env) {
  switch (expr.kind) {
    case Expr::Kind::kField:
      return env.is_bytes_field(expr.field);
    case Expr::Kind::kCall:
      return env.is_bytes_function(expr.name);
    default:
      return false;
  }
}

}  // namespace

std::optional<long> Interpreter::eval(const Expr& expr, ExecEnv& env) const {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return expr.value;
    case Expr::Kind::kField:
      return env.read_field(expr.field, expr.packet);
    case Expr::Kind::kName:
      // Generation-time symbol cache (codegen::SchemaAnnotator); only
      // per-run names like "scenario" still hit the environment.
      if (expr.symbol_cached) return expr.symbol_cache;
      return env.resolve_symbol(expr.name);
    case Expr::Kind::kCall: {
      std::vector<long> args;
      args.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        const auto v = eval(a, env);
        if (!v) return std::nullopt;
        args.push_back(*v);
      }
      return env.call_scalar(expr.name, args);
    }
  }
  return std::nullopt;
}

bool Interpreter::test(const Cond& cond, ExecEnv& env,
                       ExecResult* result) const {
  switch (cond.kind) {
    case Cond::Kind::kTrue:
      return true;
    case Cond::Kind::kCompare: {
      const auto lhs = eval(cond.lhs, env);
      const auto rhs = eval(cond.rhs, env);
      if (!lhs || !rhs) {
        if (result != nullptr) {
          result->ok = false;
          result->errors.push_back("condition operand failed to evaluate");
        }
        return false;
      }
      switch (cond.op) {
        case codegen::CmpOp::kEq: return *lhs == *rhs;
        case codegen::CmpOp::kNe: return *lhs != *rhs;
        case codegen::CmpOp::kGt: return *lhs > *rhs;
        case codegen::CmpOp::kLt: return *lhs < *rhs;
      }
      return false;
    }
    case Cond::Kind::kAnd:
      for (const auto& c : cond.children) {
        if (!test(c, env, result)) return false;
      }
      return true;
    case Cond::Kind::kOr:
      for (const auto& c : cond.children) {
        if (test(c, env, result)) return true;
      }
      return false;
    case Cond::Kind::kNot:
      return cond.children.empty() ? false : !test(cond.children[0], env, result);
  }
  return false;
}

ExecResult Interpreter::run(const Stmt& stmt, ExecEnv& env) const {
  ExecResult result;
  std::size_t executed = 0;  // kIf/kAssign/kCall steps, for ExecStats
  const std::function<void(const Stmt&)> exec = [&](const Stmt& s) {
    if (s.kind != Stmt::Kind::kComment && s.kind != Stmt::Kind::kSeq) {
      ++executed;
    }
    switch (s.kind) {
      case Stmt::Kind::kComment:
        break;
      case Stmt::Kind::kSeq:
        for (const auto& child : s.body) exec(child);
        break;
      case Stmt::Kind::kIf:
        if (test(s.cond, env, &result)) {
          for (const auto& child : s.body) exec(child);
        }
        break;
      case Stmt::Kind::kAssign: {
        if (is_bytes_expr(s.value, env) || env.is_bytes_field(s.target)) {
          std::optional<std::vector<std::uint8_t>> bytes;
          if (s.value.kind == Expr::Kind::kField) {
            bytes = env.read_bytes(s.value.field, s.value.packet);
          } else if (s.value.kind == Expr::Kind::kCall) {
            bytes = env.call_bytes(s.value.name);
          }
          if (!bytes) {
            result.ok = false;
            result.errors.push_back("byte-valued assignment failed for " +
                                    s.target.to_string());
            return;
          }
          if (!env.write_bytes(s.target, std::move(*bytes))) {
            result.ok = false;
            result.errors.push_back("cannot write bytes field " +
                                    s.target.to_string());
          }
          return;
        }
        const auto value = eval(s.value, env);
        if (!value) {
          result.ok = false;
          result.errors.push_back("expression failed for assignment to " +
                                  s.target.to_string());
          return;
        }
        if (!env.write_field(s.target, *value)) {
          result.ok = false;
          result.errors.push_back("cannot write field " + s.target.to_string());
        }
        break;
      }
      case Stmt::Kind::kCall: {
        std::vector<long> args;
        bool args_ok = true;
        for (const auto& a : s.args) {
          const auto v = eval(a, env);
          if (!v) {
            args_ok = false;
            break;
          }
          args.push_back(*v);
        }
        if (!args_ok || !env.call_effect(s.fn, args)) {
          result.ok = false;
          result.errors.push_back("framework call failed: " + s.fn);
        }
        break;
      }
    }
  };
  exec(stmt);
  codegen::note_tree_execution(executed);
  return result;
}

}  // namespace sage::runtime

// The static-framework interpreter (§5.1).
//
// The paper's static framework "provides such functionality along with an
// API to access and manipulate headers of other protocols, and to
// interface with the OS". Here the framework doubles as an interpreter
// for the generated IR: an ExecEnv exposes field access, framework
// functions, and OS services for one protocol environment (ICMP packets,
// BFD session state), and the Interpreter walks a generated Stmt tree
// against it. This is how SAGE-generated code runs end-to-end inside the
// simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "codegen/ir.hpp"

namespace sage::runtime {

/// Protocol execution environment: field storage + framework functions.
class ExecEnv {
 public:
  virtual ~ExecEnv() = default;

  /// Scalar field read. nullopt -> unknown field (reported as an error).
  virtual std::optional<long> read_field(const codegen::FieldRef& ref,
                                         codegen::PacketSel sel) = 0;

  /// Scalar field write.
  virtual bool write_field(const codegen::FieldRef& ref, long value) = 0;

  /// Is this a byte-array field (payload/data)?
  virtual bool is_bytes_field(const codegen::FieldRef& ref) const = 0;

  /// Byte-array read/write.
  virtual std::optional<std::vector<std::uint8_t>> read_bytes(
      const codegen::FieldRef& ref, codegen::PacketSel sel) = 0;
  virtual bool write_bytes(const codegen::FieldRef& ref,
                           std::vector<std::uint8_t> value) = 0;

  /// Does this framework function return bytes?
  virtual bool is_bytes_function(const std::string& fn) const = 0;

  /// Scalar framework function.
  virtual std::optional<long> call_scalar(const std::string& fn,
                                          const std::vector<long>& args) = 0;

  /// Byte-array framework function.
  virtual std::optional<std::vector<std::uint8_t>> call_bytes(
      const std::string& fn) = 0;

  /// Framework function invoked for effect.
  virtual bool call_effect(const std::string& fn,
                           const std::vector<long>& args) = 0;

  /// Resolve a symbolic name ("scenario", "net unreachable", "up") to a
  /// comparable value.
  virtual long resolve_symbol(const std::string& name) = 0;
};

/// Result of executing a generated function body.
struct ExecResult {
  bool ok = true;
  std::vector<std::string> errors;
};

class Interpreter {
 public:
  ExecResult run(const codegen::Stmt& stmt, ExecEnv& env) const;

  /// Evaluate a scalar expression (bytes expressions are handled at the
  /// assignment level).
  std::optional<long> eval(const codegen::Expr& expr, ExecEnv& env) const;

  bool test(const codegen::Cond& cond, ExecEnv& env,
            ExecResult* result) const;
};

}  // namespace sage::runtime

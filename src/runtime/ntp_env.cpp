#include "runtime/ntp_env.hpp"

#include "util/strings.hpp"

namespace sage::runtime {

namespace {
long symbol_value(const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : util::to_lower(name)) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<long>(h & 0x7fffffff);
}
}  // namespace

std::vector<std::uint8_t> NtpExecEnv::finish(net::IpAddr destination) const {
  const auto ntp_bytes = packet_.serialize();
  net::UdpHeader udp = udp_;
  if (udp.src_port == 0) udp.src_port = net::kNtpPort;
  if (udp.dst_port == 0) udp.dst_port = net::kNtpPort;
  const auto udp_bytes = udp.serialize(own_address_, destination, ntp_bytes);

  net::Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(net::IpProto::kUdp);
  ip.ttl = 64;
  ip.src = own_address_;
  ip.dst = destination;
  return net::build_ipv4_packet(ip, udp_bytes);
}

std::optional<long> NtpExecEnv::read_field(const codegen::FieldRef& ref,
                                           codegen::PacketSel sel) {
  (void)sel;
  if (ref.layer == "udp") {
    if (ref.field == "src_port") return udp_.src_port;
    if (ref.field == "dst_port") return udp_.dst_port;
    if (ref.field == "length") return udp_.length;
    return std::nullopt;
  }
  if (ref.layer != "ntp") return std::nullopt;
  if (ref.field == "leap_indicator") return packet_.leap_indicator;
  if (ref.field == "version") return packet_.version;
  if (ref.field == "mode") return static_cast<long>(packet_.mode);
  if (ref.field == "stratum") return packet_.stratum;
  if (ref.field == "poll") return packet_.poll;
  if (ref.field == "precision") return packet_.precision;
  if (ref.field == "peer_timer") return static_cast<long>(peer_timer_);
  if (ref.field == "transmit_timestamp") {
    return static_cast<long>(packet_.transmit_timestamp.seconds);
  }
  if (ref.field == "message") return 0;
  return std::nullopt;
}

bool NtpExecEnv::write_field(const codegen::FieldRef& ref, long value) {
  if (ref.layer == "udp") {
    if (ref.field == "src_port") {
      udp_.src_port = static_cast<std::uint16_t>(value);
      return true;
    }
    if (ref.field == "dst_port") {
      udp_.dst_port = static_cast<std::uint16_t>(value);
      return true;
    }
    if (ref.field == "checksum") return true;  // filled at serialization
    return false;
  }
  if (ref.layer != "ntp") return false;
  if (ref.field == "leap_indicator") {
    packet_.leap_indicator = static_cast<std::uint8_t>(value);
    return true;
  }
  if (ref.field == "version") {
    packet_.version = static_cast<std::uint8_t>(value);
    return true;
  }
  if (ref.field == "mode") {
    packet_.mode = static_cast<net::NtpMode>(value);
    return true;
  }
  if (ref.field == "stratum") {
    packet_.stratum = static_cast<std::uint8_t>(value);
    return true;
  }
  if (ref.field == "poll") {
    packet_.poll = static_cast<std::int8_t>(value);
    return true;
  }
  if (ref.field == "precision") {
    packet_.precision = static_cast<std::int8_t>(value);
    return true;
  }
  if (ref.field == "transmit_timestamp") {
    packet_.transmit_timestamp = {static_cast<std::uint32_t>(value), 0};
    return true;
  }
  return false;
}

bool NtpExecEnv::is_bytes_field(const codegen::FieldRef& ref) const {
  (void)ref;
  return false;
}
std::optional<std::vector<std::uint8_t>> NtpExecEnv::read_bytes(
    const codegen::FieldRef& ref, codegen::PacketSel sel) {
  (void)ref;
  (void)sel;
  return std::nullopt;
}
bool NtpExecEnv::write_bytes(const codegen::FieldRef& ref,
                             std::vector<std::uint8_t> value) {
  (void)ref;
  (void)value;
  return false;
}
bool NtpExecEnv::is_bytes_function(const std::string& fn) const {
  (void)fn;
  return false;
}

std::optional<long> NtpExecEnv::call_scalar(const std::string& fn,
                                            const std::vector<long>& args) {
  (void)args;
  if (fn == "current_time") return static_cast<long>(clock_seconds_);
  if (fn == "ones_complement_sum" || fn == "ones_complement") return 0;
  return std::nullopt;
}
std::optional<std::vector<std::uint8_t>> NtpExecEnv::call_bytes(
    const std::string& fn) {
  (void)fn;
  return std::nullopt;
}

bool NtpExecEnv::call_effect(const std::string& fn,
                             const std::vector<long>& args) {
  (void)args;
  if (fn == "call_timeout" || fn == "timeout") {
    timeout_called_ = true;
    return true;
  }
  if (fn == "compute_checksum" || fn == "recompute_checksum" ||
      fn == "send_message" || fn == "transmit_packet") {
    return true;  // UDP checksum is filled at serialization
  }
  return false;
}

long NtpExecEnv::resolve_symbol(const std::string& name) {
  return symbol_value(name);
}

}  // namespace sage::runtime

// NTP execution environment (§6.3): runs the generated NTP sender —
// "It generated packets for the timeout procedure containing both NTP
// and UDP headers" — and finalizes the NTP packet inside UDP inside IP.
#pragma once

#include <string>

#include "net/ipv4.hpp"
#include "net/ntp.hpp"
#include "net/udp.hpp"
#include "runtime/interpreter.hpp"

namespace sage::runtime {

class NtpExecEnv : public ExecEnv {
 public:
  explicit NtpExecEnv(net::IpAddr own_address, std::uint32_t clock_seconds)
      : own_address_(own_address), clock_seconds_(clock_seconds) {}

  const net::NtpPacket& packet() const { return packet_; }
  const net::UdpHeader& udp() const { return udp_; }
  bool timeout_called() const { return timeout_called_; }

  /// Finalize: NTP inside UDP inside IP, to `destination`.
  std::vector<std::uint8_t> finish(net::IpAddr destination) const;

  // -- ExecEnv ---------------------------------------------------------------
  std::optional<long> read_field(const codegen::FieldRef& ref,
                                 codegen::PacketSel sel) override;
  bool write_field(const codegen::FieldRef& ref, long value) override;
  bool is_bytes_field(const codegen::FieldRef& ref) const override;
  std::optional<std::vector<std::uint8_t>> read_bytes(
      const codegen::FieldRef& ref, codegen::PacketSel sel) override;
  bool write_bytes(const codegen::FieldRef& ref,
                   std::vector<std::uint8_t> value) override;
  bool is_bytes_function(const std::string& fn) const override;
  std::optional<long> call_scalar(const std::string& fn,
                                  const std::vector<long>& args) override;
  std::optional<std::vector<std::uint8_t>> call_bytes(
      const std::string& fn) override;
  bool call_effect(const std::string& fn,
                   const std::vector<long>& args) override;
  long resolve_symbol(const std::string& name) override;

 private:
  net::IpAddr own_address_;
  std::uint32_t clock_seconds_;
  net::NtpPacket packet_;
  net::UdpHeader udp_;
  std::uint32_t peer_timer_ = 0;  // 0 = expired (drives the Table 11 code)
  bool timeout_called_ = false;
};

}  // namespace sage::runtime

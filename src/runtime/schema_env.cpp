#include "runtime/schema_env.hpp"

#include <algorithm>
#include <unordered_map>

#include "net/checksum.hpp"
#include "util/arena.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"
#include "util/symbols.hpp"

namespace sage::runtime {

namespace schema = net::schema;

namespace {

/// Live SchemaExecEnv count on this thread (see EnvArenaScope).
thread_local std::size_t g_env_depth = 0;

util::Arena& env_arena() {
  static thread_local util::Arena arena;
  return arena;
}

}  // namespace

std::pmr::memory_resource* SchemaExecEnv::image_arena() {
  return &env_arena();
}

SchemaExecEnv::EnvArenaScope::EnvArenaScope() {
  if (g_env_depth == 0) env_arena().reset();
  ++g_env_depth;
}

SchemaExecEnv::EnvArenaScope::EnvArenaScope(const EnvArenaScope&) {
  ++g_env_depth;
}

SchemaExecEnv::EnvArenaScope::~EnvArenaScope() { --g_env_depth; }

namespace {

/// RFC 5880 §6.8.1 variables in slot order; must match
/// read_bfd_state/write_bfd_state below.
constexpr const char* kBfdStateOrder[] = {
    "session_state",           "remote_session_state",
    "local_discr",             "remote_discr",
    "local_diag",              "desired_min_tx_interval",
    "required_min_rx_interval", "remote_min_rx_interval",
    "demand_mode",             "remote_demand_mode",
    "detect_mult",             "auth_type",
};

/// Struct-backed IP pseudo-layer in slot order; must match
/// read_ip/write_ip below.
constexpr const char* kIpSlotOrder[] = {"src", "dst", "ttl", "tos",
                                        "total_length"};

/// Struct-backed IPv6 pseudo-layer in slot order; must match
/// read_ip6/write_ip6 below. The writable fields sit in slots 0..3 —
/// the VM's kStoreIp specialization serves exactly that range.
constexpr const char* kIp6SlotOrder[] = {
    "src",     "dst",        "hop_limit",      "traffic_class",
    "version", "flow_label", "payload_length", "next_header"};

/// Opaque ip6 address handles (see read_ip6). Values sit far outside any
/// wire field's masked range, so a handle accidentally stored into a
/// scalar is visibly wrong instead of silently plausible.
constexpr long kAddr6HandleBase = 0x6B600000000L;
constexpr long kH6InSrc = kAddr6HandleBase + 0;
constexpr long kH6InDst = kAddr6HandleBase + 1;
constexpr long kH6OutSrc = kAddr6HandleBase + 2;
constexpr long kH6OutDst = kAddr6HandleBase + 3;
constexpr long kH6Own = kAddr6HandleBase + 4;

int index_in(const char* const* names, std::size_t n, const std::string& name) {
  for (std::size_t i = 0; i < n; ++i) {
    if (name == names[i]) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const SchemaExecEnv::ProtocolBinding& SchemaExecEnv::binding_for(
    const std::string& protocol) {
  static const std::unordered_map<std::string, ProtocolBinding>* tables = [] {
    const auto& registry = schema::SchemaRegistry::instance();
    auto* t = new std::unordered_map<std::string, ProtocolBinding>();
    for (const auto& p : registry.protocols()) {
      ProtocolBinding pb;
      pb.schema = &p;
      pb.profile = p.protocol == "ICMP"    ? Profile::kIcmp
                   : p.protocol == "ICMP6" ? Profile::kIcmp6
                   : p.protocol == "IGMP"  ? Profile::kIgmp
                   : p.protocol == "NTP"   ? Profile::kNtp
                   : p.protocol == "BFD"   ? Profile::kBfd
                   : p.protocol == "DHCP"  ? Profile::kDhcp
                                           : Profile::kStateMachine;
      pb.by_id.resize(registry.field_count());
      for (const auto& layer_name : p.layers) {
        const auto* layer = registry.layer(layer_name);
        if (layer == nullptr) continue;
        if (layer->name == "ip" || layer->name == "ip6") {
          // Struct-backed pseudo-layers: only the fields the framework
          // serves are bound; the rest stay kNone (unknown at runtime).
          // Both versions share Binding::Kind::kIp — read_ip/write_ip
          // dispatch on the env's profile, and a protocol only ever
          // binds one of the two layers.
          const bool v6 = layer->name == "ip6";
          const char* const* order = v6 ? kIp6SlotOrder : kIpSlotOrder;
          const std::size_t order_n =
              v6 ? std::size(kIp6SlotOrder) : std::size(kIpSlotOrder);
          for (const auto& f : layer->fields) {
            const int slot = index_in(order, order_n, f.name);
            if (slot < 0) continue;
            auto& b = pb.by_id[static_cast<std::size_t>(f.id)];
            b.kind = Binding::Kind::kIp;
            b.spec = &f;
            b.slot = static_cast<std::uint8_t>(slot);
          }
          continue;
        }
        const bool image_backed = layer->header_bytes > 0;
        std::uint8_t layer_slot = 0;
        if (image_backed) {
          layer_slot = static_cast<std::uint8_t>(pb.wire_layers.size());
          pb.wire_layers.push_back(layer);
        }
        for (const auto& f : layer->fields) {
          auto& b = pb.by_id[static_cast<std::size_t>(f.id)];
          b.spec = &f;
          b.layer_slot = layer_slot;
          // Location trumps kind for storage: TLV-located fields (DHCP
          // option scalars and whole option values) live in the layer's
          // options region, whatever they are typed as.
          if (f.loc == schema::FieldLoc::kTlvOption ||
              f.loc == schema::FieldLoc::kLengthPrefixed) {
            b.kind = Binding::Kind::kWireOption;
            continue;
          }
          switch (f.kind) {
            case schema::FieldKind::kScalar:
              b.kind = Binding::Kind::kWire;
              b.write_fills_rest_word =
                  layer->name == "icmp" && f.name == "pointer";
              break;
            case schema::FieldKind::kPayloadScalar:
              b.kind = Binding::Kind::kPayloadScalar;
              break;
            case schema::FieldKind::kBytes:
              b.kind = Binding::Kind::kBytes;
              break;
            case schema::FieldKind::kState: {
              if (layer->name == "bfd") {
                const int slot = index_in(
                    kBfdStateOrder, std::size(kBfdStateOrder), f.name);
                if (slot >= 0) {
                  b.kind = Binding::Kind::kBfdState;
                  b.slot = static_cast<std::uint8_t>(slot);
                  break;
                }
              }
              if (f.name == "host_group_address") {
                b.kind = Binding::Kind::kHostGroup;
                break;
              }
              b.kind = Binding::Kind::kState;
              b.slot = static_cast<std::uint8_t>(pb.state_slot_count++);
              break;
            }
            case schema::FieldKind::kToken:
            case schema::FieldKind::kVirtual:
              // Virtual fields share the token binding: readable tokens
              // read as 0, and write_is_noop virtuals (icmp.unused)
              // accept-and-discard writes.
              b.kind = Binding::Kind::kToken;
              break;
          }
        }
      }
      t->emplace(p.protocol, std::move(pb));
    }
    return t;
  }();
  const auto it = tables->find(protocol);
  if (it != tables->end()) return it->second;
  static const ProtocolBinding* empty = [] {
    auto* pb = new ProtocolBinding();
    pb->by_id.resize(schema::SchemaRegistry::instance().field_count());
    return pb;
  }();
  return *empty;
}

SchemaExecEnv::SchemaExecEnv(const ProtocolBinding& pb)
    : pb_(&pb), profile_(pb.profile) {
  scenario_value_ = util::symbol_value(scenario_);
  wire_.resize(pb.wire_layers.size());
  for (std::size_t i = 0; i < wire_.size(); ++i) {
    const auto* layer = pb.wire_layers[i];
    wire_[i].spec = layer;
    bool writable = false;
    for (const auto& f : layer->fields) {
      if (f.writable && !f.write_is_noop &&
          f.kind != schema::FieldKind::kState &&
          f.kind != schema::FieldKind::kVirtual) {
        writable = true;
        break;
      }
    }
    if (writable) {
      wire_[i].has_out = true;
      wire_[i].out_image.assign(layer->header_bytes, 0);
    }
  }
  state_slots_.assign(pb.state_slot_count, 0);
  apply_image_defaults();
}

void SchemaExecEnv::apply_image_defaults() {
  if (pb_->schema == nullptr) return;
  for (const auto& d : pb_->schema->defaults) {
    for (auto& L : wire_) {
      if (!L.has_out || L.spec->name != d.layer) continue;
      const auto* spec =
          schema::SchemaRegistry::instance().field(d.layer, d.field);
      if (spec != nullptr) {
        schema::SchemaRegistry::write_scalar(*spec, L.out_image, d.value);
      }
    }
  }
}

const schema::DefaultSpec* SchemaExecEnv::layer_default(
    const std::string& layer, const std::string& field) const {
  if (pb_->schema == nullptr) return nullptr;
  for (const auto& d : pb_->schema->defaults) {
    if (d.layer == layer && d.field == field) return &d;
  }
  return nullptr;
}

const schema::DefaultSpec* SchemaExecEnv::ip_default(
    const std::string& field) const {
  return layer_default("ip", field);
}

// -- factories --------------------------------------------------------------

SchemaExecEnv SchemaExecEnv::icmp(std::span<const std::uint8_t> raw_incoming,
                                  net::IpAddr own_address,
                                  bool start_from_incoming) {
  SchemaExecEnv env(binding_for("ICMP"));
  env.raw_incoming_ = raw_incoming;
  env.own_address_ = own_address;
  env.clock_ = 36000000;  // deterministic OS clock (ms since midnight UT)

  auto& icmp_layer = env.wire_[0];
  icmp_layer.has_in = true;

  const auto ip = net::Ipv4Header::parse(raw_incoming);
  if (!ip) {
    env.valid_ = false;
    icmp_layer.in_image.assign(icmp_layer.spec->header_bytes, 0);
    return env;
  }
  env.in_ip_ = *ip;
  bool in_has_icmp = false;
  const bool trigger_is_icmp =
      ip->protocol == static_cast<std::uint8_t>(net::IpProto::kIcmp);
  if (start_from_incoming && trigger_is_icmp) {
    const auto icmp_bytes = raw_incoming.subspan(ip->header_length());
    if (icmp_bytes.size() >= 8) {
      icmp_layer.in_image.assign(icmp_bytes.begin(), icmp_bytes.begin() + 8);
      icmp_layer.in_payload.assign(icmp_bytes.begin() + 8, icmp_bytes.end());
      in_has_icmp = true;
    } else {
      // Truncated ICMP message on a receiver path (reply-by-mutation):
      // keep only the bytes that exist. Reads whose bit range falls past
      // the end report a short read (nullopt) instead of fabricating
      // zeros from a full-size blank image, so no reply is built from
      // invented field values.
      icmp_layer.in_image.assign(icmp_bytes.begin(), icmp_bytes.end());
      env.input_truncated_ = true;
    }
  } else {
    // Error-sender flows (any trigger) and non-ICMP receivers: RFC 792's
    // field prose ("if code = 0, ...") describes the error message under
    // construction, not the offending datagram, so the message view is a
    // blank image. The offending datagram stays reachable through the ip
    // layer and the header+64-bits excerpt (raw_incoming_).
    icmp_layer.in_image.assign(icmp_layer.spec->header_bytes, 0);
    if (trigger_is_icmp &&
        raw_incoming.subspan(ip->header_length()).size() < 8) {
      env.input_truncated_ = true;
    }
  }
  if (const auto* d = env.ip_default("protocol")) {
    env.out_ip_.protocol = static_cast<std::uint8_t>(d->value);
  }
  if (const auto* d = env.ip_default("ttl")) {
    env.out_ip_.ttl = static_cast<std::uint8_t>(d->value);
  }
  env.out_ip_.src = own_address;
  if (start_from_incoming && in_has_icmp) {
    // Reply-by-mutation (RFC 792): the outgoing message starts as a byte
    // copy of the request — the request's checksum included, stale on
    // purpose.
    icmp_layer.out_image = icmp_layer.in_image;
    icmp_layer.out_payload = icmp_layer.in_payload;
  }
  return env;
}

SchemaExecEnv SchemaExecEnv::icmp6(std::span<const std::uint8_t> raw_incoming,
                                   net::Ip6Addr own_address,
                                   bool start_from_incoming) {
  SchemaExecEnv env(binding_for("ICMP6"));
  env.raw_incoming_ = raw_incoming;
  env.own6_ = own_address;
  env.clock_ = 36000000;  // deterministic OS clock (ms since midnight UT)

  auto& layer = env.wire_[0];
  layer.has_in = true;

  const auto ip6 = net::Ipv6Header::parse(raw_incoming);
  if (!ip6) {
    env.valid_ = false;
    layer.in_image.assign(layer.spec->header_bytes, 0);
    return env;
  }
  env.in_ip6_ = *ip6;
  bool in_has_icmp6 = false;
  const bool trigger_is_icmp6 = ip6->next_header == net::kIpProtoIcmp6;
  const auto icmp6_bytes = raw_incoming.subspan(net::Ipv6Header::kHeaderBytes);
  if (start_from_incoming && trigger_is_icmp6) {
    if (icmp6_bytes.size() >= 8) {
      layer.in_image.assign(icmp6_bytes.begin(), icmp6_bytes.begin() + 8);
      layer.in_payload.assign(icmp6_bytes.begin() + 8, icmp6_bytes.end());
      in_has_icmp6 = true;
    } else {
      // Truncated ICMPv6 message on a receiver path: keep only the bytes
      // that exist, so short reads surface instead of invented zeros
      // (same contract as the v4 factory).
      layer.in_image.assign(icmp6_bytes.begin(), icmp6_bytes.end());
      env.input_truncated_ = true;
    }
  } else {
    // Error-sender flows and non-ICMPv6 triggers: the message view is
    // the error message under construction, so it starts blank; the
    // offending packet stays reachable through the ip6 layer and the
    // invoking-packet excerpt (raw_incoming_).
    layer.in_image.assign(layer.spec->header_bytes, 0);
    if (trigger_is_icmp6 && icmp6_bytes.size() < 8) {
      env.input_truncated_ = true;
    }
  }
  // ip6 serialization defaults land on the struct-backed header — the
  // analogue of apply_image_defaults for image layers.
  if (const auto* d = env.layer_default("ip6", "next_header")) {
    env.out_ip6_.next_header = static_cast<std::uint8_t>(d->value);
  }
  if (const auto* d = env.layer_default("ip6", "hop_limit")) {
    env.out_ip6_.hop_limit = static_cast<std::uint8_t>(d->value);
  }
  env.out_ip6_.src = own_address;
  if (start_from_incoming && in_has_icmp6) {
    // Reply-by-mutation: the outgoing message starts as a byte copy of
    // the request, stale checksum included (RFC 792 idiom carried over).
    layer.out_image = layer.in_image;
    layer.out_payload = layer.in_payload;
  }
  return env;
}

SchemaExecEnv SchemaExecEnv::dhcp(std::span<const std::uint8_t> message) {
  SchemaExecEnv env(binding_for("DHCP"));
  if (!message.empty()) {
    auto& L = env.wire_[0];
    L.has_in = true;
    L.in_image.assign(message.begin(), message.end());
    if (message.size() < L.spec->header_bytes) env.input_truncated_ = true;
  }
  return env;
}

SchemaExecEnv SchemaExecEnv::igmp(net::IpAddr own_address,
                                  net::IpAddr host_group) {
  SchemaExecEnv env(binding_for("IGMP"));
  env.own_address_ = own_address;
  env.host_group_ = host_group;
  return env;
}

SchemaExecEnv SchemaExecEnv::ntp(net::IpAddr own_address,
                                 std::uint32_t clock_seconds) {
  SchemaExecEnv env(binding_for("NTP"));
  env.own_address_ = own_address;
  env.clock_ = clock_seconds;
  return env;
}

SchemaExecEnv SchemaExecEnv::ntp(net::IpAddr own_address,
                                 std::uint32_t clock_seconds,
                                 const net::NtpPacket& incoming) {
  SchemaExecEnv env = ntp(own_address, clock_seconds);
  for (auto& L : env.wire_) {
    if (L.spec->name == "ntp") {
      L.has_in = true;
      const auto bytes = incoming.serialize();
      L.in_image.assign(bytes.begin(), bytes.end());
    }
  }
  return env;
}

SchemaExecEnv SchemaExecEnv::bfd(net::BfdSessionState* state,
                                 const net::BfdControlPacket* packet) {
  SchemaExecEnv env(binding_for("BFD"));
  env.bfd_state_ = state;
  if (packet != nullptr) {
    auto& L = env.wire_[0];
    L.has_in = true;
    const auto bytes = packet->serialize();
    L.in_image.assign(bytes.begin(), bytes.end());
  }
  return env;
}

SchemaExecEnv SchemaExecEnv::state_machine(const std::string& protocol) {
  return SchemaExecEnv(binding_for(protocol));
}

// -- field dispatch ---------------------------------------------------------

const SchemaExecEnv::Binding* SchemaExecEnv::binding(
    const codegen::FieldRef& ref) const {
  if (ref.field_id >= 0 &&
      static_cast<std::size_t>(ref.field_id) < pb_->by_id.size()) {
    return &pb_->by_id[static_cast<std::size_t>(ref.field_id)];
  }
  // Un-annotated ref (hand-built IR, reference corpus): resolve by name.
  const auto* spec =
      schema::SchemaRegistry::instance().field(ref.layer, ref.field);
  if (spec == nullptr) return nullptr;
  return &pb_->by_id[static_cast<std::size_t>(spec->id)];
}

std::optional<long> SchemaExecEnv::read_field(const codegen::FieldRef& ref,
                                              codegen::PacketSel sel) {
  const Binding* b = binding(ref);
  if (b == nullptr || b->kind == Binding::Kind::kNone) return std::nullopt;
  const auto& spec = *b->spec;
  if (!spec.readable) return std::nullopt;
  switch (b->kind) {
    case Binding::Kind::kWire: {
      const LayerImages& L = wire_[b->layer_slot];
      // Honor the selector when both packets exist; environments that
      // only hold one side (IGMP/NTP senders) serve it for either
      // selector, matching the single-message view they model.
      const std::pmr::vector<std::uint8_t>* img =
          sel == codegen::PacketSel::kIncoming
              ? (L.has_in ? &L.in_image : (L.has_out ? &L.out_image : nullptr))
              : (L.has_out ? &L.out_image : (L.has_in ? &L.in_image : nullptr));
      if (img == nullptr) return std::nullopt;
      return schema::SchemaRegistry::read_scalar(spec, *img);
    }
    case Binding::Kind::kPayloadScalar: {
      const LayerImages& L = wire_[b->layer_slot];
      const bool from_incoming =
          sel == codegen::PacketSel::kIncoming ? L.has_in : !L.has_out;
      const std::pmr::vector<std::uint8_t>& pl =
          from_incoming ? L.in_payload : L.out_payload;
      if (pl.size() < spec.payload_offset + 4) {
        // An outgoing block that has not been written yet reads as 0 (it
        // is under construction); an incoming packet that ends before the
        // field is a short read, not a zero.
        if (from_incoming) return std::nullopt;
        return 0;
      }
      return static_cast<long>(
          util::get_be32({pl.data() + spec.payload_offset, 4}));
    }
    case Binding::Kind::kIp:
      return read_ip(b->slot, sel);
    case Binding::Kind::kState:
      return state_slots_[b->slot];
    case Binding::Kind::kBfdState:
      return read_bfd_state(b->slot);
    case Binding::Kind::kHostGroup:
      return static_cast<long>(host_group_.value());
    case Binding::Kind::kToken:
      return 0;
    case Binding::Kind::kWireOption:
      return read_wire_option(b->layer_slot, spec, sel);
    case Binding::Kind::kBytes:
    case Binding::Kind::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

bool SchemaExecEnv::write_field(const codegen::FieldRef& ref, long value) {
  const Binding* b = binding(ref);
  if (b == nullptr || b->kind == Binding::Kind::kNone) return false;
  const auto& spec = *b->spec;
  if (!spec.writable) return false;
  if (spec.write_is_noop) return true;
  switch (b->kind) {
    case Binding::Kind::kWire: {
      LayerImages& L = wire_[b->layer_slot];
      if (!L.has_out) return false;
      if (b->write_fills_rest_word) {
        // RFC 792 pointer: the write owns the whole rest word —
        // value << 24, unused octets zeroed.
        util::put_be32({L.out_image.data() + 4, 4},
                       static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(value))
                           << 24);
        return true;
      }
      return schema::SchemaRegistry::write_scalar(spec, L.out_image, value);
    }
    case Binding::Kind::kPayloadScalar: {
      LayerImages& L = wire_[b->layer_slot];
      if (!L.has_out) return false;
      // The payload-scalar block (the three ICMP timestamps) is sized as
      // a unit, matching the message format.
      std::size_t block = 0;
      for (const auto& f : L.spec->fields) {
        if (f.kind == schema::FieldKind::kPayloadScalar) {
          block = std::max<std::size_t>(block, f.payload_offset + 4);
        }
      }
      if (L.out_payload.size() < block) L.out_payload.resize(block, 0);
      util::put_be32({L.out_payload.data() + spec.payload_offset, 4},
                     static_cast<std::uint32_t>(value));
      return true;
    }
    case Binding::Kind::kIp:
      return write_ip(b->slot, value);
    case Binding::Kind::kState:
      state_slots_[b->slot] = value;
      return true;
    case Binding::Kind::kBfdState:
      return write_bfd_state(b->slot, value);
    case Binding::Kind::kWireOption:
      return write_wire_option(b->layer_slot, spec, value);
    case Binding::Kind::kHostGroup:
    case Binding::Kind::kToken:
    case Binding::Kind::kBytes:
    case Binding::Kind::kNone:
      return false;
  }
  return false;
}

std::optional<long> SchemaExecEnv::read_ip(std::uint8_t slot,
                                           codegen::PacketSel sel) const {
  // Kind::kIp covers both struct-backed pseudo-layers; the profile says
  // which one this env actually carries (a protocol binds only one).
  if (profile_ == Profile::kIcmp6) return read_ip6(slot, sel);
  const net::Ipv4Header& ip =
      sel == codegen::PacketSel::kIncoming ? in_ip_ : out_ip_;
  switch (slot) {
    case 0: return static_cast<long>(ip.src.value());
    case 1: return static_cast<long>(ip.dst.value());
    case 2: return ip.ttl;
    case 3: return ip.tos;
    case 4: return ip.total_length;
    default: return std::nullopt;
  }
}

bool SchemaExecEnv::write_ip(std::uint8_t slot, long value) {
  if (profile_ == Profile::kIcmp6) return write_ip6(slot, value);
  switch (slot) {
    case 0: out_ip_.src = net::IpAddr(static_cast<std::uint32_t>(value)); return true;
    case 1: out_ip_.dst = net::IpAddr(static_cast<std::uint32_t>(value)); return true;
    case 2: out_ip_.ttl = static_cast<std::uint8_t>(value); return true;
    case 3: out_ip_.tos = static_cast<std::uint8_t>(value); return true;
    default: return false;
  }
}

std::optional<long> SchemaExecEnv::read_ip6(std::uint8_t slot,
                                            codegen::PacketSel sel) const {
  const bool incoming = sel == codegen::PacketSel::kIncoming;
  const net::Ipv6Header& ip = incoming ? in_ip6_ : out_ip6_;
  switch (slot) {
    // The 128-bit addresses read as opaque handles; write_ip6 resolves
    // them back to the stored Ip6Addr. Generated code only ever moves
    // these values between address fields, so the round trip is lossless.
    case 0: return incoming ? kH6InSrc : kH6OutSrc;
    case 1: return incoming ? kH6InDst : kH6OutDst;
    case 2: return ip.hop_limit;
    case 3: return ip.traffic_class;
    case 4: return ip.version;
    case 5: return static_cast<long>(ip.flow_label);
    case 6: return ip.payload_length;
    case 7: return ip.next_header;
    default: return std::nullopt;
  }
}

const net::Ip6Addr* SchemaExecEnv::resolve_addr6(long handle) const {
  if (handle == kH6InSrc) return &in_ip6_.src;
  if (handle == kH6InDst) return &in_ip6_.dst;
  if (handle == kH6OutSrc) return &out_ip6_.src;
  if (handle == kH6OutDst) return &out_ip6_.dst;
  if (handle == kH6Own) return &own6_;
  return nullptr;
}

bool SchemaExecEnv::write_ip6(std::uint8_t slot, long value) {
  switch (slot) {
    case 0:
    case 1: {
      const net::Ip6Addr* addr = resolve_addr6(value);
      if (addr == nullptr) return false;  // not an address handle
      const net::Ip6Addr resolved = *addr;  // copy: target may alias
      (slot == 0 ? out_ip6_.src : out_ip6_.dst) = resolved;
      return true;
    }
    case 2: out_ip6_.hop_limit = static_cast<std::uint8_t>(value); return true;
    case 3: out_ip6_.traffic_class = static_cast<std::uint8_t>(value); return true;
    default: return false;
  }
}

void SchemaExecEnv::reverse_addresses_effect() {
  if (profile_ == Profile::kIcmp6) {
    out_ip6_.src = in_ip6_.dst;
    out_ip6_.dst = in_ip6_.src;
    return;
  }
  out_ip_.src = in_ip_.dst;
  out_ip_.dst = in_ip_.src;
}

std::optional<long> SchemaExecEnv::read_bfd_state(std::uint8_t slot) const {
  const auto& s = *bfd_state_;
  switch (slot) {
    case 0: return static_cast<long>(s.session_state);
    case 1: return static_cast<long>(s.remote_session_state);
    case 2: return static_cast<long>(s.local_discr);
    case 3: return static_cast<long>(s.remote_discr);
    case 4: return static_cast<long>(s.local_diag);
    case 5: return static_cast<long>(s.desired_min_tx_interval);
    case 6: return static_cast<long>(s.required_min_rx_interval);
    case 7: return static_cast<long>(s.remote_min_rx_interval);
    case 8: return s.demand_mode ? 1 : 0;
    case 9: return s.remote_demand_mode ? 1 : 0;
    case 10: return s.detect_mult;
    case 11: return s.auth_type;
    default: return std::nullopt;
  }
}

bool SchemaExecEnv::write_bfd_state(std::uint8_t slot, long value) {
  auto& s = *bfd_state_;
  switch (slot) {
    case 0: s.session_state = static_cast<net::BfdState>(value); return true;
    case 1: s.remote_session_state = static_cast<net::BfdState>(value); return true;
    case 2: s.local_discr = static_cast<std::uint32_t>(value); return true;
    case 3: s.remote_discr = static_cast<std::uint32_t>(value); return true;
    case 4: s.local_diag = static_cast<net::BfdDiag>(value); return true;
    case 5: s.desired_min_tx_interval = static_cast<std::uint32_t>(value); return true;
    case 6: s.required_min_rx_interval = static_cast<std::uint32_t>(value); return true;
    case 7: s.remote_min_rx_interval = static_cast<std::uint32_t>(value); return true;
    case 8: s.demand_mode = value != 0; return true;
    case 9: s.remote_demand_mode = value != 0; return true;
    case 10: s.detect_mult = static_cast<std::uint8_t>(value); return true;
    case 11: s.auth_type = static_cast<std::uint8_t>(value); return true;
    default: return false;
  }
}

// -- TLV option storage (Binding::Kind::kWireOption) ------------------------

namespace {

/// Selects the image a read should see: the selector is honored when
/// both packets exist, single-sided envs serve their one image for
/// either selector (same rule as the kWire path). Templated so the
/// env's private LayerImages type is deduced, never named.
template <typename Layer>
const std::pmr::vector<std::uint8_t>* select_image(const Layer& L,
                                                   codegen::PacketSel sel) {
  return sel == codegen::PacketSel::kIncoming
             ? (L.has_in ? &L.in_image : (L.has_out ? &L.out_image : nullptr))
             : (L.has_out ? &L.out_image : (L.has_in ? &L.in_image : nullptr));
}

/// Insert position for a fresh TLV in an out image: just before the end
/// code when the region already carries one, else the image end. Out
/// images only ever hold well-formed runs (the env wrote them), so a
/// malformed tail just appends at the end.
std::size_t option_insert_pos(const schema::LayerSpec& layer,
                              std::span<const std::uint8_t> img) {
  std::size_t pos = layer.options_offset;
  if (img.size() < pos) return img.size();
  while (pos < img.size()) {
    const std::uint8_t code = img[pos];
    if (code == layer.option_pad) {
      ++pos;
      continue;
    }
    if (code == layer.option_end) return pos;
    if (pos + 1 >= img.size()) return img.size();
    pos += 2 + img[pos + 1];
  }
  return img.size();
}

/// Remove every well-formed occurrence of option `type` from the image.
void erase_option(const schema::LayerSpec& layer,
                  std::pmr::vector<std::uint8_t>& img, std::uint8_t type) {
  std::size_t pos = layer.options_offset;
  while (pos < img.size()) {
    const std::uint8_t code = img[pos];
    if (code == layer.option_pad) {
      ++pos;
      continue;
    }
    if (code == layer.option_end) return;
    if (pos + 1 >= img.size()) return;
    const std::size_t len = 2 + img[pos + 1];
    if (pos + len > img.size()) return;
    if (code == type) {
      img.erase(img.begin() + static_cast<std::ptrdiff_t>(pos),
                img.begin() + static_cast<std::ptrdiff_t>(pos + len));
      continue;
    }
    pos += len;
  }
}

}  // namespace

std::optional<long> SchemaExecEnv::read_wire_option(
    std::uint8_t layer_slot, const schema::FieldSpec& spec,
    codegen::PacketSel sel) const {
  if (spec.kind != schema::FieldKind::kScalar) return std::nullopt;
  const LayerImages& L = wire_[layer_slot];
  const auto* img = select_image(L, sel);
  if (img == nullptr) return std::nullopt;
  const schema::LayoutCursor cursor(*L.spec, {img->data(), img->size()});
  const auto r = schema::SchemaRegistry::read_wire(cursor, spec);
  if (!r.ok()) return std::nullopt;
  return r.value;
}

bool SchemaExecEnv::write_wire_option(std::uint8_t layer_slot,
                                      const schema::FieldSpec& spec,
                                      long value) {
  if (spec.kind != schema::FieldKind::kScalar) return false;
  LayerImages& L = wire_[layer_slot];
  if (!L.has_out) return false;
  // In-place update when the option is already present with enough room
  // (write_wire's contract: a span cannot grow)...
  if (schema::SchemaRegistry::write_wire(
          *L.spec, spec, {L.out_image.data(), L.out_image.size()}, value)) {
    return true;
  }
  // ...else append a fresh {code, length, value} before the end code.
  const std::size_t len = (spec.bit_width + 7) / 8;
  std::vector<std::uint8_t> tlv;
  schema::OptionsView::append_scalar(tlv, spec.tlv_type, value, len);
  const std::size_t pos =
      option_insert_pos(*L.spec, {L.out_image.data(), L.out_image.size()});
  L.out_image.insert(L.out_image.begin() + static_cast<std::ptrdiff_t>(pos),
                     tlv.begin(), tlv.end());
  return true;
}

std::optional<std::vector<std::uint8_t>> SchemaExecEnv::read_option_bytes(
    std::uint8_t layer_slot, const schema::FieldSpec& spec,
    codegen::PacketSel sel) const {
  const LayerImages& L = wire_[layer_slot];
  const auto* img = select_image(L, sel);
  if (img == nullptr) return std::nullopt;
  const schema::OptionsView view(*L.spec, {img->data(), img->size()});
  const auto opt = view.find(spec.tlv_type);
  if (!opt) return std::nullopt;
  return std::vector<std::uint8_t>(opt->value.begin(), opt->value.end());
}

bool SchemaExecEnv::write_option_bytes(std::uint8_t layer_slot,
                                       const schema::FieldSpec& spec,
                                       std::span<const std::uint8_t> value) {
  LayerImages& L = wire_[layer_slot];
  if (!L.has_out) return false;
  erase_option(*L.spec, L.out_image, spec.tlv_type);
  std::vector<std::uint8_t> tlv;
  schema::OptionsView::append(tlv, spec.tlv_type, value);
  const std::size_t pos =
      option_insert_pos(*L.spec, {L.out_image.data(), L.out_image.size()});
  L.out_image.insert(L.out_image.begin() + static_cast<std::ptrdiff_t>(pos),
                     tlv.begin(), tlv.end());
  return true;
}

// -- bytes ------------------------------------------------------------------

bool SchemaExecEnv::is_bytes_field(const codegen::FieldRef& ref) const {
  const Binding* b = binding(ref);
  if (b == nullptr) return false;
  if (b->kind == Binding::Kind::kBytes) return true;
  // Whole-option-value fields (dhcp.parameter_request_list) are bytes
  // typed but option located.
  return b->kind == Binding::Kind::kWireOption && b->spec != nullptr &&
         b->spec->kind == schema::FieldKind::kBytes;
}

std::optional<std::vector<std::uint8_t>> SchemaExecEnv::read_bytes(
    const codegen::FieldRef& ref, codegen::PacketSel sel) {
  const Binding* b = binding(ref);
  if (b == nullptr) return std::nullopt;
  if (b->kind == Binding::Kind::kWireOption &&
      b->spec->kind == schema::FieldKind::kBytes) {
    return read_option_bytes(b->layer_slot, *b->spec, sel);
  }
  if (b->kind != Binding::Kind::kBytes) return std::nullopt;
  const LayerImages& L = wire_[b->layer_slot];
  const auto& payload =
      sel == codegen::PacketSel::kIncoming ? L.in_payload : L.out_payload;
  return std::vector<std::uint8_t>(payload.begin(), payload.end());
}

bool SchemaExecEnv::write_bytes(const codegen::FieldRef& ref,
                                std::vector<std::uint8_t> value) {
  const Binding* b = binding(ref);
  if (b == nullptr) return false;
  if (b->kind == Binding::Kind::kWireOption &&
      b->spec->kind == schema::FieldKind::kBytes) {
    return write_option_bytes(b->layer_slot, *b->spec, value);
  }
  if (b->kind != Binding::Kind::kBytes) return false;
  wire_[b->layer_slot].out_payload.assign(value.begin(), value.end());
  return true;
}

// -- framework functions (the per-protocol profiles) ------------------------

std::vector<std::uint8_t> SchemaExecEnv::out_message_bytes(
    std::size_t layer_slot) const {
  const LayerImages& L = wire_[layer_slot];
  std::vector<std::uint8_t> bytes(L.out_image.begin(), L.out_image.end());
  bytes.insert(bytes.end(), L.out_payload.begin(), L.out_payload.end());
  return bytes;
}

bool SchemaExecEnv::is_bytes_function(const std::string& fn) const {
  return (profile_ == Profile::kIcmp || profile_ == Profile::kIcmp6) &&
         (fn == "original_datagram_excerpt" || fn == "copy_field");
}

std::optional<long> SchemaExecEnv::icmp_call_scalar(
    const std::string& fn, const std::vector<long>& args) {
  if (fn == "ones_complement_sum") {
    // Sum over the outgoing ICMP message as currently constructed,
    // including whatever sits in the checksum field (stale-value
    // semantics; see finish_reply).
    return net::ones_complement_sum(out_message_bytes(0));
  }
  if (fn == "ones_complement") {
    if (args.size() == 1) return (~args[0]) & 0xffff;
    return net::internet_checksum(out_message_bytes(0));
  }
  if (fn == "current_time") return static_cast<long>(clock_);
  if (fn == "receive_time") return static_cast<long>(clock_);
  if (fn == "transmit_time") return static_cast<long>(clock_) + 1;
  if (fn == "error_octet") return error_pointer_;
  if (fn == "better_gateway") return static_cast<long>(better_gateway_.value());
  if (fn == "own_address") return static_cast<long>(own_address_.value());
  return std::nullopt;
}

std::optional<long> SchemaExecEnv::icmp6_call_scalar(
    const std::string& fn, const std::vector<long>& args) {
  if (fn == "ones_complement_sum") {
    // RFC 4443 §2.3: the sum covers the ICMPv6 message chained with the
    // IPv6 pseudo-header. Same stale-value semantics as v4 — whatever
    // sits in the checksum field is summed in.
    const auto bytes = out_message_bytes(0);
    return net::ones_complement_sum(
        bytes, net::pseudo_header_sum_v6(
                   out_ip6_.src.bytes(), out_ip6_.dst.bytes(),
                   static_cast<std::uint32_t>(bytes.size()),
                   net::kIpProtoIcmp6));
  }
  if (fn == "ones_complement") {
    if (args.size() == 1) return (~args[0]) & 0xffff;
    const auto bytes = out_message_bytes(0);
    return net::internet_checksum(
        bytes, net::pseudo_header_sum_v6(
                   out_ip6_.src.bytes(), out_ip6_.dst.bytes(),
                   static_cast<std::uint32_t>(bytes.size()),
                   net::kIpProtoIcmp6));
  }
  if (fn == "current_time") return static_cast<long>(clock_);
  if (fn == "receive_time") return static_cast<long>(clock_);
  if (fn == "transmit_time") return static_cast<long>(clock_) + 1;
  if (fn == "error_octet") return error_pointer_;
  // Packet Too Big: the MTU of the next-hop link. The framework serves
  // the IPv6 minimum so both responders agree deterministically.
  if (fn == "link_mtu") return 1280;
  // The node's own address, served as an opaque handle like every other
  // 128-bit address (write_ip6 resolves it).
  if (fn == "own_address") return kH6Own;
  return std::nullopt;
}

std::optional<long> SchemaExecEnv::call_scalar(const std::string& fn,
                                               const std::vector<long>& args) {
  switch (profile_) {
    case Profile::kIcmp:
      return icmp_call_scalar(fn, args);
    case Profile::kIcmp6:
      return icmp6_call_scalar(fn, args);
    case Profile::kIgmp:
      if (fn == "ones_complement_sum" || fn == "ones_complement") {
        return 0;  // deferred: finish() computes the real checksum
      }
      return std::nullopt;
    case Profile::kNtp:
      if (fn == "current_time") return static_cast<long>(clock_);
      if (fn == "ones_complement_sum" || fn == "ones_complement") return 0;
      return std::nullopt;
    case Profile::kBfd:
      if (fn == "session_lookup") {
        // 1 when the Your Discriminator lookup found a session.
        return session_lookup_fails_ ? 0 : 1;
      }
      return std::nullopt;
    case Profile::kDhcp:
    case Profile::kStateMachine:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> SchemaExecEnv::call_bytes(
    const std::string& fn) {
  if (profile_ != Profile::kIcmp && profile_ != Profile::kIcmp6) {
    return std::nullopt;
  }
  if (fn == "original_datagram_excerpt") {
    if (profile_ == Profile::kIcmp6) {
      // RFC 4443 §3.1: as much of the invoking packet as possible
      // without the ICMPv6 packet exceeding the minimum IPv6 MTU.
      constexpr std::size_t kMaxExcerpt =
          1280 - net::Ipv6Header::kHeaderBytes - 8;
      const std::size_t n = std::min(raw_incoming_.size(), kMaxExcerpt);
      return std::vector<std::uint8_t>(raw_incoming_.begin(),
                                       raw_incoming_.begin() + n);
    }
    return net::original_datagram_excerpt(raw_incoming_);
  }
  if (fn == "copy_field") {
    // Bare copy: the echoed data (copied out of the arena image).
    const auto& p = wire_[0].in_payload;
    return std::vector<std::uint8_t>(p.begin(), p.end());
  }
  return std::nullopt;
}

bool SchemaExecEnv::call_effect(const std::string& fn,
                                const std::vector<long>& args) {
  (void)args;
  switch (profile_) {
    case Profile::kIcmp:
    case Profile::kIcmp6:
      if (fn == "reverse_addresses") {
        reverse_addresses_effect();
        return true;
      }
      if (fn == "recompute_checksum" || fn == "compute_checksum") {
        // Deferred: the framework computes the checksum when the message
        // is finalized (after every field, including the variable-length
        // data, is in place). See finish_reply.
        checksum_explicitly_computed_ = true;
        return true;
      }
      if (fn == "send_message" || fn == "discard_packet") {
        return true;  // transmission is the simulator's job
      }
      return false;
    case Profile::kDhcp:
      if (fn == "compute_checksum" || fn == "recompute_checksum") {
        return true;  // UDP checksum is filled at serialization
      }
      if (fn == "send_message" || fn == "discard_packet") return true;
      return false;
    case Profile::kIgmp:
      if (fn == "compute_checksum" || fn == "recompute_checksum") {
        checksum_explicitly_computed_ = true;  // finish() fills it
        return true;
      }
      if (fn == "send_message" || fn == "discard_packet") return true;
      return false;
    case Profile::kNtp:
      if (fn == "call_timeout" || fn == "timeout") {
        timeout_called_ = true;
        return true;
      }
      if (fn == "compute_checksum" || fn == "recompute_checksum" ||
          fn == "send_message" || fn == "transmit_packet") {
        return true;  // UDP checksum is filled at serialization
      }
      return false;
    case Profile::kBfd:
      if (fn == "select_session") {
        session_selected_ = !session_lookup_fails_;
        return true;
      }
      if (fn == "discard_packet") {
        // "If no session is found, the packet MUST be discarded" — but
        // only when the lookup actually failed; generated code guards
        // this with the rewritten condition (Table 5).
        bfd_state_->packet_discarded = true;
        return true;
      }
      if (fn == "cease_transmission") {
        bfd_state_->periodic_transmission_enabled = false;
        return true;
      }
      if (fn == "call_timeout") {
        timeout_called_ = true;
        return true;
      }
      if (fn == "transmit_packet" || fn == "send_message") {
        packet_transmitted_ = true;
        return true;
      }
      return false;
    case Profile::kStateMachine:
      effects_.push_back(fn);
      return true;
  }
  return false;
}

void SchemaExecEnv::set_scenario(const std::string& name) {
  scenario_ = name;
  // Cached so the threaded backend's kPushScenario is a plain load (the
  // tree's resolve_symbol reads the same cache).
  scenario_value_ = util::symbol_value(scenario_);
}

long SchemaExecEnv::resolve_symbol(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (pb_->schema != nullptr) {
    if (pb_->schema->scenario_symbol && lower == "scenario") {
      return scenario_value_;
    }
    for (const auto& s : pb_->schema->symbols) {
      if (s.name == lower) return s.value;
    }
  }
  return util::symbol_value(name);
}

// -- finalization and typed views -------------------------------------------

std::vector<std::uint8_t> SchemaExecEnv::finish_reply() {
  if (profile_ == Profile::kIcmp6) {
    auto bytes = out_message_bytes(0);
    if (out_ip6_.src == net::Ip6Addr()) out_ip6_.src = own6_;
    if (checksum_explicitly_computed_) {
      // Same stale-value contract as v4, with the RFC 4443 §2.3
      // pseudo-header chained in: the sum covers the message including
      // whatever the checksum field currently holds, so code that
      // skipped the zero-before-compute advice bakes in a stale value.
      const std::uint16_t ck =
          net::icmp6_checksum(out_ip6_.src, out_ip6_.dst, bytes);
      util::put_be16({bytes.data() + 2, 2}, ck);
    }
    return net::build_ipv6_packet(out_ip6_, bytes);
  }
  // Serialize the ICMP message with the checksum field exactly as the
  // generated code left it in the image...
  auto icmp_bytes = out_message_bytes(0);
  if (checksum_explicitly_computed_) {
    // ...then run the framework checksum over the message *including*
    // that field value. Generated code that followed the @AdvBefore
    // advice zeroed the field first, yielding the RFC-correct checksum;
    // code that skipped the advice bakes a stale value into the sum.
    const std::uint16_t ck = net::internet_checksum(icmp_bytes);
    util::put_be16({icmp_bytes.data() + 2, 2}, ck);
  }
  if (out_ip_.src == net::IpAddr()) out_ip_.src = own_address_;
  return net::build_ipv4_packet(out_ip_, icmp_bytes);
}

std::vector<std::uint8_t> SchemaExecEnv::finish(net::IpAddr destination) const {
  net::Ipv4Header ip;
  if (const auto* d = ip_default("protocol")) {
    ip.protocol = static_cast<std::uint8_t>(d->value);
  }
  if (const auto* d = ip_default("ttl")) {
    ip.ttl = static_cast<std::uint8_t>(d->value);
  }
  ip.src = own_address_;
  ip.dst = destination;

  if (profile_ == Profile::kIgmp) {
    // The IGMP checksum is always computed at serialization time over
    // the 8-byte message, whatever the checksum field was set to.
    std::vector<std::uint8_t> bytes(wire_[0].out_image.begin(),
                                    wire_[0].out_image.end());
    bytes[2] = 0;
    bytes[3] = 0;
    const std::uint16_t ck = net::internet_checksum(bytes);
    util::put_be16({bytes.data() + 2, 2}, ck);
    return net::build_ipv4_packet(ip, bytes);
  }

  // NTP: the packet image inside UDP inside IP, well-known port 123 when
  // generated code didn't set one.
  std::size_t udp_slot = 0;
  std::size_t ntp_slot = 0;
  for (std::size_t i = 0; i < wire_.size(); ++i) {
    if (wire_[i].spec->name == "udp") udp_slot = i;
    if (wire_[i].spec->name == "ntp") ntp_slot = i;
  }
  const auto& ntp_bytes = wire_[ntp_slot].out_image;
  net::UdpHeader udp;
  udp.src_port = util::get_be16({wire_[udp_slot].out_image.data(), 2});
  udp.dst_port = util::get_be16({wire_[udp_slot].out_image.data() + 2, 2});
  if (udp.src_port == 0) udp.src_port = net::kNtpPort;
  if (udp.dst_port == 0) udp.dst_port = net::kNtpPort;
  const auto udp_bytes = udp.serialize(own_address_, destination, ntp_bytes);
  return net::build_ipv4_packet(ip, udp_bytes);
}

net::IcmpMessage SchemaExecEnv::out_icmp() const {
  return *net::IcmpMessage::parse(out_message_bytes(0));
}

net::IgmpMessage SchemaExecEnv::message() const {
  return *net::IgmpMessage::parse(wire_[0].out_image);
}

net::NtpPacket SchemaExecEnv::packet() const {
  for (const auto& L : wire_) {
    if (L.spec->name == "ntp") return *net::NtpPacket::parse(L.out_image);
  }
  return net::NtpPacket{};
}

net::UdpHeader SchemaExecEnv::udp() const {
  for (const auto& L : wire_) {
    if (L.spec->name == "udp") {
      net::UdpHeader u;
      u.src_port = util::get_be16({L.out_image.data(), 2});
      u.dst_port = util::get_be16({L.out_image.data() + 2, 2});
      u.length = util::get_be16({L.out_image.data() + 4, 2});
      u.checksum = util::get_be16({L.out_image.data() + 6, 2});
      return u;
    }
  }
  return net::UdpHeader{};
}

}  // namespace sage::runtime

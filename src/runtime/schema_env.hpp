// Table-driven execution environment: ONE ExecEnv for every protocol,
// configured from the packet-schema registry (net/schema.hpp).
//
// This replaces the four bespoke Icmp/Igmp/Ntp/BfdExecEnv classes. A
// protocol environment is a registry entry (which layers exist, where
// fields live) plus a small per-protocol profile for the behaviors that
// are genuinely special: ICMP's deliberately-stale echo checksum and
// original-datagram excerpt, IGMP's serialize-time checksum, NTP's
// deferred UDP checksum and timeout effect, BFD's session-state storage
// and lookup effects. Everything else — field reads, writes, payload
// rows, symbols — is generic table dispatch:
//
//   read_field(ref, sel)  ->  bindings[ref.field_id]  ->  bit extraction
//
// so the interpreter hot path does no string comparisons once codegen
// has attached field ids (refs without ids fall back to a registry
// lookup by name and behave identically).
//
// Outgoing headers are kept as serialized byte images, not structs: a
// write lands the bits exactly where the wire format puts them, and
// finish()/finish_reply() emit the image directly. This is what makes
// the stale-checksum semantics fall out naturally — the checksum field
// is just bytes 2..3 of the image, emitted as generated code left them.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <span>
#include <string>
#include <vector>

#include "net/bfd.hpp"
#include "net/icmp.hpp"
#include "net/igmp.hpp"
#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/ntp.hpp"
#include "net/schema.hpp"
#include "net/udp.hpp"
#include "runtime/interpreter.hpp"

namespace sage::runtime {

namespace vm {
struct EnvAccess;
}  // namespace vm

class SchemaExecEnv : public ExecEnv {
 public:
  // -- factories (one per protocol environment) ----------------------------

  /// ICMP responder environment. `raw_incoming` must start at the IP
  /// header and outlive the env. `start_from_incoming` models the
  /// reply-by-mutation idiom of RFC 792: the outgoing message starts as a
  /// byte copy of the incoming one — including its stale checksum, which
  /// is what makes the zero-before-compute advice (@AdvBefore) observable.
  static SchemaExecEnv icmp(std::span<const std::uint8_t> raw_incoming,
                            net::IpAddr own_address,
                            bool start_from_incoming = false);

  /// ICMPv6 responder environment. `raw_incoming` must start at the IPv6
  /// header. The 128-bit addresses are served to generated code as opaque
  /// long handles (reads of ip6.src/ip6.dst return a handle constant;
  /// writes resolve the handle back to the stored Ip6Addr), which is
  /// lossless because generated code only ever *moves* addresses
  /// ("out->ip6.dst = in->ip6.src"), never computes on them.
  static SchemaExecEnv icmp6(std::span<const std::uint8_t> raw_incoming,
                             net::Ip6Addr own_address,
                             bool start_from_incoming = false);

  /// DHCP environment: `message` (may be empty) is the incoming DHCP
  /// message starting at the fixed BOOTP header; bytes past offset 240
  /// are the TLV options region. The outgoing image starts as the
  /// 240-byte fixed header with schema defaults; option writes grow it.
  static SchemaExecEnv dhcp(std::span<const std::uint8_t> message = {});

  /// IGMP sender environment. `host_group` is the group a report
  /// announces (the framework's "which group am I joining" service).
  static SchemaExecEnv igmp(net::IpAddr own_address, net::IpAddr host_group);

  /// NTP sender environment (no incoming packet: the timeout procedure).
  static SchemaExecEnv ntp(net::IpAddr own_address,
                           std::uint32_t clock_seconds);

  /// NTP environment with an incoming packet: kIncoming field reads see
  /// `incoming`, kOutgoing reads see the reply under construction. (The
  /// legacy NtpExecEnv discarded PacketSel; this overload is the fix.)
  static SchemaExecEnv ntp(net::IpAddr own_address, std::uint32_t clock_seconds,
                           const net::NtpPacket& incoming);

  /// BFD reception environment: `state` receives the generated state
  /// updates; `packet` (may be null) backs the wire-field reads.
  static SchemaExecEnv bfd(net::BfdSessionState* state,
                           const net::BfdControlPacket* packet);

  /// Pure state-variable environment for the reach experiments (protocol
  /// = "TCP" or "BGP"): every kState field of the protocol's layers is a
  /// slot initialized to 0, and framework effects are recorded.
  static SchemaExecEnv state_machine(const std::string& protocol);

  // -- per-run knobs (same surface the legacy envs had) --------------------

  bool valid() const { return valid_; }
  /// ICMP: the incoming packet claimed to carry an ICMP message but ended
  /// before the 8-byte ICMP header. Field reads over the missing bytes
  /// return nullopt (short read) instead of the old silent zero-fill.
  bool input_truncated() const { return input_truncated_; }
  void set_scenario(const std::string& name);
  void set_error_pointer(std::uint8_t pointer) { error_pointer_ = pointer; }
  void set_better_gateway(net::IpAddr gateway) { better_gateway_ = gateway; }
  void set_clock(std::uint32_t now) { clock_ = now; }
  void set_session_lookup_fails(bool fails) { session_lookup_fails_ = fails; }

  bool session_selected() const { return session_selected_; }
  bool timeout_called() const { return timeout_called_; }
  bool packet_transmitted() const { return packet_transmitted_; }

  /// Effects recorded by the state_machine profile, in call order.
  const std::vector<std::string>& effects() const { return effects_; }

  // -- finalization --------------------------------------------------------

  /// ICMP: serialize the reply packet. The checksum field is emitted
  /// exactly as generated code left it in the image; when the code called
  /// compute_checksum, the framework sums the message *including* that
  /// field — stale values corrupt the sum, which is how the @AdvBefore
  /// advice's absence becomes a test failure.
  std::vector<std::uint8_t> finish_reply();

  /// IGMP / NTP: finalize the message inside IP (and UDP for NTP) to
  /// `destination`, applying the schema's serialization defaults
  /// (IGMP ttl=1; NTP port 123, ttl=64).
  std::vector<std::uint8_t> finish(net::IpAddr destination) const;

  // -- typed views for tests and the simulator -----------------------------

  const net::Ipv4Header& out_ip() const { return out_ip_; }
  const net::Ipv6Header& out_ip6() const { return out_ip6_; }
  net::IcmpMessage out_icmp() const;   // ICMP/ICMPv6: reply under construction
  /// DHCP: the message under construction (fixed header + options).
  std::vector<std::uint8_t> out_dhcp() const { return out_message_bytes(0); }
  net::IgmpMessage message() const;    // IGMP: message under construction
  net::NtpPacket packet() const;       // NTP: packet under construction
  net::UdpHeader udp() const;          // NTP: UDP header as written

  // -- ExecEnv -------------------------------------------------------------
  std::optional<long> read_field(const codegen::FieldRef& ref,
                                 codegen::PacketSel sel) override;
  bool write_field(const codegen::FieldRef& ref, long value) override;
  bool is_bytes_field(const codegen::FieldRef& ref) const override;
  std::optional<std::vector<std::uint8_t>> read_bytes(
      const codegen::FieldRef& ref, codegen::PacketSel sel) override;
  bool write_bytes(const codegen::FieldRef& ref,
                   std::vector<std::uint8_t> value) override;
  bool is_bytes_function(const std::string& fn) const override;
  std::optional<long> call_scalar(const std::string& fn,
                                  const std::vector<long>& args) override;
  std::optional<std::vector<std::uint8_t>> call_bytes(
      const std::string& fn) override;
  bool call_effect(const std::string& fn,
                   const std::vector<long>& args) override;
  long resolve_symbol(const std::string& name) override;

 private:
  /// The threaded-code backend (runtime/vm) reads the binding tables at
  /// program-compile time and the layer images / slots at execution
  /// time, through this one bridge.
  friend struct vm::EnvAccess;

  /// The handful of genuinely protocol-specific behaviors (framework
  /// functions, finalization); field access never consults this.
  enum class Profile : std::uint8_t {
    kIcmp,
    kIcmp6,
    kIgmp,
    kNtp,
    kBfd,
    kDhcp,
    kStateMachine,
  };

  /// How one registry field maps onto this env's storage.
  struct Binding {
    enum class Kind : std::uint8_t {
      kNone,           // not bound in this protocol -> nullopt/false
      kWire,           // bit range in a layer's header image
      kPayloadScalar,  // 32-bit big-endian at a payload byte offset
      kBytes,          // the payload itself
      kIp,             // IP pseudo-layer backed by Ipv4Header structs
      kState,          // generic long slot (ntp.peer_timer, tcp.*, bgp.*)
      kBfdState,       // RFC 5880 §6.8.1 variable in *bfd_state_
      kHostGroup,      // IGMP host-group service (read-only)
      kToken,          // reads as 0 ("the ICMP message")
      kWireOption,     // TLV-located field inside a layer's options region
    };
    Kind kind = Kind::kNone;
    const net::schema::FieldSpec* spec = nullptr;
    std::uint8_t layer_slot = 0;  // kWire/kPayloadScalar/kBytes: wire_ index
    std::uint8_t slot = 0;        // kState/kBfdState/kIp: accessor index
    /// icmp.pointer: a write fills the whole 32-bit rest word with
    /// value << 24 (RFC 792's "pointer + unused"), zeroing the rest.
    bool write_fills_rest_word = false;
  };

  /// Immutable per-protocol dispatch table, built once per process:
  /// binding for every registry field id, plus the image-backed layers in
  /// serialization order.
  struct ProtocolBinding {
    const net::schema::ProtocolSchema* schema = nullptr;
    Profile profile = Profile::kStateMachine;
    std::vector<Binding> by_id;
    std::vector<const net::schema::LayerSpec*> wire_layers;
    std::size_t state_slot_count = 0;
  };

  /// In/out serialized images (+ payloads) for one image-backed layer.
  /// Allocator-aware: image storage bump-allocates from the per-thread
  /// env arena (see image_arena / EnvArenaScope below), so building an
  /// env and assembling its images costs zero heap traffic once the
  /// arena's chunks are warm.
  struct LayerImages {
    using allocator_type = std::pmr::polymorphic_allocator<std::byte>;
    LayerImages() = default;
    explicit LayerImages(allocator_type alloc)
        : in_image(alloc),
          out_image(alloc),
          in_payload(alloc),
          out_payload(alloc) {}
    LayerImages(LayerImages&& other, allocator_type alloc)
        : spec(other.spec),
          has_in(other.has_in),
          has_out(other.has_out),
          in_image(std::move(other.in_image), alloc),
          out_image(std::move(other.out_image), alloc),
          in_payload(std::move(other.in_payload), alloc),
          out_payload(std::move(other.out_payload), alloc) {}
    LayerImages(LayerImages&&) = default;
    LayerImages(const LayerImages&) = default;
    LayerImages& operator=(LayerImages&&) = default;
    LayerImages& operator=(const LayerImages&) = default;

    const net::schema::LayerSpec* spec = nullptr;
    bool has_in = false;
    bool has_out = false;
    std::pmr::vector<std::uint8_t> in_image;
    std::pmr::vector<std::uint8_t> out_image;
    std::pmr::vector<std::uint8_t> in_payload;
    std::pmr::vector<std::uint8_t> out_payload;
  };

  explicit SchemaExecEnv(const ProtocolBinding& pb);

  static const ProtocolBinding& binding_for(const std::string& protocol);

  const Binding* binding(const codegen::FieldRef& ref) const;
  void apply_image_defaults();
  const net::schema::DefaultSpec* layer_default(const std::string& layer,
                                                const std::string& field) const;
  const net::schema::DefaultSpec* ip_default(const std::string& field) const;
  std::vector<std::uint8_t> out_message_bytes(std::size_t layer_slot) const;

  std::optional<long> read_ip(std::uint8_t slot, codegen::PacketSel sel) const;
  bool write_ip(std::uint8_t slot, long value);
  std::optional<long> read_ip6(std::uint8_t slot, codegen::PacketSel sel) const;
  bool write_ip6(std::uint8_t slot, long value);
  const net::Ip6Addr* resolve_addr6(long handle) const;
  std::optional<long> read_bfd_state(std::uint8_t slot) const;
  bool write_bfd_state(std::uint8_t slot, long value);

  /// Profile-aware reverse_addresses effect body (shared by call_effect
  /// and the VM's specialized kEffectReverse op).
  void reverse_addresses_effect();

  // TLV-located field access (Binding::Kind::kWireOption). Scalar reads
  // resolve the layer's options region through a LayoutCursor; writes
  // update the option value in place when present and append a fresh
  // {code, length, value} before the end code otherwise.
  std::optional<long> read_wire_option(std::uint8_t layer_slot,
                                       const net::schema::FieldSpec& spec,
                                       codegen::PacketSel sel) const;
  bool write_wire_option(std::uint8_t layer_slot,
                         const net::schema::FieldSpec& spec, long value);
  std::optional<std::vector<std::uint8_t>> read_option_bytes(
      std::uint8_t layer_slot, const net::schema::FieldSpec& spec,
      codegen::PacketSel sel) const;
  bool write_option_bytes(std::uint8_t layer_slot,
                          const net::schema::FieldSpec& spec,
                          std::span<const std::uint8_t> value);

  std::optional<long> icmp_call_scalar(const std::string& fn,
                                       const std::vector<long>& args);
  std::optional<long> icmp6_call_scalar(const std::string& fn,
                                        const std::vector<long>& args);

  /// The thread-local arena backing every env's layer images on this
  /// thread (defined in schema_env.cpp).
  static std::pmr::memory_resource* image_arena();

  /// Depth guard for the image arena: the first env constructed on a
  /// thread (no other env alive) resets the arena, reclaiming the
  /// previous run's images while keeping the chunks. Overlapping envs —
  /// the differential harness compares two at once — share the arena and
  /// defer the reset until all of them are gone. Copies and moves of an
  /// env count as live users.
  struct EnvArenaScope {
    EnvArenaScope();
    EnvArenaScope(const EnvArenaScope&);
    EnvArenaScope& operator=(const EnvArenaScope&) { return *this; }
    ~EnvArenaScope();
  };

  const ProtocolBinding* pb_;
  Profile profile_;
  EnvArenaScope arena_scope_;  // must precede wire_: resets before allocs
  std::pmr::vector<LayerImages> wire_{image_arena()};
  std::vector<long> state_slots_;

  // ICMP: the IP layer is struct-backed (finish_reply builds the header).
  net::Ipv4Header in_ip_;
  net::Ipv4Header out_ip_;
  // ICMPv6: same idea, one version up. Generated code sees the 128-bit
  // addresses only as opaque handles (see read_ip6/write_ip6).
  net::Ipv6Header in_ip6_;
  net::Ipv6Header out_ip6_;
  net::Ip6Addr own6_;
  std::span<const std::uint8_t> raw_incoming_;
  bool valid_ = true;
  bool input_truncated_ = false;

  net::IpAddr own_address_;
  net::IpAddr host_group_;
  net::BfdSessionState* bfd_state_ = nullptr;

  std::string scenario_;
  long scenario_value_ = 0;  // util::symbol_value(scenario_), kept in sync
  std::uint8_t error_pointer_ = 0;
  net::IpAddr better_gateway_;
  std::uint32_t clock_ = 0;  // ICMP: ms since midnight UT; NTP: seconds

  bool checksum_explicitly_computed_ = false;
  bool session_selected_ = false;
  bool session_lookup_fails_ = false;
  bool timeout_called_ = false;
  bool packet_transmitted_ = false;
  std::vector<std::string> effects_;
};

}  // namespace sage::runtime

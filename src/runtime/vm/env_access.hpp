// Internal bridge between the VM and SchemaExecEnv's private storage.
//
// The executor's fast-path ops read and write the env's layer images and
// slots directly; the program compiler specializes against the env's
// per-protocol binding tables. Both go through this friend struct so the
// env's encapsulation boundary stays in one place. Not installed /
// included outside src/runtime/vm.
#pragma once

#include "runtime/schema_env.hpp"

namespace sage::runtime::vm {

struct EnvAccess {
  using Binding = SchemaExecEnv::Binding;
  using ProtocolBinding = SchemaExecEnv::ProtocolBinding;
  using LayerImages = SchemaExecEnv::LayerImages;
  using Profile = SchemaExecEnv::Profile;

  static const ProtocolBinding& binding_for(const std::string& protocol) {
    return SchemaExecEnv::binding_for(protocol);
  }

  /// Mirror of SchemaExecEnv::binding(): dense id when annotated,
  /// registry name lookup otherwise. Resolvable statically because the
  /// registry is immutable.
  static const Binding* plan(const ProtocolBinding& pb,
                             const codegen::FieldRef& ref) {
    if (ref.field_id >= 0 &&
        static_cast<std::size_t>(ref.field_id) < pb.by_id.size()) {
      return &pb.by_id[static_cast<std::size_t>(ref.field_id)];
    }
    const auto* spec =
        net::schema::SchemaRegistry::instance().field(ref.layer, ref.field);
    if (spec == nullptr) return nullptr;
    return &pb.by_id[static_cast<std::size_t>(spec->id)];
  }

  static const void* binding_key(const SchemaExecEnv& env) { return env.pb_; }

  static std::pmr::vector<LayerImages>& wire(SchemaExecEnv& env) {
    return env.wire_;
  }
  static std::vector<long>& state(SchemaExecEnv& env) {
    return env.state_slots_;
  }
  static std::optional<long> read_ip(const SchemaExecEnv& env,
                                     std::uint8_t slot, codegen::PacketSel sel) {
    return env.read_ip(slot, sel);
  }
  static bool write_ip(SchemaExecEnv& env, std::uint8_t slot, long value) {
    return env.write_ip(slot, value);
  }
  static std::optional<long> read_bfd_state(const SchemaExecEnv& env,
                                            std::uint8_t slot) {
    return env.read_bfd_state(slot);
  }
  static bool write_bfd_state(SchemaExecEnv& env, std::uint8_t slot,
                              long value) {
    return env.write_bfd_state(slot, value);
  }
  static long host_group(const SchemaExecEnv& env) {
    return static_cast<long>(env.host_group_.value());
  }
  static long scenario_value(const SchemaExecEnv& env) {
    return env.scenario_value_;
  }

  // Specialized-effect bodies (kEffect* ops). Each mirrors one branch of
  // SchemaExecEnv::call_effect exactly; the compiler only emits the op
  // for the (profile, name) pairs where that branch is trivial.
  static void set_checksum_computed(SchemaExecEnv& env) {
    env.checksum_explicitly_computed_ = true;
  }
  static void reverse_addresses(SchemaExecEnv& env) {
    env.reverse_addresses_effect();
  }
  static void set_timeout_called(SchemaExecEnv& env) {
    env.timeout_called_ = true;
  }

  // TLV-located fields (Binding::Kind::kWireOption): kPushOption /
  // kStoreOption route through the env's option machinery — the region
  // scan is not worth inlining into the executor.
  static std::optional<long> read_option(const SchemaExecEnv& env,
                                         std::uint8_t layer_slot,
                                         const net::schema::FieldSpec& spec,
                                         codegen::PacketSel sel) {
    return env.read_wire_option(layer_slot, spec, sel);
  }
  static bool write_option(SchemaExecEnv& env, std::uint8_t layer_slot,
                           const net::schema::FieldSpec& spec, long value) {
    return env.write_wire_option(layer_slot, spec, value);
  }
};

}  // namespace sage::runtime::vm

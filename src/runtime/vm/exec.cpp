#include "runtime/vm/exec.hpp"

#include <atomic>
#include <optional>
#include <vector>

#include "net/schema.hpp"
#include "runtime/vm/env_access.hpp"
#include "util/bytes.hpp"

namespace sage::runtime::vm {

namespace schema = net::schema;

namespace {

std::atomic<bool> g_count_ops{false};
std::atomic<std::uint64_t> g_op_counts[kNumOps];

inline void bump_op(Op op) {
  g_op_counts[static_cast<std::size_t>(op)].fetch_add(
      1, std::memory_order_relaxed);
}

/// Live execution state for one program run. The value stack is a flat
/// long array; `poison` is the linearized form of the tree's nullopt
/// propagation — a failed load pushes 0 and raises it, and the consuming
/// statement-level op (compare, store, effect call) turns it into the
/// tree-identical error string.
struct Frame {
  const Insn* code;
  const Program& prog;
  SchemaExecEnv& env;
  std::pmr::vector<EnvAccess::LayerImages>& wire;
  std::vector<long>& state;

  std::size_t ip = 0;
  std::uint32_t sp = 0;
  bool poison = false;
  bool halted = false;
  std::size_t ops = 0;
  std::size_t slow = 0;
  ExecResult result;
  long stack[kMaxStack];

  Frame(const Program& p, SchemaExecEnv& e)
      : code(p.code().data()),
        prog(p),
        env(e),
        wire(EnvAccess::wire(e)),
        state(EnvAccess::state(e)) {}
};

inline void fail(Frame& f, std::string message) {
  f.result.ok = false;
  f.result.errors.push_back(std::move(message));
}

inline void push_opt(Frame& f, const std::optional<long>& value) {
  if (!value) {
    f.poison = true;
    f.stack[f.sp++] = 0;
    return;
  }
  f.stack[f.sp++] = *value;
}

inline const schema::FieldSpec* spec_of(const Insn& in) {
  return reinterpret_cast<const schema::FieldSpec*>(
      static_cast<std::uintptr_t>(in.imm));
}

/// Pop the value of a store. Returns false (and emits the tree's
/// "expression failed" error) when the value expression poisoned.
inline bool store_value(Frame& f, long& value) {
  const Insn& in = f.code[f.ip];
  value = f.stack[--f.sp];
  if (f.poison) {
    f.poison = false;
    fail(f, "expression failed for assignment to " +
                f.prog.refs()[in.c].ref.to_string());
    return false;
  }
  return true;
}

inline void store_rejected(Frame& f) {
  fail(f, "cannot write field " +
              f.prog.refs()[f.code[f.ip].c].ref.to_string());
}

// -- op handlers ------------------------------------------------------------
// One inline function per opcode, shared by both dispatch loops. Each
// handler advances f.ip itself (jumps overwrite it), so the loops are
// pure dispatchers.

inline void op_kHalt(Frame& f) { f.halted = true; }

inline void op_kPushConst(Frame& f) {
  f.stack[f.sp++] = static_cast<long>(f.code[f.ip].imm);
  ++f.ip;
}

inline void op_kPushWire(Frame& f) {
  const Insn& in = f.code[f.ip];
  const auto& L = f.wire[in.b];
  // Selector honored when both packets exist; single-sided envs serve
  // their one image for either selector (same rule as read_field).
  const std::pmr::vector<std::uint8_t>* img =
      static_cast<codegen::PacketSel>(in.a) == codegen::PacketSel::kIncoming
          ? (L.has_in ? &L.in_image : (L.has_out ? &L.out_image : nullptr))
          : (L.has_out ? &L.out_image : (L.has_in ? &L.in_image : nullptr));
  if (img == nullptr) {
    f.poison = true;
    f.stack[f.sp++] = 0;
  } else {
    push_opt(f, schema::SchemaRegistry::read_scalar(*spec_of(in), *img));
  }
  ++f.ip;
}

inline void op_kPushPayload(Frame& f) {
  const Insn& in = f.code[f.ip];
  const auto& L = f.wire[in.b];
  const bool from_incoming =
      static_cast<codegen::PacketSel>(in.a) == codegen::PacketSel::kIncoming
          ? L.has_in
          : !L.has_out;
  const auto& pl = from_incoming ? L.in_payload : L.out_payload;
  const auto* spec = spec_of(in);
  if (pl.size() < spec->payload_offset + 4) {
    // Unwritten outgoing block reads 0; short incoming packet poisons.
    if (from_incoming) f.poison = true;
    f.stack[f.sp++] = 0;
  } else {
    f.stack[f.sp++] = static_cast<long>(
        util::get_be32({pl.data() + spec->payload_offset, 4}));
  }
  ++f.ip;
}

inline void op_kPushIp(Frame& f) {
  const Insn& in = f.code[f.ip];
  push_opt(f, EnvAccess::read_ip(f.env, static_cast<std::uint8_t>(in.b),
                                 static_cast<codegen::PacketSel>(in.a)));
  ++f.ip;
}

inline void op_kPushState(Frame& f) {
  f.stack[f.sp++] = f.state[f.code[f.ip].b];
  ++f.ip;
}

inline void op_kPushBfdState(Frame& f) {
  push_opt(f, EnvAccess::read_bfd_state(
                  f.env, static_cast<std::uint8_t>(f.code[f.ip].b)));
  ++f.ip;
}

inline void op_kPushHostGroup(Frame& f) {
  f.stack[f.sp++] = EnvAccess::host_group(f.env);
  ++f.ip;
}

inline void op_kPushZero(Frame& f) {
  f.stack[f.sp++] = 0;
  ++f.ip;
}

inline void op_kPushNull(Frame& f) {
  f.poison = true;
  f.stack[f.sp++] = 0;
  ++f.ip;
}

inline void op_kPushScenario(Frame& f) {
  f.stack[f.sp++] = EnvAccess::scenario_value(f.env);
  ++f.ip;
}

inline void op_kCmp(Frame& f) {
  const Insn& in = f.code[f.ip];
  const long rhs = f.stack[--f.sp];
  const long lhs = f.stack[--f.sp];
  if (f.poison) {
    // Exactly one error per compare, whichever operand(s) failed.
    f.poison = false;
    fail(f, "condition operand failed to evaluate");
    f.stack[f.sp++] = 0;
  } else {
    bool r = false;
    switch (static_cast<codegen::CmpOp>(in.a)) {
      case codegen::CmpOp::kEq: r = lhs == rhs; break;
      case codegen::CmpOp::kNe: r = lhs != rhs; break;
      case codegen::CmpOp::kGt: r = lhs > rhs; break;
      case codegen::CmpOp::kLt: r = lhs < rhs; break;
    }
    f.stack[f.sp++] = r ? 1 : 0;
  }
  ++f.ip;
}

inline void op_kJump(Frame& f) { f.ip = f.code[f.ip].c; }

inline void op_kJumpIfFalse(Frame& f) {
  const Insn& in = f.code[f.ip];
  f.ip = f.stack[--f.sp] == 0 ? in.c : f.ip + 1;
}

inline void op_kJumpIfTrue(Frame& f) {
  const Insn& in = f.code[f.ip];
  f.ip = f.stack[--f.sp] != 0 ? in.c : f.ip + 1;
}

inline void op_kCallScalar(Frame& f) {
  ++f.slow;
  const Insn& in = f.code[f.ip];
  f.sp -= in.a;
  if (f.poison) {
    // An argument failed: the tree never reaches the framework call.
    // Poison stays raised for the expression's consumer.
    f.stack[f.sp++] = 0;
  } else {
    const std::vector<long> args(f.stack + f.sp, f.stack + f.sp + in.a);
    push_opt(f, f.env.call_scalar(f.prog.names()[in.b], args));
  }
  ++f.ip;
}

inline void op_kCallEffect(Frame& f) {
  ++f.slow;
  const Insn& in = f.code[f.ip];
  f.sp -= in.a;
  bool ok = false;
  if (f.poison) {
    f.poison = false;
  } else {
    const std::vector<long> args(f.stack + f.sp, f.stack + f.sp + in.a);
    ok = f.env.call_effect(f.prog.names()[in.b], args);
  }
  if (!ok) fail(f, "framework call failed: " + f.prog.names()[in.b]);
  ++f.ip;
}

inline void op_kStoreWire(Frame& f) {
  const Insn& in = f.code[f.ip];
  long value;
  if (store_value(f, value)) {
    auto& L = f.wire[in.b];
    bool ok = false;
    if (L.has_out) {
      if (in.a != 0) {
        // RFC 792 pointer: the write owns the whole rest word.
        util::put_be32({L.out_image.data() + 4, 4},
                       static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(value))
                           << 24);
        ok = true;
      } else {
        ok = schema::SchemaRegistry::write_scalar(*spec_of(in), L.out_image,
                                                  value);
      }
    }
    if (!ok) store_rejected(f);
  }
  ++f.ip;
}

inline void op_kStorePayload(Frame& f) {
  const Insn& in = f.code[f.ip];
  long value;
  if (store_value(f, value)) {
    auto& L = f.wire[in.a];
    if (L.has_out) {
      // Block extent (in.b) precomputed at specialization time.
      if (L.out_payload.size() < in.b) L.out_payload.resize(in.b, 0);
      util::put_be32({L.out_payload.data() + spec_of(in)->payload_offset, 4},
                     static_cast<std::uint32_t>(value));
    } else {
      store_rejected(f);
    }
  }
  ++f.ip;
}

inline void op_kStoreIp(Frame& f) {
  const Insn& in = f.code[f.ip];
  long value;
  if (store_value(f, value)) {
    if (!EnvAccess::write_ip(f.env, static_cast<std::uint8_t>(in.b), value)) {
      store_rejected(f);
    }
  }
  ++f.ip;
}

inline void op_kStoreState(Frame& f) {
  const Insn& in = f.code[f.ip];
  long value;
  if (store_value(f, value)) f.state[in.b] = value;
  ++f.ip;
}

inline void op_kStoreBfdState(Frame& f) {
  const Insn& in = f.code[f.ip];
  long value;
  if (store_value(f, value)) {
    if (!EnvAccess::write_bfd_state(f.env, static_cast<std::uint8_t>(in.b),
                                    value)) {
      store_rejected(f);
    }
  }
  ++f.ip;
}

inline void op_kStoreNoop(Frame& f) {
  long value;
  if (store_value(f, value)) {
    // Write accepted and discarded (write_is_noop fields: icmp.unused).
  }
  ++f.ip;
}

inline void op_kStoreFail(Frame& f) {
  ++f.slow;
  long value;
  if (store_value(f, value)) store_rejected(f);
  ++f.ip;
}

inline void op_kAssignBytes(Frame& f) {
  ++f.slow;
  const Insn& in = f.code[f.ip];
  const auto src = static_cast<codegen::BytesSrc>(in.a & 0x0f);
  const auto sel = static_cast<codegen::PacketSel>(in.a >> 4);
  std::optional<std::vector<std::uint8_t>> bytes;
  if (src == codegen::BytesSrc::kField) {
    bytes = f.env.read_bytes(f.prog.refs()[in.b].ref, sel);
  } else if (src == codegen::BytesSrc::kCall) {
    bytes = f.env.call_bytes(f.prog.names()[in.b]);
  }
  const auto& target = f.prog.refs()[in.c].ref;
  if (!bytes) {
    fail(f, "byte-valued assignment failed for " + target.to_string());
  } else if (!f.env.write_bytes(target, std::move(*bytes))) {
    fail(f, "cannot write bytes field " + target.to_string());
  }
  ++f.ip;
}

inline void op_kCopyPayload(Frame& f) {
  const Insn& in = f.code[f.ip];
  const auto& src = f.wire[in.b].in_payload;
  f.wire[in.c].out_payload.assign(src.begin(), src.end());
  ++f.ip;
}

inline void op_kPushOption(Frame& f) {
  ++f.slow;
  const Insn& in = f.code[f.ip];
  push_opt(f, EnvAccess::read_option(f.env, static_cast<std::uint8_t>(in.b),
                                     *spec_of(in),
                                     static_cast<codegen::PacketSel>(in.a)));
  ++f.ip;
}

inline void op_kStoreOption(Frame& f) {
  ++f.slow;
  const Insn& in = f.code[f.ip];
  long value;
  if (store_value(f, value)) {
    if (!EnvAccess::write_option(f.env, static_cast<std::uint8_t>(in.b),
                                 *spec_of(in), value)) {
      store_rejected(f);
    }
  }
  ++f.ip;
}

// -- fused superinstructions (peephole pass in program.cpp) -----------------
// Each is observably identical to the sequence it replaces, including
// poison consumption and error strings, under ANY entry poison state.

inline bool cmp_eval(Frame& f, codegen::CmpOp op, long lhs, long rhs) {
  if (f.poison) {
    // The kCmp half of the pair: consume poison, one error, result 0.
    f.poison = false;
    fail(f, "condition operand failed to evaluate");
    return false;
  }
  switch (op) {
    case codegen::CmpOp::kEq: return lhs == rhs;
    case codegen::CmpOp::kNe: return lhs != rhs;
    case codegen::CmpOp::kGt: return lhs > rhs;
    case codegen::CmpOp::kLt: return lhs < rhs;
  }
  return false;
}

inline void op_kCmpBranch(Frame& f) {
  const Insn& in = f.code[f.ip];
  const long rhs = f.stack[--f.sp];
  const long lhs = f.stack[--f.sp];
  const bool r = cmp_eval(f, static_cast<codegen::CmpOp>(in.a), lhs, rhs);
  f.ip = r == (in.b != 0) ? in.c : f.ip + 1;
}

inline void op_kGuardScenario(Frame& f) {
  const Insn& in = f.code[f.ip];
  const bool r = cmp_eval(f, static_cast<codegen::CmpOp>(in.a),
                          EnvAccess::scenario_value(f.env),
                          static_cast<long>(in.imm));
  f.ip = r == (in.b != 0) ? in.c : f.ip + 1;
}

inline void op_kStoreWireConst(Frame& f) {
  const Insn& in = f.code[f.ip];
  if (f.poison) {
    // The kPushConst half cannot poison; this consumes poison raised
    // earlier, exactly as the original store's store_value would.
    f.poison = false;
    fail(f, "expression failed for assignment to " +
                f.prog.refs()[in.c].ref.to_string());
  } else {
    auto& L = f.wire[in.b >> 8];
    const long value = in.b & 0xff;
    bool ok = false;
    if (L.has_out) {
      if (in.a != 0) {
        util::put_be32({L.out_image.data() + 4, 4},
                       static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(value))
                           << 24);
        ok = true;
      } else {
        ok = schema::SchemaRegistry::write_scalar(*spec_of(in), L.out_image,
                                                  value);
      }
    }
    if (!ok) store_rejected(f);
  }
  ++f.ip;
}

/// Shared prologue of the specialized 0-arg effects: replays
/// op_kCallEffect's poison consumption (argument evaluation failed ->
/// the framework call never runs, same error string).
inline bool effect_entry(Frame& f) {
  if (f.poison) {
    f.poison = false;
    fail(f, "framework call failed: " + f.prog.names()[f.code[f.ip].b]);
    return false;
  }
  return true;
}

inline void op_kEffectChecksum(Frame& f) {
  if (effect_entry(f)) EnvAccess::set_checksum_computed(f.env);
  ++f.ip;
}

inline void op_kEffectReverse(Frame& f) {
  if (effect_entry(f)) EnvAccess::reverse_addresses(f.env);
  ++f.ip;
}

inline void op_kEffectTimeout(Frame& f) {
  if (effect_entry(f)) EnvAccess::set_timeout_called(f.env);
  ++f.ip;
}

inline void op_kEffectNop(Frame& f) {
  effect_entry(f);
  ++f.ip;
}

inline void op_kCopyIp(Frame& f) {
  const Insn& in = f.code[f.ip];
  const auto value =
      EnvAccess::read_ip(f.env, static_cast<std::uint8_t>(in.b >> 8),
                         static_cast<codegen::PacketSel>(in.a));
  if (f.poison || !value) {
    f.poison = false;
    fail(f, "expression failed for assignment to " +
                f.prog.refs()[in.c].ref.to_string());
  } else if (!EnvAccess::write_ip(
                 f.env, static_cast<std::uint8_t>(in.b & 0xff), *value)) {
    store_rejected(f);
  }
  ++f.ip;
}

// -- dispatch loops ---------------------------------------------------------

template <bool kCount>
void run_switch(Frame& f) {
  for (;;) {
    const Op op = f.code[f.ip].op;
    if constexpr (kCount) bump_op(op);
    ++f.ops;
    switch (op) {
#define SAGE_VM_CASE(name) \
  case Op::name:           \
    op_##name(f);          \
    break;
      SAGE_VM_OP_LIST(SAGE_VM_CASE)
#undef SAGE_VM_CASE
      case Op::kCount:
        f.halted = true;
        break;
    }
    if (f.halted) return;
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define SAGE_VM_HAVE_COMPUTED_GOTO 1

template <bool kCount>
void run_goto(Frame& f) {
  static const void* const kLabels[] = {
#define SAGE_VM_LABEL(name) &&lbl_##name,
      SAGE_VM_OP_LIST(SAGE_VM_LABEL)
#undef SAGE_VM_LABEL
  };

#define SAGE_VM_DISPATCH()                                         \
  do {                                                             \
    const Op op_ = f.code[f.ip].op;                                \
    if constexpr (kCount) bump_op(op_);                            \
    ++f.ops;                                                       \
    goto* kLabels[static_cast<std::size_t>(op_)];                  \
  } while (0)

  SAGE_VM_DISPATCH();

#define SAGE_VM_BODY(name)       \
  lbl_##name : {                 \
    op_##name(f);                \
    if (f.halted) return;        \
    SAGE_VM_DISPATCH();          \
  }
  SAGE_VM_OP_LIST(SAGE_VM_BODY)
#undef SAGE_VM_BODY
#undef SAGE_VM_DISPATCH
}

#endif  // computed goto

}  // namespace

bool have_computed_goto() {
#if defined(SAGE_VM_HAVE_COMPUTED_GOTO)
  return true;
#else
  return false;
#endif
}

ExecResult execute(const Program& program, SchemaExecEnv& env,
                   DispatchMode mode) {
  if (EnvAccess::binding_key(env) != program.binding_key()) {
    ExecResult result;
    result.ok = false;
    result.errors.push_back("execution environment protocol mismatch for " +
                            program.function_name());
    return result;
  }

  Frame f(program, env);

  bool use_goto = false;
#if defined(SAGE_VM_HAVE_COMPUTED_GOTO)
  switch (mode) {
    case DispatchMode::kComputedGoto:
      use_goto = true;
      break;
    case DispatchMode::kSwitch:
      use_goto = false;
      break;
    case DispatchMode::kDefault:
#if defined(SAGE_VM_FORCE_SWITCH)
      use_goto = false;
#else
      use_goto = true;
#endif
      break;
  }
#else
  (void)mode;
#endif

  const bool count = g_count_ops.load(std::memory_order_relaxed);
#if defined(SAGE_VM_HAVE_COMPUTED_GOTO)
  if (use_goto) {
    if (count) {
      run_goto<true>(f);
    } else {
      run_goto<false>(f);
    }
  } else
#endif
  {
    if (count) {
      run_switch<true>(f);
    } else {
      run_switch<false>(f);
    }
  }

  codegen::note_vm_execution(f.ops, f.slow);
  return std::move(f.result);
}

void set_op_counting(bool enabled) {
  g_count_ops.store(enabled, std::memory_order_relaxed);
}

std::array<std::uint64_t, kNumOps> op_counts() {
  std::array<std::uint64_t, kNumOps> out{};
  for (std::size_t i = 0; i < kNumOps; ++i) {
    out[i] = g_op_counts[i].load(std::memory_order_relaxed);
  }
  return out;
}

void reset_op_counts() {
  for (auto& c : g_op_counts) c.store(0, std::memory_order_relaxed);
}

}  // namespace sage::runtime::vm

// Threaded-code executor for compiled handler programs.
//
// Two dispatch loops over the same op handlers: a computed-goto loop
// (GCC/Clang `&&label` tables, one indirect jump per op) and a portable
// switch loop. The switch loop is ALWAYS compiled — it is the reference
// dispatcher and the fallback for toolchains without the extension — and
// tests exercise it explicitly via DispatchMode::kSwitch, so a build
// where it rotted fails fast. Configuring with -DSAGE_VM_FORCE_SWITCH=ON
// makes it the default dispatcher too.
//
// Execution semantics are bit-for-bit those of the tree interpreter
// (runtime/interpreter.cpp): same env accesses in the same order, same
// error strings in the same order. docs/EXECUTION.md spells out the
// contract; test_vm.cpp and test_vm_differential.cpp enforce it.
#pragma once

#include <array>
#include <cstdint>

#include "runtime/interpreter.hpp"
#include "runtime/vm/program.hpp"

namespace sage::runtime {
class SchemaExecEnv;
}  // namespace sage::runtime

namespace sage::runtime::vm {

/// Which backend executes a generated handler. kTree is the original
/// Stmt-walking interpreter, kept verbatim as the reference
/// implementation; kThreaded runs the compiled flat program.
enum class ExecBackend : std::uint8_t { kTree, kThreaded };

/// Dispatcher selection inside the threaded backend. kDefault picks
/// computed goto when the toolchain has it (and the build didn't force
/// the switch loop); requesting kComputedGoto without support falls back
/// to the switch loop.
enum class DispatchMode : std::uint8_t { kDefault, kComputedGoto, kSwitch };

/// True when this build carries the computed-goto dispatcher.
bool have_computed_goto();

/// Run `program` against `env`. The env must be bound to the same
/// protocol table the program was specialized for (the responder wiring
/// guarantees this; a mismatch returns a failed result, never UB).
ExecResult execute(const Program& program, SchemaExecEnv& env,
                   DispatchMode mode = DispatchMode::kDefault);

/// Per-op retirement counters (sage_debug --parse-stats). Off by
/// default; counting adds one relaxed atomic add per op.
void set_op_counting(bool enabled);
std::array<std::uint64_t, kNumOps> op_counts();
void reset_op_counts();

}  // namespace sage::runtime::vm

#include "runtime/vm/program.hpp"

#include <cstring>

#include "net/schema.hpp"
#include "runtime/vm/env_access.hpp"
#include "util/strings.hpp"

namespace sage::runtime::vm {

namespace schema = net::schema;

namespace {

using codegen::BytesSrc;
using codegen::LinOp;

std::int64_t bake_spec(const schema::FieldSpec* spec) {
  return static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(spec));
}

/// Specialize one field read against the binding plan. Every outcome of
/// SchemaExecEnv::read_field that is decidable at compile time becomes
/// its own op; undecidable outcomes do not exist (the registry is
/// immutable), so there is no generic read op at all.
Insn specialize_read(const EnvAccess::Binding* b, const codegen::LinInsn& in) {
  using Kind = EnvAccess::Binding::Kind;
  if (b == nullptr || b->kind == Kind::kNone || b->spec == nullptr ||
      !b->spec->readable) {
    return {Op::kPushNull};
  }
  switch (b->kind) {
    case Kind::kWire:
      return {Op::kPushWire, in.a, b->layer_slot, in.b, bake_spec(b->spec)};
    case Kind::kPayloadScalar:
      return {Op::kPushPayload, in.a, b->layer_slot, in.b, bake_spec(b->spec)};
    case Kind::kIp:
      return {Op::kPushIp, in.a, b->slot};
    case Kind::kState:
      return {Op::kPushState, 0, b->slot};
    case Kind::kBfdState:
      return {Op::kPushBfdState, 0, b->slot};
    case Kind::kHostGroup:
      return {Op::kPushHostGroup};
    case Kind::kToken:
      return {Op::kPushZero};
    case Kind::kWireOption:
      // Scalar TLV options read through the env's layout machinery;
      // whole-option-value (bytes-typed) fields have no scalar read.
      if (b->spec->kind == schema::FieldKind::kScalar) {
        return {Op::kPushOption, in.a, b->layer_slot, in.b,
                bake_spec(b->spec)};
      }
      return {Op::kPushNull};
    case Kind::kBytes:  // scalar read of the payload -> unknown
    case Kind::kNone:
      return {Op::kPushNull};
  }
  return {Op::kPushNull};
}

/// Specialize one field write; mirrors SchemaExecEnv::write_field's
/// decision ladder (writability, then noop, then storage kind).
Insn specialize_store(const EnvAccess::ProtocolBinding& pb,
                      const EnvAccess::Binding* b,
                      const codegen::LinInsn& in) {
  using Kind = EnvAccess::Binding::Kind;
  if (b == nullptr || b->kind == Kind::kNone || b->spec == nullptr ||
      !b->spec->writable) {
    return {Op::kStoreFail, 0, 0, in.b};
  }
  if (b->spec->write_is_noop) return {Op::kStoreNoop, 0, 0, in.b};
  switch (b->kind) {
    case Kind::kWire:
      return {Op::kStoreWire,
              static_cast<std::uint8_t>(b->write_fills_rest_word ? 1 : 0),
              b->layer_slot, in.b, bake_spec(b->spec)};
    case Kind::kPayloadScalar: {
      // The payload-scalar block is sized as a unit (the three ICMP
      // timestamps); precompute the block extent the tree interpreter
      // derives per write.
      std::size_t block = 0;
      for (const auto& f : pb.wire_layers[b->layer_slot]->fields) {
        if (f.kind == schema::FieldKind::kPayloadScalar) {
          block = std::max<std::size_t>(block, f.payload_offset + 4);
        }
      }
      return {Op::kStorePayload, b->layer_slot,
              static_cast<std::uint16_t>(block), in.b, bake_spec(b->spec)};
    }
    case Kind::kIp:
      // write_ip serves slots 0..3; total_length (slot 4) rejects.
      if (b->slot > 3) return {Op::kStoreFail, 0, 0, in.b};
      return {Op::kStoreIp, 0, b->slot, in.b};
    case Kind::kState:
      return {Op::kStoreState, 0, b->slot, in.b};
    case Kind::kBfdState:
      return {Op::kStoreBfdState, 0, b->slot, in.b};
    case Kind::kWireOption:
      if (b->spec->kind == schema::FieldKind::kScalar) {
        return {Op::kStoreOption, 0, b->layer_slot, in.b, bake_spec(b->spec)};
      }
      return {Op::kStoreFail, 0, 0, in.b};
    case Kind::kHostGroup:
    case Kind::kToken:
    case Kind::kBytes:
    case Kind::kNone:
      return {Op::kStoreFail, 0, 0, in.b};
  }
  return {Op::kStoreFail, 0, 0, in.b};
}

/// Specialize a bytes assignment: the incoming-payload copy patterns
/// (echo data, copy_field) become a direct image-to-image op; everything
/// else keeps the generic env-mediated slow op.
Insn specialize_bytes(const EnvAccess::ProtocolBinding& pb,
                      const codegen::LinearProgram& linear,
                      const codegen::LinInsn& in) {
  const auto src = static_cast<BytesSrc>(in.a & 0x0f);
  const auto sel = static_cast<codegen::PacketSel>(in.a >> 4);
  const auto* target = EnvAccess::plan(pb, linear.refs[in.c].ref);
  using Kind = EnvAccess::Binding::Kind;
  const bool target_is_bytes = target != nullptr && target->kind == Kind::kBytes;
  if (target_is_bytes && src == BytesSrc::kField &&
      sel == codegen::PacketSel::kIncoming) {
    const auto* value = EnvAccess::plan(pb, linear.refs[in.b].ref);
    if (value != nullptr && value->kind == Kind::kBytes) {
      return {Op::kCopyPayload, 0, value->layer_slot, target->layer_slot};
    }
  }
  if (target_is_bytes && src == BytesSrc::kCall && pb.schema != nullptr &&
      (pb.schema->protocol == "ICMP" || pb.schema->protocol == "ICMP6") &&
      linear.names[in.b] == "copy_field") {
    // copy_field reads wire_[0].in_payload (see SchemaExecEnv::call_bytes).
    return {Op::kCopyPayload, 0, 0, target->layer_slot};
  }
  return {Op::kAssignBytes, in.a, in.b, in.c};
}

/// Specialize a 0-arg framework effect whose call_effect branch for this
/// binding table's profile is trivial (set a flag / swap addresses /
/// accept-and-ignore). The binding-key guard makes this sound: any env
/// the program can run against shares the table, hence the profile.
/// Everything else keeps the generic string-dispatched op.
Insn specialize_effect(const EnvAccess::ProtocolBinding& pb,
                       const codegen::LinearProgram& linear,
                       const codegen::LinInsn& in) {
  using Profile = EnvAccess::Profile;
  const Insn generic{Op::kCallEffect, in.a, in.b};
  if (in.a != 0) return generic;
  const std::string& fn = linear.names[in.b];
  const bool checksum = fn == "compute_checksum" || fn == "recompute_checksum";
  switch (pb.profile) {
    case Profile::kIcmp:
    case Profile::kIcmp6:
      // kEffectReverse delegates to the env's profile-aware swap, so the
      // same specialization serves both IP versions.
      if (checksum) return {Op::kEffectChecksum, 0, in.b};
      if (fn == "reverse_addresses") return {Op::kEffectReverse, 0, in.b};
      if (fn == "send_message" || fn == "discard_packet") {
        return {Op::kEffectNop, 0, in.b};
      }
      return generic;
    case Profile::kDhcp:
      if (checksum || fn == "send_message" || fn == "discard_packet") {
        return {Op::kEffectNop, 0, in.b};
      }
      return generic;
    case Profile::kIgmp:
      if (checksum) return {Op::kEffectChecksum, 0, in.b};
      if (fn == "send_message" || fn == "discard_packet") {
        return {Op::kEffectNop, 0, in.b};
      }
      return generic;
    case Profile::kNtp:
      if (fn == "call_timeout" || fn == "timeout") {
        return {Op::kEffectTimeout, 0, in.b};
      }
      if (checksum || fn == "send_message" || fn == "transmit_packet") {
        return {Op::kEffectNop, 0, in.b};
      }
      return generic;
    case Profile::kBfd:
      if (fn == "call_timeout") return {Op::kEffectTimeout, 0, in.b};
      return generic;
    case Profile::kStateMachine:
      return generic;
  }
  return generic;
}

inline bool is_branch(Op op) {
  return op == Op::kJumpIfFalse || op == Op::kJumpIfTrue;
}

/// Peephole superinstruction pass. Dispatch is the dominant per-op cost
/// for generated handlers (every op body is a handful of loads), so the
/// hottest idioms collapse into single ops:
///
///   kCmp, kJumpIf*                          -> kCmpBranch
///   kPushScenario, kPushConst, kCmp, branch -> kGuardScenario
///   kPushConst, kStoreWire (byte-sized)     -> kStoreWireConst
///   kPushIp, kStoreIp                       -> kCopyIp
///
/// Each fused op replays its sequence exactly (poison consumption, error
/// strings, branch polarity); a window is only fused when no jump lands
/// on an interior instruction, and all jump targets are remapped through
/// the old->new index map afterwards.
std::vector<Insn> fuse(const std::vector<Insn>& spec) {
  std::vector<bool> is_target(spec.size() + 1, false);
  for (const Insn& in : spec) {
    if (in.op == Op::kJump || is_branch(in.op)) is_target[in.c] = true;
  }
  const auto interior_free = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin + 1; i < end; ++i) {
      if (is_target[i]) return false;
    }
    return true;
  };

  std::vector<Insn> out;
  out.reserve(spec.size());
  std::vector<std::uint32_t> map(spec.size() + 1, 0);
  for (std::size_t i = 0; i < spec.size();) {
    map[i] = static_cast<std::uint32_t>(out.size());
    if (i + 3 < spec.size() && spec[i].op == Op::kPushScenario &&
        spec[i + 1].op == Op::kPushConst && spec[i + 2].op == Op::kCmp &&
        is_branch(spec[i + 3].op) && interior_free(i, i + 4)) {
      out.push_back({Op::kGuardScenario, spec[i + 2].a,
                     static_cast<std::uint16_t>(
                         spec[i + 3].op == Op::kJumpIfTrue ? 1 : 0),
                     spec[i + 3].c, spec[i + 1].imm});
      for (std::size_t j = i; j < i + 4; ++j) map[j] = map[i];
      i += 4;
    } else if (i + 1 < spec.size() && spec[i].op == Op::kCmp &&
               is_branch(spec[i + 1].op) && interior_free(i, i + 2)) {
      out.push_back({Op::kCmpBranch, spec[i].a,
                     static_cast<std::uint16_t>(
                         spec[i + 1].op == Op::kJumpIfTrue ? 1 : 0),
                     spec[i + 1].c});
      map[i + 1] = map[i];
      i += 2;
    } else if (i + 1 < spec.size() && spec[i].op == Op::kPushConst &&
               spec[i + 1].op == Op::kStoreWire && spec[i].imm >= 0 &&
               spec[i].imm <= 0xff && spec[i + 1].b <= 0xff &&
               interior_free(i, i + 2)) {
      out.push_back({Op::kStoreWireConst, spec[i + 1].a,
                     static_cast<std::uint16_t>((spec[i + 1].b << 8) |
                                                spec[i].imm),
                     spec[i + 1].c, spec[i + 1].imm});
      map[i + 1] = map[i];
      i += 2;
    } else if (i + 1 < spec.size() && spec[i].op == Op::kPushIp &&
               spec[i + 1].op == Op::kStoreIp && interior_free(i, i + 2)) {
      out.push_back({Op::kCopyIp, spec[i].a,
                     static_cast<std::uint16_t>((spec[i].b << 8) |
                                                spec[i + 1].b),
                     spec[i + 1].c});
      map[i + 1] = map[i];
      i += 2;
    } else {
      out.push_back(spec[i]);
      ++i;
    }
  }
  map[spec.size()] = static_cast<std::uint32_t>(out.size());

  for (Insn& in : out) {
    if (in.op == Op::kJump || is_branch(in.op) || in.op == Op::kCmpBranch ||
        in.op == Op::kGuardScenario) {
      in.c = map[in.c];
    }
  }
  return out;
}

}  // namespace

const char* op_name(Op op) {
  static const char* const kNames[] = {
#define SAGE_VM_NAME(name) #name,
      SAGE_VM_OP_LIST(SAGE_VM_NAME)
#undef SAGE_VM_NAME
  };
  const auto i = static_cast<std::size_t>(op);
  return i < kNumOps ? kNames[i] : "<bad-op>";
}

std::size_t Program::program_bytes() const {
  std::size_t bytes = code_.size() * sizeof(Insn);
  for (const auto& r : refs_) {
    bytes += sizeof(codegen::FieldUse) + r.ref.layer.size() +
             r.ref.field.size();
  }
  for (const auto& n : names_) bytes += sizeof(std::string) + n.size();
  return bytes;
}

std::string Program::disassemble() const {
  std::string out;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Insn& in = code_[i];
    out += std::to_string(i) + ": " + op_name(in.op);
    switch (in.op) {
      case Op::kPushConst:
        out += " " + std::to_string(in.imm);
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
      case Op::kCmpBranch:
        out += " -> " + std::to_string(in.c);
        break;
      case Op::kGuardScenario:
        out += " " + std::to_string(in.imm) + " -> " + std::to_string(in.c);
        break;
      case Op::kCopyIp:
        out += " " + refs_[in.c].ref.to_string();
        break;
      case Op::kPushWire:
      case Op::kPushPayload:
      case Op::kPushOption:
      case Op::kStoreWire:
      case Op::kStorePayload:
      case Op::kStoreOption: {
        const auto* spec = reinterpret_cast<const schema::FieldSpec*>(
            static_cast<std::uintptr_t>(in.imm));
        out += " " + spec->name;
        break;
      }
      case Op::kCallScalar:
      case Op::kCallEffect:
        out += " " + names_[in.b] + "/" + std::to_string(in.a);
        break;
      case Op::kEffectChecksum:
      case Op::kEffectReverse:
      case Op::kEffectTimeout:
      case Op::kEffectNop:
        out += " " + names_[in.b];
        break;
      case Op::kStoreWireConst: {
        const auto* spec = reinterpret_cast<const schema::FieldSpec*>(
            static_cast<std::uintptr_t>(in.imm));
        out += " " + spec->name + " = " + std::to_string(in.b & 0xff);
        break;
      }
      case Op::kStoreFail:
      case Op::kStoreNoop:
      case Op::kStoreIp:
      case Op::kStoreState:
      case Op::kStoreBfdState:
        out += " " + refs_[in.c].ref.to_string();
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

std::optional<Program> compile(const codegen::LinearProgram& linear) {
  if (linear.max_stack > kMaxStack) return std::nullopt;
  const auto& pb = EnvAccess::binding_for(linear.protocol);

  Program program;
  program.function_name_ = linear.function_name;
  program.protocol_ = linear.protocol;
  program.binding_key_ = &pb;
  program.refs_ = linear.refs;
  program.names_ = linear.names;
  program.max_stack_ = linear.max_stack;

  std::vector<Insn> spec(linear.code.size());
  for (std::size_t i = 0; i < linear.code.size(); ++i) {
    const codegen::LinInsn& in = linear.code[i];
    Insn out;
    switch (in.op) {
      case LinOp::kHalt:
        out = {Op::kHalt};
        break;
      case LinOp::kPushConst:
        out = {Op::kPushConst, 0, 0, 0, in.imm};
        break;
      case LinOp::kPushField:
        out = specialize_read(EnvAccess::plan(pb, linear.refs[in.b].ref), in);
        break;
      case LinOp::kPushScenario:
        out = {Op::kPushScenario};
        break;
      case LinOp::kCallScalar:
        out = {Op::kCallScalar, in.a, in.b};
        break;
      case LinOp::kCmp:
        out = {Op::kCmp, in.a};
        break;
      case LinOp::kJump:
        out = {Op::kJump, 0, 0, in.c};
        break;
      case LinOp::kJumpIfFalse:
        out = {Op::kJumpIfFalse, 0, 0, in.c};
        break;
      case LinOp::kJumpIfTrue:
        out = {Op::kJumpIfTrue, 0, 0, in.c};
        break;
      case LinOp::kStoreField:
        out = specialize_store(pb, EnvAccess::plan(pb, linear.refs[in.b].ref),
                               in);
        break;
      case LinOp::kAssignBytes:
        out = specialize_bytes(pb, linear, in);
        break;
      case LinOp::kCallEffect:
        out = specialize_effect(pb, linear, in);
        break;
    }
    spec[i] = out;
  }

  const std::vector<Insn> fused = fuse(spec);

  auto* code = reinterpret_cast<Insn*>(
      program.arena_.allocate(fused.size() * sizeof(Insn), alignof(Insn)));
  std::memcpy(code, fused.data(), fused.size() * sizeof(Insn));
  program.code_ = {code, fused.size()};
  codegen::note_program_compiled(program.program_bytes());
  return program;
}

std::optional<Program> compile(const codegen::GeneratedFunction& fn) {
  return compile(codegen::compile_to_program(fn));
}

}  // namespace sage::runtime::vm

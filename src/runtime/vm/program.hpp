// Executable threaded-code programs for generated handlers.
//
// runtime/vm specializes a codegen::LinearProgram against a protocol's
// binding table (SchemaExecEnv's by-id dispatch) into directly
// executable ops: field accesses become storage-specific instructions
// with the schema FieldSpec pointer and layer slot baked into the
// instruction word, so the executor touches header images without any
// per-packet id lookup. The instruction buffer bump-allocates from a
// util::Arena owned by the Program (docs/EXECUTION.md has the op table
// and the fast-path/slow-path contract).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "codegen/lowering.hpp"
#include "util/arena.hpp"

namespace sage::runtime::vm {

// Executable opcode list. The X-macro keeps the enum, the name table,
// and both dispatcher bodies (exec.cpp) in exactly the same order — the
// computed-goto label table is indexed by raw op value.
//
// Fast-path ops touch env storage directly (images, slots, structs);
// slow-path ops (counted in ExecStats::slow_path_entries) go through the
// env's framework-function / bytes machinery.
#define SAGE_VM_OP_LIST(X) \
  X(kHalt)           /* end of program                                  */ \
  X(kPushConst)      /* push imm                                        */ \
  X(kPushWire)       /* a=sel, b=layer slot, imm=FieldSpec*             */ \
  X(kPushPayload)    /* a=sel, b=layer slot, imm=FieldSpec*             */ \
  X(kPushIp)         /* a=sel, b=ip slot                                */ \
  X(kPushState)      /* b=state slot                                    */ \
  X(kPushBfdState)   /* b=bfd state slot                                */ \
  X(kPushHostGroup)  /* push the IGMP host-group service value          */ \
  X(kPushZero)       /* readable token field: reads as 0                */ \
  X(kPushNull)       /* unknown/unreadable field: poison + push 0       */ \
  X(kPushScenario)   /* push the per-run scenario symbol value          */ \
  X(kCmp)            /* a=CmpOp; pops rhs,lhs, pushes 0/1               */ \
  X(kJump)           /* ip = c                                          */ \
  X(kJumpIfFalse)    /* pop; if 0 -> ip = c                             */ \
  X(kJumpIfTrue)     /* pop; if nonzero -> ip = c                       */ \
  X(kCallScalar)     /* a=nargs, b=name idx [slow]                      */ \
  X(kCallEffect)     /* a=nargs, b=name idx [slow]                      */ \
  X(kStoreWire)      /* a=1: fills rest word; b=slot, c=ref, imm=spec   */ \
  X(kStorePayload)   /* a=layer slot, b=block bytes, c=ref, imm=spec    */ \
  X(kStoreIp)        /* b=ip slot, c=ref                                */ \
  X(kStoreState)     /* b=state slot, c=ref                             */ \
  X(kStoreBfdState)  /* b=bfd state slot, c=ref                         */ \
  X(kStoreNoop)      /* write accepted and discarded; c=ref             */ \
  X(kStoreFail)      /* write always fails; c=ref [slow]                */ \
  X(kAssignBytes)    /* generic bytes assignment via env [slow]         */ \
  X(kCopyPayload)    /* b=src slot in_payload -> c=dst slot out_payload */ \
  X(kPushOption)     /* TLV field read: a=sel, b=layer slot,            */ \
                     /* imm=FieldSpec* [slow]                           */ \
  X(kStoreOption)    /* TLV field write: b=layer slot, c=ref,           */ \
                     /* imm=FieldSpec* [slow]                           */ \
  X(kCmpBranch)      /* fused cmp+branch: a=CmpOp, b=1 jump-on-true,    */ \
                     /* c=target; pops rhs,lhs                          */ \
  X(kGuardScenario)  /* fused scenario guard: cmp(scenario, imm) then   */ \
                     /* branch; a=CmpOp, b=jump-on-true, c=target       */ \
  X(kCopyIp)         /* fused ip-to-ip assignment: a=sel,               */ \
                     /* b=(src slot<<8)|dst slot, c=ref of target       */ \
  X(kStoreWireConst) /* fused const store: a=fills-rest flag,           */ \
                     /* b=(slot<<8)|value, c=ref, imm=FieldSpec*        */ \
  X(kEffectChecksum) /* specialized 0-arg effect: flag deferred         */ \
                     /* checksum; b=name idx (for the error string)     */ \
  X(kEffectReverse)  /* specialized reverse_addresses; b=name idx       */ \
  X(kEffectTimeout)  /* specialized call_timeout; b=name idx            */ \
  X(kEffectNop)      /* specialized always-true effect; b=name idx      */

enum class Op : std::uint8_t {
#define SAGE_VM_ENUMERATOR(name) name,
  SAGE_VM_OP_LIST(SAGE_VM_ENUMERATOR)
#undef SAGE_VM_ENUMERATOR
  kCount
};

inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kCount);

const char* op_name(Op op);

/// One fixed-size executable instruction (16 bytes).
struct Insn {
  Op op = Op::kHalt;
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;   // jump target, ref index, or block size
  std::int64_t imm = 0;  // inline constant or baked FieldSpec pointer
};
static_assert(sizeof(Insn) == 16, "instruction word is 16 bytes");

/// Value-stack capacity of the executor frame. compile() refuses
/// programs that could exceed it (callers fall back to the tree
/// interpreter); generated handlers stay in single digits.
inline constexpr std::uint32_t kMaxStack = 64;

/// A compiled, protocol-specialized handler program. Movable; the
/// instruction buffer lives in the program's own arena, so the code span
/// stays valid across moves.
class Program {
 public:
  const std::string& function_name() const { return function_name_; }
  const std::string& protocol() const { return protocol_; }
  /// Identity of the protocol binding table this program was specialized
  /// against; the executor refuses envs with a different table.
  const void* binding_key() const { return binding_key_; }
  std::span<const Insn> code() const { return code_; }
  const std::vector<codegen::FieldUse>& refs() const { return refs_; }
  const std::vector<std::string>& names() const { return names_; }
  std::uint32_t max_stack() const { return max_stack_; }
  /// Footprint: instruction bytes (arena-resident) + side tables.
  std::size_t program_bytes() const;
  /// Arena bytes backing the instruction buffer.
  std::size_t arena_bytes() const { return arena_.bytes_allocated(); }

  /// Human-readable listing, one instruction per line (debugging and
  /// golden tests).
  std::string disassemble() const;

 private:
  friend std::optional<Program> compile(const codegen::LinearProgram& linear);

  std::string function_name_;
  std::string protocol_;
  const void* binding_key_ = nullptr;
  util::Arena arena_{4 * 1024};
  std::span<const Insn> code_;
  std::vector<codegen::FieldUse> refs_;
  std::vector<std::string> names_;
  std::uint32_t max_stack_ = 0;
};

/// Specialize a lowered linear program against its protocol's binding
/// table. nullopt when the program cannot run on the VM (value stack
/// deeper than kMaxStack); callers keep the tree backend in that case.
std::optional<Program> compile(const codegen::LinearProgram& linear);

/// Convenience: lower + specialize in one step.
std::optional<Program> compile(const codegen::GeneratedFunction& fn);

}  // namespace sage::runtime::vm

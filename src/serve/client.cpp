#include "serve/client.hpp"

#include <sstream>
#include <utility>

namespace sage::serve {

Client::Client(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)) {}

Client::~Client() {
  if (connected_) {
    Frame goodbye;
    goodbye.kind = FrameKind::kGoodbye;
    goodbye.job_id = next_job_id_++;
    const std::vector<std::uint8_t> image = encode_frame(goodbye);
    transport_->write_all(image.data(), image.size());
  }
  transport_->close();
}

Frame Client::make_request(FrameKind kind, std::string payload) {
  Frame frame;
  frame.kind = kind;
  frame.payload = std::move(payload);
  return frame;
}

bool Client::read_frame(Frame* out) {
  std::uint8_t header[kHeaderBytes];
  if (transport_->read_exact(header, kHeaderBytes) != kHeaderBytes) {
    return false;
  }
  std::size_t payload_length = 0;
  if (decode_header({header, kHeaderBytes}, out, &payload_length) !=
      DecodeStatus::kOk) {
    return false;
  }
  if (payload_length > 0) {
    out->payload.resize(payload_length);
    if (transport_->read_exact(
            reinterpret_cast<std::uint8_t*>(out->payload.data()),
            payload_length) != payload_length) {
      return false;
    }
  }
  return true;
}

std::vector<Frame> Client::submit(const std::vector<Frame>& requests) {
  std::vector<Frame> responses(requests.size());
  std::map<std::uint32_t, std::size_t> slot_for_job;
  auto lost = [&](std::size_t slot) {
    Frame dead;
    dead.kind = FrameKind::kError;
    dead.status = JobStatus::kBadFrame;
    dead.payload = "connection lost";
    responses[slot] = dead;
  };
  if (!connected_) {
    for (std::size_t i = 0; i < requests.size(); ++i) lost(i);
    return responses;
  }

  // Burst phase: assign ids, send everything before reading anything.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Frame request = requests[i];
    request.job_id = next_job_id_++;
    slot_for_job[request.job_id] = i;
    const std::vector<std::uint8_t> image = encode_frame(request);
    if (!transport_->write_all(image.data(), image.size())) {
      connected_ = false;
      break;
    }
  }

  // Gather phase: responses arrive in completion order; route by id.
  // Responses without a client-known id (e.g. a kBadFrame reply echoing
  // a garbage id) fill the first unanswered slot so errors surface.
  std::size_t answered = 0;
  while (connected_ && answered < slot_for_job.size()) {
    Frame response;
    if (!read_frame(&response)) {
      connected_ = false;
      break;
    }
    auto it = slot_for_job.find(response.job_id);
    if (it == slot_for_job.end()) {
      for (auto& [id, slot] : slot_for_job) {
        if (responses[slot].kind == FrameKind::kError &&
            responses[slot].payload.empty() && responses[slot].job_id == 0) {
          response.job_id = id;
          responses[slot] = response;
          ++answered;
          break;
        }
      }
      continue;
    }
    responses[it->second] = response;
    ++answered;
  }
  if (!connected_) {
    for (auto& [id, slot] : slot_for_job) {
      if (responses[slot].kind == FrameKind::kError &&
          responses[slot].payload.empty() && responses[slot].job_id == 0) {
        lost(slot);
      }
    }
    for (std::size_t i = slot_for_job.size(); i < requests.size(); ++i) {
      lost(i);
    }
  }
  return responses;
}

Frame Client::submit_one(FrameKind kind, std::string payload) {
  return submit({make_request(kind, std::move(payload))}).front();
}

Frame Client::parse(const std::string& corpus) {
  return submit_one(FrameKind::kParseRequest, corpus);
}

Frame Client::codegen(const std::string& corpus) {
  return submit_one(FrameKind::kCodegenRequest, corpus);
}

Frame Client::interop(const std::string& corpus) {
  return submit_one(FrameKind::kInteropRequest, corpus);
}

Frame Client::fuzz(const std::string& protocol, std::uint64_t seed,
                   std::size_t iterations) {
  std::ostringstream payload;
  payload << "proto=" << protocol << " seed=" << seed
          << " iters=" << iterations;
  return submit_one(FrameKind::kFuzzRequest, payload.str());
}

Frame Client::stats() {
  return submit_one(FrameKind::kStatsRequest, "");
}

}  // namespace sage::serve

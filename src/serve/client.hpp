// Blocking batch client for the serve wire protocol.
//
// A Client owns one connection (any Transport — loopback in tests, TCP
// against a running sage_serve daemon) and provides the request shapes
// the daemon understands. Batches are submitted as a burst of frames
// with client-assigned job ids, then responses — which the server
// streams back in completion order — are reassembled into request
// order by job id. One Client is single-threaded by design; concurrency
// tests open N Clients.
//
// The same class backs tests/test_serve*.cpp, `sage_debug
// --serve-client`, the soak driver (serve/soak.hpp), and the warm half
// of bench_serve_throughput.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/frame.hpp"
#include "serve/transport.hpp"

namespace sage::serve {

class Client {
 public:
  explicit Client(std::unique_ptr<Transport> transport);
  /// Sends kGoodbye (when the connection is still healthy) and closes.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submit every request as one burst and block until each has a
  /// response. Requests get job ids 1..n in order; the returned vector
  /// is indexed like `requests` regardless of server completion order.
  /// A transport failure mid-batch yields synthesized kError frames
  /// (status kBadFrame, payload "connection lost") for missing slots
  /// and marks the connection dead.
  std::vector<Frame> submit(const std::vector<Frame>& requests);

  /// Convenience wrappers building the request payloads the server
  /// documents in docs/SERVICE.md.
  Frame parse(const std::string& corpus);
  Frame codegen(const std::string& corpus);
  Frame interop(const std::string& corpus);
  Frame fuzz(const std::string& protocol, std::uint64_t seed,
             std::size_t iterations);
  Frame stats();

  /// False once a transport error was observed; further submits fail
  /// fast with synthesized errors.
  bool connected() const { return connected_; }

  /// Build a request frame without sending it (batch assembly).
  static Frame make_request(FrameKind kind, std::string payload);

 private:
  Frame submit_one(FrameKind kind, std::string payload);
  /// Read one complete frame; false on EOF/truncation.
  bool read_frame(Frame* out);

  std::unique_ptr<Transport> transport_;
  std::uint32_t next_job_id_ = 1;
  bool connected_ = true;
};

}  // namespace sage::serve

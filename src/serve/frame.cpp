#include "serve/frame.hpp"

#include <algorithm>
#include <cstdio>

#include "net/schema.hpp"

namespace sage::serve {

namespace {

using net::schema::FieldSpec;
using net::schema::SchemaRegistry;

/// The serve layer's field specs, resolved once. Encoding and decoding
/// go through these — the registry owns the layout, not this file.
struct ServeLayer {
  const FieldSpec* magic;
  const FieldSpec* version;
  const FieldSpec* kind;
  const FieldSpec* job_id;
  const FieldSpec* status;
  const FieldSpec* flags;
  const FieldSpec* time_micros;
  const FieldSpec* payload_length;
  const FieldSpec* reserved;
};

const ServeLayer& serve_layer() {
  static const ServeLayer layer = [] {
    const auto& reg = SchemaRegistry::instance();
    ServeLayer l;
    l.magic = reg.field("serve", "magic");
    l.version = reg.field("serve", "version");
    l.kind = reg.field("serve", "kind");
    l.job_id = reg.field("serve", "job_id");
    l.status = reg.field("serve", "status");
    l.flags = reg.field("serve", "flags");
    l.time_micros = reg.field("serve", "time_micros");
    l.payload_length = reg.field("serve", "payload_length");
    l.reserved = reg.field("serve", "reserved");
    return l;
  }();
  return layer;
}

long read_field(const FieldSpec* spec, std::span<const std::uint8_t> image) {
  const auto value = SchemaRegistry::read_scalar(*spec, image);
  return value ? *value : 0;
}

}  // namespace

const char* frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kParseRequest: return "parse";
    case FrameKind::kCodegenRequest: return "codegen";
    case FrameKind::kInteropRequest: return "interop";
    case FrameKind::kFuzzRequest: return "fuzz";
    case FrameKind::kStatsRequest: return "stats";
    case FrameKind::kGoodbye: return "goodbye";
    case FrameKind::kResult: return "result";
    case FrameKind::kStatsResult: return "stats-result";
    case FrameKind::kError: return "error";
  }
  return "?";
}

bool is_known_kind(std::uint8_t kind) {
  switch (static_cast<FrameKind>(kind)) {
    case FrameKind::kParseRequest:
    case FrameKind::kCodegenRequest:
    case FrameKind::kInteropRequest:
    case FrameKind::kFuzzRequest:
    case FrameKind::kStatsRequest:
    case FrameKind::kGoodbye:
    case FrameKind::kResult:
    case FrameKind::kStatsResult:
    case FrameKind::kError:
      return true;
  }
  return false;
}

bool is_request_kind(std::uint8_t kind) {
  return is_known_kind(kind) && kind < 16;
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kBadFrame: return "bad-frame";
    case JobStatus::kBadRequest: return "bad-request";
    case JobStatus::kUnknownCorpus: return "unknown-corpus";
    case JobStatus::kExecFailed: return "exec-failed";
  }
  return "?";
}

const char* decode_status_name(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kShortHeader: return "short-header";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadReserved: return "bad-reserved";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kShortPayload: return "short-payload";
    case DecodeStatus::kTrailingBytes: return "trailing-bytes";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  const ServeLayer& l = serve_layer();
  std::vector<std::uint8_t> image(kHeaderBytes + frame.payload.size(), 0);
  const std::span<std::uint8_t> header(image.data(), kHeaderBytes);
  SchemaRegistry::write_scalar(*l.magic, header, kMagic);
  SchemaRegistry::write_scalar(*l.version, header, kWireVersion);
  SchemaRegistry::write_scalar(*l.kind, header,
                               static_cast<long>(frame.kind));
  SchemaRegistry::write_scalar(*l.job_id, header,
                               static_cast<long>(frame.job_id));
  SchemaRegistry::write_scalar(*l.status, header,
                               static_cast<long>(frame.status));
  SchemaRegistry::write_scalar(*l.flags, header,
                               static_cast<long>(frame.flags));
  SchemaRegistry::write_scalar(*l.time_micros, header,
                               static_cast<long>(frame.time_micros));
  SchemaRegistry::write_scalar(*l.payload_length, header,
                               static_cast<long>(frame.payload.size()));
  SchemaRegistry::write_scalar(*l.reserved, header, 0);
  std::copy(frame.payload.begin(), frame.payload.end(),
            image.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes));
  return image;
}

DecodeStatus decode_header(std::span<const std::uint8_t> header, Frame* out,
                           std::size_t* payload_length) {
  if (header.size() < kHeaderBytes) return DecodeStatus::kShortHeader;
  header = header.first(kHeaderBytes);
  const ServeLayer& l = serve_layer();
  if (read_field(l.magic, header) != kMagic) return DecodeStatus::kBadMagic;
  if (read_field(l.version, header) != kWireVersion) {
    return DecodeStatus::kBadVersion;
  }
  if (read_field(l.reserved, header) != 0) return DecodeStatus::kBadReserved;
  const long length = read_field(l.payload_length, header);
  if (static_cast<std::size_t>(length) > kMaxPayloadBytes) {
    return DecodeStatus::kOversized;
  }
  out->kind = static_cast<FrameKind>(read_field(l.kind, header));
  out->job_id = static_cast<std::uint32_t>(read_field(l.job_id, header));
  out->status = static_cast<JobStatus>(read_field(l.status, header));
  out->flags = static_cast<std::uint8_t>(read_field(l.flags, header));
  out->time_micros =
      static_cast<std::uint32_t>(read_field(l.time_micros, header));
  out->payload.clear();
  *payload_length = static_cast<std::size_t>(length);
  return DecodeStatus::kOk;
}

DecodeStatus decode_frame(std::span<const std::uint8_t> image, Frame* out) {
  std::size_t payload_length = 0;
  const DecodeStatus status = decode_header(image, out, &payload_length);
  if (status != DecodeStatus::kOk) return status;
  if (image.size() < kHeaderBytes + payload_length) {
    return DecodeStatus::kShortPayload;
  }
  if (image.size() > kHeaderBytes + payload_length) {
    return DecodeStatus::kTrailingBytes;
  }
  const auto payload = image.subspan(kHeaderBytes, payload_length);
  out->payload.assign(payload.begin(), payload.end());
  return DecodeStatus::kOk;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t h) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(std::string_view text, std::uint64_t h) {
  return fnv1a(
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()}, h);
}

std::uint64_t result_digest(const Frame& frame) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const std::uint8_t meta[2] = {static_cast<std::uint8_t>(frame.kind),
                                static_cast<std::uint8_t>(frame.status)};
  h = fnv1a(meta, h);
  return fnv1a_str(frame.payload, h);
}

std::string hex64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace sage::serve

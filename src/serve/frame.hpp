// sage_serve wire framing — the daemon's own protocol, dogfooded
// through the packet-schema registry.
//
// Every request and response on a serve connection is one length-prefixed
// binary frame: a 20-byte fixed header (magic, wire version, frame kind,
// job id, status, flags, server wall time, payload length) followed by
// `payload_length` payload bytes. The header layout is NOT hand-rolled:
// it is the `serve` layer registered in net::SchemaRegistry, and this
// codec encodes/decodes exclusively through the registry's
// write_scalar/read_wire machinery — so `sage_debug --dump-schema` prints
// the daemon's wire format next to ICMP's, decode_layer renders captured
// frames, and the codec round-trip is property-tested the same way every
// other protocol layer is (tests/test_serve.cpp). docs/SERVICE.md holds
// the rendered format table and the framing contract.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sage::serve {

inline constexpr std::uint16_t kMagic = 0x5347;  // "SG"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
/// Frames advertising a longer payload are rejected before any payload
/// byte is read (oversized-frame pin in tests/test_serve.cpp).
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 24;

/// Frame kinds. Requests are < 16, responses >= 16; the values are also
/// the SERVE protocol's schema symbols, so a decoded `serve.kind` can be
/// named from the registry table.
enum class FrameKind : std::uint8_t {
  // requests
  kParseRequest = 1,    // payload: corpus name ("icmp", "igmp", ...)
  kCodegenRequest = 2,  // payload: corpus name
  kInteropRequest = 3,  // payload: corpus name (ICMP corpora only)
  kFuzzRequest = 4,     // payload: "proto=<p> seed=<n> iters=<n>"
  kStatsRequest = 5,    // payload: empty
  kGoodbye = 6,         // payload: empty; close after pending jobs drain
  // responses
  kResult = 17,       // completed job (status == kOk)
  kStatsResult = 18,  // StatsSnapshot json (excluded from result digests)
  kError = 19,        // failed job or rejected frame
};

const char* frame_kind_name(FrameKind kind);
bool is_request_kind(std::uint8_t kind);
bool is_known_kind(std::uint8_t kind);

/// Per-job outcome carried in the response header.
enum class JobStatus : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,       // malformed framing; connection closes after reply
  kBadRequest = 2,     // well-formed frame, unusable request
  kUnknownCorpus = 3,  // parse/codegen/interop on a corpus we don't embed
  kExecFailed = 4,     // the job itself threw
};

const char* job_status_name(JobStatus status);

/// One frame, decoded. `flags` bit 0 reports a session-cache hit and
/// `time_micros` the server-side job wall time — both are observability
/// fields excluded from result_digest(), so response bytes hashed for
/// determinism checks never depend on scheduling.
struct Frame {
  FrameKind kind = FrameKind::kError;
  std::uint32_t job_id = 0;
  JobStatus status = JobStatus::kOk;
  std::uint8_t flags = 0;
  std::uint32_t time_micros = 0;
  std::string payload;

  static constexpr std::uint8_t kFlagCacheHit = 1;
  bool cache_hit() const { return (flags & kFlagCacheHit) != 0; }
};

enum class DecodeStatus : std::uint8_t {
  kOk,
  kShortHeader,    // fewer than kHeaderBytes bytes
  kBadMagic,
  kBadVersion,
  kBadReserved,    // reserved bits set (forward-compat guard)
  kOversized,      // payload_length > kMaxPayloadBytes
  kShortPayload,   // image ends before payload_length bytes
  kTrailingBytes,  // whole-buffer decode with bytes left over
};

const char* decode_status_name(DecodeStatus status);

/// Serialize a frame: 20-byte schema-written header + payload bytes.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decode a complete frame image (header + payload, nothing else).
DecodeStatus decode_frame(std::span<const std::uint8_t> image, Frame* out);

/// Decode and validate just the header; on kOk fills `out` (payload left
/// empty) and `payload_length`. Stream readers call this on the first
/// kHeaderBytes, then read the payload separately.
DecodeStatus decode_header(std::span<const std::uint8_t> header, Frame* out,
                           std::size_t* payload_length);

/// FNV-1a 64 over `bytes`, continuing from `h` — the digest primitive
/// shared by result digests, signature hashes, and the soak driver.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint64_t h = 0xcbf29ce484222325ULL);
std::uint64_t fnv1a_str(std::string_view text,
                        std::uint64_t h = 0xcbf29ce484222325ULL);

/// Deterministic identity of a response: FNV over (kind, status,
/// payload). Deliberately excludes job_id (batch/connection dependent),
/// flags, and time_micros (scheduling dependent) — two runs of the same
/// job must digest identically at any --jobs and client count.
std::uint64_t result_digest(const Frame& frame);

/// "0x" + 16 lowercase hex digits (the repo's digest rendering).
std::string hex64(std::uint64_t value);

}  // namespace sage::serve

#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/batch.hpp"
#include "corpus/rfc1059.hpp"
#include "corpus/rfc1112.hpp"
#include "corpus/rfc5880.hpp"
#include "corpus/rfc792.hpp"
#include "eval/interop_harness.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/generator.hpp"

namespace sage::serve {

namespace {

/// One embedded corpus: the text, protocol tag, and pre-annotations —
/// exactly what `sage_debug <corpus>` feeds the pipeline, so serve
/// results are comparable against direct CLI runs.
struct CorpusSpec {
  std::string text;
  std::string protocol;
  std::vector<std::string> annotations;
};

std::string bfd_text() {
  std::string text = "BFD State Management\n\n   Description\n\n";
  for (const auto& sentence : corpus::bfd_state_sentences()) {
    text += "      " + sentence + "\n";
  }
  return text;
}

const std::map<std::string, CorpusSpec>& corpus_specs() {
  static const std::map<std::string, CorpusSpec> specs = [] {
    std::map<std::string, CorpusSpec> m;
    m["icmp"] = {corpus::rfc792_revised(), "ICMP",
                 corpus::icmp_non_actionable_annotations()};
    m["icmp-orig"] = {corpus::rfc792_original(), "ICMP",
                      corpus::icmp_non_actionable_annotations()};
    m["igmp"] = {corpus::rfc1112_appendix_i(), "IGMP",
                 corpus::igmp_non_actionable_annotations()};
    m["ntp"] = {corpus::rfc1059_appendices(), "NTP",
                corpus::ntp_non_actionable_annotations()};
    m["bfd"] = {bfd_text(), "BFD", {}};
    return m;
  }();
  return specs;
}

Frame error_frame(std::uint32_t job_id, JobStatus status, std::string detail) {
  Frame out;
  out.kind = FrameKind::kError;
  out.job_id = job_id;
  out.status = status;
  out.payload = std::move(detail);
  return out;
}

/// Parse "key=value" words out of a fuzz request payload. Unknown keys
/// and malformed numbers are request errors, not server faults.
bool parse_fuzz_payload(const std::string& payload, std::string* protocol,
                        std::uint64_t* seed, std::size_t* iterations,
                        std::string* error) {
  std::istringstream in(payload);
  std::string word;
  while (in >> word) {
    const auto eq = word.find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + word + "'";
      return false;
    }
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    if (key == "proto") {
      *protocol = value;
      continue;
    }
    char* end = nullptr;
    const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      *error = key + " expects a number, got '" + value + "'";
      return false;
    }
    if (key == "seed") {
      *seed = n;
    } else if (key == "iters") {
      *iterations = static_cast<std::size_t>(n);
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
  }
  if (protocol->empty()) {
    *error = "missing proto=";
    return false;
  }
  return true;
}

}  // namespace

const std::vector<std::string>& known_corpora() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& [name, spec] : corpus_specs()) v.push_back(name);
    return v;
  }();
  return names;
}

Server::Server(ServerOptions options)
    : pool_(options.jobs), options_(options) {
  if (options_.parse_cache_capacity > 0) {
    parse_cache_ =
        std::make_shared<ccg::ParseCache>(options_.parse_cache_capacity);
  }
}

Server::~Server() {
  std::vector<std::jthread> threads;
  {
    std::lock_guard lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  // jthread dtors join here.
}

std::shared_ptr<Server::Pipeline> Server::build_pipeline(
    const std::string& corpus) const {
  const CorpusSpec& spec = corpus_specs().at(corpus);
  auto pipeline = std::make_shared<Pipeline>();
  pipeline->corpus = corpus;
  pipeline->protocol = spec.protocol;
  core::Sage sage;
  sage.set_parse_cache(parse_cache_);
  sage.annotate_non_actionable(spec.annotations);
  // Serial path: the parallel executor is byte-identical by contract,
  // but jobs already shard across the pool one level up — nesting the
  // sentence fan-out inside a pool job would oversubscribe it.
  pipeline->run = sage.process(spec.text, spec.protocol);
  pipeline->signature_hash =
      fnv1a_str(core::protocol_run_signature(pipeline->run));
  if (spec.protocol == "ICMP") {
    // The per-session compile: every generated handler is lowered to a
    // vm::Program exactly once, at registration (PR 7's cache).
    pipeline->responder = std::make_unique<runtime::GeneratedIcmpResponder>();
    for (const auto& fn : pipeline->run.functions) {
      pipeline->responder->add_function(fn);
    }
  }
  return pipeline;
}

std::shared_ptr<Server::Pipeline> Server::pipeline_for(
    const std::string& corpus, bool* cache_hit) {
  std::shared_future<std::shared_ptr<Pipeline>> future;
  std::promise<std::shared_ptr<Pipeline>> promise;
  bool builder = false;
  {
    std::lock_guard lock(pipelines_mutex_);
    auto it = pipelines_.find(corpus);
    if (it != pipelines_.end()) {
      future = it->second;
      // A hit only counts once the build completed: concurrent first
      // touches all miss (they all pay the wait for the build).
      *cache_hit = future.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
    } else {
      future = promise.get_future().share();
      pipelines_.emplace(corpus, future);
      builder = true;
      *cache_hit = false;
    }
  }
  if (builder) {
    // Build outside the map lock; fulfil the promise the other waiters
    // hold. A throwing build propagates to every waiter.
    try {
      promise.set_value(build_pipeline(corpus));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  if (*cache_hit) {
    pipeline_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    pipeline_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return future.get();
}

Frame Server::run_pipeline_job(const Frame& request) {
  const std::string& corpus = request.payload;
  if (corpus_specs().count(corpus) == 0) {
    return error_frame(request.job_id, JobStatus::kUnknownCorpus,
                       "unknown corpus '" + corpus + "'");
  }
  bool cache_hit = false;
  std::shared_ptr<Pipeline> pipeline = pipeline_for(corpus, &cache_hit);

  Frame out;
  out.kind = FrameKind::kResult;
  out.job_id = request.job_id;
  out.status = JobStatus::kOk;
  if (cache_hit) out.flags |= Frame::kFlagCacheHit;

  std::ostringstream payload;
  const core::ProtocolRun& run = pipeline->run;
  switch (request.kind) {
    case FrameKind::kParseRequest:
      payload << "corpus=" << corpus << " protocol=" << pipeline->protocol
              << " instances=" << run.reports.size()
              << " parsed=" << run.count(core::SentenceStatus::kParsed)
              << " zero=" << run.count(core::SentenceStatus::kZeroForms)
              << " ambiguous=" << run.count(core::SentenceStatus::kAmbiguous)
              << " non-actionable="
              << run.count(core::SentenceStatus::kNonActionable)
              << " functions=" << run.functions.size()
              << " signature=" << hex64(pipeline->signature_hash);
      break;
    case FrameKind::kCodegenRequest: {
      payload << "corpus=" << corpus << " functions=" << run.functions.size()
              << " signature=" << hex64(pipeline->signature_hash) << "\n";
      for (const auto& fn : run.functions) {
        payload << fn.name << " source=" << hex64(fnv1a_str(fn.c_source))
                << "\n";
      }
      break;
    }
    case FrameKind::kInteropRequest: {
      if (pipeline->responder == nullptr) {
        return error_frame(request.job_id, JobStatus::kBadRequest,
                           "corpus '" + corpus +
                               "' has no runnable responder (interop "
                               "requires an ICMP corpus)");
      }
      // The responder mutates per-event diagnostics; serialize jobs on
      // the same corpus. The ping itself is deterministic (fixed
      // identifier/sequence/timestamp), so serialization order cannot
      // leak into the payload.
      std::lock_guard lock(pipeline->responder_mutex);
      const sim::PingResult ping =
          eval::ping_against(pipeline->responder.get());
      payload << "corpus=" << corpus
              << " ping=" << (ping.success ? "pass" : "fail");
      for (const auto error : ping.errors) {
        payload << " error=" << sim::interop_error_name(error);
      }
      payload << "\n";
      for (const auto& line :
           eval::decode_reply(pipeline->responder.get())) {
        payload << line << "\n";
      }
      break;
    }
    default:
      return error_frame(request.job_id, JobStatus::kBadRequest,
                         "frame kind is not a pipeline job");
  }
  out.payload = payload.str();
  return out;
}

Frame Server::run_fuzz_job(const Frame& request) {
  std::string protocol;
  std::uint64_t seed = 1;
  std::size_t iterations = 100;
  std::string error;
  if (!parse_fuzz_payload(request.payload, &protocol, &seed, &iterations,
                          &error)) {
    return error_frame(request.job_id, JobStatus::kBadRequest,
                       "bad fuzz request: " + error);
  }
  const auto& known = fuzz::PacketGenerator::known_protocols();
  if (std::find(known.begin(), known.end(), protocol) == known.end()) {
    return error_frame(request.job_id, JobStatus::kBadRequest,
                       "unknown fuzz protocol '" + protocol + "'");
  }
  if (iterations == 0 || iterations > options_.max_fuzz_iterations) {
    return error_frame(request.job_id, JobStatus::kBadRequest,
                       "iters out of range (1.." +
                           std::to_string(options_.max_fuzz_iterations) + ")");
  }
  fuzz::FuzzOptions options;
  options.protocol = protocol;
  options.seed = seed;
  options.iterations = iterations;
  // The campaign runs inside one pool job already; its own fan-out
  // stays serial. Reports are deterministic in (seed, protocol, iters)
  // regardless, per the fuzzer's contract.
  options.jobs = 1;
  options.minimize = false;
  const fuzz::DifferentialFuzzer fuzzer(options);
  const fuzz::FuzzReport report = fuzzer.run();

  Frame out;
  out.kind = FrameKind::kResult;
  out.job_id = request.job_id;
  out.status = JobStatus::kOk;
  std::ostringstream payload;
  payload << report.summary() << "\n"
          << "log=" << hex64(report.log_hash) << "\n";
  for (const auto& failure : report.failures) {
    payload << "FAILURE " << fuzz::verdict_name(failure.verdict) << ": "
            << failure.detail << "\n";
  }
  out.payload = payload.str();
  return out;
}

Frame Server::execute(const Frame& request) {
  const auto start = std::chrono::steady_clock::now();
  Frame out;
  try {
    switch (request.kind) {
      case FrameKind::kParseRequest:
      case FrameKind::kCodegenRequest:
      case FrameKind::kInteropRequest:
        out = run_pipeline_job(request);
        break;
      case FrameKind::kFuzzRequest:
        out = run_fuzz_job(request);
        break;
      case FrameKind::kStatsRequest: {
        out.kind = FrameKind::kStatsResult;
        out.job_id = request.job_id;
        out.status = JobStatus::kOk;
        out.payload = stats().to_json();
        break;
      }
      default:
        out = error_frame(request.job_id, JobStatus::kBadRequest,
                          "not a request kind");
        break;
    }
  } catch (const std::exception& e) {
    out = error_frame(request.job_id, JobStatus::kExecFailed, e.what());
  } catch (...) {
    out = error_frame(request.job_id, JobStatus::kExecFailed,
                      "unknown exception");
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  out.time_micros = static_cast<std::uint32_t>(
      std::min<std::int64_t>(elapsed.count(), UINT32_MAX));
  if (out.status == JobStatus::kOk) {
    jobs_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

void Server::serve_connection(Transport& transport) {
  connections_.fetch_add(1, std::memory_order_relaxed);

  // Responses stream back in completion order; pool jobs share the
  // write side under one mutex. `pending` keeps the connection's
  // transport alive until every submitted job has answered.
  struct ConnectionState {
    std::mutex write_mutex;
    std::condition_variable cv;
    std::size_t pending = 0;
  };
  auto state = std::make_shared<ConnectionState>();

  auto send = [&transport, state](const Frame& frame) {
    const std::vector<std::uint8_t> image = encode_frame(frame);
    std::lock_guard lock(state->write_mutex);
    transport.write_all(image.data(), image.size());
  };
  auto drain = [state] {
    std::unique_lock lock(state->write_mutex);
    state->cv.wait(lock, [&] { return state->pending == 0; });
  };

  for (;;) {
    std::uint8_t header[kHeaderBytes];
    const std::size_t got = transport.read_exact(header, kHeaderBytes);
    if (got == 0) break;  // clean EOF: peer finished without kGoodbye
    Frame request;
    std::size_t payload_length = 0;
    DecodeStatus status = DecodeStatus::kShortHeader;
    if (got == kHeaderBytes) {
      status = decode_header({header, kHeaderBytes}, &request, &payload_length);
    }
    if (status == DecodeStatus::kOk && payload_length > 0) {
      request.payload.resize(payload_length);
      const std::size_t body = transport.read_exact(
          reinterpret_cast<std::uint8_t*>(request.payload.data()),
          payload_length);
      if (body != payload_length) status = DecodeStatus::kShortPayload;
    }
    if (status != DecodeStatus::kOk) {
      // Malformed framing: we cannot resynchronize a byte stream, so
      // answer one well-formed error frame and close the connection.
      // The frame still carries the claimed job id when the header
      // decoded far enough to have one.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      drain();
      send(error_frame(request.job_id, JobStatus::kBadFrame,
                       std::string("bad frame: ") + decode_status_name(status)));
      break;
    }
    if (request.kind == FrameKind::kGoodbye) {
      drain();
      break;
    }
    if (!is_request_kind(static_cast<std::uint8_t>(request.kind))) {
      // Well-formed frame, nonsensical kind: answer and keep going —
      // the stream is still in sync.
      send(error_frame(request.job_id, JobStatus::kBadRequest,
                       "not a request kind"));
      continue;
    }
    {
      std::lock_guard lock(state->write_mutex);
      ++state->pending;
    }
    pool_.submit([this, state, &transport, request = std::move(request)] {
      const Frame response = execute(request);
      const std::vector<std::uint8_t> image = encode_frame(response);
      std::lock_guard lock(state->write_mutex);
      transport.write_all(image.data(), image.size());
      --state->pending;
      state->cv.notify_all();
    });
  }
  drain();
  transport.close_write();
}

void Server::serve_connection_async(std::shared_ptr<Transport> transport) {
  std::lock_guard lock(threads_mutex_);
  connection_threads_.emplace_back(
      [this, transport = std::move(transport)](std::stop_token) {
        serve_connection(*transport);
      });
}

void Server::serve_acceptor(SocketAcceptor& acceptor) {
  for (;;) {
    std::unique_ptr<Transport> conn = acceptor.accept();
    if (conn == nullptr) break;  // acceptor closed
    serve_connection_async(std::move(conn));
  }
}

StatsSnapshot Server::stats() const {
  StatsSnapshot snap = StatsSnapshot::capture(parse_cache_.get());
  snap.connections = connections_.load(std::memory_order_relaxed);
  snap.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  snap.jobs_ok = jobs_ok_.load(std::memory_order_relaxed);
  snap.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  snap.pipeline_hits = pipeline_hits_.load(std::memory_order_relaxed);
  snap.pipeline_misses = pipeline_misses_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(pipelines_mutex_);
    snap.pipelines_cached = pipelines_.size();
  }
  return snap;
}

}  // namespace sage::serve
